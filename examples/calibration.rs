//! Cloud calibration: regenerate Table 2 and the Figure 6/7 evidence.
//!
//! ```sh
//! cargo run --release --example calibration
//! ```
//!
//! Runs the micro-benchmark suite against the simulated EC2 (10,000
//! samples per component per type, as in the paper), fits the
//! distributions, and checks the network normality claim.

use deco::cloud::calibration::calibrate;
use deco::cloud::CloudSpec;
use deco::prob::fit::normality_test;
use deco::prob::stats;

fn main() {
    let spec = CloudSpec::amazon_ec2();
    let (store, report) = calibrate(&spec, 10_000, 40, 2015);

    println!("{}", report.table2());

    println!("Figure 6 — m1.medium network dynamics:");
    let medium = &report.types[1];
    println!(
        "  relative spread (max-min)/mean = {:.1}%",
        stats::relative_spread(&medium.net_samples) * 100.0
    );
    let (fit, gof) = normality_test(&medium.net_samples, 20);
    println!(
        "  fitted Normal: mu = {:.1} MB/s, sigma = {:.1} MB/s; chi-square p = {:.3}",
        fit.mu, fit.sigma, gof.p_value
    );
    println!(
        "  => normality {} at the 1% level\n",
        if gof.accepts(0.01) {
            "retained"
        } else {
            "rejected"
        }
    );

    println!("Figure 7 — pair bandwidth histograms (calibrated):");
    for (a, b) in [(2usize, 2usize), (1, 2)] {
        let h = store.pair_net_hist(a, b);
        println!(
            "  {} <-> {}: mean {:.1} MB/s, sd {:.1} MB/s",
            spec.types[a].name,
            spec.types[b].name,
            h.mean(),
            h.variance().sqrt()
        );
    }
    println!("  (the slower endpoint dominates the pair, as in the paper)");
}
