//! Quickstart: plan and execute a Montage workflow with Deco.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full Figure-3 pipeline: calibrate the cloud, build a
//! workflow, let Deco pick instance types under a probabilistic deadline,
//! and execute the plan against the dynamic cloud 20 times.

use deco::cloud::calibration::calibrate;
use deco::cloud::CloudSpec;
use deco::engine::estimate::deadline_anchors;
use deco::engine::Deco;
use deco::pegasus::scheduler::{DecoScheduler, Requirements};
use deco::pegasus::Pegasus;
use deco::solver::EvalBackend;
use deco::workflow::generators;

fn main() {
    // 1. The cloud: EC2's four m1 types in two regions, with the Table 2
    //    performance dynamics. Calibration measures it and builds the
    //    metadata store Deco plans against.
    let spec = CloudSpec::amazon_ec2();
    let (store, report) = calibrate(&spec, 5_000, 40, 42);
    println!("calibrated the cloud:\n{}", report.table2());

    // 2. The workflow: a 1-degree Montage mosaic (~20 tasks).
    let wf = generators::montage(1, 7);
    println!(
        "workflow {}: {} tasks, depth {}, width {}",
        wf.name,
        wf.len(),
        wf.depth(),
        wf.width()
    );

    // 3. The requirement: finish within the medium deadline with 96%
    //    probability, at minimum cost.
    let (dmin, dmax) = deadline_anchors(&wf, &spec);
    let deadline = 0.5 * (dmin + dmax);
    println!("deadline: {deadline:.0} s (Dmin {dmin:.0}, Dmax {dmax:.0}), requirement: 96%");

    // 4. Plan with Deco.
    let deco = Deco::new(store.clone());
    let plan = deco
        .plan_workflow(&wf, deadline, 0.96, &EvalBackend::SeqCpu)
        .expect("a feasible plan exists");
    println!(
        "plan: {} instances, estimated cost ${:.3}, P(meet deadline) >= {:.2}, {} states searched",
        plan.plan.slots.len(),
        plan.evaluation.objective,
        plan.evaluation.constraint_margin,
        plan.stats.states_evaluated
    );
    for (i, slot) in plan.plan.slots.iter().enumerate() {
        let n = plan.plan.assign.iter().filter(|&&s| s == i).count();
        println!("  instance {i}: {} x{n} tasks", spec.types[slot.itype].name);
    }

    // 5. Execute through the WMS, 20 independent runs against the dynamic
    //    cloud.
    let wms = Pegasus::new(store);
    let req = Requirements {
        deadline,
        percentile: 0.96,
    };
    let sched = DecoScheduler::default();
    let exe = wms.plan(&wf, &sched, req).expect("mapped");
    let campaign = wms.run_many(&exe, req, "deco", 20, 99);
    println!(
        "executed 20 runs: mean cost ${:.3}, mean makespan {:.0} s, deadline hit rate {:.0}%",
        campaign.mean_cost(),
        campaign.mean_makespan(),
        campaign.deadline_hit_rate * 100.0
    );
}
