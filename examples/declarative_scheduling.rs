//! The declarative path: Example 1 of the paper, end to end.
//!
//! ```sh
//! cargo run --release --example declarative_scheduling
//! ```
//!
//! The WLog program below is the paper's Example 1 verbatim (modulo the
//! deadline literal): the user states *what* to optimize — minimize total
//! cost subject to a probabilistic deadline — and the derivation rules for
//! cost and critical path; Deco compiles it to the probabilistic IR,
//! expands `exetime` facts from the calibrated histograms, and searches
//! instance configurations with Monte-Carlo evaluation.

use deco::cloud::{CloudSpec, MetadataStore};
use deco::engine::estimate::deadline_anchors;
use deco::engine::Deco;
use deco::solver::EvalBackend;
use deco::workflow::generators;

fn main() {
    let spec = CloudSpec::amazon_ec2();
    let store = MetadataStore::from_ground_truth(spec.clone(), 25);
    // A small pipeline keeps the interpreter fast; the typed path handles
    // the large workflows.
    let wf = generators::pipeline(4, 1200.0, 64 << 20);
    let (dmin, dmax) = deadline_anchors(&wf, &spec);
    let deadline = 0.5 * (dmin + dmax);

    let program = format!(
        r#"
import(amazonec2).
import(workflow).
minimize Ct in totalcost(Ct).
T in maxtime(Path,T) satisfies deadline(95%, {deadline}s).
configs(Tid,Vid,Con) forall task(Tid) and vm(Vid).

/*calculate the time on the edge from X to Y*/
path(X,Y,Y,Tp) :- edge(X,Y), exetime(X,Vid,T),
  configs(X,Vid,Con), Con==1, Tp is T.
/*calculate the time on the path from X to Y, with Z as the next hop*/
path(X,Y,Z,Tp) :- edge(X,Z), Z\==Y, path(Z,Y,Z2,T1),
  exetime(X,Vid,T), configs(X,Vid,Con), Con==1, Tp is T+T1.
/*calculate the time on the critical path from root to tail*/
maxtime(Path,T) :- setof([Z,T1], path(root,tail,Z,T1), Set),
  max(Set, [Path,T]).
/*calculate the cost of Tid executing on Vid*/
cost(Tid,Vid,C) :- price(Vid,Up), exetime(Tid,Vid,T),
  configs(Tid,Vid,Con), C is T*Up*Con.
/*calculate the total cost of all tasks*/
totalcost(Ct) :- findall(C, cost(Tid,Vid,C), Bag), sum(Bag, Ct).
"#
    );
    println!("--- WLog program ---{program}---------------------\n");

    let mut deco = Deco::new(store);
    deco.options.mc_iters = 60;
    deco.options.search.max_states = 400;
    let plan = deco
        .plan_workflow_wlog(&program, &wf, &EvalBackend::SeqCpu)
        .expect("the program should yield a plan");
    println!(
        "solution: types {:?} (0 = m1.small .. 3 = m1.xlarge)",
        plan.types
    );
    println!(
        "goal value (mean fractional cost, Equation 1): ${:.4}",
        plan.evaluation.objective
    );
    println!(
        "constraint: P(makespan <= {deadline:.0}s) ~= {:.2} (>= 0.95 required)",
        plan.evaluation.constraint_margin
    );
    println!(
        "search: {} states evaluated through the WLog interpreter",
        plan.stats.states_evaluated
    );
}
