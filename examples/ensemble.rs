//! Workflow ensembles: maximize the science score under one budget.
//!
//! ```sh
//! cargo run --release --example ensemble
//! ```
//!
//! Generates a Ligo ensemble with priorities, plans each member with the
//! use-case-1 optimizer, and runs the admission search across a budget
//! sweep, comparing against the SPSS baseline (Malawski et al., SC'12).

use deco::baselines::spss::spss_admit;
use deco::cloud::{CloudSpec, MetadataStore};
use deco::engine::ensemble::EnsembleProblem;
use deco::engine::estimate::deadline_anchors;
use deco::solver::{EvalBackend, SearchOptions};
use deco::workflow::generators::App;
use deco::workflow::{Ensemble, EnsembleType};

fn main() {
    let spec = CloudSpec::amazon_ec2();
    let store = MetadataStore::from_ground_truth(spec.clone(), 25);
    let ensemble = Ensemble::generate(App::Ligo, EnsembleType::UniformUnsorted, 8, &[20, 100], 5);
    println!(
        "ensemble: {} Ligo workflows, sizes {:?}, max score {:.3}",
        ensemble.len(),
        ensemble
            .members
            .iter()
            .map(|m| m.workflow.len())
            .collect::<Vec<_>>(),
        ensemble.max_score()
    );

    // Per-member deadline D3 (midpoint of the feasible range).
    let deadlines: Vec<f64> = ensemble
        .members
        .iter()
        .map(|m| {
            let (dmin, dmax) = deadline_anchors(&m.workflow, &spec);
            0.5 * (dmin + dmax)
        })
        .collect();

    // Plan each member once with Deco (96% probabilistic deadline).
    let plans = EnsembleProblem::plan_members(
        &ensemble,
        &spec,
        &store,
        &deadlines,
        0.96,
        60,
        &SearchOptions {
            max_states: 300,
            ..Default::default()
        },
        &EvalBackend::SeqCpu,
    );
    let total: f64 = plans.iter().map(|p| p.cost).filter(|c| c.is_finite()).sum();
    println!("total cost to run everything: ${total:.2}\n");
    println!(
        "{:<10} {:>10} {:>12} {:>12}",
        "budget", "deco score", "spss score", "deco admits"
    );
    for frac in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let budget = total * frac;
        let problem = EnsembleProblem::with_member_plans(&ensemble, plans.clone(), budget);
        let result = problem.solve(&SearchOptions::default(), &EvalBackend::SeqCpu);
        let (mask, eval) = result.best.expect("all-false is always feasible");
        let spss = spss_admit(&ensemble, &spec, &deadlines, budget, 0);
        println!(
            "${budget:<9.2} {:>10.3} {:>12.3} {:>12}",
            eval.objective,
            spss.score,
            mask.iter().filter(|&&m| m).count()
        );
    }
}
