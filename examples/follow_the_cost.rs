//! Follow-the-cost: runtime migration across cloud regions.
//!
//! ```sh
//! cargo run --release --example follow_the_cost
//! ```
//!
//! A CPU-heavy Ligo workflow is deployed in the expensive Singapore
//! region. At
//! every decision epoch, Deco re-optimizes the migration decision for the
//! remaining tasks (Equations (7)–(10)): execution savings in the cheaper
//! US East region versus the transfer bill and instance-restart waste.
//! Compared against staying put and against the threshold Heuristic.

use deco::baselines::FollowCostHeuristic;
use deco::cloud::sim::{run_plan, run_with_policy};
use deco::cloud::{CloudSpec, Plan};
use deco::engine::followcost::DecoFollowCost;
use deco::workflow::generators;

fn main() {
    let spec = CloudSpec::amazon_ec2();
    let wf = generators::ligo(50, 3);
    let types = vec![0usize; wf.len()]; // m1.small fleet
    let start_region = 1; // ap-southeast-1 (33% pricier)
    let plan = Plan::packed(&wf, &types, start_region, &spec);
    println!(
        "workflow {} ({} tasks) deployed in {}",
        wf.name,
        wf.len(),
        spec.regions[start_region].name
    );

    // Stay put.
    let stay = run_plan(&spec, &wf, &plan, 11);
    println!(
        "stay in Singapore:    cost ${:.3} (compute ${:.3} + transfer ${:.3}), makespan {:.0} s",
        stay.cost.total(),
        stay.cost.compute,
        stay.cost.transfer,
        stay.makespan
    );

    // The threshold Heuristic (50% default).
    let mut heuristic = FollowCostHeuristic::new(&wf, spec.clone(), types.clone(), 0.5);
    let h = run_with_policy(&spec, &wf, &plan, &mut heuristic, 600.0, 11);
    println!(
        "heuristic (50%):      cost ${:.3} (compute ${:.3} + transfer ${:.3}), {} adjustments",
        h.cost.total(),
        h.cost.compute,
        h.cost.transfer,
        heuristic.adjustments
    );

    // Deco's runtime re-optimization.
    let deadline = 1e9; // loose deadline: pure cost play
    let mut deco = DecoFollowCost::new(spec.clone(), types, deadline);
    let d = run_with_policy(&spec, &wf, &plan, &mut deco, 600.0, 11);
    println!(
        "deco follow-the-cost: cost ${:.3} (compute ${:.3} + transfer ${:.3}), {} re-plans",
        d.cost.total(),
        d.cost.compute,
        d.cost.transfer,
        deco.replans
    );
    println!(
        "\nsavings vs staying: heuristic {:.1}%, deco {:.1}%",
        (1.0 - h.cost.total() / stay.cost.total()) * 100.0,
        (1.0 - d.cost.total() / stay.cost.total()) * 100.0
    );
}
