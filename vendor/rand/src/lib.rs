//! Vendored, dependency-free stand-in for the `rand` crate (0.8 surface).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the narrow slice of `rand` it actually uses:
//! [`RngCore`]/[`Rng`]/[`SeedableRng`], [`rngs::SmallRng`] and
//! [`seq::SliceRandom`]. The implementation is deliberately simple and
//! *fixed*: `SmallRng` is xoshiro256++ seeded through SplitMix64, and
//! `gen::<f64>()` is the standard 53-bit mantissa construction. Nothing
//! here may change once benchmark/regression baselines depend on the
//! exact streams.

/// Core randomness source: raw integer output plus byte filling.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types producible by [`Rng::gen`] (the role `Standard: Distribution<T>`
/// plays in real `rand`).
pub trait StandardSample: Sized {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// 53 random mantissa bits mapped to `[0, 1)`.
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleRange: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased uniform draw in `[0, n)` (Lemire's multiply-shift with
/// rejection of the biased low region).
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let lo = m as u64;
        if lo >= n || lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, u16, u8);

impl SampleRange for i64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let span = (hi as u64).wrapping_sub(lo as u64);
        lo.wrapping_add(uniform_u64(rng, span) as i64)
    }
}

impl SampleRange for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::sample_from(rng) * (hi - lo)
    }
}

/// Convenience methods layered over any [`RngCore`], usable through
/// `&mut dyn RngCore` like the real crate.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_from(&mut SizedRef(self))
    }

    #[inline]
    fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(&mut SizedRef(self), range.start, range.end)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

/// Adapter giving an unsized `Rng` receiver a `Sized` `RngCore` handle.
struct SizedRef<'a, R: ?Sized>(&'a mut R);

impl<R: RngCore + ?Sized> RngCore for SizedRef<'_, R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, including the SplitMix64 `seed_from_u64` path
/// every call site in this workspace relies on.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        // Expand a 64-bit seed into the full seed buffer with SplitMix64,
        // as rand_core does (stable across platforms by construction).
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast generator; fixed algorithm so seeded
    /// streams are reproducible forever.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        #[inline]
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            // xoshiro requires a nonzero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            SmallRng { s }
        }
    }
}

pub mod seq {
    use super::{RngCore, SampleRange};

    /// Slice helpers (`shuffle`, `choose`) from `rand::seq`.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, high to low.
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_range(rng, 0, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn dyn_rng_core_supports_gen() {
        let mut r = SmallRng::seed_from_u64(1);
        let dynr: &mut dyn RngCore = &mut r;
        let u: f64 = dynr.gen();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let k = r.gen_range(0..5usize);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
