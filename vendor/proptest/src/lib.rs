//! Vendored stand-in for `proptest` (offline build). Supports the subset
//! the workspace's property tests use: the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, `arg in strategy` bindings
//! over integer/float ranges and `collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` family. Generation is random but
//! fully deterministic per test (seeded from the test name); there is no
//! shrinking — a failing case panics with its generated arguments, which
//! is enough to reproduce since streams are deterministic.

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (only `cases` is
    /// honored).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Smaller than upstream's 256: these run in tier-1 CI. Like
            // upstream, `PROPTEST_CASES` overrides the default so a fuzz
            // smoke step can crank the case count without code changes.
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&c| c > 0)
                .unwrap_or(64);
            Config { cases }
        }
    }

    /// A failed `prop_assert!`.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// SplitMix64 stream seeded from the test name: deterministic across
    /// runs and platforms, independent across tests.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name picks the stream.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            loop {
                let x = self.next_u64();
                let m = (x as u128) * (n as u128);
                let lo = m as u64;
                if lo >= n || lo >= n.wrapping_neg() % n {
                    return (m >> 64) as u64;
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator. Unlike upstream there is no value tree or
    /// shrinking — `generate` draws a value directly.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start).wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy_int!(usize, u64, u32, u16, u8, i64, i32);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    /// Tuples of strategies generate tuples of values (as upstream).
    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    /// Constant strategy (`Just`), for completeness.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec`: a Vec of `element` draws with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "assertion failed: {} != {}\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l
                    )));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = (<$crate::test_runner::Config as Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __args_dbg = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        Ok(())
                    })();
                if let Err(e) = __result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\nwith arguments:\n{}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e,
                        __args_dbg
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(n in 3usize..10, x in -2.0f64..2.0, s in 0u64..9) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x), "x out of bounds: {}", x);
            prop_assert!(s < 9);
        }

        #[test]
        fn vec_strategy_sizes(vals in crate::collection::vec(-100f64..100.0, 1..8)) {
            prop_assert!(!vals.is_empty() && vals.len() < 8);
            for v in &vals {
                prop_assert!((-100.0..100.0).contains(v));
            }
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("u");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
