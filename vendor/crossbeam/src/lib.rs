//! Vendored stand-in for `crossbeam`, backed by `std::thread::scope`
//! (stable since Rust 1.63). Only the `thread::scope` + `Scope::spawn`
//! surface used by `deco-gpusim` is provided.

pub mod thread {
    /// Mirror of `crossbeam::thread::Scope`, wrapping the std scope.
    /// `Copy` so that `spawn(move |scope| ...)` closures can capture it
    /// by value the way crossbeam's API shape expects.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let me = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(me)),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope in which borrowing, scoped threads can be
    /// spawned. Unlike crossbeam's version this cannot observe a panic as
    /// an `Err` at the `scope` call itself — std propagates child panics
    /// on scope exit — so the `Result` is always `Ok` here.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_can_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let out = super::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        7usize
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        })
        .unwrap();
        assert_eq!(out, 28);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }
}
