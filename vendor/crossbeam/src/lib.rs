//! Vendored stand-in for `crossbeam`, backed by `std::thread::scope`
//! (stable since Rust 1.63). Two surfaces are provided: the
//! `thread::scope` + `Scope::spawn` pair used by `deco-gpusim`, and the
//! `channel` module (bounded/unbounded MPMC channels on a mutex + condvar
//! pair) used by the `deco-serve` worker pool.

pub mod channel {
    //! Multi-producer multi-consumer channels mirroring
    //! `crossbeam-channel`'s `bounded`/`unbounded` constructors and the
    //! blocking `send`/`recv`/`iter` surface. A bounded sender blocks when
    //! the buffer is full; `recv` blocks until a message arrives or every
    //! sender has been dropped.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    /// The channel was disconnected: every receiver dropped before `send`.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The channel is empty and every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    struct State<T> {
        buf: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// `None` = unbounded.
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half; clonable for multiple producers.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// Receiving half; clonable for multiple consumers (work-stealing).
    pub struct Receiver<T>(Arc<Chan<T>>);

    fn chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let c = Arc::new(Chan {
            state: Mutex::new(State {
                buf: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(Arc::clone(&c)), Receiver(c))
    }

    /// A channel holding at most `cap` in-flight messages (`cap >= 1`);
    /// `send` blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap >= 1, "bounded channel needs capacity >= 1");
        chan(Some(cap))
    }

    /// A channel with no capacity bound; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        chan(None)
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued (or every receiver is gone).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().expect("channel mutex poisoned");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.0.cap {
                    Some(cap) if st.buf.len() >= cap => {
                        st = self.0.not_full.wait(st).expect("channel mutex poisoned");
                    }
                    _ => break,
                }
            }
            st.buf.push_back(value);
            drop(st);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; `Err` once the buffer is drained
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().expect("channel mutex poisoned");
            loop {
                if let Some(v) = st.buf.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.not_empty.wait(st).expect("channel mutex poisoned");
            }
        }

        /// Blocking iterator: yields until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator over received messages (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().expect("channel mutex poisoned").senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0
                .state
                .lock()
                .expect("channel mutex poisoned")
                .receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().expect("channel mutex poisoned");
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Wake blocked receivers so they observe disconnection.
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().expect("channel mutex poisoned");
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                // Wake blocked senders so they observe disconnection.
                self.0.not_full.notify_all();
            }
        }
    }
}

pub mod thread {
    /// Mirror of `crossbeam::thread::Scope`, wrapping the std scope.
    /// `Copy` so that `spawn(move |scope| ...)` closures can capture it
    /// by value the way crossbeam's API shape expects.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let me = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(me)),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope in which borrowing, scoped threads can be
    /// spawned. Unlike crossbeam's version this cannot observe a panic as
    /// an `Err` at the `scope` call itself — std propagates child panics
    /// on scope exit — so the `Result` is always `Ok` here.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn mpmc_channel_delivers_every_message_exactly_once() {
        let (tx, rx) = super::channel::unbounded::<usize>();
        let total = 200usize;
        let received = std::sync::Mutex::new(Vec::new());
        super::thread::scope(|s| {
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| {
                        let mut mine = Vec::new();
                        while let Ok(v) = rx.recv() {
                            mine.push(v);
                        }
                        mine
                    })
                })
                .collect();
            for i in 0..total {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            for w in workers {
                received.lock().unwrap().extend(w.join().unwrap());
            }
        })
        .unwrap();
        let mut got = received.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..total).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (tx, rx) = super::channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        // A third send must block until a recv frees a slot.
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap();
        });
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn recv_errors_once_senders_are_gone() {
        let (tx, rx) = super::channel::unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert!(rx.recv().is_err());
        assert_eq!(rx.iter().count(), 0);
    }

    #[test]
    fn send_errors_once_receivers_are_gone() {
        let (tx, rx) = super::channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn scoped_threads_can_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let out = super::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        7usize
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        })
        .unwrap();
        assert_eq!(out, 28);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }
}
