//! Vendored stand-in for `serde`. The real crate is unavailable offline;
//! this one provides just enough — marker traits plus no-op derives — for
//! `#[derive(Serialize, Deserialize)]` annotations in the workspace to
//! compile. No actual (de)serialization happens in-tree.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
pub trait Deserialize<'de>: Sized {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T> Deserialize<'de> for T {}
