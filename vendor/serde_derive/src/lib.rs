//! Vendored stand-in for `serde_derive`: the workspace derives
//! `Serialize`/`Deserialize` on a handful of types for downstream
//! consumers, but nothing in-tree actually serializes. The derives
//! expand to nothing (the marker traits in the vendored `serde` have no
//! required items), which keeps the offline build self-contained without
//! pulling in syn/quote.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
