//! Vendored stand-in for `criterion` (offline build). It reproduces the
//! API subset the workspace's benches use — `Criterion`,
//! `bench_function`, `benchmark_group` with builder knobs, `Bencher::iter`
//! / `iter_batched`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple warm-up + fixed-duration
//! measurement loop. Results print as `name: median ns/iter (samples)`
//! lines; there are no HTML reports.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
        }
    }
}

/// One measured sample: mean nanoseconds per iteration.
fn run_samples(settings: &Settings, mut one_iter: impl FnMut()) -> Vec<f64> {
    // Warm-up: run until the warm-up budget is spent.
    let start = Instant::now();
    let mut warm_iters: u64 = 0;
    while start.elapsed() < settings.warm_up {
        one_iter();
        warm_iters += 1;
    }
    // Estimate per-iteration time to size each sample.
    let per_iter = (start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);
    let budget_ns = settings.measurement.as_nanos() as f64 / settings.sample_size as f64;
    let iters_per_sample = ((budget_ns / per_iter).floor() as u64).max(1);

    let mut samples = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let t = Instant::now();
        for _ in 0..iters_per_sample {
            one_iter();
        }
        samples.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
    }
    samples
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

pub struct Bencher<'a> {
    settings: &'a Settings,
    result_ns: Option<f64>,
}

impl Bencher<'_> {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let mut samples = run_samples(self.settings, || {
            black_box(routine());
        });
        self.result_ns = Some(median(&mut samples));
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Setup runs outside the timed region, one input per iteration.
        let start = Instant::now();
        let mut warm: u64 = 0;
        while start.elapsed() < self.settings.warm_up {
            black_box(routine(setup()));
            warm += 1;
        }
        let _ = warm;
        let mut samples = Vec::with_capacity(self.settings.sample_size);
        let per_sample = 10u64;
        for _ in 0..self.settings.sample_size {
            let mut total = Duration::ZERO;
            for _ in 0..per_sample {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                total += t.elapsed();
            }
            samples.push(total.as_nanos() as f64 / per_sample as f64);
        }
        self.result_ns = Some(median(&mut samples));
    }
}

#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    fn run_one(settings: &Settings, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            settings,
            result_ns: None,
        };
        f(&mut b);
        match b.result_ns {
            Some(ns) => println!("bench {name:<48} {ns:>14.1} ns/iter"),
            None => println!("bench {name:<48} (no measurement)"),
        }
    }

    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        Self::run_one(&self.settings, name, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            settings: Settings::default(),
        }
    }

    /// `cargo bench -- <filter>` support is not implemented; benches run
    /// unconditionally.
    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement = d;
        self
    }

    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        Criterion::run_one(&self.settings, &full, &mut f);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        // Keep the test fast: tiny budgets.
        c.settings.sample_size = 2;
        c.settings.warm_up = Duration::from_millis(1);
        c.settings.measurement = Duration::from_millis(2);
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }
}
