//! The retry/recovery driver.
//!
//! Runs a plan to completion under injected faults: whenever the engine
//! reports unrunnable tasks (killed by a revocation, or stranded on a
//! lost/unbootable instance), the driver provisions a replacement instance
//! of the same type in the same region, moves the whole stranded group
//! onto it (preserving consolidation, like the follow-the-cost migration
//! path), and spaces attempts with capped exponential backoff
//! ([`deco_cloud::capped_backoff`] — the same single implementation the
//! serving layer uses to space crashed-solve re-enqueues). Each
//! replacement draws its *own* fate from the injector, so recovery can
//! itself be disrupted. A task is abandoned after `max_attempts` strikes;
//! its descendants then simply never dispatch and the run is reported
//! lossy rather than panicking.
//!
//! Optionally a [`RuntimePolicy`] is consulted after every recovery round
//! — this is how follow-the-cost replanning triggers on instance *loss*,
//! not just on performance drift.

use crate::schedule::FaultInjector;
use deco_cloud::billing::instance_cost;
use deco_cloud::{CloudSpec, Plan, RetryConfig, RunResult, RuntimePolicy, Simulation, TaskAttempt};
use deco_prob::rng::seeded;
use deco_workflow::{TaskId, Workflow};
use std::collections::BTreeMap;

/// Outcome of one fault-injected execution.
#[derive(Debug, Clone)]
pub struct FaultRunResult {
    /// The (possibly lossy) run: makespan over completed tasks, full cost
    /// ledger, and the complete attempt trace.
    pub result: RunResult,
    /// The final plan, including every replacement slot provisioned.
    pub plan: Plan,
    /// Tasks given up on after exhausting their attempts.
    pub abandoned: Vec<TaskId>,
    /// Attempts killed by instance revocation.
    pub crashes: usize,
    /// Killed tasks re-dispatched onto replacement instances.
    pub retries: usize,
    /// Times the runtime policy was consulted after a recovery round.
    pub replans: usize,
}

impl FaultRunResult {
    /// Whether every task completed.
    pub fn all_done(&self, wf: &Workflow) -> bool {
        self.result.completed == wf.len()
    }
}

/// Execute `wf` under `plan` with faults drawn by `injector`, retrying per
/// `retry`. `seed` drives the performance dynamics (the same stream
/// [`deco_cloud::run_plan`] would use), independent of the fault seed.
pub fn run_with_faults(
    spec: &CloudSpec,
    wf: &Workflow,
    plan: &Plan,
    injector: &FaultInjector,
    retry: RetryConfig,
    seed: u64,
) -> FaultRunResult {
    run_with_faults_policy(spec, wf, plan, injector, retry, seed, f64::INFINITY, None)
}

/// Like [`run_with_faults`], consulting `policy` after every recovery
/// round — the replan-on-instance-loss trigger for follow-the-cost.
///
/// With a policy attached, `epoch_seconds` must be finite: the driver
/// advances the dispatch horizon in epochs so the policy observes a
/// meaningful clock (slack, lost slots) at each consultation, exactly like
/// [`deco_cloud::run_with_policy`]. Slots the policy provisions during a
/// replan draw their own fates from the injector. Without a policy, pass
/// `f64::INFINITY` to resolve each recovery round in a single pass.
#[allow(clippy::too_many_arguments)]
pub fn run_with_faults_policy(
    spec: &CloudSpec,
    wf: &Workflow,
    plan: &Plan,
    injector: &FaultInjector,
    retry: RetryConfig,
    seed: u64,
    epoch_seconds: f64,
    mut policy: Option<&mut dyn RuntimePolicy>,
) -> FaultRunResult {
    assert!(retry.max_attempts >= 1);
    assert!(epoch_seconds > 0.0);
    assert!(
        policy.is_none() || epoch_seconds.is_finite(),
        "a policy needs finite epochs to observe a meaningful clock"
    );
    let sched = injector.schedule_for(plan);
    let mut sim = Simulation::with_disruptions(spec, wf, plan.clone(), seeded(seed), sched);
    // Allocated on the first disruption; a fault-free run never touches it.
    let mut strikes: Vec<u32> = Vec::new();
    let mut abandoned: Vec<TaskId> = Vec::new();
    let (mut crashes, mut retries, mut replans) = (0usize, 0usize, 0usize);
    let mut horizon = epoch_seconds;
    loop {
        sim.run_until(horizon);
        if sim.all_started() {
            // Everything dispatched (abandoned tasks never start, so this
            // also implies nothing was given up on): the run is complete.
            // This O(1) check is the entire per-run cost of the recovery
            // driver on a fault-free execution.
            break;
        }
        let stuck: Vec<TaskId> = sim
            .unrunnable_tasks()
            .into_iter()
            .filter(|t| !abandoned.contains(t))
            .collect();
        // Group stranded tasks by the instance they were lost from;
        // BTreeMap keeps recovery order deterministic.
        if strikes.is_empty() && !stuck.is_empty() {
            strikes = vec![0u32; wf.len()];
        }
        let mut groups: BTreeMap<usize, Vec<TaskId>> = BTreeMap::new();
        for t in stuck {
            if sim.is_failed(t) {
                crashes += 1;
            }
            strikes[t.index()] += 1;
            if strikes[t.index()] >= retry.max_attempts {
                abandoned.push(t);
                continue;
            }
            groups
                .entry(sim.plan().assign[t.index()])
                .or_default()
                .push(t);
        }
        let recovered = !groups.is_empty();
        for (old_slot, group) in groups {
            let vm = sim.plan().slots[old_slot];
            let fate = sim.slot_fate(old_slot);
            // When the instance was revoked we learn about the loss at the
            // crash instant; an unbootable instance is detected at boot.
            let discovered = if fate.crash_at.is_finite() {
                fate.crash_at
            } else {
                0.0
            };
            let worst = group
                .iter()
                .map(|t| strikes[t.index()])
                .max()
                .expect("groups are built non-empty");
            let not_before = discovered + retry.backoff(worst);
            retries += group.iter().filter(|&&t| sim.is_failed(t)).count();
            let new_slot = sim.reassign_group_after(&group, vm, not_before);
            // The replacement draws its own fate — recovery is not immune.
            sim.set_slot_fate(
                new_slot,
                injector.slot_fate(new_slot, vm.itype, vm.region, not_before),
            );
        }
        if recovered {
            if let Some(p) = policy.as_deref_mut() {
                let before = sim.plan().slots.len();
                p.replan(&mut sim, wf);
                replans += 1;
                // Instances the policy just provisioned draw their fates
                // from the injector too.
                for s in before..sim.plan().slots.len() {
                    let vm = sim.plan().slots[s];
                    let fate = injector.slot_fate(s, vm.itype, vm.region, sim.now());
                    sim.set_slot_fate(s, fate);
                }
            }
        }
        // Done when every still-pending task is unreachable: abandoned, or
        // downstream of an abandoned task. With nothing abandoned that
        // reduces to "everything dispatched", which is O(1) — the whole
        // termination cost of a fault-free run.
        if abandoned.is_empty() {
            if sim.all_started() {
                break;
            }
        } else {
            let unreachable = unreachable_set(wf, &abandoned);
            if sim.pending_tasks().iter().all(|t| unreachable[t.index()]) {
                break;
            }
        }
        if horizon.is_infinite() && !recovered {
            // Single-pass mode made no progress and something reachable is
            // still pending — cannot happen with a consistent engine, but
            // never spin.
            break;
        }
        if horizon.is_finite() {
            horizon += epoch_seconds;
        }
    }
    let (plan, result) = sim.finish_lossy_parts();
    FaultRunResult {
        result,
        plan,
        abandoned,
        crashes,
        retries,
        replans,
    }
}

/// Tasks that can never run: the abandoned set and everything downstream.
fn unreachable_set(wf: &Workflow, abandoned: &[TaskId]) -> Vec<bool> {
    let mut dead = vec![false; wf.len()];
    for &t in abandoned {
        dead[t.index()] = true;
    }
    // One forward sweep suffices: task_ids() is topologically ordered in
    // the generators' DAGs, but be safe and iterate to a fixed point.
    loop {
        let mut changed = false;
        for t in wf.task_ids() {
            if !dead[t.index()] && wf.parents(t).any(|p| dead[p.index()]) {
                dead[t.index()] = true;
                changed = true;
            }
        }
        if !changed {
            return dead;
        }
    }
}

/// Recompute the compute bill from first principles — per-slot busy spans
/// reconstructed from the attempt trace (killed attempts end at the crash
/// instant) — for ledger audits in tests. Must equal
/// `result.cost.compute` exactly.
pub fn audit_compute_cost(spec: &CloudSpec, plan: &Plan, attempts: &[TaskAttempt]) -> f64 {
    let mut spans: Vec<Option<(f64, f64)>> = vec![None; plan.slots.len()];
    for a in attempts {
        spans[a.slot] = Some(match spans[a.slot] {
            None => (a.start, a.end),
            Some((lo, hi)) => (lo.min(a.start), hi.max(a.end)),
        });
    }
    let mut total = 0.0;
    for (slot, span) in plan.slots.iter().zip(&spans) {
        if let Some((lo, hi)) = span {
            total += instance_cost(
                hi - lo,
                spec.billing_quantum,
                spec.price(slot.itype, slot.region),
            );
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FaultModel;
    use deco_cloud::run_plan;
    use deco_workflow::generators;

    fn env() -> (CloudSpec, Workflow, Plan) {
        let spec = CloudSpec::amazon_ec2();
        let wf = generators::pipeline(8, 600.0, 0);
        let plan = Plan::packed(&wf, &vec![0; wf.len()], 0, &spec);
        (spec, wf, plan)
    }

    #[test]
    fn quiescent_injector_matches_plain_run_exactly() {
        let (spec, wf, plan) = env();
        let inj = FaultInjector::new(FaultModel::none(), 1);
        let base = run_plan(&spec, &wf, &plan, 77);
        let faulty = run_with_faults(&spec, &wf, &plan, &inj, RetryConfig::default(), 77);
        assert!(faulty.all_done(&wf));
        assert_eq!(faulty.crashes, 0);
        assert_eq!(base.makespan.to_bits(), faulty.result.makespan.to_bits());
        assert_eq!(
            base.cost.compute.to_bits(),
            faulty.result.cost.compute.to_bits()
        );
        assert_eq!(base.finish, faulty.result.finish);
    }

    #[test]
    fn crashes_are_recovered_and_the_run_completes() {
        let (spec, wf, plan) = env();
        // High rate: mean TTF 30 min against a ~80 min serial pipeline.
        let model = FaultModel::uniform_crash(&spec, 2.0);
        let mut saw_crash = false;
        for fault_seed in 0..6u64 {
            let inj = FaultInjector::new(model.clone(), fault_seed);
            let r = run_with_faults(&spec, &wf, &plan, &inj, RetryConfig::default(), 9);
            saw_crash |= r.crashes > 0;
            if r.abandoned.is_empty() {
                assert!(r.all_done(&wf), "no abandonment => everything ran");
            }
            // The ledger always balances against the attempt trace.
            let audited = audit_compute_cost(&spec, &r.plan, &r.result.attempts);
            assert!(
                (audited - r.result.cost.compute).abs() < 1e-9,
                "ledger drift: audited {audited} vs {}",
                r.result.cost.compute
            );
            assert!(r.retries >= r.crashes.saturating_sub(r.abandoned.len()));
        }
        assert!(saw_crash, "rate 2/h must produce crashes across 6 seeds");
    }

    #[test]
    fn runs_are_deterministic_per_seed_pair() {
        let (spec, wf, plan) = env();
        let model = FaultModel::uniform_crash(&spec, 1.0);
        let inj = FaultInjector::new(model, 5);
        let a = run_with_faults(&spec, &wf, &plan, &inj, RetryConfig::default(), 13);
        let b = run_with_faults(&spec, &wf, &plan, &inj, RetryConfig::default(), 13);
        assert_eq!(a.result.makespan.to_bits(), b.result.makespan.to_bits());
        assert_eq!(a.result.attempts, b.result.attempts);
        assert_eq!(a.crashes, b.crashes);
        assert_eq!(a.plan.slots, b.plan.slots);
    }

    #[test]
    fn exhausted_retries_abandon_but_never_panic() {
        let (spec, wf, plan) = env();
        // Certain boot failure everywhere: nothing can ever run.
        let model = FaultModel {
            unbootable_prob: 1.0,
            ..FaultModel::none()
        };
        let inj = FaultInjector::new(model, 2);
        let r = run_with_faults(
            &spec,
            &wf,
            &plan,
            &inj,
            RetryConfig {
                max_attempts: 2,
                ..RetryConfig::default()
            },
            3,
        );
        assert_eq!(r.result.completed, 0);
        assert!(!r.abandoned.is_empty());
        assert_eq!(r.result.cost.total(), 0.0, "nothing ran, nothing billed");
    }
}
