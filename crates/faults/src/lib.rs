// User-facing paths return typed results; panicking shortcuts are banned
// from library code (tests may still unwrap).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! Deterministic fault injection for the Deco cloud simulator.
//!
//! Production IaaS deployments lose instances — spot revocations, hardware
//! failures, stuck boots, flaky inter-region links — and a provisioning
//! engine is only credible if its plans survive that. This crate layers a
//! *seeded, reproducible* failure model over the discrete-event engine in
//! `deco_cloud::sim` and drives recovery on top of it:
//!
//! * [`FaultModel`] — the rates: per-(type, region) crash rates per
//!   instance-hour (Poisson), spot-style bulk revocation events, boot-time
//!   stragglers / boot failures, and transient inter-region partitions.
//! * [`FaultInjector`] — turns a model plus a `u64` seed into concrete
//!   [`deco_cloud::DisruptionSchedule`]s. Every draw is keyed by a
//!   domain-separated `prob::hash::StableHasher` digest, so schedules are
//!   stable across platforms and Rust releases (the same discipline the
//!   solver uses for Monte-Carlo seeds), and independent of anything's
//!   iteration order.
//! * [`recovery`] — the retry driver: re-dispatches killed and orphaned
//!   tasks onto replacement instances with capped exponential backoff
//!   ([`deco_cloud::RetryConfig`]), gives up per task after a bounded
//!   number of strikes, and optionally consults a
//!   [`deco_cloud::RuntimePolicy`] after each loss so follow-the-cost
//!   replanning triggers on instance loss, not just on performance drift.
//!
//! The subsystem is provably zero-cost when disabled: a quiescent model
//! produces the empty schedule, and the simulator's fault checks are exact
//! no-ops for it — bit-identical makespans, ledgers and traces (pinned by
//! a proptest in the workspace suite).

pub mod model;
pub mod recovery;
pub mod schedule;

pub use model::FaultModel;
pub use recovery::{run_with_faults, run_with_faults_policy, FaultRunResult};
pub use schedule::FaultInjector;
