//! Seeded generation of concrete disruption schedules.
//!
//! Every random draw is keyed by a domain-separated
//! [`StableHasher`](deco_prob::hash::StableHasher) digest of the injector
//! seed: per-slot fates hash `("slot", index)`, bulk-event membership
//! hashes `("bulk-hit", event, slot)`, and the global event streams hash
//! their own domains. Consequences:
//!
//! * schedules are identical across platforms, endiannesses and Rust
//!   releases (no `DefaultHasher`, no map-iteration order anywhere);
//! * a replacement instance provisioned mid-run draws its fate from its
//!   own (fresh, never reused) slot index — independent of when or why it
//!   was provisioned;
//! * changing the seed decorrelates everything at once.

use crate::model::{FaultModel, HOUR};
use deco_cloud::{DisruptionSchedule, Plan, SlotFate};
use deco_prob::hash::StableHasher;
use deco_prob::rng::{open01, seeded, splitmix64};
use deco_prob::DecoRng;
use std::hash::Hasher;

/// Turns a [`FaultModel`] plus a seed into reproducible
/// [`DisruptionSchedule`]s.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    pub model: FaultModel,
    pub seed: u64,
    /// Times of fleet-wide bulk revocation events, pre-generated over the
    /// model horizon (empty when bulk revocation is off).
    bulk_events: Vec<f64>,
}

impl FaultInjector {
    pub fn new(model: FaultModel, seed: u64) -> Self {
        let bulk_events =
            Self::poisson_arrivals(seed, "bulk-events", model.bulk_rate_per_hour, model.horizon);
        FaultInjector {
            model,
            seed,
            bulk_events,
        }
    }

    /// Domain-separated sub-seed: every draw family gets its own stream.
    fn domain_seed(&self, domain: &str, a: u64, b: u64) -> u64 {
        Self::domain_seed_of(self.seed, domain, a, b)
    }

    fn domain_seed_of(seed: u64, domain: &str, a: u64, b: u64) -> u64 {
        let mut h = StableHasher::with_seed(seed);
        h.write(domain.as_bytes());
        h.write_u64(a);
        h.write_u64(b);
        h.finish()
    }

    /// Poisson arrival times with `rate_per_hour` over `[0, horizon)`.
    fn poisson_arrivals(seed: u64, domain: &str, rate_per_hour: f64, horizon: f64) -> Vec<f64> {
        let mut out = Vec::new();
        if rate_per_hour <= 0.0 {
            return out;
        }
        let mut rng = seeded(Self::domain_seed_of(seed, domain, 0, 0));
        let mut t = 0.0;
        loop {
            t += exponential(&mut rng, HOUR / rate_per_hour);
            if t >= horizon {
                return out;
            }
            out.push(t);
        }
    }

    /// Draw the fate of the instance occupying plan slot `slot` (slot
    /// indices are never reused within a run, so the index alone keys the
    /// draw), of the given type/region, acquired at `acquired_at`.
    pub fn slot_fate(
        &self,
        slot: usize,
        itype: usize,
        region: usize,
        acquired_at: f64,
    ) -> SlotFate {
        if self.model.is_quiescent() {
            return SlotFate::HEALTHY;
        }
        let mut rng = seeded(self.domain_seed("slot", slot as u64, 0));
        // Fixed draw order so fates are stable as the model changes shape:
        // boot outcome, straggler delay, then time-to-failure.
        let boot_delay = if open01(&mut rng) < self.model.unbootable_prob {
            f64::INFINITY
        } else if open01(&mut rng) < self.model.straggler_prob {
            acquired_at + exponential(&mut rng, self.model.straggler_mean_delay)
        } else {
            0.0
        };
        let rate = self.model.crash_rate(itype, region);
        let mut crash_at = if rate > 0.0 {
            acquired_at + exponential(&mut rng, HOUR / rate)
        } else {
            f64::INFINITY
        };
        // Bulk revocation: the first fleet-wide event (after acquisition)
        // that deterministically selects this slot.
        if self.model.bulk_fraction > 0.0 {
            for (e, &at) in self.bulk_events.iter().enumerate() {
                if at >= acquired_at
                    && at < crash_at
                    && unit_of(self.domain_seed("bulk-hit", e as u64, slot as u64))
                        < self.model.bulk_fraction
                {
                    crash_at = at;
                    break;
                }
            }
        }
        SlotFate {
            boot_delay,
            crash_at,
        }
    }

    /// The full disruption timeline for an execution of `plan`: one fate
    /// per initial slot (all acquired at time zero) plus the partition
    /// windows. Quiescent models short-circuit to the empty schedule.
    pub fn schedule_for(&self, plan: &Plan) -> DisruptionSchedule {
        let mut sched = DisruptionSchedule::empty();
        if self.model.is_quiescent() {
            return sched;
        }
        for (i, s) in plan.slots.iter().enumerate() {
            let fate = self.slot_fate(i, s.itype, s.region, 0.0);
            if !fate.is_healthy() {
                sched.set_fate(i, fate);
            }
        }
        if self.model.partition_rate_per_hour > 0.0 && self.model.partition_mean_seconds > 0.0 {
            let starts = Self::poisson_arrivals(
                self.seed,
                "partitions",
                self.model.partition_rate_per_hour,
                self.model.horizon,
            );
            let mut rng = seeded(self.domain_seed("partition-len", 0, 0));
            let mut clear_until = 0.0;
            for s in starts {
                let start = s.max(clear_until);
                let end = start + exponential(&mut rng, self.model.partition_mean_seconds);
                sched.push_partition(start, end);
                clear_until = end;
            }
        }
        sched
    }
}

/// Exponential draw with the given mean.
fn exponential(rng: &mut DecoRng, mean: f64) -> f64 {
    assert!(mean > 0.0);
    -open01(rng).ln() * mean
}

/// Map a hash to a uniform value in `[0, 1)`.
fn unit_of(h: u64) -> f64 {
    (splitmix64(h) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_cloud::CloudSpec;
    use deco_workflow::generators;

    fn plan_for(n_types: usize) -> Plan {
        let spec = CloudSpec::amazon_ec2();
        let wf = generators::fork_join(6, 50.0, 0.0);
        Plan::packed(&wf, &vec![n_types % spec.k(); wf.len()], 0, &spec)
    }

    #[test]
    fn quiescent_model_generates_empty_schedule() {
        let inj = FaultInjector::new(FaultModel::none(), 42);
        let sched = inj.schedule_for(&plan_for(0));
        assert!(sched.is_empty());
        assert_eq!(inj.slot_fate(0, 0, 0, 0.0), SlotFate::HEALTHY);
    }

    #[test]
    fn schedules_are_reproducible_per_seed() {
        let spec = CloudSpec::amazon_ec2();
        let model = FaultModel {
            unbootable_prob: 0.05,
            straggler_prob: 0.3,
            straggler_mean_delay: 60.0,
            partition_rate_per_hour: 0.2,
            partition_mean_seconds: 120.0,
            ..FaultModel::uniform_crash(&spec, 0.2)
        };
        let plan = plan_for(1);
        let a = FaultInjector::new(model.clone(), 7).schedule_for(&plan);
        let b = FaultInjector::new(model.clone(), 7).schedule_for(&plan);
        assert_eq!(a, b, "same seed, same schedule");
        let c = FaultInjector::new(model, 8).schedule_for(&plan);
        assert_ne!(a, c, "different seed decorrelates");
    }

    #[test]
    fn crash_times_follow_the_rate() {
        // Mean TTF at 0.5 crashes/instance-hour is 2 h; average many
        // independent slot draws and check the ballpark.
        let spec = CloudSpec::amazon_ec2();
        let inj = FaultInjector::new(FaultModel::uniform_crash(&spec, 0.5), 3);
        let n = 400;
        let mean = (0..n)
            .map(|i| inj.slot_fate(i, 0, 0, 0.0).crash_at)
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - 2.0 * HOUR).abs() < 0.25 * HOUR,
            "mean TTF {mean} far from {}",
            2.0 * HOUR
        );
    }

    #[test]
    fn acquisition_time_shifts_the_fate() {
        let spec = CloudSpec::amazon_ec2();
        let inj = FaultInjector::new(FaultModel::uniform_crash(&spec, 0.5), 4);
        let at0 = inj.slot_fate(9, 0, 0, 0.0);
        let at1k = inj.slot_fate(9, 0, 0, 1000.0);
        assert!((at1k.crash_at - at0.crash_at - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn bulk_events_hit_a_fraction_of_the_fleet() {
        let spec = CloudSpec::amazon_ec2();
        let model = FaultModel {
            bulk_rate_per_hour: 0.5,
            bulk_fraction: 0.4,
            horizon: 10.0 * HOUR,
            ..FaultModel::uniform_crash(&spec, 0.0)
        };
        // The model has no per-instance crashes, so every finite crash_at
        // comes from a bulk event.
        let inj = FaultInjector::new(model, 5);
        assert!(!inj.bulk_events.is_empty());
        let n = 500;
        let hit = (0..n)
            .filter(|&i| inj.slot_fate(i, 0, 0, 0.0).crash_at.is_finite())
            .count();
        assert!(hit > n / 4, "bulk events must revoke instances: {hit}");
        let first = inj.bulk_events[0];
        for i in 0..n {
            let f = inj.slot_fate(i, 0, 0, 0.0);
            if f.crash_at.is_finite() {
                assert!(
                    inj.bulk_events.contains(&f.crash_at),
                    "crash {} must coincide with a bulk event",
                    f.crash_at
                );
                assert!(f.crash_at >= first);
            }
        }
    }

    #[test]
    fn partitions_are_sorted_and_disjoint() {
        let spec = CloudSpec::amazon_ec2();
        let model = FaultModel {
            partition_rate_per_hour: 2.0,
            partition_mean_seconds: 300.0,
            horizon: 20.0 * HOUR,
            ..FaultModel::uniform_crash(&spec, 0.0)
        };
        let sched = FaultInjector::new(model, 6).schedule_for(&plan_for(2));
        let w = sched.partitions();
        assert!(!w.is_empty());
        for pair in w.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "windows must not overlap");
        }
    }
}
