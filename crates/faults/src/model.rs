//! The fault taxonomy and its rates.

use deco_cloud::{CloudSpec, MetadataStore};
use serde::{Deserialize, Serialize};

/// Hours → seconds.
pub const HOUR: f64 = 3600.0;

/// Rates for every supported failure mode. All rates default to zero; a
/// zero-rate model is *quiescent* and generates empty schedules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Independent crash rate per instance-hour, `crash_rates[itype][region]`
    /// (a Poisson process per instance: time-to-failure is exponential
    /// with this rate). Missing entries mean zero.
    pub crash_rates: Vec<Vec<f64>>,
    /// Probability an acquired instance never becomes usable at all.
    pub unbootable_prob: f64,
    /// Probability an instance boots late (a boot-time straggler).
    pub straggler_prob: f64,
    /// Mean extra boot delay of a straggler, seconds (exponential).
    pub straggler_mean_delay: f64,
    /// Rate of fleet-wide bulk revocation events per hour (spot-market
    /// reclaims hit many instances at once).
    pub bulk_rate_per_hour: f64,
    /// Fraction of the fleet each bulk event revokes.
    pub bulk_fraction: f64,
    /// Rate of transient inter-region partitions per hour.
    pub partition_rate_per_hour: f64,
    /// Mean partition duration, seconds (exponential).
    pub partition_mean_seconds: f64,
    /// How far into simulated time global event streams (bulk revocations,
    /// partitions) are pre-generated, seconds.
    pub horizon: f64,
}

impl FaultModel {
    /// The fault-free model.
    pub fn none() -> Self {
        FaultModel {
            crash_rates: Vec::new(),
            unbootable_prob: 0.0,
            straggler_prob: 0.0,
            straggler_mean_delay: 0.0,
            bulk_rate_per_hour: 0.0,
            bulk_fraction: 0.0,
            partition_rate_per_hour: 0.0,
            partition_mean_seconds: 0.0,
            horizon: 7.0 * 24.0 * HOUR,
        }
    }

    /// A uniform crash rate per instance-hour across every type and
    /// region of `spec`; every other mode off.
    pub fn uniform_crash(spec: &CloudSpec, rate: f64) -> Self {
        assert!(rate >= 0.0);
        FaultModel {
            crash_rates: vec![vec![rate; spec.regions.len()]; spec.types.len()],
            ..FaultModel::none()
        }
    }

    /// Build the crash-rate table from the metadata store's
    /// `fail_rate(type, region)` facts — the same information surface
    /// `import(cloud)` exposes to WLog programs.
    pub fn from_store(store: &MetadataStore) -> Self {
        let spec = &store.spec;
        let crash_rates = (0..spec.types.len())
            .map(|i| {
                (0..spec.regions.len())
                    .map(|r| store.fail_rate(i, r))
                    .collect()
            })
            .collect();
        FaultModel {
            crash_rates,
            ..FaultModel::none()
        }
    }

    /// Crash rate per instance-hour for one type in one region (zero when
    /// the table has no entry).
    pub fn crash_rate(&self, itype: usize, region: usize) -> f64 {
        self.crash_rates
            .get(itype)
            .and_then(|row| row.get(region))
            .copied()
            .unwrap_or(0.0)
    }

    /// True when no failure mode can ever fire — the injector's fast path
    /// to the empty schedule.
    pub fn is_quiescent(&self) -> bool {
        self.crash_rates.iter().flatten().all(|&r| r == 0.0)
            && self.unbootable_prob == 0.0
            && self.straggler_prob == 0.0
            && (self.bulk_rate_per_hour == 0.0 || self.bulk_fraction == 0.0)
            && self.partition_rate_per_hour == 0.0
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_quiescent() {
        assert!(FaultModel::none().is_quiescent());
    }

    #[test]
    fn uniform_crash_is_not_quiescent() {
        let spec = CloudSpec::amazon_ec2();
        let m = FaultModel::uniform_crash(&spec, 0.05);
        assert!(!m.is_quiescent());
        assert_eq!(m.crash_rate(0, 0), 0.05);
        assert_eq!(m.crash_rate(3, 1), 0.05);
        assert_eq!(m.crash_rate(99, 0), 0.0, "out-of-table is reliable");
    }

    #[test]
    fn from_store_reads_fail_rate_facts() {
        let spec = CloudSpec::amazon_ec2();
        let mut store = MetadataStore::from_ground_truth(spec, 12);
        store.set_fail_rate(2, 1, 0.1);
        let m = FaultModel::from_store(&store);
        assert_eq!(m.crash_rate(2, 1), 0.1);
        assert_eq!(m.crash_rate(2, 0), 0.0);
        assert!(!m.is_quiescent());
        assert!(FaultModel::from_store(&MetadataStore::from_ground_truth(
            CloudSpec::amazon_ec2(),
            12
        ))
        .is_quiescent());
    }

    #[test]
    fn bulk_without_fraction_is_quiescent() {
        let m = FaultModel {
            bulk_rate_per_hour: 1.0,
            bulk_fraction: 0.0,
            ..FaultModel::none()
        };
        assert!(m.is_quiescent());
    }
}
