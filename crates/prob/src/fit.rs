//! Parameter recovery and goodness-of-fit testing.
//!
//! The paper's calibration pipeline measures 10,000 samples per instance
//! type, fits Gamma parameters to sequential I/O and Normal parameters to
//! random I/O / network bandwidth (Table 2), and verifies the network
//! normality claim "with null hypothesis" (Figure 6b). We reproduce both
//! steps: moment-matching fits plus a Pearson chi-square goodness-of-fit
//! test.

use crate::dist::{Dist, Gamma, Normal};
use crate::math::chi_square_sf;
use crate::stats;

/// Fit a Normal by moment matching (which is also the MLE for a Normal).
pub fn fit_normal(samples: &[f64]) -> Normal {
    assert!(samples.len() >= 2, "need at least two samples to fit");
    Normal::new(stats::mean(samples), stats::std_dev(samples))
}

/// Fit a Gamma(k, theta) by moment matching:
/// `k = mean^2 / var`, `theta = var / mean`.
pub fn fit_gamma(samples: &[f64]) -> Gamma {
    assert!(samples.len() >= 2, "need at least two samples to fit");
    let m = stats::mean(samples);
    let v = stats::variance(samples);
    assert!(
        m > 0.0 && v > 0.0,
        "gamma fit needs positive mean and variance"
    );
    Gamma::new(m * m / v, v / m)
}

/// Result of a chi-square goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GofTest {
    /// Pearson statistic.
    pub statistic: f64,
    /// Degrees of freedom (bins - 1 - params_estimated).
    pub dof: usize,
    /// Survival-function p-value; the null (samples come from the
    /// distribution) is rejected when this falls below the significance
    /// level.
    pub p_value: f64,
}

impl GofTest {
    /// Whether the null hypothesis is retained at significance `alpha`.
    pub fn accepts(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// Pearson chi-square test of `samples` against `dist`.
///
/// Bins are chosen equiprobable under the fitted distribution (so expected
/// counts are equal), the textbook construction. `params_estimated` reduces
/// the degrees of freedom (2 for a fitted Normal or Gamma).
pub fn chi_square_gof(
    samples: &[f64],
    dist: &dyn Dist,
    bins: usize,
    params_estimated: usize,
) -> GofTest {
    assert!(bins >= 3, "need at least 3 bins");
    assert!(
        samples.len() >= 5 * bins,
        "need >= 5 expected counts per bin ({} samples for {} bins)",
        samples.len(),
        bins
    );
    // Equiprobable bin edges from the distribution's quantiles, located by
    // bisection on the CDF (works for any Dist with a CDF).
    let mut edges = Vec::with_capacity(bins - 1);
    let (mut search_lo, mut search_hi) = (
        dist.mean() - 12.0 * dist.std_dev() - 1.0,
        dist.mean() + 12.0 * dist.std_dev() + 1.0,
    );
    // Widen until the CDF brackets (defensive for heavy tails).
    while dist.cdf(search_lo) > 1e-9 {
        search_lo -= 10.0 * dist.std_dev().max(1.0);
    }
    while dist.cdf(search_hi) < 1.0 - 1e-9 {
        search_hi += 10.0 * dist.std_dev().max(1.0);
    }
    for i in 1..bins {
        let target = i as f64 / bins as f64;
        let (mut lo, mut hi) = (search_lo, search_hi);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if dist.cdf(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        edges.push(0.5 * (lo + hi));
    }
    let mut counts = vec![0usize; bins];
    for &x in samples {
        let idx = edges.partition_point(|&e| e < x);
        counts[idx] += 1;
    }
    let expected = samples.len() as f64 / bins as f64;
    let statistic: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    let dof = bins - 1 - params_estimated;
    GofTest {
        statistic,
        dof,
        p_value: chi_square_sf(statistic, dof),
    }
}

/// Convenience: fit a Normal and test the samples against it — the
/// "verified with null hypothesis ... can be modeled with a normal
/// distribution" step of Figure 6b.
pub fn normality_test(samples: &[f64], bins: usize) -> (Normal, GofTest) {
    let n = fit_normal(samples);
    let t = chi_square_gof(samples, &n, bins, 2);
    (n, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Dist;
    use crate::rng::seeded;

    fn draw(d: &dyn Dist, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn normal_fit_recovers_parameters() {
        let truth = Normal::new(128.9, 8.4); // Table 2: m1.medium random I/O
        let samples = draw(&truth, 10_000, 11);
        let fitted = fit_normal(&samples);
        assert!((fitted.mu - truth.mu).abs() < 0.5);
        assert!((fitted.sigma - truth.sigma).abs() < 0.3);
    }

    #[test]
    fn gamma_fit_recovers_parameters() {
        let truth = Gamma::new(129.3, 0.79); // Table 2: m1.small sequential I/O
        let samples = draw(&truth, 10_000, 12);
        let fitted = fit_gamma(&samples);
        assert!(
            (fitted.k - truth.k).abs() / truth.k < 0.08,
            "k {} vs {}",
            fitted.k,
            truth.k
        );
        assert!((fitted.theta - truth.theta).abs() / truth.theta < 0.08);
    }

    #[test]
    fn chi_square_accepts_true_model() {
        let truth = Normal::new(0.0, 1.0);
        let samples = draw(&truth, 5000, 13);
        let t = chi_square_gof(&samples, &truth, 20, 0);
        assert!(
            t.accepts(0.01),
            "p-value {} too small for true model",
            t.p_value
        );
    }

    #[test]
    fn chi_square_rejects_wrong_model() {
        // Exponential data tested against a Normal with the same moments
        // must be rejected decisively.
        let truth = crate::dist::Exponential::new(1.0);
        let samples = draw(&truth, 5000, 14);
        let wrong = fit_normal(&samples);
        let t = chi_square_gof(&samples, &wrong, 20, 2);
        assert!(!t.accepts(0.01), "p-value {} should reject", t.p_value);
    }

    #[test]
    fn normality_test_on_network_like_data() {
        // Figure 6b: m1.medium network bandwidth is Normal.
        let truth = Normal::new(100.0, 12.0);
        let samples = draw(&truth, 10_000, 15);
        let (fitted, t) = normality_test(&samples, 25);
        assert!(t.accepts(0.01));
        assert!((fitted.mu - 100.0).abs() < 1.0);
    }

    #[test]
    fn gamma_gof_accepts_gamma_data() {
        let truth = Gamma::new(376.6, 0.28); // Table 2: m1.large sequential I/O
        let samples = draw(&truth, 5000, 16);
        let fitted = fit_gamma(&samples);
        let t = chi_square_gof(&samples, &fitted, 15, 2);
        assert!(t.accepts(0.01), "p-value {}", t.p_value);
    }

    #[test]
    #[should_panic]
    fn fit_rejects_tiny_samples() {
        fit_normal(&[1.0]);
    }

    #[test]
    #[should_panic]
    fn gof_requires_enough_samples() {
        let d = Normal::new(0.0, 1.0);
        chi_square_gof(&[0.0; 10], &d, 10, 0);
    }
}
