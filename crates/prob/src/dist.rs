//! Parametric distributions with exact moments and own samplers.
//!
//! The paper's calibration found (Table 2) that sequential I/O follows a
//! Gamma distribution and random I/O / network bandwidth follow Normal
//! distributions. The cloud substrate instantiates these laws; the solver
//! only ever sees their discretized histograms.

use crate::math::{std_normal_cdf, std_normal_inv_cdf};
use crate::rng::open01;
use rand::Rng;

/// A real-valued probability distribution that can be sampled and exposes
/// its exact first two moments.
pub trait Dist: Send + Sync + std::fmt::Debug {
    /// Draw one sample.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64;
    /// Exact mean.
    fn mean(&self) -> f64;
    /// Exact variance.
    fn variance(&self) -> f64;
    /// Cumulative distribution function, where tractable.
    fn cdf(&self, x: f64) -> f64;
    /// Standard deviation (derived).
    fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Degenerate distribution: always `value`. Used for deterministic
/// translation of WLog programs (probability 1.0 rules, Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant {
    pub value: f64,
}

impl Constant {
    pub fn new(value: f64) -> Self {
        Self { value }
    }
}

impl Dist for Constant {
    fn sample(&self, _rng: &mut dyn rand::RngCore) -> f64 {
        self.value
    }
    fn mean(&self) -> f64 {
        self.value
    }
    fn variance(&self) -> f64 {
        0.0
    }
    fn cdf(&self, x: f64) -> f64 {
        if x >= self.value {
            1.0
        } else {
            0.0
        }
    }
}

/// Normal distribution N(mu, sigma^2), sampled with Box–Muller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    pub mu: f64,
    pub sigma: f64,
}

impl Normal {
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative, got {sigma}");
        Self { mu, sigma }
    }

    /// Standard-normal draw via Box–Muller (one of the pair is discarded;
    /// throughput is not the bottleneck and the code stays stateless).
    pub fn std_sample(rng: &mut dyn rand::RngCore) -> f64 {
        let u1 = open01(&mut *rng);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Quantile function.
    pub fn inv_cdf(&self, p: f64) -> f64 {
        self.mu + self.sigma * std_normal_inv_cdf(p)
    }
}

impl Dist for Normal {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        self.mu + self.sigma * Self::std_sample(rng)
    }
    fn mean(&self) -> f64 {
        self.mu
    }
    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }
    fn cdf(&self, x: f64) -> f64 {
        if self.sigma == 0.0 {
            return if x >= self.mu { 1.0 } else { 0.0 };
        }
        std_normal_cdf((x - self.mu) / self.sigma)
    }
}

/// Normal distribution truncated to `[lo, inf)`, used for bandwidths and
/// rates that must stay positive. Sampling is by rejection (the truncation
/// points used in the cloud model keep acceptance high).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    pub inner: Normal,
    pub lo: f64,
}

impl TruncatedNormal {
    pub fn new(mu: f64, sigma: f64, lo: f64) -> Self {
        assert!(
            lo < mu + 8.0 * sigma.max(1e-12),
            "truncation point too far into the upper tail"
        );
        Self {
            inner: Normal::new(mu, sigma),
            lo,
        }
    }

    /// Probability mass retained after truncation.
    fn alpha(&self) -> f64 {
        1.0 - self.inner.cdf(self.lo)
    }
}

impl Dist for TruncatedNormal {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        // Rejection sampling; falls back to the truncation point if the
        // acceptance region is vanishingly small.
        for _ in 0..10_000 {
            let x = self.inner.sample(rng);
            if x >= self.lo {
                return x;
            }
        }
        self.lo
    }
    fn mean(&self) -> f64 {
        // E[X | X >= lo] = mu + sigma * phi(a) / alpha, a = (lo-mu)/sigma.
        let (mu, sigma) = (self.inner.mu, self.inner.sigma);
        if sigma == 0.0 {
            return mu.max(self.lo);
        }
        let a = (self.lo - mu) / sigma;
        let phi = (-0.5 * a * a).exp() / (2.0 * std::f64::consts::PI).sqrt();
        mu + sigma * phi / self.alpha()
    }
    fn variance(&self) -> f64 {
        let (mu, sigma) = (self.inner.mu, self.inner.sigma);
        if sigma == 0.0 {
            return 0.0;
        }
        let a = (self.lo - mu) / sigma;
        let phi = (-0.5 * a * a).exp() / (2.0 * std::f64::consts::PI).sqrt();
        let alpha = self.alpha();
        let lam = phi / alpha;
        sigma * sigma * (1.0 + a * lam - lam * lam)
    }
    fn cdf(&self, x: f64) -> f64 {
        if x < self.lo {
            return 0.0;
        }
        ((self.inner.cdf(x) - self.inner.cdf(self.lo)) / self.alpha()).clamp(0.0, 1.0)
    }
}

/// Gamma distribution with shape `k` and scale `theta` (the parameterization
/// Table 2 of the paper uses), sampled with Marsaglia–Tsang.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    pub k: f64,
    pub theta: f64,
}

impl Gamma {
    pub fn new(k: f64, theta: f64) -> Self {
        assert!(k > 0.0 && theta > 0.0, "gamma parameters must be positive");
        Self { k, theta }
    }

    fn sample_std(shape: f64, rng: &mut dyn rand::RngCore) -> f64 {
        if shape < 1.0 {
            // Boost: X = Gamma(shape+1) * U^(1/shape).
            let u = open01(&mut *rng);
            return Self::sample_std(shape + 1.0, rng) * u.powf(1.0 / shape);
        }
        // Marsaglia & Tsang (2000).
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = Normal::std_sample(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v = v * v * v;
            let u = open01(&mut *rng);
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Dist for Gamma {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        Self::sample_std(self.k, rng) * self.theta
    }
    fn mean(&self) -> f64 {
        self.k * self.theta
    }
    fn variance(&self) -> f64 {
        self.k * self.theta * self.theta
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            crate::math::gamma_p(self.k, x / self.theta)
        }
    }
}

/// Continuous uniform on `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    pub lo: f64,
    pub hi: f64,
}

impl Uniform {
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "uniform bounds out of order: {lo} > {hi}");
        Self { lo, hi }
    }
}

impl Dist for Uniform {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = rng.gen();
        self.lo + u * (self.hi - self.lo)
    }
    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
    fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }
    fn cdf(&self, x: f64) -> f64 {
        if self.hi == self.lo {
            return if x >= self.lo { 1.0 } else { 0.0 };
        }
        ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }
}

/// Exponential with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    pub lambda: f64,
}

impl Exponential {
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "rate must be positive");
        Self { lambda }
    }
}

impl Dist for Exponential {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        -open01(&mut *rng).ln() / self.lambda
    }
    fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
    fn variance(&self) -> f64 {
        1.0 / (self.lambda * self.lambda)
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.lambda * x).exp()
        }
    }
}

/// Pareto (Type I) with scale `xm` and shape `alpha`. The paper's ensemble
/// experiments use Pareto-distributed workflow sizes ("Pareto sorted" /
/// "Pareto unsorted" ensembles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    pub xm: f64,
    pub alpha: f64,
}

impl Pareto {
    pub fn new(xm: f64, alpha: f64) -> Self {
        assert!(
            xm > 0.0 && alpha > 0.0,
            "pareto parameters must be positive"
        );
        Self { xm, alpha }
    }
}

impl Dist for Pareto {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        self.xm / open01(&mut *rng).powf(1.0 / self.alpha)
    }
    fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.xm / (self.alpha - 1.0)
        }
    }
    fn variance(&self) -> f64 {
        if self.alpha <= 2.0 {
            f64::INFINITY
        } else {
            let a = self.alpha;
            self.xm * self.xm * a / ((a - 1.0) * (a - 1.0) * (a - 2.0))
        }
    }
    fn cdf(&self, x: f64) -> f64 {
        if x < self.xm {
            0.0
        } else {
            1.0 - (self.xm / x).powf(self.alpha)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use crate::stats;

    /// Draw n samples and check the empirical mean/variance against the
    /// analytic moments within a tolerance scaled to the standard error.
    fn check_moments(d: &dyn Dist, n: usize, seed: u64) {
        let mut rng = seeded(seed);
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let m = stats::mean(&xs);
        let v = stats::variance(&xs);
        let se_mean = (d.variance() / n as f64).sqrt();
        assert!(
            (m - d.mean()).abs() < 6.0 * se_mean + 1e-9,
            "mean {m} vs {}",
            d.mean()
        );
        assert!(
            (v - d.variance()).abs() < 0.15 * d.variance() + 1e-9,
            "variance {v} vs {}",
            d.variance()
        );
    }

    #[test]
    fn constant_is_constant() {
        let d = Constant::new(3.5);
        let mut rng = seeded(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
        assert_eq!(d.mean(), 3.5);
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.cdf(3.4), 0.0);
        assert_eq!(d.cdf(3.5), 1.0);
    }

    #[test]
    fn normal_moments() {
        check_moments(&Normal::new(150.3, 50.0), 40_000, 2);
    }

    #[test]
    fn normal_cdf_median() {
        let d = Normal::new(10.0, 2.0);
        assert!((d.cdf(10.0) - 0.5).abs() < 1e-7);
        assert!((d.inv_cdf(0.5) - 10.0).abs() < 1e-7);
    }

    #[test]
    fn gamma_moments_table2_params() {
        // Table 2 row for m1.small sequential I/O: k=129.3, theta=0.79.
        check_moments(&Gamma::new(129.3, 0.79), 40_000, 3);
        // Low-shape branch.
        check_moments(&Gamma::new(0.5, 2.0), 60_000, 4);
    }

    #[test]
    fn gamma_cdf_matches_exponential_special_case() {
        // Gamma(1, theta) is Exponential(1/theta).
        let g = Gamma::new(1.0, 2.0);
        let e = Exponential::new(0.5);
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            assert!((g.cdf(x) - e.cdf(x)).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_moments() {
        check_moments(&Uniform::new(2.0, 8.0), 20_000, 5);
    }

    #[test]
    fn exponential_moments() {
        check_moments(&Exponential::new(0.25), 40_000, 6);
    }

    #[test]
    fn pareto_moments_finite_case() {
        check_moments(&Pareto::new(1.0, 4.0), 80_000, 7);
    }

    #[test]
    fn pareto_support() {
        let d = Pareto::new(2.0, 1.5);
        let mut rng = seeded(8);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 2.0);
        }
        assert_eq!(d.cdf(1.9), 0.0);
    }

    #[test]
    fn truncated_normal_respects_bound() {
        let d = TruncatedNormal::new(5.0, 3.0, 1.0);
        let mut rng = seeded(9);
        for _ in 0..2000 {
            assert!(d.sample(&mut rng) >= 1.0);
        }
        assert!(d.mean() > 5.0, "truncation from below raises the mean");
        check_moments(&d, 40_000, 10);
    }

    #[test]
    fn truncated_normal_cdf_is_zero_below_bound() {
        let d = TruncatedNormal::new(5.0, 3.0, 1.0);
        assert_eq!(d.cdf(0.5), 0.0);
        assert!((d.cdf(1e9) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn gamma_rejects_bad_params() {
        Gamma::new(-1.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn uniform_rejects_reversed_bounds() {
        Uniform::new(3.0, 2.0);
    }
}
