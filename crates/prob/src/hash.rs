//! A stable, explicitly-specified `Hasher`.
//!
//! `std::collections::hash_map::DefaultHasher` makes no cross-release
//! stability promise, and the solver derives every state's Monte-Carlo
//! seed from a state hash — so a toolchain upgrade could silently change
//! each search verdict. [`StableHasher`] fixes the algorithm forever:
//! FNV-1a over a byte stream with all integer writes little-endian, and a
//! SplitMix64 finalizer for avalanche. Deterministic across platforms,
//! endiannesses and Rust releases.

use crate::rng::splitmix64;
use std::hash::Hasher;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a with little-endian integer writes and a SplitMix64 finish.
///
/// The default `Hasher` integer methods forward to `write` with *native*
/// endianness, which would make hashes differ across platforms; every
/// integer method is therefore overridden to canonicalize to
/// little-endian bytes first.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// A hasher whose stream is domain-separated by `seed`.
    pub fn with_seed(seed: u64) -> Self {
        let mut h = StableHasher::new();
        h.write_u64(seed);
        h
    }

    /// Feed an `f64` canonically: `-0.0` collapses onto `+0.0` and every
    /// NaN payload onto one canonical NaN, so semantically equal inputs
    /// hash equally (content-addressed cache keys hash deadlines, prices
    /// and byte counts through this).
    pub fn write_f64(&mut self, v: f64) {
        let bits = if v == 0.0 {
            0u64
        } else if v.is_nan() {
            f64::NAN.to_bits()
        } else {
            v.to_bits()
        };
        self.write_u64(bits);
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        splitmix64(self.state)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }
    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }
    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }
    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }
    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }
    fn write_usize(&mut self, i: usize) {
        // usize width varies by platform; canonicalize to 64 bits.
        self.write_u64(i as u64);
    }
    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }
    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }
    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }
    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }
    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }
    fn write_isize(&mut self, i: isize) {
        self.write_u64(i as u64);
    }
}

/// Hash a value with the stable algorithm (convenience wrapper).
pub fn stable_hash_of<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = StableHasher::new();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answers_never_change() {
        // Golden values: if these move, every recorded search verdict and
        // benchmark baseline in the repository silently shifts. Do not
        // update them to make a refactor pass.
        assert_eq!(stable_hash_of(&0u64), 0x5ba3_14b8_cfda_3b6b);
        assert_eq!(stable_hash_of(&vec![1usize, 2, 3]), 0x1106_7c64_fda1_2a9e);
        assert_eq!(stable_hash_of(&"deco"), 0xbc12_0399_73a6_3fdb);
    }

    #[test]
    fn distinguishes_states_and_orders() {
        assert_ne!(
            stable_hash_of(&vec![1u32, 2]),
            stable_hash_of(&vec![2u32, 1])
        );
        assert_ne!(stable_hash_of(&(1u8, 2u8)), stable_hash_of(&(2u8, 1u8)));
        assert_eq!(stable_hash_of(&vec![7i64]), stable_hash_of(&vec![7i64]));
    }

    #[test]
    fn f64_writes_are_canonical() {
        let h = |v: f64| {
            let mut h = StableHasher::new();
            h.write_f64(v);
            h.finish()
        };
        assert_eq!(h(0.0), h(-0.0));
        assert_eq!(h(f64::NAN), h(-f64::NAN));
        assert_ne!(h(1.0), h(2.0));
        assert_eq!(h(3.5), h(3.5));
    }

    #[test]
    fn seeded_hashers_are_domain_separated() {
        let mut a = StableHasher::with_seed(1);
        let mut b = StableHasher::with_seed(2);
        Hasher::write_u64(&mut a, 99);
        Hasher::write_u64(&mut b, 99);
        assert_ne!(a.finish(), b.finish());
    }
}
