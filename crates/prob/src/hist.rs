//! Discretized probability distributions ("histograms").
//!
//! The paper stores each dynamic performance component (I/O, network) as a
//! discretized histogram in the metadata store (Section 4.2), and the
//! probabilistic IR expands a task's execution time into one weighted fact
//! per histogram bin: `p_j : exetime(Tid, Vid, T_j)` (Section 5.1). This
//! module is that representation: a regular grid of bins with a probability
//! mass per bin, supporting sampling, moments, percentiles, convolution
//! (for summing times along a path) and monotone mapping (for converting a
//! bandwidth distribution into a transfer-time distribution).

use crate::dist::Dist;
use rand::Rng;

/// A probability distribution discretized on a regular grid.
///
/// Mass `probs[i]` sits at the *center* of bin `i`, which spans
/// `[lo + i*width, lo + (i+1)*width)`. All operations treat the histogram as
/// the discrete distribution over bin centers, matching the paper's
/// bin-expansion of `exetime` facts.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    width: f64,
    probs: Vec<f64>,
}

impl Histogram {
    /// Build from explicit bin geometry and (possibly unnormalized)
    /// non-negative masses.
    pub fn new(lo: f64, width: f64, masses: Vec<f64>) -> Self {
        assert!(width > 0.0, "bin width must be positive");
        assert!(!masses.is_empty(), "histogram needs at least one bin");
        assert!(
            masses.iter().all(|&m| m >= 0.0 && m.is_finite()),
            "masses must be finite and non-negative"
        );
        let total: f64 = masses.iter().sum();
        assert!(total > 0.0, "histogram must carry positive total mass");
        let probs = masses.into_iter().map(|m| m / total).collect();
        Self { lo, width, probs }
    }

    /// A histogram carrying all mass at a single value (the deterministic
    /// case: probability-1.0 rules in the IR translation).
    pub fn constant(value: f64) -> Self {
        Self {
            lo: value - 0.5e-9,
            width: 1e-9,
            probs: vec![1.0],
        }
    }

    /// Discretize raw samples into `bins` equal-width bins spanning the
    /// sample range. This is what the calibration micro-benchmarks do with
    /// their measurements before storing them in the metadata store.
    pub fn from_samples(samples: &[f64], bins: usize) -> Self {
        assert!(
            !samples.is_empty(),
            "cannot build a histogram from no samples"
        );
        assert!(bins > 0);
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if hi <= lo {
            return Self::constant(lo);
        }
        let width = (hi - lo) / bins as f64;
        let mut masses = vec![0.0; bins];
        for &x in samples {
            let mut idx = ((x - lo) / width) as usize;
            if idx >= bins {
                idx = bins - 1; // x == hi lands in the last bin
            }
            masses[idx] += 1.0;
        }
        Self::new(lo, width, masses)
    }

    /// Discretize a parametric distribution over `mean ± span_sigmas·sigma`
    /// (clipped below at `floor` when given), using the CDF for exact bin
    /// masses.
    pub fn from_dist(d: &dyn Dist, bins: usize, span_sigmas: f64, floor: Option<f64>) -> Self {
        assert!(bins > 0 && span_sigmas > 0.0);
        let sigma = d.std_dev();
        if sigma == 0.0 {
            return Self::constant(d.mean());
        }
        let mut lo = d.mean() - span_sigmas * sigma;
        if let Some(f) = floor {
            lo = lo.max(f);
        }
        let hi = d.mean() + span_sigmas * sigma;
        let width = (hi - lo) / bins as f64;
        let mut masses = Vec::with_capacity(bins);
        let mut prev_cdf = d.cdf(lo);
        for i in 1..=bins {
            let edge = lo + i as f64 * width;
            let c = d.cdf(edge);
            masses.push((c - prev_cdf).max(0.0));
            prev_cdf = c;
        }
        // Mass outside the span is folded into the edge bins so the
        // histogram stays a proper distribution.
        masses[0] += d.cdf(lo);
        let last = masses.len() - 1;
        masses[last] += 1.0 - prev_cdf;
        Self::new(lo, width, masses)
    }

    /// Build from weighted points, re-binned onto `bins` equal-width bins.
    /// Used by convolution and by arbitrary mappings.
    pub fn from_weighted_points(points: &[(f64, f64)], bins: usize) -> Self {
        assert!(!points.is_empty());
        assert!(bins > 0);
        let lo = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let hi = points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        if hi <= lo {
            return Self::constant(lo);
        }
        let width = (hi - lo) / bins as f64;
        let mut masses = vec![0.0; bins];
        for &(x, w) in points {
            assert!(w >= 0.0, "negative weight");
            let mut idx = ((x - lo) / width) as usize;
            if idx >= bins {
                idx = bins - 1;
            }
            masses[idx] += w;
        }
        Self::new(lo, width, masses)
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.probs.len()
    }

    /// Center value of bin `i`.
    pub fn center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.width
    }

    /// Probability mass of bin `i`.
    pub fn prob(&self, i: usize) -> f64 {
        self.probs[i]
    }

    /// Iterate `(center, mass)` pairs — the `p_j : exetime(..., T_j)` facts
    /// of the probabilistic IR.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.probs
            .iter()
            .enumerate()
            .map(|(i, &p)| (self.center(i), p))
    }

    /// Support bounds `[lo, hi]`.
    pub fn support(&self) -> (f64, f64) {
        (self.lo, self.lo + self.width * self.probs.len() as f64)
    }

    /// Mean of the discretized distribution.
    pub fn mean(&self) -> f64 {
        self.points().map(|(x, p)| x * p).sum()
    }

    /// Variance of the discretized distribution.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.points().map(|(x, p)| p * (x - m) * (x - m)).sum()
    }

    /// CDF evaluated at `x`, treating mass as concentrated at bin centers.
    pub fn cdf(&self, x: f64) -> f64 {
        self.points()
            .take_while(|&(c, _)| c <= x)
            .map(|(_, p)| p)
            .sum::<f64>()
            .min(1.0)
    }

    /// The `q`-quantile (q in [0,1]): smallest bin center whose cumulative
    /// mass reaches `q`. This is the paper's "p-th percentile of the
    /// distribution" used in probabilistic deadline checks.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile level out of range: {q}");
        let mut acc = 0.0;
        for (x, p) in self.points() {
            acc += p;
            if acc >= q - 1e-12 {
                return x;
            }
        }
        self.center(self.probs.len() - 1)
    }

    /// Sample a bin center proportionally to bin mass.
    pub fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (x, p) in self.points() {
            acc += p;
            if u <= acc {
                return x;
            }
        }
        self.center(self.probs.len() - 1)
    }

    /// Sample the *bin index* (used by the Monte-Carlo realizations of the
    /// probabilistic IR, which need to know which alternative fired).
    pub fn sample_bin(&self, rng: &mut dyn rand::RngCore) -> usize {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, &p) in self.probs.iter().enumerate() {
            acc += p;
            if u <= acc {
                return i;
            }
        }
        self.probs.len() - 1
    }

    /// Distribution of `X + Y` for independent X (self) and Y (other),
    /// re-binned to `max(self.bins, other.bins)` bins.
    pub fn convolve(&self, other: &Histogram) -> Histogram {
        let bins = self.bins().max(other.bins());
        let mut points = Vec::with_capacity(self.bins() * other.bins());
        for (x, px) in self.points() {
            for (y, py) in other.points() {
                points.push((x + y, px * py));
            }
        }
        Histogram::from_weighted_points(&points, bins)
    }

    /// Distribution of `max(X, Y)` for independent X, Y — the join rule for
    /// parallel branches when upper-bounding a DAG makespan.
    pub fn max_with(&self, other: &Histogram) -> Histogram {
        let bins = self.bins().max(other.bins());
        let mut points = Vec::with_capacity(self.bins() * other.bins());
        for (x, px) in self.points() {
            for (y, py) in other.points() {
                points.push((x.max(y), px * py));
            }
        }
        Histogram::from_weighted_points(&points, bins)
    }

    /// Distribution of `c·X + b`. `c` must be non-zero; a negative `c`
    /// reverses the support.
    pub fn affine(&self, c: f64, b: f64) -> Histogram {
        assert!(c != 0.0, "degenerate affine map");
        let points: Vec<(f64, f64)> = self.points().map(|(x, p)| (c * x + b, p)).collect();
        Histogram::from_weighted_points(&points, self.bins())
    }

    /// Distribution of `f(X)` for a (not necessarily monotone) map; masses
    /// are pushed through point-wise and re-binned.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Histogram {
        let points: Vec<(f64, f64)> = self.points().map(|(x, p)| (f(x), p)).collect();
        Histogram::from_weighted_points(&points, self.bins())
    }

    /// Reduce the resolution to at most `bins` bins (keeps MC realizations
    /// and convolutions tractable for 1000-task workflows).
    pub fn rebin(&self, bins: usize) -> Histogram {
        if self.bins() <= bins {
            return self.clone();
        }
        let points: Vec<(f64, f64)> = self.points().collect();
        Histogram::from_weighted_points(&points, bins)
    }

    /// Precompute a [`BinSampler`] for this histogram — the fast path for
    /// Monte-Carlo loops that draw from the same histogram many times.
    pub fn sampler(&self) -> BinSampler {
        BinSampler {
            cdf: CdfSampler::from_probs(self.probs.iter().copied()),
            lo: self.lo,
            width: self.width,
        }
    }
}

/// Precomputed cumulative-distribution sampler over a discrete set of
/// weights: one uniform draw plus a binary search per sample, no `dyn`
/// dispatch.
///
/// The cumulative array is built with the same left-to-right additions as
/// the linear scans in [`Histogram::sample`] and the probabilistic IR's
/// annotated-disjunction sampling, and `index_for` returns the first index
/// whose cumulative mass reaches `u` — so for any given `u` this sampler
/// selects *bit-for-bit* the same alternative as the O(n) scan it
/// replaces. That equivalence is what lets the compiled Monte-Carlo
/// evaluator reproduce the reference evaluator realization-for-realization
/// under the same seed.
#[derive(Debug, Clone, PartialEq)]
pub struct CdfSampler {
    /// Inclusive prefix sums of the (normalized) weights.
    cum: Vec<f64>,
}

impl CdfSampler {
    /// Build from probability masses (assumed normalized, like
    /// `Histogram::probs`; un-normalized weights also work as long as the
    /// uniform draw is scaled accordingly by the caller — the samplers in
    /// this workspace always pass normalized masses).
    pub fn from_probs(probs: impl IntoIterator<Item = f64>) -> Self {
        let mut acc = 0.0;
        let cum: Vec<f64> = probs
            .into_iter()
            .map(|p| {
                acc += p;
                acc
            })
            .collect();
        assert!(!cum.is_empty(), "sampler needs at least one alternative");
        CdfSampler { cum }
    }

    /// Number of alternatives.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// The alternative selected by uniform draw `u`: the first index whose
    /// cumulative mass is `>= u`, clamped to the last alternative when
    /// rounding leaves `u` above the total mass (exactly the linear scan's
    /// fall-through).
    #[inline]
    pub fn index_for(&self, u: f64) -> usize {
        let i = self.cum.partition_point(|&c| c < u);
        i.min(self.cum.len() - 1)
    }

    /// Draw an alternative: consumes one `f64` from `rng`, same as the
    /// linear scans this replaces.
    #[inline]
    pub fn sample_index<R: rand::RngCore>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.index_for(u)
    }

    /// The inclusive prefix sums (non-decreasing). Exposed so callers can
    /// flatten many samplers into one contiguous table — the compiled
    /// Monte-Carlo evaluator does this for cache locality; selecting the
    /// count of entries `< u` over such a row (see [`index_for`], clamped)
    /// reproduces this sampler exactly.
    ///
    /// [`index_for`]: CdfSampler::index_for
    pub fn cum(&self) -> &[f64] {
        &self.cum
    }
}

/// A [`CdfSampler`] plus bin geometry: draws bin centers from a
/// [`Histogram`] in O(log bins), monomorphized over the RNG.
#[derive(Debug, Clone, PartialEq)]
pub struct BinSampler {
    cdf: CdfSampler,
    lo: f64,
    width: f64,
}

impl BinSampler {
    /// Center value of bin `i` (same geometry as [`Histogram::center`]).
    #[inline]
    pub fn center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.width
    }

    /// Fast equivalent of [`Histogram::sample_bin`].
    #[inline]
    pub fn sample_bin<R: rand::RngCore>(&self, rng: &mut R) -> usize {
        self.cdf.sample_index(rng)
    }

    /// Fast equivalent of [`Histogram::sample`]: identical draw, identical
    /// bin selection, identical center value.
    #[inline]
    pub fn sample<R: rand::RngCore>(&self, rng: &mut R) -> f64 {
        self.center(self.sample_bin(rng))
    }

    /// The underlying CDF prefix sums (see [`CdfSampler::cum`]).
    pub fn cum(&self) -> &[f64] {
        self.cdf.cum()
    }

    /// Lower support bound of bin 0.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Bin width.
    pub fn width(&self) -> f64 {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Gamma, Normal};
    use crate::rng::seeded;

    #[test]
    fn masses_normalize() {
        let h = Histogram::new(0.0, 1.0, vec![1.0, 3.0]);
        assert!((h.prob(0) - 0.25).abs() < 1e-12);
        assert!((h.prob(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn constant_histogram() {
        let h = Histogram::constant(42.0);
        assert!((h.mean() - 42.0).abs() < 1e-6);
        assert!(h.variance() < 1e-12);
        assert!((h.percentile(0.99) - 42.0).abs() < 1e-6);
    }

    #[test]
    fn from_samples_covers_range() {
        let samples = [1.0, 2.0, 2.0, 3.0, 3.0, 3.0];
        let h = Histogram::from_samples(&samples, 4);
        let (lo, hi) = h.support();
        assert!(lo <= 1.0 && hi >= 3.0);
        assert!((h.points().map(|(_, p)| p).sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_samples_identical_values_degenerates() {
        let h = Histogram::from_samples(&[5.0; 10], 8);
        assert!((h.mean() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn from_dist_preserves_moments() {
        let d = Normal::new(100.0, 15.0);
        let h = Histogram::from_dist(&d, 60, 5.0, None);
        assert!((h.mean() - 100.0).abs() < 0.5, "mean {}", h.mean());
        assert!((h.variance().sqrt() - 15.0).abs() < 1.0);
    }

    #[test]
    fn from_dist_floor_clips_support() {
        let d = Normal::new(1.0, 2.0);
        let h = Histogram::from_dist(&d, 40, 4.0, Some(0.0));
        assert!(h.support().0 >= 0.0);
    }

    #[test]
    fn gamma_discretization_matches_table2_mean() {
        // m1.large sequential I/O: k=376.6, theta=0.28 -> mean ~105.4 MB/s.
        let d = Gamma::new(376.6, 0.28);
        let h = Histogram::from_dist(&d, 50, 5.0, Some(0.0));
        assert!((h.mean() - d.mean()).abs() / d.mean() < 0.01);
    }

    #[test]
    fn sampler_agrees_with_linear_scan_bit_for_bit() {
        // The compiled evaluator's correctness proof rests on this: for
        // identical RNG streams, the precomputed CDF sampler must select
        // exactly the bins the O(n) scan selects.
        for seed in 0..20u64 {
            let mut mass_rng = seeded(1000 + seed);
            use rand::Rng;
            let bins = 1 + (mass_rng.gen::<f64>() * 40.0) as usize;
            let masses: Vec<f64> = (0..bins).map(|_| mass_rng.gen::<f64>() + 1e-9).collect();
            let h = Histogram::new(-3.0, 0.7, masses);
            let s = h.sampler();
            let mut ra = seeded(seed);
            let mut rb = seeded(seed);
            for _ in 0..500 {
                let a = h.sample(&mut ra);
                let b = s.sample(&mut rb);
                assert!(a == b, "sampler diverged from linear scan: {a} vs {b}");
            }
            let mut ra = seeded(seed ^ 0xABCD);
            let mut rb = seeded(seed ^ 0xABCD);
            for _ in 0..500 {
                assert_eq!(h.sample_bin(&mut ra), s.sample_bin(&mut rb));
            }
        }
    }

    #[test]
    fn sampler_clamps_to_last_bin_on_full_mass_draw() {
        let h = Histogram::new(0.0, 1.0, vec![1.0, 1.0]);
        let s = h.sampler();
        // u = 1.0 can exceed the floating-point total mass; both paths
        // must fall through to the last bin rather than index out of range.
        assert_eq!(s.cdf.index_for(1.0), 1);
        assert_eq!(s.cdf.index_for(0.0), 0);
    }

    #[test]
    fn cdf_sampler_matches_expected_frequencies() {
        let s = CdfSampler::from_probs([0.5, 0.25, 0.25]);
        let mut rng = seeded(11);
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[s.sample_index(&mut rng)] += 1;
        }
        assert!((counts[0] as f64 / 20_000.0 - 0.5).abs() < 0.02);
        assert!((counts[1] as f64 / 20_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn percentile_is_monotone_and_bounded() {
        let d = Normal::new(0.0, 1.0);
        let h = Histogram::from_dist(&d, 80, 5.0, None);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let p = h.percentile(i as f64 / 10.0);
            assert!(p >= prev);
            prev = p;
        }
        assert!((h.percentile(0.5)).abs() < 0.1);
        assert!((h.percentile(0.95) - 1.645).abs() < 0.15);
    }

    #[test]
    fn sampling_matches_masses() {
        let h = Histogram::new(0.0, 1.0, vec![0.2, 0.8]);
        let mut rng = seeded(3);
        let n = 20_000;
        let hits = (0..n).filter(|_| h.sample(&mut rng) > 1.0).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn convolution_adds_means_and_variances() {
        let a = Histogram::from_dist(&Normal::new(10.0, 2.0), 50, 5.0, None);
        let b = Histogram::from_dist(&Normal::new(5.0, 1.0), 50, 5.0, None);
        let c = a.convolve(&b);
        assert!((c.mean() - 15.0).abs() < 0.3, "mean {}", c.mean());
        assert!((c.variance() - 5.0).abs() < 0.8, "var {}", c.variance());
    }

    #[test]
    fn convolve_with_constant_shifts() {
        let a = Histogram::from_dist(&Normal::new(10.0, 2.0), 50, 5.0, None);
        let c = a.convolve(&Histogram::constant(7.0));
        assert!((c.mean() - 17.0).abs() < 0.3);
    }

    #[test]
    fn max_with_dominates_both_means() {
        let a = Histogram::from_dist(&Normal::new(10.0, 3.0), 40, 4.0, None);
        let b = Histogram::from_dist(&Normal::new(10.0, 3.0), 40, 4.0, None);
        let m = a.max_with(&b);
        assert!(
            m.mean() > a.mean(),
            "E[max(X,Y)] > E[X] for iid non-degenerate"
        );
    }

    #[test]
    fn affine_scales_moments() {
        let a = Histogram::from_dist(&Normal::new(4.0, 1.0), 50, 5.0, None);
        let b = a.affine(2.0, 3.0);
        assert!((b.mean() - 11.0).abs() < 0.2);
        assert!((b.variance() - 4.0).abs() < 0.5);
    }

    #[test]
    fn map_reciprocal_gives_transfer_time() {
        // Bandwidth ~ N(100, 5) MB/s; time for 1000 MB ~ 10 s.
        let bw = Histogram::from_dist(&Normal::new(100.0, 5.0), 60, 4.0, Some(1.0));
        let t = bw.map(|b| 1000.0 / b);
        assert!((t.mean() - 10.0).abs() < 0.2, "mean {}", t.mean());
        assert!(t.support().0 > 0.0);
    }

    #[test]
    fn rebin_preserves_mass_and_roughly_mean() {
        let a = Histogram::from_dist(&Normal::new(50.0, 10.0), 200, 5.0, None);
        let b = a.rebin(20);
        assert_eq!(b.bins(), 20);
        assert!((b.mean() - a.mean()).abs() < 1.5);
        assert!((b.points().map(|(_, p)| p).sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_mass() {
        Histogram::new(0.0, 1.0, vec![0.5, -0.1]);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_total_mass() {
        Histogram::new(0.0, 1.0, vec![0.0, 0.0]);
    }
}
