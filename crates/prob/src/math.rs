//! Special functions needed by the distribution and fitting code.
//!
//! Implemented here (rather than pulled from a crate) because the offline
//! dependency set is deliberately small; these are the classical
//! approximations with well-known error bounds.

use std::f64::consts::PI;

/// Error function, Abramowitz & Stegun 7.1.26 (max absolute error 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// relative error < 1.15e-9 over (0, 1)).
pub fn std_normal_inv_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Natural log of the Gamma function (Lanczos approximation, g = 7, n = 9;
/// accurate to ~1e-13 for x > 0).
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        PI.ln() - (PI * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + 7.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Regularized lower incomplete gamma function P(a, x), via series expansion
/// for x < a+1 and continued fraction otherwise. Used for the Gamma CDF and
/// the chi-square test p-value.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut sum = 1.0 / a;
        let mut term = sum;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a,x) (Lentz's algorithm).
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (a * x.ln() - x - ln_gamma(a)).exp() * h;
        1.0 - q
    }
}

/// Chi-square survival function: P(X > stat) for `dof` degrees of freedom.
pub fn chi_square_sf(stat: f64, dof: usize) -> f64 {
    if stat <= 0.0 {
        return 1.0;
    }
    1.0 - gamma_p(dof as f64 / 2.0, stat / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn erf_reference_values() {
        close(erf(0.0), 0.0, 2e-7);
        close(erf(1.0), 0.8427007929, 2e-7);
        close(erf(-1.0), -0.8427007929, 2e-7);
        close(erf(2.0), 0.9953222650, 2e-7);
    }

    #[test]
    fn normal_cdf_symmetry() {
        for &x in &[0.1, 0.5, 1.0, 2.3] {
            close(std_normal_cdf(x) + std_normal_cdf(-x), 1.0, 1e-7);
        }
    }

    #[test]
    fn inv_cdf_round_trips() {
        for &p in &[0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999] {
            close(std_normal_cdf(std_normal_inv_cdf(p)), p, 1e-6);
        }
    }

    #[test]
    fn inv_cdf_reference_values() {
        close(std_normal_inv_cdf(0.975), 1.959964, 1e-5);
        close(std_normal_inv_cdf(0.5), 0.0, 1e-9);
        close(std_normal_inv_cdf(0.95), 1.644854, 1e-5);
    }

    #[test]
    #[should_panic]
    fn inv_cdf_rejects_zero() {
        std_normal_inv_cdf(0.0);
    }

    #[test]
    fn ln_gamma_factorials() {
        // Gamma(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-10);
        close(ln_gamma(2.0), 0.0, 1e-10);
        close(ln_gamma(5.0), 24f64.ln(), 1e-10);
        close(ln_gamma(11.0), 3628800f64.ln(), 1e-9);
    }

    #[test]
    fn ln_gamma_half() {
        close(ln_gamma(0.5), PI.sqrt().ln(), 1e-10);
    }

    #[test]
    fn gamma_p_limits() {
        close(gamma_p(2.0, 0.0), 0.0, 1e-12);
        close(gamma_p(2.0, 1e6), 1.0, 1e-9);
        // P(1, x) = 1 - exp(-x).
        close(gamma_p(1.0, 1.3), 1.0 - (-1.3f64).exp(), 1e-9);
    }

    #[test]
    fn chi_square_reference() {
        // Critical value: chi2(0.95, dof=3) ~= 7.815.
        close(chi_square_sf(7.815, 3), 0.05, 2e-3);
        close(chi_square_sf(0.0, 5), 1.0, 1e-12);
    }
}
