//! Monte-Carlo estimation helpers.
//!
//! Algorithm 1 of the paper evaluates WLog queries by sampling `Max_iter`
//! realizations of the probabilistic rules and averaging either an indicator
//! (for constraint queries) or a goal value (for goal queries). These
//! helpers centralize that loop together with standard-error reporting so
//! callers can reason about decision error.

use rand::RngCore;

/// A Monte-Carlo estimate with its standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    pub value: f64,
    pub std_error: f64,
    pub iterations: usize,
}

impl Estimate {
    /// Two-sided confidence half-width at ~95% (1.96 sigma).
    pub fn ci95(&self) -> f64 {
        1.96 * self.std_error
    }
}

/// Estimate the mean of `f` over `iters` draws.
pub fn estimate_mean(
    iters: usize,
    rng: &mut dyn RngCore,
    mut f: impl FnMut(&mut dyn RngCore) -> f64,
) -> Estimate {
    assert!(iters > 0, "need at least one iteration");
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for _ in 0..iters {
        let x = f(rng);
        sum += x;
        sum_sq += x * x;
    }
    let n = iters as f64;
    let mean = sum / n;
    let var = ((sum_sq / n) - mean * mean).max(0.0) * n / (n - 1.0).max(1.0);
    Estimate {
        value: mean,
        std_error: (var / n).sqrt(),
        iterations: iters,
    }
}

/// Estimate `P(event)` over `iters` draws; the constraint-query case of
/// Algorithm 1.
pub fn estimate_probability(
    iters: usize,
    rng: &mut dyn RngCore,
    mut event: impl FnMut(&mut dyn RngCore) -> bool,
) -> Estimate {
    assert!(iters > 0);
    let mut hits = 0usize;
    for _ in 0..iters {
        if event(rng) {
            hits += 1;
        }
    }
    let n = iters as f64;
    let p = hits as f64 / n;
    Estimate {
        value: p,
        std_error: (p * (1.0 - p) / n).sqrt(),
        iterations: iters,
    }
}

/// Number of iterations needed so that the standard error of a probability
/// estimate near `p` is below `target_se`. Used to size `Max_iter` for a
/// requested decision accuracy (ablation `ablation_mc_iters`).
pub fn iterations_for_probability(p: f64, target_se: f64) -> usize {
    assert!(target_se > 0.0);
    let var = (p * (1.0 - p)).max(1e-6);
    (var / (target_se * target_se)).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use rand::Rng;

    #[test]
    fn mean_of_uniform_is_half() {
        let mut rng = seeded(21);
        let est = estimate_mean(50_000, &mut rng, |r| r.next_u64() as f64 / u64::MAX as f64);
        assert!((est.value - 0.5).abs() < 4.0 * est.std_error + 1e-3);
    }

    #[test]
    fn probability_of_biased_coin() {
        let mut rng = seeded(22);
        let est = estimate_probability(50_000, &mut rng, |r| {
            let mut r = r;
            let u: f64 = (&mut r).gen();
            u < 0.3
        });
        assert!((est.value - 0.3).abs() < 0.01, "got {}", est.value);
        assert!(est.std_error < 0.005);
    }

    #[test]
    fn ci_shrinks_with_iterations() {
        let mut rng = seeded(23);
        let small = estimate_probability(500, &mut rng, |r| {
            let mut r = r;
            let u: f64 = (&mut r).gen();
            u < 0.5
        });
        let big = estimate_probability(50_000, &mut rng, |r| {
            let mut r = r;
            let u: f64 = (&mut r).gen();
            u < 0.5
        });
        assert!(big.std_error < small.std_error);
    }

    #[test]
    fn iteration_sizing_is_sane() {
        // p=0.5, se=0.01 -> 2500 iterations.
        assert_eq!(iterations_for_probability(0.5, 0.01), 2500);
        assert!(iterations_for_probability(0.95, 0.01) < 2500);
    }

    #[test]
    #[should_panic]
    fn zero_iterations_rejected() {
        let mut rng = seeded(1);
        estimate_mean(0, &mut rng, |_| 0.0);
    }
}
