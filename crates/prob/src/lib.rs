//! Probability substrate for the Deco reproduction.
//!
//! The paper models cloud performance dynamics (I/O bandwidth, network
//! bandwidth) as probabilistic distributions that are *calibrated* from
//! measurements, *discretized* into histograms stored in a metadata store,
//! and *consumed* by a Monte-Carlo evaluator inside the solver
//! (Sections 4.2, 5.1, 5.2 and Table 2 of the paper).
//!
//! This crate provides everything those pipelines need, built on top of the
//! `rand` core only (all samplers are implemented here):
//!
//! * [`dist`] — parametric distributions (Normal, Gamma, Uniform,
//!   Exponential, Pareto, truncated variants) with exact moments.
//! * [`hist`] — discretized distributions: build from samples or from a
//!   parametric law, convolve, shift/scale, take percentiles. This is the
//!   representation stored in the cloud metadata store.
//! * [`fit`] — moment-matching parameter recovery and a chi-square
//!   goodness-of-fit test, used by the calibration pipeline to reproduce
//!   Table 2 and the normality claim of Figure 6b.
//! * [`stats`] — summary statistics and quantiles over raw samples
//!   (Figure 2's quantile plots).
//! * [`mc`] — Monte-Carlo estimation helpers (Algorithm 1's inference loop).
//! * [`rng`] — deterministic, splittable RNG plumbing so that every
//!   experiment in the repository is reproducible from a single seed.

pub mod dist;
pub mod fit;
pub mod hash;
pub mod hist;
pub mod math;
pub mod mc;
pub mod rng;
pub mod stats;

pub use dist::{Constant, Dist, Exponential, Gamma, Normal, Pareto, TruncatedNormal, Uniform};
pub use hist::{BinSampler, CdfSampler, Histogram};
pub use rng::DecoRng;
