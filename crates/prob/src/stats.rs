//! Summary statistics over raw samples.
//!
//! Used by the calibration pipeline (recovering Table 2's parameters), the
//! variance figures (Figure 2's quantiles, Figure 6a's variance), and by
//! tests throughout the workspace.

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n-1 denominator). Returns 0.0 for fewer than
/// two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Quantile by linear interpolation between order statistics
/// (the "R-7" definition used by most statistics packages).
///
/// `q` is in `[0, 1]`. Panics on an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile level out of range: {q}");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    quantile_sorted(&sorted, q)
}

/// Quantile over an already-sorted slice (avoids re-sorting in loops).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let h = (sorted.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Coefficient of variation (sigma / mu); the "performance variance" metric
/// of Figure 6a. Returns 0.0 when the mean is 0.
pub fn coeff_of_variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        0.0
    } else {
        std_dev(xs) / m
    }
}

/// Relative spread (max - min) / mean — the "maximum variance can reach up
/// to 50%" reading of Figure 6a.
pub fn relative_spread(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    if m == 0.0 {
        return 0.0;
    }
    let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (hi - lo) / m
}

/// Five-number summary plus mean: the box-plot data behind Figure 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
    pub mean: f64,
}

impl Summary {
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "summary of empty sample");
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Summary {
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
            max: *sorted.last().unwrap(),
            mean: mean(xs),
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Normalize every element by `base` (the paper normalizes each figure to a
/// reference algorithm). Panics if base is 0.
pub fn normalize(xs: &[f64], base: f64) -> Vec<f64> {
    assert!(base != 0.0, "cannot normalize by zero");
    xs.iter().map(|x| x / base).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic sample is 32/7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_are_total() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        // R-7: h = 3*0.25 = 0.75 -> 1 + 0.75*(2-1) = 1.75.
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_monotone() {
        let xs = [5.0, 1.0, 9.0, 3.0, 7.0];
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = quantile(&xs, i as f64 / 20.0);
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    fn summary_orders_fields() {
        let s = Summary::of(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        assert!(s.min <= s.q1 && s.q1 <= s.median && s.median <= s.q3 && s.q3 <= s.max);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert!(s.iqr() >= 0.0);
    }

    #[test]
    fn spread_metrics() {
        let xs = [8.0, 10.0, 12.0];
        assert!((relative_spread(&xs) - 0.4).abs() < 1e-12);
        assert!(coeff_of_variation(&xs) > 0.0);
        assert_eq!(relative_spread(&[]), 0.0);
    }

    #[test]
    fn normalize_divides() {
        assert_eq!(normalize(&[2.0, 4.0], 2.0), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn normalize_rejects_zero_base() {
        normalize(&[1.0], 0.0);
    }
}
