//! Deterministic, splittable random-number plumbing.
//!
//! Every stochastic component of the reproduction (cloud dynamics, Monte
//! Carlo evaluation, workload generation) draws from a [`DecoRng`] that is
//! derived from a single experiment seed, so that `cargo test` and the
//! benchmark harness are reproducible run-to-run and machine-to-machine.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG used throughout the reproduction.
///
/// `SmallRng` (xoshiro-family) is non-cryptographic but fast and has
/// independent streams when seeded with distinct values, which is all the
/// simulation needs.
pub type DecoRng = SmallRng;

/// Create a root RNG from an experiment seed.
pub fn seeded(seed: u64) -> DecoRng {
    SmallRng::seed_from_u64(seed)
}

/// Derive an independent child RNG from a parent.
///
/// Splitting lets parallel workers (GPU-model blocks, per-instance dynamics)
/// own private streams without sharing mutable state. The child seed mixes a
/// fresh 64-bit draw through SplitMix64 so that consecutive splits do not
/// produce correlated streams.
pub fn split(parent: &mut DecoRng) -> DecoRng {
    SmallRng::seed_from_u64(splitmix64(parent.next_u64()))
}

/// Derive a child RNG keyed by an index (e.g. one stream per task or per
/// Monte-Carlo block) so that the stream does not depend on the order in
/// which siblings are created.
pub fn split_indexed(root_seed: u64, index: u64) -> DecoRng {
    SmallRng::seed_from_u64(splitmix64(
        root_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    ))
}

/// SplitMix64 finalizer: a bijective mixer with good avalanche behaviour,
/// the standard way to expand one seed into many.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draw a uniform f64 in the open interval (0, 1) — never exactly 0 or 1,
/// which keeps `ln` and inverse-CDF transforms finite.
pub fn open01<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 && u < 1.0 {
            return u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn split_streams_are_independent_of_parent_continuation() {
        let mut parent = seeded(7);
        let mut child = split(&mut parent);
        // Parent continues producing values unrelated to the child's.
        let p: Vec<u64> = (0..32).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..32).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn split_indexed_is_order_independent() {
        let mut a3 = split_indexed(99, 3);
        let mut b3 = split_indexed(99, 3);
        assert_eq!(a3.next_u64(), b3.next_u64());
        let mut a4 = split_indexed(99, 4);
        assert_ne!(split_indexed(99, 3).next_u64(), a4.next_u64());
    }

    #[test]
    fn splitmix_is_bijective_sample() {
        // Distinct inputs must map to distinct outputs (bijectivity spot check).
        let outs: std::collections::HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn open01_stays_open() {
        let mut rng = seeded(5);
        for _ in 0..10_000 {
            let u = open01(&mut rng);
            assert!(u > 0.0 && u < 1.0);
        }
    }
}
