//! Substitutions and unification.
//!
//! The interpreter uses a single mutable binding store with a trail, the
//! standard WAM-style discipline: binding a variable pushes its name onto
//! the trail, and backtracking unwinds the trail to a saved mark. This
//! keeps unification allocation-free on the happy path, which matters
//! because every Monte-Carlo iteration replays thousands of unifications.

use crate::ast::Term;
use std::collections::HashMap;

/// A mutable binding store with an undo trail.
#[derive(Debug, Default, Clone)]
pub struct Bindings {
    map: HashMap<String, Term>,
    trail: Vec<String>,
}

/// A mark into the trail; undoing to a mark removes every binding made
/// after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mark(usize);

impl Bindings {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current trail position.
    pub fn mark(&self) -> Mark {
        Mark(self.trail.len())
    }

    /// Unwind every binding made since `mark`.
    pub fn undo(&mut self, mark: Mark) {
        while self.trail.len() > mark.0 {
            if let Some(v) = self.trail.pop() {
                self.map.remove(&v);
            }
        }
    }

    /// Bind a variable (must be unbound).
    pub fn bind(&mut self, var: &str, t: Term) {
        debug_assert!(!self.map.contains_key(var), "rebinding {var}");
        self.map.insert(var.to_string(), t);
        self.trail.push(var.to_string());
    }

    /// Follow variable chains one step at a time until a non-variable or an
    /// unbound variable is reached. Cheap: does not rebuild compound terms.
    pub fn walk<'a>(&'a self, t: &'a Term) -> &'a Term {
        let mut cur = t;
        loop {
            match cur {
                Term::Var(v) => match self.map.get(v) {
                    Some(next) => cur = next,
                    None => return cur,
                },
                _ => return cur,
            }
        }
    }

    /// Deep-resolve: rebuild the term with every bound variable replaced.
    pub fn resolve(&self, t: &Term) -> Term {
        let t = self.walk(t);
        match t {
            Term::Compound(f, args) => {
                Term::Compound(f.clone(), args.iter().map(|a| self.resolve(a)).collect())
            }
            Term::List(items, tail) => {
                let mut out: Vec<Term> = items.iter().map(|a| self.resolve(a)).collect();
                match tail {
                    None => Term::List(out, None),
                    Some(t) => match self.resolve(t) {
                        // Flatten a resolved tail list into the spine.
                        Term::List(mut more, tail2) => {
                            out.append(&mut more);
                            Term::List(out, tail2)
                        }
                        other => Term::List(out, Some(Box::new(other))),
                    },
                }
            }
            other => other.clone(),
        }
    }

    /// Unify two terms, recording bindings on the trail. On failure the
    /// caller must `undo` to its mark (partial bindings may remain).
    pub fn unify(&mut self, a: &Term, b: &Term) -> bool {
        let a = self.walk(a).clone();
        let b = self.walk(b).clone();
        match (&a, &b) {
            (Term::Var(v), Term::Var(w)) if v == w => true,
            (Term::Var(v), _) => {
                self.bind(v, b);
                true
            }
            (_, Term::Var(w)) => {
                self.bind(w, a);
                true
            }
            (Term::Atom(x), Term::Atom(y)) => x == y,
            (Term::Num(x), Term::Num(y)) => x == y,
            (Term::Compound(f, xs), Term::Compound(g, ys)) => {
                f == g && xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| self.unify(x, y))
            }
            (Term::List(..), Term::List(..)) => self.unify_lists(&a, &b),
            _ => false,
        }
    }

    /// List unification handling partial lists (`[H|T]` against `[1,2,3]`).
    fn unify_lists(&mut self, a: &Term, b: &Term) -> bool {
        let (xs, xt) = match a {
            Term::List(xs, xt) => (xs.clone(), xt.clone()),
            _ => unreachable!(),
        };
        let (ys, yt) = match b {
            Term::List(ys, yt) => (ys.clone(), yt.clone()),
            _ => unreachable!(),
        };
        let n = xs.len().min(ys.len());
        for i in 0..n {
            if !self.unify(&xs[i], &ys[i]) {
                return false;
            }
        }
        // Remainders.
        let rest_a = Term::List(xs[n..].to_vec(), xt);
        let rest_b = Term::List(ys[n..].to_vec(), yt);
        match (&rest_a, &rest_b) {
            (Term::List(e1, None), Term::List(e2, None)) if e1.is_empty() && e2.is_empty() => true,
            (Term::List(e1, Some(t1)), _) if e1.is_empty() => self.unify(t1, &rest_b),
            (_, Term::List(e2, Some(t2))) if e2.is_empty() => self.unify(&rest_a, t2),
            _ => false,
        }
    }
}

/// Total order on ground terms, for `setof` sorting and `max`/`min`:
/// numbers < atoms < compounds < lists; ties by value/name/args.
pub fn term_cmp(a: &Term, b: &Term) -> std::cmp::Ordering {
    use std::cmp::Ordering::*;
    fn rank(t: &Term) -> u8 {
        match t {
            Term::Var(_) => 0,
            Term::Num(_) => 1,
            Term::Atom(_) => 2,
            Term::Compound(..) => 3,
            Term::List(..) => 4,
        }
    }
    match (a, b) {
        (Term::Num(x), Term::Num(y)) => x.partial_cmp(y).unwrap_or(Equal),
        (Term::Atom(x), Term::Atom(y)) => x.cmp(y),
        (Term::Var(x), Term::Var(y)) => x.cmp(y),
        (Term::Compound(f, xs), Term::Compound(g, ys)) => {
            f.cmp(g).then(xs.len().cmp(&ys.len())).then_with(|| {
                for (x, y) in xs.iter().zip(ys) {
                    let c = term_cmp(x, y);
                    if c != Equal {
                        return c;
                    }
                }
                Equal
            })
        }
        (Term::List(xs, _), Term::List(ys, _)) => {
            for (x, y) in xs.iter().zip(ys) {
                let c = term_cmp(x, y);
                if c != Equal {
                    return c;
                }
            }
            xs.len().cmp(&ys.len())
        }
        _ => rank(a).cmp(&rank(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;

    #[test]
    fn bind_and_walk() {
        let mut b = Bindings::new();
        assert!(b.unify(&Term::var("X"), &Term::num(3.0)));
        assert_eq!(b.walk(&Term::var("X")), &Term::num(3.0));
    }

    #[test]
    fn chains_resolve() {
        let mut b = Bindings::new();
        assert!(b.unify(&Term::var("X"), &Term::var("Y")));
        assert!(b.unify(&Term::var("Y"), &Term::atom("a")));
        assert_eq!(b.walk(&Term::var("X")), &Term::atom("a"));
    }

    #[test]
    fn undo_restores_state() {
        let mut b = Bindings::new();
        let m = b.mark();
        assert!(b.unify(&Term::var("X"), &Term::num(1.0)));
        b.undo(m);
        assert!(matches!(b.walk(&Term::var("X")), Term::Var(_)));
        // Can rebind after undo.
        assert!(b.unify(&Term::var("X"), &Term::num(2.0)));
    }

    #[test]
    fn compound_unification() {
        let mut b = Bindings::new();
        let t1 = Term::compound("f", vec![Term::var("X"), Term::num(2.0)]);
        let t2 = Term::compound("f", vec![Term::num(1.0), Term::var("Y")]);
        assert!(b.unify(&t1, &t2));
        assert_eq!(b.walk(&Term::var("X")), &Term::num(1.0));
        assert_eq!(b.walk(&Term::var("Y")), &Term::num(2.0));
    }

    #[test]
    fn mismatched_functors_fail() {
        let mut b = Bindings::new();
        assert!(!b.unify(
            &Term::compound("f", vec![Term::num(1.0)]),
            &Term::compound("g", vec![Term::num(1.0)])
        ));
        assert!(!b.unify(
            &Term::compound("f", vec![]),
            &Term::compound("f", vec![Term::num(1.0)])
        ));
    }

    #[test]
    fn partial_list_unification() {
        let mut b = Bindings::new();
        let pat = Term::List(vec![Term::var("H")], Some(Box::new(Term::var("T"))));
        let lst = Term::list(vec![Term::num(1.0), Term::num(2.0), Term::num(3.0)]);
        assert!(b.unify(&pat, &lst));
        assert_eq!(b.resolve(&Term::var("H")), Term::num(1.0));
        assert_eq!(
            b.resolve(&Term::var("T")),
            Term::list(vec![Term::num(2.0), Term::num(3.0)])
        );
    }

    #[test]
    fn empty_list_only_unifies_empty() {
        let mut b = Bindings::new();
        assert!(b.unify(&Term::nil(), &Term::nil()));
        assert!(!b.unify(&Term::nil(), &Term::list(vec![Term::num(1.0)])));
    }

    #[test]
    fn resolve_flattens_list_tails() {
        let mut b = Bindings::new();
        assert!(b.unify(&Term::var("T"), &Term::list(vec![Term::num(2.0)])));
        let t = Term::List(vec![Term::num(1.0)], Some(Box::new(Term::var("T"))));
        assert_eq!(
            b.resolve(&t),
            Term::list(vec![Term::num(1.0), Term::num(2.0)])
        );
    }

    #[test]
    fn term_ordering() {
        use std::cmp::Ordering::*;
        assert_eq!(term_cmp(&Term::num(1.0), &Term::num(2.0)), Less);
        assert_eq!(term_cmp(&Term::num(9.0), &Term::atom("a")), Less);
        assert_eq!(term_cmp(&Term::atom("a"), &Term::atom("b")), Less);
        assert_eq!(
            term_cmp(
                &Term::list(vec![Term::num(1.0)]),
                &Term::list(vec![Term::num(1.0), Term::num(0.0)])
            ),
            Less
        );
    }

    #[test]
    fn same_var_unifies_without_binding() {
        let mut b = Bindings::new();
        let m = b.mark();
        assert!(b.unify(&Term::var("X"), &Term::var("X")));
        assert_eq!(b.mark(), m, "no binding should be recorded");
    }
}
