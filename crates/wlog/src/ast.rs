//! Terms and clauses.

use std::fmt;

/// A WLog term.
///
/// Numbers are uniformly `f64` — WLog programs manipulate execution times,
/// prices and probabilities, and the paper's examples never rely on bignum
/// integer semantics. Atoms starting with a lowercase letter, variables
/// with an uppercase letter or `_` (ProLog convention, Section 4.1).
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Constant symbol: `montage`, `root`, `m1_small`.
    Atom(String),
    /// Logic variable: `Tid`, `Cost`, `_`.
    Var(String),
    /// Numeric constant.
    Num(f64),
    /// Compound term: `cost(Tid, Vid, C)`.
    Compound(String, Vec<Term>),
    /// Proper or partial list: `[a, b | T]`. `tail` is `None` for proper
    /// lists and holds the tail variable otherwise.
    List(Vec<Term>, Option<Box<Term>>),
}

impl Term {
    pub fn atom(name: impl Into<String>) -> Term {
        Term::Atom(name.into())
    }

    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    pub fn num(x: f64) -> Term {
        Term::Num(x)
    }

    pub fn compound(name: impl Into<String>, args: Vec<Term>) -> Term {
        Term::Compound(name.into(), args)
    }

    pub fn list(items: Vec<Term>) -> Term {
        Term::List(items, None)
    }

    pub fn nil() -> Term {
        Term::List(Vec::new(), None)
    }

    /// Functor name and arity, for indexing: `cost(T,V,C)` → `("cost", 3)`,
    /// `foo` → `("foo", 0)`.
    pub fn functor(&self) -> Option<(&str, usize)> {
        match self {
            Term::Atom(a) => Some((a, 0)),
            Term::Compound(f, args) => Some((f, args.len())),
            _ => None,
        }
    }

    /// Whether the term contains no variables (after substitution walking,
    /// which the caller is responsible for).
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Atom(_) | Term::Num(_) => true,
            Term::Var(_) => false,
            Term::Compound(_, args) => args.iter().all(Term::is_ground),
            Term::List(items, tail) => {
                items.iter().all(Term::is_ground) && tail.as_ref().is_none_or(|t| t.is_ground())
            }
        }
    }

    /// Collect the variable names occurring in the term.
    pub fn vars(&self, out: &mut Vec<String>) {
        match self {
            Term::Var(v) if !out.contains(v) => {
                out.push(v.clone());
            }
            Term::Compound(_, args) => args.iter().for_each(|a| a.vars(out)),
            Term::List(items, tail) => {
                items.iter().for_each(|a| a.vars(out));
                if let Some(t) = tail {
                    t.vars(out);
                }
            }
            _ => {}
        }
    }

    /// Extract the numeric value if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Term::Num(x) => Some(*x),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Atom(a) => write!(f, "{a}"),
            Term::Var(v) => write!(f, "{v}"),
            Term::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Term::Compound(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Term::List(items, tail) => {
                write!(f, "[")?;
                for (i, a) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                if let Some(t) = tail {
                    write!(f, "|{t}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// A definite clause `head :- body`. A fact is a clause with empty body.
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    pub head: Term,
    pub body: Vec<Term>,
}

impl Clause {
    pub fn fact(head: Term) -> Clause {
        Clause {
            head,
            body: Vec::new(),
        }
    }

    pub fn rule(head: Term, body: Vec<Term>) -> Clause {
        Clause { head, body }
    }

    /// Rename every variable with a unique suffix, so that two activations
    /// of the same clause never share variables.
    pub fn rename(&self, counter: &mut u64) -> Clause {
        *counter += 1;
        let suffix = *counter;
        fn go(t: &Term, suffix: u64) -> Term {
            match t {
                Term::Var(v) if v == "_" => {
                    // Each underscore is a distinct fresh variable; pair it
                    // with its address-ish uniqueness via the suffix plus a
                    // thread-local counter is overkill — a shared name per
                    // clause activation suffices because `_` never co-refers.
                    Term::Var(format!("_#{suffix}"))
                }
                Term::Var(v) => Term::Var(format!("{v}#{suffix}")),
                Term::Compound(f, args) => {
                    Term::Compound(f.clone(), args.iter().map(|a| go(a, suffix)).collect())
                }
                Term::List(items, tail) => Term::List(
                    items.iter().map(|a| go(a, suffix)).collect(),
                    tail.as_ref().map(|t| Box::new(go(t, suffix))),
                ),
                other => other.clone(),
            }
        }
        Clause {
            head: go(&self.head, suffix),
            body: self.body.iter().map(|t| go(t, suffix)).collect(),
        }
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, g) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        write!(f, ".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functor_extraction() {
        assert_eq!(Term::atom("foo").functor(), Some(("foo", 0)));
        let c = Term::compound("cost", vec![Term::var("T"), Term::num(1.0)]);
        assert_eq!(c.functor(), Some(("cost", 2)));
        assert_eq!(Term::var("X").functor(), None);
        assert_eq!(Term::num(3.0).functor(), None);
    }

    #[test]
    fn groundness() {
        assert!(Term::atom("a").is_ground());
        assert!(!Term::var("X").is_ground());
        assert!(Term::compound("f", vec![Term::num(1.0)]).is_ground());
        assert!(!Term::compound("f", vec![Term::var("X")]).is_ground());
        assert!(!Term::List(vec![Term::atom("a")], Some(Box::new(Term::var("T")))).is_ground());
    }

    #[test]
    fn vars_are_collected_once() {
        let t = Term::compound("f", vec![Term::var("X"), Term::var("Y"), Term::var("X")]);
        let mut vs = Vec::new();
        t.vars(&mut vs);
        assert_eq!(vs, vec!["X".to_string(), "Y".to_string()]);
    }

    #[test]
    fn display_round_trips_readably() {
        let c = Clause::rule(
            Term::compound("p", vec![Term::var("X")]),
            vec![Term::compound("q", vec![Term::var("X"), Term::num(2.0)])],
        );
        assert_eq!(c.to_string(), "p(X) :- q(X,2).");
        let l = Term::List(vec![Term::num(1.0)], Some(Box::new(Term::var("T"))));
        assert_eq!(l.to_string(), "[1|T]");
    }

    #[test]
    fn rename_refreshes_all_vars_consistently() {
        let c = Clause::rule(
            Term::compound("p", vec![Term::var("X")]),
            vec![Term::compound("q", vec![Term::var("X"), Term::var("Y")])],
        );
        let mut n = 0;
        let r1 = c.rename(&mut n);
        let r2 = c.rename(&mut n);
        assert_ne!(r1, r2, "two activations must not share variables");
        // X in head and body stays the same variable inside one activation.
        if let (Term::Compound(_, h), Term::Compound(_, b)) = (&r1.head, &r1.body[0]) {
            assert_eq!(h[0], b[0]);
        } else {
            panic!("shape");
        }
    }
}
