//! Tokenizer for WLog source text.
//!
//! Beyond ProLog's lexicon, WLog adds percent literals (`95%` in
//! `deadline(95%, 10h)`) and duration literals (`10h`, `30m`, `45s`),
//! which the parser folds into plain numbers (fractions and seconds).

/// A lexical token with its source position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Lowercase-initial identifier: `cost`, `m1_small`.
    Atom(String),
    /// Uppercase/underscore-initial identifier: `Tid`, `_`.
    Var(String),
    /// Numeric literal (percent and duration suffixes already applied).
    Num(f64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Bar,
    /// `:-`
    Neck,
    /// `!`
    Cut,
    /// Arithmetic / comparison operator symbol: `+ - * / < > =< >= == \== =:= =`
    Op(String),
}

/// Lexer error: position and message.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub pos: usize,
    pub msg: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a full source string.
pub fn lex(src: &str) -> Result<Vec<(usize, Tok)>, LexError> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments: /* ... */ and % ... end-of-line. A '%' immediately
        // after a number is a percent suffix, handled in the number rule,
        // so a comment '%' only appears where a token may start.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start = i;
            i += 2;
            loop {
                if i + 1 >= b.len() {
                    return Err(LexError {
                        pos: start,
                        msg: "unterminated /* comment".into(),
                    });
                }
                if b[i] == b'*' && b[i + 1] == b'/' {
                    i += 2;
                    break;
                }
                i += 1;
            }
            continue;
        }
        if c == b'%' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let pos = i;
        // Numbers, with optional suffix: % (fraction), h/m/s (seconds).
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                // A '.' followed by a non-digit is the clause terminator.
                if b[i] == b'.' && (i + 1 >= b.len() || !b[i + 1].is_ascii_digit()) {
                    break;
                }
                i += 1;
            }
            let text = &src[start..i];
            let mut value: f64 = text.parse().map_err(|_| LexError {
                pos: start,
                msg: format!("bad number {text:?}"),
            })?;
            if i < b.len() {
                match b[i] {
                    b'%' => {
                        value /= 100.0;
                        i += 1;
                    }
                    b'h' if !ident_continues(b, i + 1) => {
                        value *= 3600.0;
                        i += 1;
                    }
                    b'm' if !ident_continues(b, i + 1) => {
                        value *= 60.0;
                        i += 1;
                    }
                    b's' if !ident_continues(b, i + 1) => {
                        i += 1;
                    }
                    _ => {}
                }
            }
            out.push((pos, Tok::Num(value)));
            continue;
        }
        // Identifiers.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            let word = &src[start..i];
            if c.is_ascii_uppercase() || c == b'_' {
                out.push((pos, Tok::Var(word.to_string())));
            } else {
                out.push((pos, Tok::Atom(word.to_string())));
            }
            continue;
        }
        // Punctuation and operators.
        macro_rules! two {
            ($s:expr, $t:expr) => {
                if src[i..].starts_with($s) {
                    out.push((pos, $t));
                    i += $s.len();
                    continue;
                }
            };
        }
        two!(":-", Tok::Neck);
        two!("\\==", Tok::Op("\\==".into()));
        two!("=:=", Tok::Op("=:=".into()));
        two!("==", Tok::Op("==".into()));
        two!("=<", Tok::Op("=<".into()));
        two!(">=", Tok::Op(">=".into()));
        match c {
            b'(' => out.push((pos, Tok::LParen)),
            b')' => out.push((pos, Tok::RParen)),
            b'[' => out.push((pos, Tok::LBracket)),
            b']' => out.push((pos, Tok::RBracket)),
            b',' => out.push((pos, Tok::Comma)),
            b'.' => out.push((pos, Tok::Dot)),
            b'|' => out.push((pos, Tok::Bar)),
            b'!' => out.push((pos, Tok::Cut)),
            b'+' | b'-' | b'*' | b'/' | b'<' | b'>' | b'=' => {
                out.push((pos, Tok::Op((c as char).to_string())))
            }
            other => {
                return Err(LexError {
                    pos,
                    msg: format!("unexpected character {:?}", other as char),
                })
            }
        }
        i += 1;
    }
    Ok(out)
}

/// Whether an identifier character follows at position `i` (to distinguish
/// the duration suffix `10h` from an atom starting with h, e.g. `10 hours`
/// never lexes but `maxtime` after a number must not steal the `m`).
fn ident_continues(b: &[u8], i: usize) -> bool {
    i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|(_, t)| t).collect()
    }

    #[test]
    fn atoms_vars_numbers() {
        assert_eq!(
            toks("cost Tid 3.5 _x"),
            vec![
                Tok::Atom("cost".into()),
                Tok::Var("Tid".into()),
                Tok::Num(3.5),
                Tok::Var("_x".into())
            ]
        );
    }

    #[test]
    fn percent_and_duration_literals() {
        assert_eq!(toks("95%"), vec![Tok::Num(0.95)]);
        assert_eq!(toks("10h"), vec![Tok::Num(36000.0)]);
        assert_eq!(toks("30m"), vec![Tok::Num(1800.0)]);
        assert_eq!(toks("45s"), vec![Tok::Num(45.0)]);
        // No suffix when an identifier continues: `10hours` is an error-free
        // `10` then atom `hours`? No — h swallows only when not followed by
        // ident chars, so this lexes as 10 then `hours`.
        assert_eq!(
            toks("10hours"),
            vec![Tok::Num(10.0), Tok::Atom("hours".into())]
        );
    }

    #[test]
    fn clause_terminator_vs_decimal_point() {
        assert_eq!(
            toks("x(3.5)."),
            vec![
                Tok::Atom("x".into()),
                Tok::LParen,
                Tok::Num(3.5),
                Tok::RParen,
                Tok::Dot
            ]
        );
        assert_eq!(toks("3."), vec![Tok::Num(3.0), Tok::Dot]);
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks(":- =< >= == \\== =:= < > = + - * /"),
            vec![
                Tok::Neck,
                Tok::Op("=<".into()),
                Tok::Op(">=".into()),
                Tok::Op("==".into()),
                Tok::Op("\\==".into()),
                Tok::Op("=:=".into()),
                Tok::Op("<".into()),
                Tok::Op(">".into()),
                Tok::Op("=".into()),
                Tok::Op("+".into()),
                Tok::Op("-".into()),
                Tok::Op("*".into()),
                Tok::Op("/".into()),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a /* hi */ b % line\n c"),
            vec![
                Tok::Atom("a".into()),
                Tok::Atom("b".into()),
                Tok::Atom("c".into())
            ]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("a /* oops").is_err());
    }

    #[test]
    fn stray_character_errors() {
        assert!(lex("a @ b").is_err());
    }

    #[test]
    fn cut_and_lists() {
        assert_eq!(
            toks("[H|T] !"),
            vec![
                Tok::LBracket,
                Tok::Var("H".into()),
                Tok::Bar,
                Tok::Var("T".into()),
                Tok::RBracket,
                Tok::Cut
            ]
        );
    }
}
