//! Parser for WLog source text.
//!
//! Handles the ProLog core (clauses, facts, lists, cut, arithmetic
//! expressions with `* /` over `+ -` precedence) and the WLog statement
//! forms of Table 1 / Example 1:
//!
//! ```text
//! import(amazonec2).
//! minimize Ct in totalcost(Ct).
//! T in maxtime(Path,T) satisfies deadline(95%,10h).
//! configs(Tid,Vid,Con) forall task(Tid) and vm(Vid).
//! enabled(astar).
//! ```

use crate::ast::{Clause, Term};
use crate::lexer::{lex, Tok};
use crate::program::{Constraint, ConstraintKind, Goal, GoalKind, VarDecl, WlogProgram};

/// Parse error with byte position, line/column span, and a caret snippet
/// of the offending source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset into the source.
    pub pos: usize,
    /// 1-based line of `pos`.
    pub line: usize,
    /// 1-based column (in characters) of `pos` within its line.
    pub col: usize,
    pub msg: String,
    /// The source line containing `pos` (empty if the source was empty).
    pub src_line: String,
}

impl ParseError {
    /// Build an error at byte `pos` of `src`, resolving the line/column
    /// span and capturing the offending line for the caret snippet.
    pub fn at(src: &str, pos: usize, msg: impl Into<String>) -> Self {
        let pos = pos.min(src.len());
        let before = &src[..pos];
        let line = before.matches('\n').count() + 1;
        let line_start = before.rfind('\n').map(|i| i + 1).unwrap_or(0);
        let col = src[line_start..pos].chars().count() + 1;
        let line_end = src[pos..].find('\n').map(|i| pos + i).unwrap_or(src.len());
        ParseError {
            pos,
            line,
            col,
            msg: msg.into(),
            src_line: src[line_start..line_end].to_string(),
        }
    }

    /// Render the offending line with a `^` caret under the error column,
    /// `rustc`-style:
    ///
    /// ```text
    ///   |
    /// 3 | minimize in f(C).
    ///   |          ^
    /// ```
    pub fn caret_snippet(&self) -> String {
        let gutter = self.line.to_string();
        let pad = " ".repeat(gutter.len());
        let caret_indent = " ".repeat(self.col.saturating_sub(1));
        format!(
            "{pad} |\n{gutter} | {line}\n{pad} | {caret_indent}^",
            line = self.src_line
        )
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parse error at line {}, column {}: {}\n{}",
            self.line,
            self.col,
            self.msg,
            self.caret_snippet()
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    src: String,
    toks: Vec<(usize, Tok)>,
    i: usize,
}

const CMP_OPS: [&str; 7] = ["==", "\\==", "=<", ">=", "=:=", "<", ">"];

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        let toks = lex(src).map_err(|e| ParseError::at(src, e.pos, e.msg))?;
        Ok(Parser {
            src: src.to_string(),
            toks,
            i: 0,
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|(_, t)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.i + 1).map(|(_, t)| t)
    }

    fn pos(&self) -> usize {
        self.toks
            .get(self.i)
            .or_else(|| self.toks.last())
            .map(|(p, _)| *p)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).map(|(_, t)| t.clone());
        self.i += 1;
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError::at(&self.src, self.pos(), msg))
    }

    fn eat(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.peek() == Some(t) {
            self.i += 1;
            Ok(())
        } else {
            self.err(format!("expected {t:?}, found {:?}", self.peek()))
        }
    }

    fn eat_atom(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Atom(a)) if a == word) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    // -- terms ------------------------------------------------------------

    /// primary := Num | Var | atom['(' args ')'] | '[' list ']' | '(' expr ')'
    ///          | '-' primary | '!'
    fn primary(&mut self) -> Result<Term, ParseError> {
        match self.next() {
            Some(Tok::Num(x)) => Ok(Term::Num(x)),
            Some(Tok::Var(v)) => Ok(Term::Var(v)),
            Some(Tok::Cut) => Ok(Term::atom("!")),
            Some(Tok::Atom(a)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.i += 1;
                    let mut args = vec![self.expr()?];
                    while self.peek() == Some(&Tok::Comma) {
                        self.i += 1;
                        args.push(self.expr()?);
                    }
                    self.eat(&Tok::RParen)?;
                    Ok(Term::Compound(a, args))
                } else {
                    Ok(Term::Atom(a))
                }
            }
            Some(Tok::LBracket) => {
                if self.peek() == Some(&Tok::RBracket) {
                    self.i += 1;
                    return Ok(Term::nil());
                }
                let mut items = vec![self.expr()?];
                while self.peek() == Some(&Tok::Comma) {
                    self.i += 1;
                    items.push(self.expr()?);
                }
                let tail = if self.peek() == Some(&Tok::Bar) {
                    self.i += 1;
                    Some(Box::new(self.expr()?))
                } else {
                    None
                };
                self.eat(&Tok::RBracket)?;
                Ok(Term::List(items, tail))
            }
            Some(Tok::LParen) => {
                let t = self.expr()?;
                self.eat(&Tok::RParen)?;
                Ok(t)
            }
            Some(Tok::Op(op)) if op == "-" => {
                let t = self.primary()?;
                Ok(match t {
                    Term::Num(x) => Term::Num(-x),
                    other => Term::compound("-", vec![other]),
                })
            }
            other => self.err(format!("expected a term, found {other:?}")),
        }
    }

    fn mul(&mut self) -> Result<Term, ParseError> {
        let mut t = self.primary()?;
        while let Some(Tok::Op(op)) = self.peek() {
            if op == "*" || op == "/" {
                let op = op.clone();
                self.i += 1;
                let rhs = self.primary()?;
                t = Term::Compound(op, vec![t, rhs]);
            } else {
                break;
            }
        }
        Ok(t)
    }

    /// Arithmetic expression (no comparison operators).
    fn expr(&mut self) -> Result<Term, ParseError> {
        let mut t = self.mul()?;
        while let Some(Tok::Op(op)) = self.peek() {
            if op == "+" || op == "-" {
                let op = op.clone();
                self.i += 1;
                let rhs = self.mul()?;
                t = Term::Compound(op, vec![t, rhs]);
            } else {
                break;
            }
        }
        Ok(t)
    }

    /// A body goal: expr, optionally followed by a comparison operator, the
    /// `is` keyword, or `=`.
    fn goal(&mut self) -> Result<Term, ParseError> {
        let lhs = self.expr()?;
        match self.peek() {
            Some(Tok::Op(op)) if CMP_OPS.contains(&op.as_str()) || op == "=" => {
                let op = op.clone();
                self.i += 1;
                let rhs = self.expr()?;
                Ok(Term::Compound(op, vec![lhs, rhs]))
            }
            Some(Tok::Atom(a)) if a == "is" => {
                self.i += 1;
                let rhs = self.expr()?;
                Ok(Term::Compound("is".into(), vec![lhs, rhs]))
            }
            _ => Ok(lhs),
        }
    }

    fn goal_list_until_dot(&mut self) -> Result<Vec<Term>, ParseError> {
        let mut goals = vec![self.goal()?];
        loop {
            match self.peek() {
                Some(Tok::Comma) => {
                    self.i += 1;
                    goals.push(self.goal()?);
                }
                Some(Tok::Dot) => {
                    self.i += 1;
                    return Ok(goals);
                }
                other => return self.err(format!("expected ',' or '.', found {other:?}")),
            }
        }
    }

    // -- statements --------------------------------------------------------

    fn clause(&mut self, head: Term) -> Result<Clause, ParseError> {
        match self.peek() {
            Some(Tok::Dot) => {
                self.i += 1;
                Ok(Clause::fact(head))
            }
            Some(Tok::Neck) => {
                self.i += 1;
                Ok(Clause::rule(head, self.goal_list_until_dot()?))
            }
            other => self.err(format!("expected '.' or ':-', found {other:?}")),
        }
    }

    fn constraint_kind(&mut self) -> Result<ConstraintKind, ParseError> {
        let t = self.goal()?;
        let bad = |p: &Self| {
            p.err::<ConstraintKind>(
                "constraint must be deadline(p,b), budget(p,b), atmost(b) or atleast(b)",
            )
        };
        match &t {
            Term::Compound(f, args) if f == "deadline" && args.len() == 2 => {
                match (args[0].as_num(), args[1].as_num()) {
                    (Some(p), Some(b)) => Ok(ConstraintKind::Deadline {
                        percentile: p,
                        bound: b,
                    }),
                    _ => bad(self),
                }
            }
            Term::Compound(f, args) if f == "budget" && args.len() == 2 => {
                match (args[0].as_num(), args[1].as_num()) {
                    (Some(p), Some(b)) => Ok(ConstraintKind::Budget {
                        percentile: p,
                        bound: b,
                    }),
                    _ => bad(self),
                }
            }
            Term::Compound(f, args) if f == "atmost" && args.len() == 1 => match args[0].as_num() {
                Some(b) => Ok(ConstraintKind::AtMost { bound: b }),
                None => bad(self),
            },
            Term::Compound(f, args) if f == "atleast" && args.len() == 1 => {
                match args[0].as_num() {
                    Some(b) => Ok(ConstraintKind::AtLeast { bound: b }),
                    None => bad(self),
                }
            }
            _ => bad(self),
        }
    }

    fn program(&mut self) -> Result<WlogProgram, ParseError> {
        let mut prog = WlogProgram::default();
        while self.peek().is_some() {
            // import(name).
            if matches!(self.peek(), Some(Tok::Atom(a)) if a == "import")
                && self.peek2() == Some(&Tok::LParen)
            {
                self.i += 2;
                let name = match self.next() {
                    Some(Tok::Atom(a)) => a,
                    other => return self.err(format!("import expects an atom, found {other:?}")),
                };
                self.eat(&Tok::RParen)?;
                self.eat(&Tok::Dot)?;
                prog.imports.push(name);
                continue;
            }
            // enabled(astar).
            if matches!(self.peek(), Some(Tok::Atom(a)) if a == "enabled")
                && self.peek2() == Some(&Tok::LParen)
            {
                self.i += 2;
                if !self.eat_atom("astar") {
                    return self.err("enabled(...) currently supports only astar");
                }
                self.eat(&Tok::RParen)?;
                self.eat(&Tok::Dot)?;
                prog.astar = true;
                continue;
            }
            // minimize/maximize V in query.
            if matches!(self.peek(), Some(Tok::Atom(a)) if a == "minimize" || a == "maximize") {
                let kind = if self.eat_atom("minimize") {
                    GoalKind::Minimize
                } else {
                    self.i += 1;
                    GoalKind::Maximize
                };
                let var = match self.next() {
                    Some(Tok::Var(v)) => v,
                    other => return self.err(format!("goal expects a variable, found {other:?}")),
                };
                if !self.eat_atom("in") {
                    return self.err("goal expects 'in' after the variable");
                }
                let query = self.goal()?;
                self.eat(&Tok::Dot)?;
                if prog.goal.is_some() {
                    return self.err("multiple optimization goals");
                }
                prog.goal = Some(Goal { kind, var, query });
                continue;
            }
            // `V in query satisfies cons.` — constraint statement.
            if matches!(self.peek(), Some(Tok::Var(_)))
                && matches!(self.peek2(), Some(Tok::Atom(a)) if a == "in")
            {
                let var = match self.next() {
                    Some(Tok::Var(v)) => v,
                    _ => unreachable!(),
                };
                self.i += 1; // 'in'
                let query = self.goal()?;
                if !self.eat_atom("satisfies") {
                    return self.err("constraint expects 'satisfies'");
                }
                let kind = self.constraint_kind()?;
                self.eat(&Tok::Dot)?;
                prog.constraints.push(Constraint { var, query, kind });
                continue;
            }
            // Generic head: var declaration or clause.
            let head = self.goal()?;
            if self.eat_atom("forall") {
                let mut ranges = vec![self.goal()?];
                while self.eat_atom("and") {
                    ranges.push(self.goal()?);
                }
                self.eat(&Tok::Dot)?;
                prog.vars.push(VarDecl {
                    template: head,
                    ranges,
                });
                continue;
            }
            prog.clauses.push(self.clause(head)?);
        }
        Ok(prog)
    }
}

/// Parse a sequence of plain ProLog clauses (no WLog statements).
pub fn parse_clauses(src: &str) -> Result<Vec<Clause>, ParseError> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    while p.peek().is_some() {
        let head = p.goal()?;
        out.push(p.clause(head)?);
    }
    Ok(out)
}

/// Parse a query: a comma-separated conjunction of goals (no final dot
/// needed). Conjunctions become right-nested `','/2` terms.
pub fn parse_query(src: &str) -> Result<Term, ParseError> {
    let mut p = Parser::new(src)?;
    let mut goals = vec![p.goal()?];
    while p.peek() == Some(&Tok::Comma) {
        p.i += 1;
        goals.push(p.goal()?);
    }
    if p.peek() == Some(&Tok::Dot) {
        p.i += 1;
    }
    if p.peek().is_some() {
        return p.err("trailing tokens after query");
    }
    Ok(goals
        .into_iter()
        .rev()
        .reduce(|acc, g| Term::Compound(",".into(), vec![g, acc]))
        .expect("at least one goal"))
}

/// Parse a complete WLog program (Example 1's shape).
pub fn parse_program(src: &str) -> Result<WlogProgram, ParseError> {
    Parser::new(src)?.program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_facts_and_rules() {
        let cs = parse_clauses("p(a). q(X) :- p(X), X \\== b.").unwrap();
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].to_string(), "p(a).");
        assert_eq!(cs[1].to_string(), "q(X) :- p(X), \\==(X,b).");
    }

    #[test]
    fn arithmetic_precedence() {
        let cs = parse_clauses("r(C) :- C is 1+2*3.").unwrap();
        assert_eq!(cs[0].to_string(), "r(C) :- is(C,+(1,*(2,3))).");
        let cs = parse_clauses("r(C) :- C is (1+2)*3.").unwrap();
        assert_eq!(cs[0].to_string(), "r(C) :- is(C,*(+(1,2),3)).");
    }

    #[test]
    fn negative_numbers_fold() {
        let cs = parse_clauses("n(-3.5).").unwrap();
        assert_eq!(cs[0].head, Term::compound("n", vec![Term::num(-3.5)]));
    }

    #[test]
    fn lists_and_cut() {
        let cs = parse_clauses("f([H|T]) :- g(H), !, f(T).").unwrap();
        assert_eq!(cs[0].to_string(), "f([H|T]) :- g(H), !, f(T).");
    }

    #[test]
    fn query_conjunction_nests() {
        let q = parse_query("a(X), b(X), c").unwrap();
        assert_eq!(q.to_string(), ",(a(X),,(b(X),c))");
    }

    #[test]
    fn example1_program_parses() {
        // The complete Example 1 of the paper.
        let src = r#"
import(amazonec2).
import(montage).
minimize Ct in totalcost(Ct).
T in maxtime(Path,T) satisfies deadline(95%,10h).
configs(Tid,Vid,Con) forall task(Tid) and vm(Vid).

/*calculate the time on the edge from X to Y*/
path(X,Y,Y,Tp) :- edge(X,Y), exetime(X,Vid,T),
configs(X,Vid,Con), Con==1, Tp is T.
/*calculate the time on the path from X to Y*/
path(X,Y,Z,Tp) :- edge(X,Z), Z\==Y,
path(Z,Y,Z2,T1), exetime(X,Vid,T),
configs(X,Vid,Con), Con==1, Tp is T+T1.
/*critical path from root to tail*/
maxtime(Path,T) :- setof([Z,T1],
path(root,tail,Z,T1), Set), max(Set, [Path,T]).
cost(Tid,Vid,C) :- price(Vid,Up),
exetime(Tid,Vid,T), configs(Tid,Vid,Con), C is
T*Up*Con.
totalcost(Ct) :- findall(C, cost(Tid,Vid,C),
Bag), sum(Bag, Ct).
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.imports, vec!["amazonec2", "montage"]);
        let g = p.goal.as_ref().unwrap();
        assert_eq!(g.kind, GoalKind::Minimize);
        assert_eq!(g.var, "Ct");
        assert_eq!(g.query.to_string(), "totalcost(Ct)");
        assert_eq!(p.constraints.len(), 1);
        match p.constraints[0].kind {
            ConstraintKind::Deadline { percentile, bound } => {
                assert!((percentile - 0.95).abs() < 1e-12);
                assert!((bound - 36000.0).abs() < 1e-9);
            }
            _ => panic!("wrong constraint kind"),
        }
        assert_eq!(p.vars.len(), 1);
        assert_eq!(p.vars[0].template.to_string(), "configs(Tid,Vid,Con)");
        assert_eq!(p.vars[0].ranges.len(), 2);
        assert_eq!(p.clauses.len(), 5);
        assert!(!p.astar);
    }

    #[test]
    fn astar_block_parses() {
        let src =
            "enabled(astar).\ncal_g_score(C) :- totalcost(C).\nest_h_score(C) :- totalcost(C).";
        let p = parse_program(src).unwrap();
        assert!(p.astar);
        assert_eq!(p.clauses.len(), 2);
    }

    #[test]
    fn budget_constraint_parses() {
        let p = parse_program("C in totalcost(C) satisfies budget(90%, 50).").unwrap();
        match p.constraints[0].kind {
            ConstraintKind::Budget { percentile, bound } => {
                assert!((percentile - 0.9).abs() < 1e-12);
                assert_eq!(bound, 50.0);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn deterministic_constraints_parse() {
        let p = parse_program("T in maxtime(P,T) satisfies atmost(100).").unwrap();
        assert!(matches!(
            p.constraints[0].kind,
            ConstraintKind::AtMost { bound } if bound == 100.0
        ));
        let p = parse_program("S in score(S) satisfies atleast(2).").unwrap();
        assert!(matches!(
            p.constraints[0].kind,
            ConstraintKind::AtLeast { bound } if bound == 2.0
        ));
    }

    #[test]
    fn rejects_double_goal() {
        let src = "minimize C in f(C). maximize D in g(D).";
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_clauses("p(a) q(b).").is_err());
        assert!(parse_query("p(a) extra").is_err());
        assert!(parse_program("minimize in f(C).").is_err());
    }

    #[test]
    fn golden_caret_snippet_goal_without_variable() {
        let e = parse_program("minimize in f(C).").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(
            e.to_string(),
            "parse error at line 1, column 13: goal expects a variable, found Some(Atom(\"in\"))\n  \
             |\n\
             1 | minimize in f(C).\n  \
             |             ^"
        );
    }

    #[test]
    fn golden_caret_snippet_bad_constraint_mid_program() {
        let src = "import(amazonec2).\n\
                   minimize Ct in totalcost(Ct).\n\
                   T in maxtime(P,T) satisfies frob(95, 10).\n";
        let e = parse_program(src).unwrap_err();
        assert_eq!((e.line, e.col), (3, 41));
        assert_eq!(
            e.to_string(),
            "parse error at line 3, column 41: constraint must be deadline(p,b), budget(p,b), atmost(b) or atleast(b)\n  \
             |\n\
             3 | T in maxtime(P,T) satisfies frob(95, 10).\n  \
             |                                         ^"
        );
    }

    #[test]
    fn caret_spans_survive_eof_and_empty_sources() {
        let e = parse_program("p(a)").unwrap_err();
        assert!(e.line >= 1 && e.col >= 1);
        let e = parse_query("").unwrap_err();
        assert_eq!((e.line, e.col), (1, 1));
        assert_eq!(e.src_line, "");
    }
}
