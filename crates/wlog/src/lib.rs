// User-facing paths return typed errors; panicking shortcuts are banned
// from library code (tests may still unwrap).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! WLog — the declarative specification language of Deco (Section 4).
//!
//! WLog extends ProLog in two directions: constructs for scientific
//! workflows and IaaS clouds (`import`, `deadline(p, d)`, `budget(p, b)`,
//! `goal` / `cons` / `var` sections, `enabled(astar)`), and a probabilistic
//! notion of goals and constraints to capture cloud dynamics. A WLog
//! program is translated into a *probabilistic intermediate representation*
//! (ProbLog-style weighted rules, Section 5.1) and evaluated with Monte
//! Carlo approximate inference (Section 5.2, Algorithm 1).
//!
//! Layering:
//!
//! * [`ast`] — terms, clauses, and the WLog program structure.
//! * [`lexer`] / [`parser`] — concrete syntax, including the `95%` / `10h`
//!   literals of constraint built-ins.
//! * [`unify`] — substitutions and unification.
//! * [`machine`] — SLD resolution with backtracking, cut, and the ProLog
//!   built-ins (`is`, comparisons, `findall`, `setof`, `sum`, `max`, …).
//! * [`problog`] — the probabilistic IR: weighted rules, annotated
//!   disjunctions (one alternative per histogram bin), and Monte-Carlo
//!   query evaluation.
//! * [`program`] — the top-level WLog program: sections, imports, and the
//!   evaluation entry points the Deco engine calls per searched state.

pub mod ast;
pub mod lexer;
pub mod machine;
pub mod parser;
pub mod problog;
pub mod program;
pub mod unify;

pub use ast::{Clause, Term};
pub use machine::Machine;
pub use problog::{ProbProgram, ProbRule};
pub use program::{Constraint, ConstraintKind, Goal, GoalKind, WlogError, WlogProgram};
