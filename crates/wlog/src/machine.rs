//! The WLog interpreter: SLD resolution with backtracking, cut, and the
//! ProLog built-ins the paper's programs use (Section 4.1).
//!
//! Resolution is continuation-by-concatenation: expanding a call pushes the
//! clause body in front of the remaining goals. Cut is compiled at clause
//! activation into `$cut(id)` where `id` identifies the activation's
//! choice-point frame, so a cut prunes exactly the clause alternatives of
//! its own predicate call.

use crate::ast::{Clause, Term};
use crate::unify::{term_cmp, Bindings};
use std::collections::HashMap;

/// Outcome signal threaded through the resolution stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    /// Branch exhausted; keep backtracking.
    Continue,
    /// The solution consumer asked to stop the whole search.
    Stop,
    /// A cut fired; prune choice points up to the activation `id`.
    Cut(u64),
}

/// Errors raised during interpretation (bad arithmetic, unknown builtins
/// used wrongly, …). Unknown *predicates* simply fail, as in ProLog.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineError(pub String);

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wlog runtime error: {}", self.0)
    }
}

impl std::error::Error for MachineError {}

/// A clause database indexed by functor/arity.
#[derive(Debug, Default, Clone)]
pub struct Database {
    clauses: HashMap<(String, usize), Vec<Clause>>,
}

impl Database {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a clause whose head has already been validated as callable
    /// (atom or compound). Pre-validated internal paths use this; anything
    /// consuming user input goes through [`Database::try_assert`].
    pub fn assert(&mut self, c: Clause) {
        self.try_assert(c).expect("clause head must be callable");
    }

    /// Add a clause, rejecting non-callable heads (e.g. the fact `5.`,
    /// which parses but cannot be indexed) instead of panicking.
    pub fn try_assert(&mut self, c: Clause) -> Result<(), MachineError> {
        let (f, n) = c
            .head
            .functor()
            .map(|(f, n)| (f.to_string(), n))
            .ok_or_else(|| MachineError(format!("clause head is not callable: {}", c.head)))?;
        self.clauses.entry((f, n)).or_default().push(c);
        Ok(())
    }

    pub fn assert_fact(&mut self, head: Term) {
        self.assert(Clause::fact(head));
    }

    /// Remove every clause of a functor/arity (used to swap per-state
    /// `configs` facts between search states).
    pub fn retract_all(&mut self, functor: &str, arity: usize) {
        self.clauses.remove(&(functor.to_string(), arity));
    }

    fn matching(&self, t: &Term) -> &[Clause] {
        t.functor()
            .and_then(|(f, n)| self.clauses.get(&(f.to_string(), n)))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    pub fn len(&self) -> usize {
        self.clauses.values().map(|v| v.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }
}

/// The interpreter. Owns the rename counter; borrows the database per
/// query so the engine can mutate facts between queries.
pub struct Machine {
    pub db: Database,
    /// Facts layered on top of `db` without mutating it — the Monte-Carlo
    /// evaluator swaps one sampled realization in and out per iteration,
    /// and the solver swaps per-state `configs` facts.
    pub overlay: Database,
    counter: u64,
    /// Backtracking-step budget per query; guards against runaway searches
    /// in user programs (None = unlimited).
    pub step_limit: Option<u64>,
    steps: u64,
}

impl Machine {
    pub fn new(db: Database) -> Self {
        Machine {
            db,
            overlay: Database::new(),
            counter: 0,
            step_limit: None,
            steps: 0,
        }
    }

    /// All solutions of `query`, each reported as the resolved query term.
    pub fn solve_all(&mut self, query: &Term) -> Result<Vec<Term>, MachineError> {
        let mut out = Vec::new();
        self.run(query, &mut |b| {
            out.push(b.resolve(query));
            true
        })?;
        Ok(out)
    }

    /// First solution, if any, as the resolved query term.
    pub fn solve_first(&mut self, query: &Term) -> Result<Option<Term>, MachineError> {
        let mut out = None;
        self.run(query, &mut |b| {
            out = Some(b.resolve(query));
            false
        })?;
        Ok(out)
    }

    /// Whether the query has at least one solution.
    pub fn provable(&mut self, query: &Term) -> Result<bool, MachineError> {
        Ok(self.solve_first(query)?.is_some())
    }

    /// Stack reserved for a query's resolution. SLD resolution recurses one
    /// Rust frame per resolution step, so deep derivations (long findall
    /// sweeps over 1000-task workflows) need far more stack than a default
    /// thread provides; each query runs on a dedicated big-stack thread.
    const QUERY_STACK_BYTES: usize = 256 * 1024 * 1024;

    /// Run a closure on a dedicated thread with [`Self::QUERY_STACK_BYTES`]
    /// of stack. Batch evaluators (Monte-Carlo loops) wrap their whole loop
    /// in one call instead of paying a thread spawn per query.
    pub fn on_big_stack<R: Send>(f: impl FnOnce() -> R + Send) -> R {
        std::thread::scope(|scope| {
            std::thread::Builder::new()
                .stack_size(Self::QUERY_STACK_BYTES)
                .spawn_scoped(scope, f)
                .expect("failed to spawn query thread")
                .join()
                .expect("query thread panicked")
        })
    }

    /// Run `query`, invoking `on_solution` with the bindings for each
    /// solution; the callback returns `false` to stop the search.
    pub fn run(
        &mut self,
        query: &Term,
        on_solution: &mut (dyn FnMut(&Bindings) -> bool + Send),
    ) -> Result<(), MachineError> {
        let this = &mut *self;
        let q = query;
        Self::on_big_stack(move || this.run_local(q, on_solution))
    }

    /// Like [`Machine::run`] but on the caller's stack. Only safe to call
    /// from inside [`Machine::on_big_stack`] (or for shallow programs).
    pub fn run_local(
        &mut self,
        query: &Term,
        on_solution: &mut dyn FnMut(&Bindings) -> bool,
    ) -> Result<(), MachineError> {
        self.steps = 0;
        let mut b = Bindings::new();
        self.solve(std::slice::from_ref(query), &mut b, on_solution)
            .map(|_| ())
    }

    fn budget(&mut self) -> Result<(), MachineError> {
        self.steps += 1;
        if let Some(limit) = self.step_limit {
            if self.steps > limit {
                return Err(MachineError(format!("step limit {limit} exceeded")));
            }
        }
        Ok(())
    }

    fn solve(
        &mut self,
        goals: &[Term],
        b: &mut Bindings,
        f: &mut dyn FnMut(&Bindings) -> bool,
    ) -> Result<Flow, MachineError> {
        self.budget()?;
        let Some(goal) = goals.first() else {
            return Ok(if f(b) { Flow::Continue } else { Flow::Stop });
        };
        let rest = &goals[1..];
        let g = b.walk(goal).clone();
        match &g {
            // Conjunction goal (from queries): flatten into the goal list.
            Term::Compound(op, args) if op == "," && args.len() == 2 => {
                let mut new_goals = vec![args[0].clone(), args[1].clone()];
                new_goals.extend_from_slice(rest);
                self.solve(&new_goals, b, f)
            }
            Term::Compound(op, args) if op == "$cut" && args.len() == 1 => {
                // `$cut` is compiled from `!` with a numeric frame id; a
                // hand-written `$cut(x)` must not crash the interpreter.
                let id = args[0]
                    .as_num()
                    .ok_or_else(|| MachineError("malformed $cut barrier".into()))?
                    as u64;
                match self.solve(rest, b, f)? {
                    Flow::Continue => Ok(Flow::Cut(id)),
                    other => Ok(other),
                }
            }
            Term::Atom(a) if a == "true" => self.solve(rest, b, f),
            Term::Atom(a) if a == "fail" || a == "false" => Ok(Flow::Continue),
            _ if self.is_builtin(&g) => self.call_builtin(&g, rest, b, f),
            Term::Atom(_) | Term::Compound(..) => self.call_user(&g, rest, b, f),
            other => Err(MachineError(format!("goal is not callable: {other}"))),
        }
    }

    fn call_user(
        &mut self,
        g: &Term,
        rest: &[Term],
        b: &mut Bindings,
        f: &mut dyn FnMut(&Bindings) -> bool,
    ) -> Result<Flow, MachineError> {
        self.counter += 1;
        let frame_id = self.counter;
        let mut candidates: Vec<Clause> = self.db.matching(g).to_vec();
        candidates.extend_from_slice(self.overlay.matching(g));
        for clause in candidates {
            let activated = clause.rename(&mut self.counter);
            // Compile top-level cuts in the body to this frame's barrier.
            let body: Vec<Term> = activated
                .body
                .iter()
                .map(|t| match t {
                    Term::Atom(a) if a == "!" => {
                        Term::compound("$cut", vec![Term::num(frame_id as f64)])
                    }
                    other => other.clone(),
                })
                .collect();
            let mark = b.mark();
            if b.unify(g, &activated.head) {
                let mut new_goals = body;
                new_goals.extend_from_slice(rest);
                match self.solve(&new_goals, b, f)? {
                    Flow::Continue => {}
                    Flow::Cut(id) if id == frame_id => {
                        b.undo(mark);
                        return Ok(Flow::Continue);
                    }
                    other => return Ok(other),
                }
            }
            b.undo(mark);
        }
        Ok(Flow::Continue)
    }

    fn is_builtin(&self, g: &Term) -> bool {
        matches!(
            g.functor(),
            Some(("is", 2))
                | Some(("<", 2))
                | Some((">", 2))
                | Some(("=<", 2))
                | Some((">=", 2))
                | Some(("=:=", 2))
                | Some(("==", 2))
                | Some(("\\==", 2))
                | Some(("=", 2))
                | Some(("findall", 3))
                | Some(("setof", 3))
                | Some(("sum", 2))
                | Some(("max", 2))
                | Some(("min", 2))
                | Some(("length", 2))
                | Some(("member", 2))
                | Some(("append", 3))
                | Some(("not", 1))
                | Some(("\\+", 1))
        )
    }

    fn call_builtin(
        &mut self,
        g: &Term,
        rest: &[Term],
        b: &mut Bindings,
        f: &mut dyn FnMut(&Bindings) -> bool,
    ) -> Result<Flow, MachineError> {
        let (name, args) = match g {
            Term::Compound(n, a) => (n.as_str(), a.clone()),
            _ => unreachable!("builtins are compounds"),
        };
        match (name, args.len()) {
            ("is", 2) => {
                let v = self.eval_arith(&args[1], b)?;
                let mark = b.mark();
                if b.unify(&args[0], &Term::Num(v)) {
                    let r = self.solve(rest, b, f)?;
                    if r != Flow::Continue {
                        return Ok(r);
                    }
                }
                b.undo(mark);
                Ok(Flow::Continue)
            }
            ("<", 2) | (">", 2) | ("=<", 2) | (">=", 2) | ("=:=", 2) => {
                let x = self.eval_arith(&args[0], b)?;
                let y = self.eval_arith(&args[1], b)?;
                let ok = match name {
                    "<" => x < y,
                    ">" => x > y,
                    "=<" => x <= y,
                    ">=" => x >= y,
                    _ => x == y,
                };
                if ok {
                    self.solve(rest, b, f)
                } else {
                    Ok(Flow::Continue)
                }
            }
            ("==", 2) | ("\\==", 2) => {
                let eq = b.resolve(&args[0]) == b.resolve(&args[1]);
                if eq == (name == "==") {
                    self.solve(rest, b, f)
                } else {
                    Ok(Flow::Continue)
                }
            }
            ("=", 2) => {
                let mark = b.mark();
                if b.unify(&args[0], &args[1]) {
                    let r = self.solve(rest, b, f)?;
                    if r != Flow::Continue {
                        return Ok(r);
                    }
                }
                b.undo(mark);
                Ok(Flow::Continue)
            }
            ("findall", 3) => {
                let collected = self.collect(&args[0], &args[1], b)?;
                let mark = b.mark();
                if b.unify(&args[2], &Term::list(collected)) {
                    let r = self.solve(rest, b, f)?;
                    if r != Flow::Continue {
                        return Ok(r);
                    }
                }
                b.undo(mark);
                Ok(Flow::Continue)
            }
            ("setof", 3) => {
                let mut collected = self.collect(&args[0], &args[1], b)?;
                collected.sort_by(term_cmp);
                collected.dedup();
                if collected.is_empty() {
                    return Ok(Flow::Continue); // setof fails on empty
                }
                let mark = b.mark();
                if b.unify(&args[2], &Term::list(collected)) {
                    let r = self.solve(rest, b, f)?;
                    if r != Flow::Continue {
                        return Ok(r);
                    }
                }
                b.undo(mark);
                Ok(Flow::Continue)
            }
            ("sum", 2) => {
                let items = self.list_items(&args[0], b)?;
                let mut s = 0.0;
                for it in &items {
                    s += it
                        .as_num()
                        .ok_or_else(|| MachineError(format!("sum: non-number {it}")))?;
                }
                let mark = b.mark();
                if b.unify(&args[1], &Term::Num(s)) {
                    let r = self.solve(rest, b, f)?;
                    if r != Flow::Continue {
                        return Ok(r);
                    }
                }
                b.undo(mark);
                Ok(Flow::Continue)
            }
            ("max", 2) | ("min", 2) => {
                let items = self.list_items(&args[0], b)?;
                if items.is_empty() {
                    return Ok(Flow::Continue);
                }
                let key = |t: &Term| -> f64 {
                    match t {
                        Term::Num(x) => *x,
                        // Pair convention of Example 1: [Tag, Value] compares
                        // by the trailing numeric value.
                        Term::List(xs, _) => xs.last().and_then(Term::as_num).unwrap_or(f64::NAN),
                        _ => f64::NAN,
                    }
                };
                let Some(best) = items
                    .iter()
                    .max_by(|a, c| {
                        let (ka, kc) = (key(a), key(c));
                        let ord = ka.partial_cmp(&kc).unwrap_or(std::cmp::Ordering::Equal);
                        if name == "max" {
                            ord
                        } else {
                            ord.reverse()
                        }
                    })
                    .cloned()
                else {
                    return Ok(Flow::Continue);
                };
                let mark = b.mark();
                if b.unify(&args[1], &best) {
                    let r = self.solve(rest, b, f)?;
                    if r != Flow::Continue {
                        return Ok(r);
                    }
                }
                b.undo(mark);
                Ok(Flow::Continue)
            }
            ("length", 2) => {
                let items = self.list_items(&args[0], b)?;
                let mark = b.mark();
                if b.unify(&args[1], &Term::Num(items.len() as f64)) {
                    let r = self.solve(rest, b, f)?;
                    if r != Flow::Continue {
                        return Ok(r);
                    }
                }
                b.undo(mark);
                Ok(Flow::Continue)
            }
            ("member", 2) => {
                let items = self.list_items(&args[1], b)?;
                for it in items {
                    let mark = b.mark();
                    if b.unify(&args[0], &it) {
                        let r = self.solve(rest, b, f)?;
                        if r != Flow::Continue {
                            return Ok(r);
                        }
                    }
                    b.undo(mark);
                }
                Ok(Flow::Continue)
            }
            ("append", 3) => {
                // Enumerate splits when the first two are unbound; fast path
                // when both are proper lists.
                let a0 = b.resolve(&args[0]);
                let a1 = b.resolve(&args[1]);
                if let (Term::List(x, None), Term::List(y, None)) = (&a0, &a1) {
                    let mut joined = x.clone();
                    joined.extend(y.iter().cloned());
                    let mark = b.mark();
                    if b.unify(&args[2], &Term::list(joined)) {
                        let r = self.solve(rest, b, f)?;
                        if r != Flow::Continue {
                            return Ok(r);
                        }
                    }
                    b.undo(mark);
                    return Ok(Flow::Continue);
                }
                let items = self.list_items(&args[2], b)?;
                for split in 0..=items.len() {
                    let mark = b.mark();
                    if b.unify(&args[0], &Term::list(items[..split].to_vec()))
                        && b.unify(&args[1], &Term::list(items[split..].to_vec()))
                    {
                        let r = self.solve(rest, b, f)?;
                        if r != Flow::Continue {
                            return Ok(r);
                        }
                    }
                    b.undo(mark);
                }
                Ok(Flow::Continue)
            }
            ("not", 1) | ("\\+", 1) => {
                let goal = b.resolve(&args[0]);
                let mut found = false;
                let mut inner = Bindings::new();
                self.solve(&[goal], &mut inner, &mut |_| {
                    found = true;
                    false
                })?;
                if found {
                    Ok(Flow::Continue)
                } else {
                    self.solve(rest, b, f)
                }
            }
            _ => unreachable!("is_builtin and call_builtin disagree on {name}"),
        }
    }

    /// Collect all instantiations of `template` under solutions of `goal`.
    fn collect(
        &mut self,
        template: &Term,
        goal: &Term,
        b: &mut Bindings,
    ) -> Result<Vec<Term>, MachineError> {
        let goal = b.resolve(goal);
        let template = b.resolve(template);
        let mut out = Vec::new();
        let mut inner = Bindings::new();
        self.solve(&[goal], &mut inner, &mut |bb| {
            out.push(bb.resolve(&template));
            true
        })?;
        Ok(out)
    }

    /// Resolve a proper list into its items.
    fn list_items(&self, t: &Term, b: &Bindings) -> Result<Vec<Term>, MachineError> {
        match b.resolve(t) {
            Term::List(items, None) => Ok(items),
            other => Err(MachineError(format!("expected a proper list, got {other}"))),
        }
    }

    /// Arithmetic evaluation for `is` and comparisons.
    fn eval_arith(&self, t: &Term, b: &Bindings) -> Result<f64, MachineError> {
        let t = b.walk(t).clone();
        match &t {
            Term::Num(x) => Ok(*x),
            Term::Compound(op, args) if args.len() == 2 => {
                let x = self.eval_arith(&args[0], b)?;
                let y = self.eval_arith(&args[1], b)?;
                match op.as_str() {
                    "+" => Ok(x + y),
                    "-" => Ok(x - y),
                    "*" => Ok(x * y),
                    "/" => {
                        if y == 0.0 {
                            Err(MachineError("division by zero".into()))
                        } else {
                            Ok(x / y)
                        }
                    }
                    "min" => Ok(x.min(y)),
                    "max" => Ok(x.max(y)),
                    "pow" => Ok(x.powf(y)),
                    _ => Err(MachineError(format!("unknown arithmetic operator {op}"))),
                }
            }
            Term::Compound(op, args) if args.len() == 1 && op == "-" => {
                Ok(-self.eval_arith(&args[0], b)?)
            }
            Term::Var(v) => Err(MachineError(format!("unbound variable {v} in arithmetic"))),
            other => Err(MachineError(format!("non-arithmetic term {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_clauses;

    fn machine(src: &str) -> Machine {
        let mut db = Database::new();
        for c in parse_clauses(src).unwrap() {
            db.assert(c);
        }
        Machine::new(db)
    }

    fn q(m: &mut Machine, query: &str) -> Vec<String> {
        let t = crate::parser::parse_query(query).unwrap();
        m.solve_all(&t)
            .unwrap()
            .into_iter()
            .map(|t| t.to_string())
            .collect()
    }

    #[test]
    fn facts_and_conjunction() {
        let mut m = machine("parent(a,b). parent(b,c). grand(X,Z) :- parent(X,Y), parent(Y,Z).");
        assert_eq!(q(&mut m, "grand(X,Z)"), vec!["grand(a,c)"]);
    }

    #[test]
    fn recursion_ancestor() {
        let mut m = machine(
            "parent(a,b). parent(b,c). parent(c,d).
             anc(X,Y) :- parent(X,Y).
             anc(X,Z) :- parent(X,Y), anc(Y,Z).",
        );
        let sols = q(&mut m, "anc(a,W)");
        assert_eq!(sols, vec!["anc(a,b)", "anc(a,c)", "anc(a,d)"]);
    }

    #[test]
    fn arithmetic_is() {
        let mut m = machine("double(X,Y) :- Y is X*2.");
        assert_eq!(q(&mut m, "double(21,Y)"), vec!["double(21,42)"]);
    }

    #[test]
    fn comparisons_filter() {
        let mut m = machine("n(1). n(2). n(3). big(X) :- n(X), X >= 2.");
        assert_eq!(q(&mut m, "big(X)"), vec!["big(2)", "big(3)"]);
    }

    #[test]
    fn structural_equality() {
        let mut m = machine("p(a). p(b). diff(X,Y) :- p(X), p(Y), X \\== Y.");
        assert_eq!(q(&mut m, "diff(X,Y)"), vec!["diff(a,b)", "diff(b,a)"]);
    }

    #[test]
    fn findall_collects_everything() {
        // The template variable stays unbound outside findall; only the
        // collected list is visible.
        let mut m = machine("n(1). n(2). n(3).");
        assert_eq!(
            q(&mut m, "findall(X, n(X), L)"),
            vec!["findall(X,n(X),[1,2,3])"]
        );
    }

    #[test]
    fn findall_then_sum() {
        let mut m = machine("cost(3). cost(4.5). total(S) :- findall(C, cost(C), L), sum(L, S).");
        assert_eq!(q(&mut m, "total(S)"), vec!["total(7.5)"]);
    }

    #[test]
    fn setof_sorts_and_dedups_and_fails_empty() {
        let mut m = machine("n(3). n(1). n(3).");
        assert_eq!(q(&mut m, "setof(X, n(X), L)"), vec!["setof(X,n(X),[1,3])"]);
        assert!(q(&mut m, "setof(X, zzz(X), L)").is_empty());
    }

    #[test]
    fn max_over_pairs_uses_trailing_value() {
        // Example 1's idiom: max(Set, [Path, T]) over [Z, T1] pairs.
        let mut m = machine("pair([a, 3]). pair([b, 7]). pair([c, 5]).");
        let sols = q(&mut m, "findall(P, pair(P), L), max(L, M)");
        assert_eq!(sols.len(), 1);
        assert!(sols[0].contains("[b,7]"), "got {}", sols[0]);
    }

    #[test]
    fn min_over_numbers() {
        let mut m = machine("");
        assert_eq!(q(&mut m, "min([3,1,2], M)"), vec!["min([3,1,2],1)"]);
    }

    #[test]
    fn cut_commits_to_first_clause() {
        let mut m = machine(
            "first(X) :- n(X), !.
             n(1). n(2). n(3).",
        );
        assert_eq!(q(&mut m, "first(X)"), vec!["first(1)"]);
    }

    #[test]
    fn cut_is_local_to_its_predicate() {
        let mut m = machine(
            "pick(X) :- n(X), !.
             n(1). n(2).
             outer(X,Y) :- m(Y), pick(X).
             m(a). m(b).",
        );
        // Cut inside pick/1 must not prune m/1's alternatives.
        assert_eq!(q(&mut m, "outer(X,Y)"), vec!["outer(1,a)", "outer(1,b)"]);
    }

    #[test]
    fn negation_as_failure() {
        let mut m = machine("n(1). n(2). absent(X) :- not(n(X)).");
        assert!(q(&mut m, "absent(3)").len() == 1);
        assert!(q(&mut m, "absent(1)").is_empty());
    }

    #[test]
    fn member_and_append_and_length() {
        let mut m = machine("");
        assert_eq!(
            q(&mut m, "member(X, [a,b])"),
            vec!["member(a,[a,b])", "member(b,[a,b])"]
        );
        assert_eq!(
            q(&mut m, "append([1],[2,3],L)"),
            vec!["append([1],[2,3],[1,2,3])"]
        );
        assert_eq!(q(&mut m, "length([a,b,c],N)"), vec!["length([a,b,c],3)"]);
    }

    #[test]
    fn unknown_predicate_fails_quietly() {
        let mut m = machine("p(a).");
        assert!(q(&mut m, "q(X)").is_empty());
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let mut m = machine("bad(Y) :- Y is 1/0.");
        let t = crate::parser::parse_query("bad(Y)").unwrap();
        assert!(m.solve_all(&t).is_err());
    }

    #[test]
    fn unbound_arithmetic_is_an_error() {
        let mut m = machine("");
        let t = crate::parser::parse_query("X is Y+1").unwrap();
        assert!(m.solve_all(&t).is_err());
    }

    #[test]
    fn step_limit_guards_infinite_loops() {
        let mut m = machine("loop :- loop.");
        m.step_limit = Some(10_000);
        let t = crate::parser::parse_query("loop").unwrap();
        assert!(m.solve_all(&t).is_err());
    }

    #[test]
    fn retract_all_swaps_facts() {
        let mut m = machine("cfg(t0, v0, 1).");
        assert_eq!(q(&mut m, "cfg(T,V,C)").len(), 1);
        m.db.retract_all("cfg", 3);
        assert!(q(&mut m, "cfg(T,V,C)").is_empty());
        m.db.assert_fact(crate::parser::parse_query("cfg(t0, v1, 1)").unwrap());
        assert_eq!(q(&mut m, "cfg(T,V,C)"), vec!["cfg(t0,v1,1)"]);
    }

    #[test]
    fn unification_builtin() {
        let mut m = machine("");
        assert_eq!(q(&mut m, "f(X,2) = f(1,Y)"), vec!["=(f(1,2),f(1,2))"]);
    }
}
