//! The top-level WLog program: sections, imports, and evaluation.
//!
//! A program carries (Example 1):
//! * `import(...)` statements naming a cloud and a workflow whose facts the
//!   engine injects,
//! * one optimization **goal** (`minimize Ct in totalcost(Ct)`),
//! * **constraints** with probabilistic (`deadline`, `budget`) or
//!   deterministic (`atmost`, `atleast`) semantics,
//! * **var** declarations naming the optimization variables and their
//!   ranges (`configs(Tid,Vid,Con) forall task(Tid) and vm(Vid)`),
//! * derivation rules (plain ProLog clauses), and
//! * optionally `enabled(astar)` with `cal_g_score` / `est_h_score`
//!   heuristic predicates.

use crate::ast::{Clause, Term};
use crate::machine::MachineError;
use crate::parser::{parse_program, ParseError};

/// Direction of the optimization goal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoalKind {
    Minimize,
    Maximize,
}

/// `minimize V in query.`
#[derive(Debug, Clone, PartialEq)]
pub struct Goal {
    pub kind: GoalKind,
    /// The variable inside `query` whose binding is the goal value.
    pub var: String,
    pub query: Term,
}

/// Constraint semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstraintKind {
    /// `deadline(p, d)`: the p-th percentile of the value's distribution
    /// must be ≤ d, i.e. `P(X <= d) >= p`.
    Deadline { percentile: f64, bound: f64 },
    /// `budget(p, b)`: `P(X <= b) >= p` on a cost-valued query.
    Budget { percentile: f64, bound: f64 },
    /// Deterministic `X <= bound` (on the expected value).
    AtMost { bound: f64 },
    /// Deterministic `X >= bound`.
    AtLeast { bound: f64 },
}

/// `V in query satisfies kind.`
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    pub var: String,
    pub query: Term,
    pub kind: ConstraintKind,
}

/// `template forall range1 and range2 ...`
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    pub template: Term,
    pub ranges: Vec<Term>,
}

/// Errors from loading or evaluating WLog programs.
#[derive(Debug)]
pub enum WlogError {
    Parse(ParseError),
    Runtime(MachineError),
    /// Structural problems: missing goal, unknown import, ...
    Program(String),
}

impl std::fmt::Display for WlogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WlogError::Parse(e) => write!(f, "{e}"),
            WlogError::Runtime(e) => write!(f, "{e}"),
            WlogError::Program(m) => write!(f, "program error: {m}"),
        }
    }
}

impl std::error::Error for WlogError {}

impl From<ParseError> for WlogError {
    fn from(e: ParseError) -> Self {
        WlogError::Parse(e)
    }
}

impl From<MachineError> for WlogError {
    fn from(e: MachineError) -> Self {
        WlogError::Runtime(e)
    }
}

/// A parsed WLog program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WlogProgram {
    pub imports: Vec<String>,
    pub goal: Option<Goal>,
    pub constraints: Vec<Constraint>,
    pub vars: Vec<VarDecl>,
    pub astar: bool,
    pub clauses: Vec<Clause>,
}

impl WlogProgram {
    /// Parse program text.
    pub fn parse(src: &str) -> Result<WlogProgram, WlogError> {
        Ok(parse_program(src)?)
    }

    /// Structural validation: an optimization program needs a goal and at
    /// least one var declaration.
    pub fn validate(&self) -> Result<(), WlogError> {
        if self.goal.is_none() {
            return Err(WlogError::Program("no optimization goal declared".into()));
        }
        if self.vars.is_empty() {
            return Err(WlogError::Program(
                "no optimization variables declared (missing 'forall')".into(),
            ));
        }
        if self.astar && !(self.defines("cal_g_score", 1) && self.defines("est_h_score", 1)) {
            return Err(WlogError::Program(
                "enabled(astar) requires cal_g_score/1 and est_h_score/1".into(),
            ));
        }
        // Heads must be callable so grounding them into the database can
        // never panic (the fact `5.` parses but cannot be indexed).
        for c in &self.clauses {
            if c.head.functor().is_none() {
                return Err(WlogError::Program(format!(
                    "clause head is not callable: {}",
                    c.head
                )));
            }
        }
        for v in &self.vars {
            if v.template.functor().is_none() {
                return Err(WlogError::Program(format!(
                    "optimization variable template is not callable: {}",
                    v.template
                )));
            }
        }
        Ok(())
    }

    /// Whether the program defines a predicate.
    pub fn defines(&self, name: &str, arity: usize) -> bool {
        self.clauses
            .iter()
            .any(|c| c.head.functor() == Some((name, arity)))
    }

    /// Names of the variable-template functor(s) — the solver retracts and
    /// re-asserts these between states (e.g. `configs/3`).
    pub fn var_functors(&self) -> Vec<(String, usize)> {
        self.vars
            .iter()
            .filter_map(|v| v.template.functor().map(|(f, n)| (f.to_string(), n)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = "
minimize C in total(C).
cfg(T, V) forall task(T) and vm(V).
total(C) :- findall(X, cost(X), L), sum(L, C).
";

    #[test]
    fn parse_and_validate_minimal_program() {
        let p = WlogProgram::parse(MINI).unwrap();
        p.validate().unwrap();
        assert_eq!(p.var_functors(), vec![("cfg".to_string(), 2)]);
        assert!(p.defines("total", 1));
        assert!(!p.defines("total", 2));
    }

    #[test]
    fn missing_goal_is_rejected() {
        let p = WlogProgram::parse("cfg(T) forall task(T).").unwrap();
        assert!(matches!(p.validate(), Err(WlogError::Program(_))));
    }

    #[test]
    fn missing_vars_is_rejected() {
        let p = WlogProgram::parse("minimize C in total(C).").unwrap();
        assert!(matches!(p.validate(), Err(WlogError::Program(_))));
    }

    #[test]
    fn astar_without_heuristics_is_rejected() {
        let p = WlogProgram::parse("minimize C in t(C). cfg(T) forall task(T). enabled(astar).")
            .unwrap();
        assert!(matches!(p.validate(), Err(WlogError::Program(_))));
    }

    #[test]
    fn astar_with_heuristics_validates() {
        let p = WlogProgram::parse(
            "minimize C in t(C). cfg(T) forall task(T). enabled(astar).
             cal_g_score(C) :- t(C). est_h_score(C) :- t(C).",
        )
        .unwrap();
        p.validate().unwrap();
        assert!(p.astar);
    }
}
