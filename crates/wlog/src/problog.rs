//! The probabilistic intermediate representation and its Monte-Carlo
//! evaluator (Sections 5.1–5.2, Algorithm 1).
//!
//! A WLog program is translated into weighted rules `p : h :- body`
//! following ProbLog syntax. Two kinds of uncertainty appear:
//!
//! * **independent** rules, true with probability `p` in a realization;
//! * **annotated disjunctions** ("groups"): mutually exclusive
//!   alternatives, exactly one of which holds per realization — the paper's
//!   expansion of a task's execution time into one `p_j :
//!   exetime(Tid,Vid,T_j)` fact per histogram bin.
//!
//! Exact ProbLog inference is intractable for large programs (the number of
//! proofs grows exponentially), so the paper adopts Monte-Carlo
//! approximation: sample a realization, run the deterministic interpreter
//! on it, and average the query outcome. Sampling the realization *first*
//! and solving deterministically is equivalent to sampling from found
//! proofs for these program classes and has the advantage that one
//! realization is one plain SLD query.

use crate::ast::{Clause, Term};
use crate::machine::{Database, Machine, MachineError};
use crate::program::{Constraint, ConstraintKind, Goal, GoalKind};
use deco_prob::mc::Estimate;
use deco_prob::{CdfSampler, DecoRng};
use rand::Rng;

/// A weighted rule of the probabilistic IR.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbRule {
    pub prob: f64,
    pub clause: Clause,
}

/// A probabilistic logic program.
#[derive(Debug, Clone, Default)]
pub struct ProbProgram {
    /// Rules with probability 1.0 (the deterministic translation gives
    /// every rule probability 1.0, Section 5.1).
    pub certain: Vec<Clause>,
    /// Independent probabilistic rules.
    pub independent: Vec<ProbRule>,
    /// Annotated disjunctions: per group, `(probability, fact)`
    /// alternatives normalized to sum 1.
    pub groups: Vec<Vec<(f64, Term)>>,
}

impl ProbProgram {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push_certain(&mut self, c: Clause) -> Result<(), MachineError> {
        check_callable(&c.head)?;
        self.certain.push(c);
        Ok(())
    }

    pub fn push_independent(&mut self, prob: f64, clause: Clause) -> Result<(), MachineError> {
        if !(0.0..=1.0).contains(&prob) {
            return Err(MachineError(format!("probability out of range: {prob}")));
        }
        check_callable(&clause.head)?;
        self.independent.push(ProbRule { prob, clause });
        Ok(())
    }

    /// Add a group of mutually exclusive alternatives; weights are
    /// normalized.
    pub fn push_group(&mut self, alts: Vec<(f64, Term)>) -> Result<(), MachineError> {
        if alts.is_empty() {
            return Err(MachineError("empty annotated disjunction".into()));
        }
        let mut total = 0.0;
        for (p, t) in &alts {
            if !p.is_finite() || *p < 0.0 {
                return Err(MachineError(format!("bad alternative weight {p}")));
            }
            check_callable(t)?;
            total += p;
        }
        if total <= 0.0 {
            return Err(MachineError("group must carry positive mass".into()));
        }
        self.groups
            .push(alts.into_iter().map(|(p, t)| (p / total, t)).collect());
        Ok(())
    }

    /// Total number of weighted rules (the `Rule[1..n]` array of
    /// Algorithm 1).
    pub fn rule_count(&self) -> usize {
        self.certain.len()
            + self.independent.len()
            + self.groups.iter().map(|g| g.len()).sum::<usize>()
    }
}

fn check_callable(head: &Term) -> Result<(), MachineError> {
    if head.functor().is_none() {
        return Err(MachineError(format!("rule head is not callable: {head}")));
    }
    Ok(())
}

/// Evaluates queries against a probabilistic program, keeping a single
/// interpreter whose overlay holds the current sampled realization.
pub struct Evaluator {
    pub machine: Machine,
    program: ProbProgram,
    /// One precomputed CDF sampler per annotated-disjunction group:
    /// selecting an alternative is a binary search instead of an O(group)
    /// scan, and picks the same alternative for the same draw.
    group_samplers: Vec<CdfSampler>,
}

impl Evaluator {
    /// Build an evaluator. Fails (instead of panicking) when a certain
    /// clause's head is not callable — possible when a `ProbProgram` is
    /// assembled directly rather than through the checked `push_*` methods.
    pub fn new(program: ProbProgram) -> Result<Self, MachineError> {
        let mut db = Database::new();
        for c in &program.certain {
            db.try_assert(c.clone())?;
        }
        // Re-validate the probabilistic rules so the per-realization
        // overlay asserts in `sample_realization` can never fail.
        for r in &program.independent {
            check_callable(&r.clause.head)?;
        }
        for g in &program.groups {
            if g.is_empty() {
                return Err(MachineError("empty annotated disjunction".into()));
            }
            for (_, t) in g {
                check_callable(t)?;
            }
        }
        let group_samplers = program
            .groups
            .iter()
            .map(|g| CdfSampler::from_probs(g.iter().map(|(p, _)| *p)))
            .collect();
        Ok(Evaluator {
            machine: Machine::new(db),
            program,
            group_samplers,
        })
    }

    /// Replace the search-state facts of one functor (e.g. `configs/3`)
    /// with a new set — how the solver moves between states (Algorithm 2,
    /// line 4). Every fact must have exactly the functor/arity being
    /// swapped, otherwise stale facts would leak between states.
    pub fn set_state_facts(
        &mut self,
        functor: &str,
        arity: usize,
        facts: Vec<Term>,
    ) -> Result<(), MachineError> {
        self.machine.db.retract_all(functor, arity);
        for f in facts {
            if f.functor() != Some((functor, arity)) {
                return Err(MachineError(format!(
                    "state fact {f} does not match {functor}/{arity}"
                )));
            }
            self.machine.db.try_assert(Clause::fact(f))?;
        }
        Ok(())
    }

    /// Sample one realization into the machine's overlay.
    fn sample_realization(&mut self, rng: &mut DecoRng) {
        let mut overlay = Database::new();
        for (g, sampler) in self.program.groups.iter().zip(&self.group_samplers) {
            let chosen = &g[sampler.sample_index(rng)].1;
            overlay.assert_fact(chosen.clone());
        }
        for r in &self.program.independent {
            if rng.gen::<f64>() < r.prob {
                overlay.assert(r.clause.clone());
            }
        }
        self.machine.overlay = overlay;
    }

    /// One realization's value of `var` under the first solution of
    /// `query`; `None` when the query fails. Runs on the caller's stack —
    /// batch loops wrap themselves in [`Machine::on_big_stack`].
    fn sample_value_local(
        &mut self,
        query: &Term,
        var: &str,
        rng: &mut DecoRng,
    ) -> Result<Option<f64>, MachineError> {
        self.sample_realization(rng);
        let mut out = None;
        let v = Term::var(var);
        self.machine.run_local(query, &mut |b| {
            out = b.resolve(&v).as_num();
            false
        })?;
        Ok(out)
    }

    /// One realization's value of `var` under the first solution of
    /// `query`; `None` when the query fails.
    pub fn sample_value(
        &mut self,
        query: &Term,
        var: &str,
        rng: &mut DecoRng,
    ) -> Result<Option<f64>, MachineError> {
        let this = &mut *self;
        Machine::on_big_stack(move || this.sample_value_local(query, var, rng))
    }

    /// Draw `iters` realizations of a value query; failures surface as an
    /// error (a goal query must be satisfiable in every realization).
    pub fn value_samples(
        &mut self,
        query: &Term,
        var: &str,
        iters: usize,
        rng: &mut DecoRng,
    ) -> Result<Vec<f64>, MachineError> {
        assert!(iters > 0);
        let this = &mut *self;
        Machine::on_big_stack(move || {
            let mut out = Vec::with_capacity(iters);
            for _ in 0..iters {
                match this.sample_value_local(query, var, rng)? {
                    Some(x) => out.push(x),
                    None => {
                        return Err(MachineError(format!(
                            "query {query} failed in a sampled realization"
                        )))
                    }
                }
            }
            Ok(out)
        })
    }

    /// Algorithm 1, goal branch: mean of the goal value over `iters`
    /// realizations.
    pub fn goal_value(
        &mut self,
        goal: &Goal,
        iters: usize,
        rng: &mut DecoRng,
    ) -> Result<Estimate, MachineError> {
        let samples = self.value_samples(&goal.query, &goal.var, iters, rng)?;
        let mean = deco_prob::stats::mean(&samples);
        let se = (deco_prob::stats::variance(&samples) / samples.len() as f64).sqrt();
        Ok(Estimate {
            value: mean,
            std_error: se,
            iterations: iters,
        })
    }

    /// Algorithm 1, constraint branch. Returns `(satisfied, estimate)`
    /// where the estimate is the constraint probability (probabilistic
    /// kinds) or the expected value (deterministic kinds).
    pub fn constraint(
        &mut self,
        cons: &Constraint,
        iters: usize,
        rng: &mut DecoRng,
    ) -> Result<(bool, Estimate), MachineError> {
        match cons.kind {
            ConstraintKind::Deadline { percentile, bound }
            | ConstraintKind::Budget { percentile, bound } => {
                let this = &mut *self;
                let hits = Machine::on_big_stack(move || -> Result<usize, MachineError> {
                    let mut hits = 0usize;
                    for _ in 0..iters {
                        match this.sample_value_local(&cons.query, &cons.var, rng)? {
                            Some(x) if x <= bound => hits += 1,
                            _ => {}
                        }
                    }
                    Ok(hits)
                })?;
                let p = hits as f64 / iters as f64;
                let est = Estimate {
                    value: p,
                    std_error: (p * (1.0 - p) / iters as f64).sqrt(),
                    iterations: iters,
                };
                Ok((p >= percentile, est))
            }
            ConstraintKind::AtMost { bound } => {
                let samples = self.value_samples(&cons.query, &cons.var, iters, rng)?;
                let mean = deco_prob::stats::mean(&samples);
                let est = Estimate {
                    value: mean,
                    std_error: (deco_prob::stats::variance(&samples) / iters as f64).sqrt(),
                    iterations: iters,
                };
                Ok((mean <= bound, est))
            }
            ConstraintKind::AtLeast { bound } => {
                let samples = self.value_samples(&cons.query, &cons.var, iters, rng)?;
                let mean = deco_prob::stats::mean(&samples);
                let est = Estimate {
                    value: mean,
                    std_error: (deco_prob::stats::variance(&samples) / iters as f64).sqrt(),
                    iterations: iters,
                };
                Ok((mean >= bound, est))
            }
        }
    }

    /// Probability that a (0-ary value-less) query succeeds — the generic
    /// ProbLog success-probability semantics, exposed for completeness and
    /// used in tests to validate the sampler against exact inference on
    /// small programs.
    pub fn success_probability(
        &mut self,
        query: &Term,
        iters: usize,
        rng: &mut DecoRng,
    ) -> Result<Estimate, MachineError> {
        let this = &mut *self;
        let hits = Machine::on_big_stack(move || -> Result<usize, MachineError> {
            let mut hits = 0usize;
            for _ in 0..iters {
                this.sample_realization(rng);
                let mut found = false;
                this.machine.run_local(query, &mut |_| {
                    found = true;
                    false
                })?;
                if found {
                    hits += 1;
                }
            }
            Ok(hits)
        })?;
        let p = hits as f64 / iters as f64;
        Ok(Estimate {
            value: p,
            std_error: (p * (1.0 - p) / iters as f64).sqrt(),
            iterations: iters,
        })
    }

    /// Whether the goal should prefer smaller values.
    pub fn goal_prefers_smaller(goal: &Goal) -> bool {
        goal.kind == GoalKind::Minimize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_clauses, parse_query};
    use deco_prob::rng::seeded;

    fn clause(src: &str) -> Clause {
        parse_clauses(src).unwrap().pop().unwrap()
    }

    #[test]
    fn success_probability_of_independent_fact() {
        let mut p = ProbProgram::new();
        p.push_independent(0.3, clause("rain.")).unwrap();
        let mut e = Evaluator::new(p).unwrap();
        let mut rng = seeded(1);
        let est = e
            .success_probability(&parse_query("rain").unwrap(), 20_000, &mut rng)
            .unwrap();
        assert!((est.value - 0.3).abs() < 0.02, "got {}", est.value);
    }

    #[test]
    fn independent_facts_combine_like_problog() {
        // P(wet) = 1 - (1-0.3)(1-0.5) = 0.65 when two independent causes.
        let mut p = ProbProgram::new();
        p.push_independent(0.3, clause("rain.")).unwrap();
        p.push_independent(0.5, clause("sprinkler.")).unwrap();
        p.push_certain(clause("wet :- rain.")).unwrap();
        p.push_certain(clause("wet :- sprinkler.")).unwrap();
        let mut e = Evaluator::new(p).unwrap();
        let mut rng = seeded(2);
        let est = e
            .success_probability(&parse_query("wet").unwrap(), 30_000, &mut rng)
            .unwrap();
        assert!((est.value - 0.65).abs() < 0.02, "got {}", est.value);
    }

    #[test]
    fn groups_are_mutually_exclusive() {
        let mut p = ProbProgram::new();
        p.push_group(vec![
            (0.5, parse_query("speed(10)").unwrap()),
            (0.5, parse_query("speed(20)").unwrap()),
        ])
        .unwrap();
        let mut e = Evaluator::new(p).unwrap();
        let mut rng = seeded(3);
        // Exactly one speed per realization.
        for _ in 0..100 {
            e.sample_realization(&mut rng);
            let sols = e
                .machine
                .solve_all(&parse_query("speed(X)").unwrap())
                .unwrap();
            assert_eq!(sols.len(), 1);
        }
    }

    #[test]
    fn goal_mean_over_group() {
        // exetime is 10 w.p. 0.25 and 20 w.p. 0.75 -> mean cost 17.5 * price 2 = 35.
        let mut p = ProbProgram::new();
        p.push_group(vec![
            (0.25, parse_query("exetime(t0, 10)").unwrap()),
            (0.75, parse_query("exetime(t0, 20)").unwrap()),
        ])
        .unwrap();
        p.push_certain(clause("cost(C) :- exetime(t0, T), C is T*2."))
            .unwrap();
        let goal = Goal {
            kind: GoalKind::Minimize,
            var: "C".into(),
            query: parse_query("cost(C)").unwrap(),
        };
        let mut e = Evaluator::new(p).unwrap();
        let mut rng = seeded(4);
        let est = e.goal_value(&goal, 20_000, &mut rng).unwrap();
        assert!((est.value - 35.0).abs() < 0.5, "got {}", est.value);
    }

    #[test]
    fn deadline_constraint_uses_percentile_semantics() {
        // X = 8 w.p. 0.9, X = 12 w.p. 0.1. P(X <= 10) = 0.9.
        let mut p = ProbProgram::new();
        p.push_group(vec![
            (0.9, parse_query("time(8)").unwrap()),
            (0.1, parse_query("time(12)").unwrap()),
        ])
        .unwrap();
        let mut e = Evaluator::new(p).unwrap();
        let mut rng = seeded(5);
        let cons = |pct: f64| Constraint {
            var: "T".into(),
            query: parse_query("time(T)").unwrap(),
            kind: ConstraintKind::Deadline {
                percentile: pct,
                bound: 10.0,
            },
        };
        let (ok_85, est) = e.constraint(&cons(0.85), 20_000, &mut rng).unwrap();
        assert!(ok_85, "P(X<=10) ~ 0.9 satisfies an 85% requirement");
        assert!((est.value - 0.9).abs() < 0.02);
        let (ok_95, _) = e.constraint(&cons(0.95), 20_000, &mut rng).unwrap();
        assert!(!ok_95, "a 95% requirement must fail");
    }

    #[test]
    fn deterministic_constraints_use_the_mean() {
        let mut p = ProbProgram::new();
        p.push_certain(clause("v(7).")).unwrap();
        let mut e = Evaluator::new(p).unwrap();
        let mut rng = seeded(6);
        let atmost = Constraint {
            var: "X".into(),
            query: parse_query("v(X)").unwrap(),
            kind: ConstraintKind::AtMost { bound: 7.0 },
        };
        assert!(e.constraint(&atmost, 10, &mut rng).unwrap().0);
        let atleast = Constraint {
            var: "X".into(),
            query: parse_query("v(X)").unwrap(),
            kind: ConstraintKind::AtLeast { bound: 7.5 },
        };
        assert!(!e.constraint(&atleast, 10, &mut rng).unwrap().0);
    }

    #[test]
    fn state_facts_swap_between_states() {
        let mut p = ProbProgram::new();
        p.push_certain(clause("cost(C) :- cfg(V), price(V, P), C is P."))
            .unwrap();
        p.push_certain(clause("price(v0, 10).")).unwrap();
        p.push_certain(clause("price(v1, 99).")).unwrap();
        let goal = Goal {
            kind: GoalKind::Minimize,
            var: "C".into(),
            query: parse_query("cost(C)").unwrap(),
        };
        let mut e = Evaluator::new(p).unwrap();
        let mut rng = seeded(7);
        e.set_state_facts("cfg", 1, vec![parse_query("cfg(v0)").unwrap()])
            .unwrap();
        assert_eq!(e.goal_value(&goal, 5, &mut rng).unwrap().value, 10.0);
        e.set_state_facts("cfg", 1, vec![parse_query("cfg(v1)").unwrap()])
            .unwrap();
        assert_eq!(e.goal_value(&goal, 5, &mut rng).unwrap().value, 99.0);
    }

    #[test]
    fn failing_goal_query_is_an_error() {
        let p = ProbProgram::new();
        let goal = Goal {
            kind: GoalKind::Minimize,
            var: "C".into(),
            query: parse_query("nosuch(C)").unwrap(),
        };
        let mut e = Evaluator::new(p).unwrap();
        let mut rng = seeded(8);
        assert!(e.goal_value(&goal, 3, &mut rng).is_err());
    }

    #[test]
    fn group_weights_are_normalized() {
        let mut p = ProbProgram::new();
        p.push_group(vec![
            (2.0, parse_query("x(1)").unwrap()),
            (6.0, parse_query("x(2)").unwrap()),
        ])
        .unwrap();
        let mut e = Evaluator::new(p).unwrap();
        let mut rng = seeded(9);
        let est = e
            .success_probability(&parse_query("x(2)").unwrap(), 10_000, &mut rng)
            .unwrap();
        assert!((est.value - 0.75).abs() < 0.02);
    }

    #[test]
    fn rule_count_counts_everything() {
        let mut p = ProbProgram::new();
        p.push_certain(clause("a.")).unwrap();
        p.push_independent(0.5, clause("b.")).unwrap();
        p.push_group(vec![
            (0.5, parse_query("c(1)").unwrap()),
            (0.5, parse_query("c(2)").unwrap()),
        ])
        .unwrap();
        assert_eq!(p.rule_count(), 4);
    }
}
