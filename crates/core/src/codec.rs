//! Canonical binary encoding of supervised plans, for durability.
//!
//! The serving tier's persistent plan store ([`deco-serve`'s
//! `store`](https://example.org/deco) module) writes plans to an
//! append-only log and replays them on shard restart. The encoding here is
//! the durability contract: **decode(encode(p)) is bit-identical to p**,
//! including every `f64` (round-tripped through raw bits, so NaN payloads
//! and signed zeros survive) and the full provenance chain. A warm hit
//! served from a recovered entry therefore renders the exact same
//! canonical response line as one served from the in-memory cache — the
//! property the shard tier's byte-identity tests pin.
//!
//! The format is versioned, little-endian, and length-prefixed. It is
//! *not* a general-purpose serializer: it encodes exactly the
//! [`SupervisedPlan`] shape, and decoding validates every length against
//! the remaining input so a corrupt or truncated payload returns
//! [`DecoError::Store`] instead of panicking or over-allocating.

use crate::engine::DecoPlan;
use crate::error::DecoError;
use crate::supervisor::{PlanProvenance, PlanStage, StageSkip, SupervisedPlan};
use deco_cloud::{Plan, VmSlot};
use deco_solver::{Evaluation, SearchStats};

/// Format version; bump when the encoded shape changes.
const CODEC_VERSION: u8 = 1;

/// Hard cap on any decoded collection length (tasks, slots, skip notes).
/// Plans are per-workflow objects; a length beyond this is corruption, and
/// rejecting it early keeps a hostile payload from forcing a huge
/// allocation before the byte-count check would catch it.
const MAX_LEN: u64 = 16_777_216;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_stage(out: &mut Vec<u8>, stage: PlanStage) {
    put_u8(
        out,
        match stage {
            PlanStage::Deco => 0,
            PlanStage::Heuristic => 1,
            PlanStage::Autoscaling => 2,
        },
    );
}

/// Encode a supervised plan into the canonical durable byte form.
pub fn encode_supervised_plan(sp: &SupervisedPlan) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + 24 * sp.plan.types.len());
    put_u8(&mut out, CODEC_VERSION);

    // DecoPlan.types
    put_u64(&mut out, sp.plan.types.len() as u64);
    for &t in &sp.plan.types {
        put_u64(&mut out, t as u64);
    }
    // DecoPlan.plan (slots, assignment, dispatch order)
    put_u64(&mut out, sp.plan.plan.slots.len() as u64);
    for slot in &sp.plan.plan.slots {
        put_u64(&mut out, slot.itype as u64);
        put_u64(&mut out, slot.region as u64);
    }
    put_u64(&mut out, sp.plan.plan.assign.len() as u64);
    for &a in &sp.plan.plan.assign {
        put_u64(&mut out, a as u64);
    }
    put_u64(&mut out, sp.plan.plan.order.len() as u64);
    for &o in &sp.plan.plan.order {
        put_u32(&mut out, o);
    }
    // Evaluation
    put_u8(&mut out, u8::from(sp.plan.evaluation.feasible));
    put_f64(&mut out, sp.plan.evaluation.objective);
    put_f64(&mut out, sp.plan.evaluation.constraint_margin);
    // SearchStats (host timings included: the round trip must be exact,
    // not merely deterministic-key-equal).
    put_u64(&mut out, sp.plan.stats.states_evaluated as u64);
    put_u64(&mut out, sp.plan.stats.batches as u64);
    put_f64(&mut out, sp.plan.stats.modeled_eval_seconds);
    put_f64(&mut out, sp.plan.stats.host_eval_seconds);
    put_f64(&mut out, sp.plan.stats.wall_seconds);
    put_f64(&mut out, sp.plan.stats.budget_spent);
    put_u8(&mut out, u8::from(sp.plan.stats.truncated));
    // Provenance
    put_stage(&mut out, sp.provenance.stage);
    put_u8(&mut out, u8::from(sp.provenance.truncated));
    put_f64(&mut out, sp.provenance.budget_spent);
    put_u64(&mut out, sp.provenance.skipped.len() as u64);
    for skip in &sp.provenance.skipped {
        put_stage(&mut out, skip.stage);
        put_u32(&mut out, skip.reason.len() as u32);
        out.extend_from_slice(skip.reason.as_bytes());
    }
    out
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                DecoError::Store(format!(
                    "plan payload truncated: wanted {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len() - self.pos.min(self.buf.len())
                ))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecoError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecoError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self) -> Result<f64, DecoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn len(&mut self, what: &str) -> Result<usize, DecoError> {
        let n = self.u64()?;
        if n > MAX_LEN {
            return Err(DecoError::Store(format!(
                "plan payload corrupt: {what} length {n} exceeds the {MAX_LEN} cap"
            )));
        }
        Ok(n as usize)
    }

    fn stage(&mut self) -> Result<PlanStage, DecoError> {
        match self.u8()? {
            0 => Ok(PlanStage::Deco),
            1 => Ok(PlanStage::Heuristic),
            2 => Ok(PlanStage::Autoscaling),
            other => Err(DecoError::Store(format!(
                "plan payload corrupt: unknown stage tag {other}"
            ))),
        }
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Decode a payload produced by [`encode_supervised_plan`]. Every length
/// is validated against the remaining bytes; trailing garbage is an error
/// (the payload is length-framed by the store, so extra bytes mean the
/// frame was corrupted in place).
pub fn decode_supervised_plan(bytes: &[u8]) -> Result<SupervisedPlan, DecoError> {
    let mut r = Reader::new(bytes);
    let version = r.u8()?;
    if version != CODEC_VERSION {
        return Err(DecoError::Store(format!(
            "plan payload has codec version {version}, expected {CODEC_VERSION}"
        )));
    }

    let n_types = r.len("types")?;
    let mut types = Vec::with_capacity(n_types.min(4096));
    for _ in 0..n_types {
        types.push(r.u64()? as usize);
    }
    let n_slots = r.len("slots")?;
    let mut slots = Vec::with_capacity(n_slots.min(4096));
    for _ in 0..n_slots {
        let itype = r.u64()? as usize;
        let region = r.u64()? as usize;
        slots.push(VmSlot { itype, region });
    }
    let n_assign = r.len("assignment")?;
    let mut assign = Vec::with_capacity(n_assign.min(4096));
    for _ in 0..n_assign {
        assign.push(r.u64()? as usize);
    }
    let n_order = r.len("dispatch order")?;
    let mut order = Vec::with_capacity(n_order.min(4096));
    for _ in 0..n_order {
        order.push(r.u32()?);
    }
    let evaluation = Evaluation {
        feasible: r.u8()? != 0,
        objective: r.f64()?,
        constraint_margin: r.f64()?,
    };
    let stats = SearchStats {
        states_evaluated: r.u64()? as usize,
        batches: r.u64()? as usize,
        modeled_eval_seconds: r.f64()?,
        host_eval_seconds: r.f64()?,
        wall_seconds: r.f64()?,
        budget_spent: r.f64()?,
        truncated: r.u8()? != 0,
    };
    let stage = r.stage()?;
    let truncated = r.u8()? != 0;
    let budget_spent = r.f64()?;
    let n_skips = r.len("skip notes")?;
    let mut skipped = Vec::with_capacity(n_skips.min(64));
    for _ in 0..n_skips {
        let skip_stage = r.stage()?;
        let reason_len = r.u32()? as usize;
        let raw = r.take(reason_len)?;
        let reason = std::str::from_utf8(raw)
            .map_err(|e| DecoError::Store(format!("plan payload corrupt: skip reason: {e}")))?
            .to_string();
        skipped.push(StageSkip {
            stage: skip_stage,
            reason,
        });
    }
    if !r.done() {
        return Err(DecoError::Store(format!(
            "plan payload has {} trailing bytes",
            bytes.len() - r.pos
        )));
    }
    Ok(SupervisedPlan {
        plan: DecoPlan {
            types,
            plan: Plan {
                slots,
                assign,
                order,
            },
            evaluation,
            stats,
        },
        provenance: PlanProvenance {
            stage,
            truncated,
            budget_spent,
            skipped,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64) -> SupervisedPlan {
        SupervisedPlan {
            plan: DecoPlan {
                types: vec![0, 3, 1, seed as usize % 5],
                plan: Plan {
                    slots: vec![
                        VmSlot {
                            itype: 3,
                            region: 0,
                        },
                        VmSlot {
                            itype: 1,
                            region: 2,
                        },
                    ],
                    assign: vec![0, 0, 1, 1],
                    order: vec![0, 1, 0, 1],
                },
                evaluation: Evaluation {
                    feasible: true,
                    objective: 12.625 + seed as f64,
                    constraint_margin: 0.91,
                },
                stats: SearchStats {
                    states_evaluated: 120,
                    batches: 4,
                    modeled_eval_seconds: 0.25,
                    host_eval_seconds: 0.017,
                    wall_seconds: 0.019,
                    budget_spent: 4096.0 + seed as f64,
                    truncated: seed.is_multiple_of(2),
                },
            },
            provenance: PlanProvenance {
                stage: PlanStage::Heuristic,
                truncated: false,
                budget_spent: 4096.0 + seed as f64,
                skipped: vec![StageSkip {
                    stage: PlanStage::Deco,
                    reason: "budget starved — skipped".into(),
                }],
            },
        }
    }

    fn assert_bit_identical(a: &SupervisedPlan, b: &SupervisedPlan) {
        assert_eq!(a.plan.types, b.plan.types);
        assert_eq!(a.plan.plan, b.plan.plan);
        assert_eq!(a.plan.evaluation.feasible, b.plan.evaluation.feasible);
        assert_eq!(
            a.plan.evaluation.objective.to_bits(),
            b.plan.evaluation.objective.to_bits()
        );
        assert_eq!(
            a.plan.evaluation.constraint_margin.to_bits(),
            b.plan.evaluation.constraint_margin.to_bits()
        );
        assert_eq!(a.plan.stats.states_evaluated, b.plan.stats.states_evaluated);
        assert_eq!(a.plan.stats.batches, b.plan.stats.batches);
        assert_eq!(
            a.plan.stats.budget_spent.to_bits(),
            b.plan.stats.budget_spent.to_bits()
        );
        assert_eq!(
            a.plan.stats.host_eval_seconds.to_bits(),
            b.plan.stats.host_eval_seconds.to_bits()
        );
        assert_eq!(a.plan.stats.truncated, b.plan.stats.truncated);
        assert_eq!(a.provenance.stage, b.provenance.stage);
        assert_eq!(a.provenance.truncated, b.provenance.truncated);
        assert_eq!(
            a.provenance.budget_spent.to_bits(),
            b.provenance.budget_spent.to_bits()
        );
        assert_eq!(a.provenance.skipped.len(), b.provenance.skipped.len());
        for (x, y) in a.provenance.skipped.iter().zip(&b.provenance.skipped) {
            assert_eq!(x.stage, y.stage);
            assert_eq!(x.reason, y.reason);
        }
    }

    #[test]
    fn round_trip_is_bit_identical() {
        for seed in 0..6 {
            let sp = sample(seed);
            let bytes = encode_supervised_plan(&sp);
            let back = decode_supervised_plan(&bytes).expect("round trip");
            assert_bit_identical(&sp, &back);
            // Deterministic encoding: equal plans, equal bytes.
            assert_eq!(bytes, encode_supervised_plan(&back));
        }
    }

    #[test]
    fn round_trip_preserves_non_finite_floats_exactly() {
        let mut sp = sample(1);
        sp.plan.evaluation.objective = f64::NAN;
        sp.plan.evaluation.constraint_margin = -0.0;
        sp.plan.stats.wall_seconds = f64::INFINITY;
        let back = decode_supervised_plan(&encode_supervised_plan(&sp)).expect("round trip");
        assert_eq!(
            back.plan.evaluation.objective.to_bits(),
            sp.plan.evaluation.objective.to_bits()
        );
        assert_eq!(
            back.plan.evaluation.constraint_margin.to_bits(),
            (-0.0f64).to_bits()
        );
        assert_eq!(back.plan.stats.wall_seconds, f64::INFINITY);
    }

    #[test]
    fn truncation_at_every_offset_errors_cleanly() {
        let bytes = encode_supervised_plan(&sample(2));
        for cut in 0..bytes.len() {
            let err = decode_supervised_plan(&bytes[..cut]);
            assert!(
                err.is_err(),
                "decoding a {cut}-byte prefix of {} must fail",
                bytes.len()
            );
        }
        assert!(decode_supervised_plan(&bytes).is_ok());
    }

    #[test]
    fn trailing_bytes_and_bad_tags_are_rejected() {
        let mut bytes = encode_supervised_plan(&sample(3));
        bytes.push(0);
        assert!(matches!(
            decode_supervised_plan(&bytes),
            Err(DecoError::Store(m)) if m.contains("trailing")
        ));

        let mut bad_version = encode_supervised_plan(&sample(3));
        bad_version[0] = 99;
        assert!(matches!(
            decode_supervised_plan(&bad_version),
            Err(DecoError::Store(m)) if m.contains("version")
        ));
    }

    #[test]
    fn absurd_lengths_are_rejected_before_allocation() {
        // version byte + a types length far past the cap.
        let mut bytes = vec![CODEC_VERSION];
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_supervised_plan(&bytes),
            Err(DecoError::Store(m)) if m.contains("cap")
        ));
    }
}
