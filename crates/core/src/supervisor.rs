//! The planning supervisor: a degradation chain that always hands back a
//! plan, with provenance.
//!
//! Production workflow managers cannot stall because the optimizer ran out
//! of budget. [`plan_with_fallback`] walks three stages in order of
//! decreasing quality and records *why* each earlier stage was skipped:
//!
//! 1. **Deco** — the compiled solver ([`Deco::plan_workflow`]'s pipeline)
//!    under the caller's deterministic [`SearchBudget`]. Anytime: a
//!    truncated run still returns its best incumbent if one is feasible.
//! 2. **Heuristic** — follow-the-cost (Section 6.1): the cheapest single
//!    instance type whose *mean* critical path meets the deadline, placed
//!    in the region chosen by [`offline_region_choice`].
//! 3. **Autoscaling** — the deadline-proportional static plan
//!    ([`autoscaling_plan`]), which always produces *some* plan.
//!
//! The resulting [`PlanProvenance`] lets the WMS distinguish a deadline
//! met by the optimizer (`Met`) from one met by a degraded fallback
//! (`MetDegraded`) from a violation.

use crate::engine::{Deco, DecoPlan};
use crate::error::DecoError;
use crate::estimate::EvalScratch;
use crate::scheduling::SchedulingProblem;
use deco_baselines::autoscaling::autoscaling_types;
use deco_baselines::heuristic::offline_region_choice;
use deco_cloud::plan::mean_exec_seconds;
use deco_solver::{eval::state_seed, EvalBackend, SearchBudget, SearchProblem, SearchStats};
use deco_workflow::Workflow;

/// Which stage of the degradation chain produced the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStage {
    /// The compiled Deco solver (full quality).
    Deco,
    /// The follow-the-cost heuristic (mean-deadline single type).
    Heuristic,
    /// The autoscaling static plan (last resort, always succeeds).
    Autoscaling,
}

impl std::fmt::Display for PlanStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanStage::Deco => write!(f, "deco"),
            PlanStage::Heuristic => write!(f, "heuristic"),
            PlanStage::Autoscaling => write!(f, "autoscaling"),
        }
    }
}

/// Why a stage earlier in the chain did not produce the plan.
#[derive(Debug, Clone)]
pub struct StageSkip {
    pub stage: PlanStage,
    pub reason: String,
}

/// Where the plan came from and what it cost to get it.
#[derive(Debug, Clone)]
pub struct PlanProvenance {
    /// The stage that produced the plan.
    pub stage: PlanStage,
    /// Whether the Deco stage's search was cut off by the budget.
    pub truncated: bool,
    /// Deterministic device-model ticks spent across the chain.
    pub budget_spent: f64,
    /// The stages that were tried and skipped, with reasons.
    pub skipped: Vec<StageSkip>,
}

impl PlanProvenance {
    /// A plan is degraded when it did not come from the full-quality
    /// (untruncated) Deco stage.
    pub fn degraded(&self) -> bool {
        self.stage != PlanStage::Deco || self.truncated
    }
}

/// A plan plus its provenance.
#[derive(Debug, Clone)]
pub struct SupervisedPlan {
    pub plan: DecoPlan,
    pub provenance: PlanProvenance,
}

/// Walk the degradation chain. Returns a plan for every structurally valid
/// request — even a pathological near-zero budget lands on the autoscaling
/// stage — and an error only when the request itself is unusable (empty
/// workflow, non-positive deadline, percentile outside `(0, 1]`).
pub fn plan_with_fallback(
    deco: &Deco,
    wf: &Workflow,
    deadline: f64,
    percentile: f64,
    budget: &SearchBudget,
) -> Result<SupervisedPlan, DecoError> {
    plan_with_fallback_scratch(
        deco,
        wf,
        deadline,
        percentile,
        budget,
        &mut EvalScratch::new(),
    )
}

/// [`plan_with_fallback`] with caller-owned evaluation scratch. Long-lived
/// planners (the `deco-serve` solver workers) hold one [`EvalScratch`] per
/// worker thread and route every request through here, so the fallback
/// stages' Monte-Carlo evaluations run allocation-free in steady state.
/// Results never depend on the scratch's prior contents — the two entry
/// points are bit-identical.
pub fn plan_with_fallback_scratch(
    deco: &Deco,
    wf: &Workflow,
    deadline: f64,
    percentile: f64,
    budget: &SearchBudget,
    scratch: &mut EvalScratch,
) -> Result<SupervisedPlan, DecoError> {
    validate_request(wf, deadline, percentile)?;
    let mut problem = build_problem(deco, wf, deadline, percentile);

    let mut skipped = Vec::new();

    // --- stage 1: the compiled Deco solver, under the budget -------------
    let mut opts = deco.options.search.clone();
    opts.budget = budget.clone();
    let result = problem.solve_beam(&opts, deco.options.beam_width, &EvalBackend::SeqCpu);
    let spent = result.stats.budget_spent;
    match result.best {
        Some((types, evaluation)) => {
            return Ok(SupervisedPlan {
                plan: DecoPlan {
                    plan: problem.plan_of(&types),
                    types,
                    evaluation,
                    stats: result.stats.clone(),
                },
                provenance: PlanProvenance {
                    stage: PlanStage::Deco,
                    truncated: result.stats.truncated,
                    budget_spent: spent,
                    skipped,
                },
            });
        }
        None => skipped.push(StageSkip {
            stage: PlanStage::Deco,
            reason: if result.stats.truncated {
                format!(
                    "budget exhausted after {spent:.3} ticks ({} states) \
                     without a feasible incumbent",
                    result.stats.states_evaluated
                )
            } else {
                format!(
                    "search exhausted ({} states) without a feasible plan",
                    result.stats.states_evaluated
                )
            },
        }),
    }

    let truncated = result.stats.truncated;
    Ok(degrade_chain(
        deco,
        wf,
        deadline,
        &mut problem,
        spent,
        truncated,
        skipped,
        scratch,
    ))
}

/// Skip the Deco search entirely and answer from the degradation chain
/// (heuristic, then autoscaling). This is what a serving layer uses for
/// *quarantined* or *strike-escalated* requests: a content key that has
/// repeatedly wedged solver workers must still receive a terminal plan,
/// but is no longer worth search budget. The caller supplies the skip
/// reason, which lands verbatim in the provenance's Deco-stage
/// [`StageSkip`] so the response records *why* the search never ran.
pub fn plan_fallback_only(
    deco: &Deco,
    wf: &Workflow,
    deadline: f64,
    percentile: f64,
    skip_reason: &str,
    scratch: &mut EvalScratch,
) -> Result<SupervisedPlan, DecoError> {
    validate_request(wf, deadline, percentile)?;
    let mut problem = build_problem(deco, wf, deadline, percentile);
    let skipped = vec![StageSkip {
        stage: PlanStage::Deco,
        reason: skip_reason.to_string(),
    }];
    Ok(degrade_chain(
        deco,
        wf,
        deadline,
        &mut problem,
        0.0,
        false,
        skipped,
        scratch,
    ))
}

/// Structural validation shared by every supervised entry point, ahead of
/// any constructor that asserts.
fn validate_request(wf: &Workflow, deadline: f64, percentile: f64) -> Result<(), DecoError> {
    if wf.is_empty() {
        return Err(DecoError::Plan("workflow has no tasks".into()));
    }
    if !(deadline.is_finite() && deadline > 0.0) {
        return Err(DecoError::Plan(format!(
            "deadline must be positive and finite, got {deadline}"
        )));
    }
    if !(percentile > 0.0 && percentile <= 1.0) {
        return Err(DecoError::Plan(format!(
            "percentile must be in (0, 1], got {percentile}"
        )));
    }
    Ok(())
}

fn build_problem<'a>(
    deco: &'a Deco,
    wf: &'a Workflow,
    deadline: f64,
    percentile: f64,
) -> SchedulingProblem<'a> {
    let spec = &deco.store.spec;
    let mut problem = match &deco.options.retry {
        Some(retry) => {
            SchedulingProblem::new_failure_aware(wf, spec, &deco.store, deadline, percentile, retry)
        }
        None => SchedulingProblem::new(wf, spec, &deco.store, deadline, percentile),
    };
    problem.mc_iters = deco.options.mc_iters;
    problem.frontier_block = deco.options.frontier_block;
    problem
}

/// Stages 2 and 3 of the chain, shared by the budgeted entry points (after
/// a fruitless stage-1 search) and [`plan_fallback_only`] (which never
/// searches). `spent`/`truncated` describe whatever stage-1 work happened.
#[allow(clippy::too_many_arguments)]
fn degrade_chain(
    deco: &Deco,
    wf: &Workflow,
    deadline: f64,
    problem: &mut SchedulingProblem<'_>,
    spent: f64,
    truncated: bool,
    mut skipped: Vec<StageSkip>,
    scratch: &mut EvalScratch,
) -> SupervisedPlan {
    let spec = &deco.store.spec;
    // Later stages do not search, so they charge nothing more against the
    // budget; `budget.minus_ticks(spent)` is what a caller replanning
    // mid-campaign should pass to the *next* supervised call.
    let stats_of = |truncated: bool| SearchStats {
        budget_spent: spent,
        truncated,
        ..SearchStats::default()
    };

    // --- stage 2: follow-the-cost heuristic ------------------------------
    // Cheapest single type whose mean critical path meets the deadline.
    let mut choice: Option<(usize, f64)> = None;
    for ty in 0..spec.k() {
        let mean = wf.critical_path(|t| mean_exec_seconds(spec, ty, wf, t)).1;
        let price = spec.price(ty, 0);
        let better = match choice {
            Some((_, best_price)) => price < best_price,
            None => true,
        };
        if mean <= deadline && better {
            choice = Some((ty, price));
        }
    }
    match choice {
        Some((ty, _)) => {
            let types = vec![ty; wf.len()];
            let region = offline_region_choice(wf, spec, &types, 0);
            problem.region = region;
            let evaluation = problem.evaluate_with(&types, state_seed(0xFA11, &types), scratch);
            let plan = problem.plan_of(&types);
            return SupervisedPlan {
                plan: DecoPlan {
                    plan,
                    types,
                    evaluation,
                    stats: stats_of(truncated),
                },
                provenance: PlanProvenance {
                    stage: PlanStage::Heuristic,
                    truncated,
                    budget_spent: spent,
                    skipped,
                },
            };
        }
        None => skipped.push(StageSkip {
            stage: PlanStage::Heuristic,
            reason: "no single instance type meets the mean deadline".into(),
        }),
    }

    // --- stage 3: autoscaling static plan (always succeeds) --------------
    let types = autoscaling_types(wf, spec, deadline);
    problem.region = 0;
    let evaluation = problem.evaluate_with(&types, state_seed(0xFA11, &types), scratch);
    let plan = deco_cloud::Plan::packed_deadline(wf, &types, 0, spec, deadline);
    SupervisedPlan {
        plan: DecoPlan {
            plan,
            types,
            evaluation,
            stats: stats_of(truncated),
        },
        provenance: PlanProvenance {
            stage: PlanStage::Autoscaling,
            truncated,
            budget_spent: spent,
            skipped,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_cloud::{CloudSpec, MetadataStore};
    use deco_workflow::generators;

    fn deco() -> Deco {
        let spec = CloudSpec::amazon_ec2();
        let store = MetadataStore::from_ground_truth(spec, 25);
        let mut d = Deco::new(store);
        d.options.mc_iters = 40;
        d.options.search.max_states = 400;
        d
    }

    fn medium_deadline(wf: &Workflow, spec: &CloudSpec) -> f64 {
        let (dmin, dmax) = crate::estimate::deadline_anchors(wf, spec);
        0.5 * (dmin + dmax)
    }

    #[test]
    fn unbudgeted_supervision_matches_plain_planning_bit_for_bit() {
        let d = deco();
        for wf in [generators::montage(1, 9), generators::ligo(10, 9)] {
            let deadline = medium_deadline(&wf, &d.store.spec);
            let plain = d
                .plan_workflow(&wf, deadline, 0.9, &EvalBackend::SeqCpu)
                .expect("plain path feasible");
            let sup = plan_with_fallback(&d, &wf, deadline, 0.9, &SearchBudget::unlimited())
                .expect("supervised path");
            assert_eq!(sup.provenance.stage, PlanStage::Deco);
            assert!(!sup.provenance.degraded());
            assert!(sup.provenance.skipped.is_empty());
            assert_eq!(sup.plan.types, plain.types);
            assert_eq!(
                sup.plan.evaluation.objective.to_bits(),
                plain.evaluation.objective.to_bits()
            );
            assert_eq!(
                sup.plan.stats.deterministic_key(),
                plain.stats.deterministic_key()
            );
        }
    }

    #[test]
    fn near_zero_budget_still_returns_a_plan_with_provenance() {
        let d = deco();
        for seed in [7u64, 11, 15] {
            for wf in [generators::montage(1, seed), generators::ligo(10, seed)] {
                let deadline = medium_deadline(&wf, &d.store.spec);
                let sup = plan_with_fallback(&d, &wf, deadline, 0.9, &SearchBudget::ticks(1e-12))
                    .expect("supervisor must always produce a plan");
                assert_ne!(
                    sup.provenance.stage,
                    PlanStage::Deco,
                    "a 1e-12-tick budget cannot finish the search"
                );
                assert!(sup.provenance.degraded());
                assert!(sup.provenance.truncated);
                assert!(
                    sup.provenance.skipped.iter().any(
                        |s| s.stage == PlanStage::Deco && s.reason.contains("budget exhausted")
                    ),
                    "skip reasons: {:?}",
                    sup.provenance.skipped
                );
                assert_eq!(sup.plan.types.len(), wf.len());
                sup.plan.plan.validate(&wf, &d.store.spec).unwrap();
            }
        }
    }

    #[test]
    fn impossible_deadline_falls_through_to_autoscaling() {
        let d = deco();
        let wf = generators::montage(1, 8);
        let sup = plan_with_fallback(&d, &wf, 0.01, 0.99, &SearchBudget::unlimited())
            .expect("autoscaling is the backstop");
        assert_eq!(sup.provenance.stage, PlanStage::Autoscaling);
        assert!(sup.provenance.degraded());
        assert_eq!(sup.provenance.skipped.len(), 2);
        assert!(!sup.plan.evaluation.feasible);
    }

    #[test]
    fn invalid_requests_error_instead_of_asserting() {
        let d = deco();
        let wf = generators::montage(1, 8);
        let empty = Workflow::new("empty");
        for (w, deadline, pct) in [
            (&wf, -1.0, 0.9),
            (&wf, 0.0, 0.9),
            (&wf, f64::NAN, 0.9),
            (&wf, f64::INFINITY, 0.9),
            (&wf, 100.0, 0.0),
            (&wf, 100.0, 1.5),
            (&empty, 100.0, 0.9),
        ] {
            let err = plan_with_fallback(&d, w, deadline, pct, &SearchBudget::unlimited())
                .expect_err("invalid request");
            assert!(matches!(err, DecoError::Plan(_)), "{err}");
        }
    }

    #[test]
    fn worker_scratch_reuse_is_bit_identical_to_fresh_scratch() {
        // A serve worker holds one EvalScratch across many requests; the
        // verdicts must not depend on what the scratch saw before. The
        // starved budget forces the fallback stages, which are the ones
        // that evaluate through the caller's scratch.
        let d = deco();
        let mut scratch = EvalScratch::new();
        for (wf, budget) in [
            (generators::montage(1, 9), SearchBudget::ticks(1e-12)),
            (generators::ligo(10, 9), SearchBudget::ticks(1e-12)),
            (generators::montage(1, 8), SearchBudget::unlimited()),
        ] {
            let deadline = medium_deadline(&wf, &d.store.spec);
            let fresh = plan_with_fallback(&d, &wf, deadline, 0.9, &budget).unwrap();
            let reused =
                plan_with_fallback_scratch(&d, &wf, deadline, 0.9, &budget, &mut scratch).unwrap();
            assert_eq!(fresh.plan.types, reused.plan.types);
            assert_eq!(fresh.provenance.stage, reused.provenance.stage);
            assert_eq!(
                fresh.plan.evaluation.objective.to_bits(),
                reused.plan.evaluation.objective.to_bits()
            );
        }
    }

    #[test]
    fn provenance_reports_budget_spent_deterministically() {
        let d = deco();
        let wf = generators::montage(1, 9);
        let deadline = medium_deadline(&wf, &d.store.spec);
        let budget = SearchBudget::ticks(1e-12);
        let a = plan_with_fallback(&d, &wf, deadline, 0.9, &budget).unwrap();
        let b = plan_with_fallback(&d, &wf, deadline, 0.9, &budget).unwrap();
        assert_eq!(
            a.provenance.budget_spent.to_bits(),
            b.provenance.budget_spent.to_bits()
        );
        assert_eq!(a.provenance.stage, b.provenance.stage);
        assert_eq!(a.plan.types, b.plan.types);
        assert!(a.provenance.budget_spent > 0.0);
        // The remaining budget a replanning caller would pass downstream.
        assert!(!budget.minus_ticks(a.provenance.budget_spent).is_unlimited());
    }
}
