//! The unified error taxonomy for every user-facing engine path.
//!
//! Anything a caller can hand the engine — WLog text, DAX documents,
//! deadlines, budgets — flows through fallible APIs that return a
//! [`DecoError`] instead of panicking. The variants mirror the pipeline
//! stages of Figure 3: parsing, structural validation, translation to the
//! probabilistic IR, Monte-Carlo evaluation, and plan materialization.

use deco_wlog::machine::MachineError;
use deco_wlog::parser::ParseError;
use deco_wlog::program::WlogError;
use deco_workflow::dax::DaxError;

/// Every way a planning request can fail, by pipeline stage.
#[derive(Debug)]
pub enum DecoError {
    /// WLog source text did not parse (carries line/column and a caret
    /// snippet via [`ParseError`]).
    Parse(ParseError),
    /// The program parsed but is structurally unusable: missing goal,
    /// missing `forall` declaration, non-callable heads, wrong variable
    /// arity, ...
    Program(String),
    /// Translation to the probabilistic IR rejected a clause or an
    /// annotated-disjunction group (e.g. a degenerate histogram).
    Translate(String),
    /// The interpreter failed while evaluating a state.
    Eval(MachineError),
    /// A DAX workflow document was malformed.
    Dax(DaxError),
    /// Plan materialization or validation failed.
    Plan(String),
    /// The pipeline ran but no plan satisfies the constraints (within the
    /// search budget, if one was set).
    Infeasible(String),
    /// A serving front end refused the request because its admission
    /// queue is full (backpressure, not a planning failure): retry later
    /// or shed load upstream.
    Overloaded {
        /// Requests already waiting when this one arrived.
        queued: usize,
        /// The admission queue's capacity.
        capacity: usize,
    },
    /// A serving front end refused the request because its tenant already
    /// holds its full per-tenant share of the admission queue. Only the
    /// over-quota tenant is refused — other tenants keep being admitted.
    QuotaExceeded {
        /// The tenant that exceeded its share.
        tenant: u64,
        /// Requests that tenant already had waiting.
        queued: usize,
        /// The per-tenant queue quota.
        quota: usize,
    },
    /// The durable plan store failed: an unreadable WAL directory, a
    /// corrupt frame payload, or an I/O error while appending. Serving
    /// degrades (a shard falls back to memory-only operation) rather than
    /// panicking.
    Store(String),
}

impl std::fmt::Display for DecoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecoError::Parse(e) => write!(f, "{e}"),
            DecoError::Program(m) => write!(f, "program error: {m}"),
            DecoError::Translate(m) => write!(f, "translation error: {m}"),
            DecoError::Eval(e) => write!(f, "evaluation error: {e}"),
            DecoError::Dax(e) => write!(f, "workflow error: {e}"),
            DecoError::Plan(m) => write!(f, "plan error: {m}"),
            DecoError::Infeasible(m) => write!(f, "infeasible: {m}"),
            DecoError::Overloaded { queued, capacity } => write!(
                f,
                "overloaded: admission queue full ({queued} waiting, capacity {capacity})"
            ),
            DecoError::QuotaExceeded {
                tenant,
                queued,
                quota,
            } => write!(
                f,
                "quota exceeded: tenant {tenant} already has {queued} queued (quota {quota})"
            ),
            DecoError::Store(m) => write!(f, "store error: {m}"),
        }
    }
}

impl std::error::Error for DecoError {}

impl From<ParseError> for DecoError {
    fn from(e: ParseError) -> Self {
        DecoError::Parse(e)
    }
}

impl From<MachineError> for DecoError {
    fn from(e: MachineError) -> Self {
        DecoError::Eval(e)
    }
}

impl From<DaxError> for DecoError {
    fn from(e: DaxError) -> Self {
        DecoError::Dax(e)
    }
}

impl From<WlogError> for DecoError {
    fn from(e: WlogError) -> Self {
        match e {
            WlogError::Parse(p) => DecoError::Parse(p),
            WlogError::Runtime(m) => DecoError::Eval(m),
            WlogError::Program(m) => DecoError::Program(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_wlog::program::WlogProgram;

    #[test]
    fn wlog_errors_map_to_their_stage() {
        let parse = WlogProgram::parse("minimize ???").unwrap_err();
        assert!(matches!(DecoError::from(parse), DecoError::Parse(_)));
        let program = WlogProgram::parse("cfg(T) forall task(T).")
            .unwrap()
            .validate()
            .unwrap_err();
        assert!(matches!(DecoError::from(program), DecoError::Program(_)));
        let runtime = WlogError::Runtime(MachineError("boom".into()));
        assert!(matches!(DecoError::from(runtime), DecoError::Eval(_)));
    }

    #[test]
    fn display_prefixes_identify_the_stage() {
        assert!(DecoError::Infeasible("x".into())
            .to_string()
            .starts_with("infeasible:"));
        assert!(DecoError::Plan("x".into())
            .to_string()
            .starts_with("plan error:"));
        assert!(DecoError::Translate("x".into())
            .to_string()
            .starts_with("translation error:"));
        let overloaded = DecoError::Overloaded {
            queued: 64,
            capacity: 64,
        };
        assert!(overloaded.to_string().starts_with("overloaded:"));
        assert!(overloaded.to_string().contains("64 waiting"));
        let quota = DecoError::QuotaExceeded {
            tenant: 3,
            queued: 4,
            quota: 4,
        };
        assert!(quota.to_string().starts_with("quota exceeded:"));
        assert!(quota.to_string().contains("tenant 3"));
        assert!(quota.to_string().contains("quota 4"));
    }
}
