//! Task execution-time estimation and Monte-Carlo state evaluation.
//!
//! Following the paper's estimation approach (Section 5.1, after Yu et
//! al. and Pietri et al.): a task's execution time on an instance is its
//! CPU time scaled by the instance speed plus its I/O and network time,
//! and because I/O and network performance are dynamic, the estimate is a
//! *distribution* — here a histogram derived from the calibrated metadata
//! store, never from the simulator's ground truth.

use deco_cloud::plan::{exec_time_hist, Plan};
use deco_cloud::{CloudSpec, MetadataStore, RetryConfig};
use deco_prob::rng::split_indexed;
use deco_prob::{BinSampler, DecoRng, Histogram};
use deco_workflow::Workflow;

/// Precomputed per-(task, type) execution-time histograms for one
/// workflow — the `T_ij(t)` table of Equation (2).
#[derive(Debug, Clone)]
pub struct ExecTimeTable {
    /// `hists[task][type]`, rebinned to `bins` bins.
    hists: Vec<Vec<Histogram>>,
    /// Mean of each histogram (cached; Equation (2)'s `M_ij`).
    means: Vec<Vec<f64>>,
    /// Bins per histogram.
    bins: usize,
}

impl ExecTimeTable {
    /// Build the table from the metadata store.
    pub fn build(wf: &Workflow, store: &MetadataStore, bins: usize) -> Self {
        assert!(bins >= 2);
        let k = store.spec.k();
        let mut hists = Vec::with_capacity(wf.len());
        for t in wf.task_ids() {
            let row: Vec<Histogram> = (0..k)
                .map(|ty| exec_time_hist(store, ty, wf, t).rebin(bins))
                .collect();
            hists.push(row);
        }
        let means = hists
            .iter()
            .map(|row| row.iter().map(|h| h.mean()).collect())
            .collect();
        ExecTimeTable { hists, means, bins }
    }

    /// Like [`ExecTimeTable::build`], but folds the store's
    /// `fail_rate(type, region)` facts into every per-(task, type)
    /// histogram: each execution time becomes the *expected completion
    /// time including retries* under the given retry policy, evaluated at
    /// `region` (types are plan variables; the region is fixed by the
    /// scheduling stage). Plans optimized against this table are
    /// failure-aware through the unchanged Monte-Carlo path — types whose
    /// long tasks keep getting killed look expensive, exactly as the
    /// probabilistic-scheduling literature folds failures into the
    /// stochastic task-time model. With all rates zero this is
    /// [`ExecTimeTable::build`] exactly.
    pub fn build_failure_aware(
        wf: &Workflow,
        store: &MetadataStore,
        bins: usize,
        region: usize,
        retry: &RetryConfig,
    ) -> Self {
        assert!(bins >= 2);
        let k = store.spec.k();
        let mut hists = Vec::with_capacity(wf.len());
        for t in wf.task_ids() {
            let row: Vec<Histogram> = (0..k)
                .map(|ty| {
                    let h = exec_time_hist(store, ty, wf, t).rebin(bins);
                    failure_adjusted_hist(&h, store.fail_rate(ty, region), retry)
                })
                .collect();
            hists.push(row);
        }
        let means = hists
            .iter()
            .map(|row| row.iter().map(|h| h.mean()).collect())
            .collect();
        ExecTimeTable { hists, means, bins }
    }

    pub fn hist(&self, task: usize, ty: usize) -> &Histogram {
        &self.hists[task][ty]
    }

    /// `M_ij`: mean execution time of task `i` on type `j`.
    pub fn mean(&self, task: usize, ty: usize) -> f64 {
        self.means[task][ty]
    }

    pub fn k(&self) -> usize {
        self.hists.first().map_or(0, |r| r.len())
    }

    pub fn n_tasks(&self) -> usize {
        self.hists.len()
    }

    /// Bytes one provisioning state occupies in the evaluation kernel's
    /// working set (the paper stages each thread's temporary results in
    /// GPU shared memory): per task, the 4-byte configuration, two staged
    /// f64 accumulators (sampled duration, running path length) and the
    /// active row of the execution-time histogram (`bins` centers as f64)
    /// from which the block's threads sample.
    pub fn state_bytes(&self) -> usize {
        self.n_tasks() * (4 + 16 + 8 * self.bins)
    }
}

/// Expected completion time (retries included) of a task whose single
/// attempt takes `x` seconds, on an instance that crashes at
/// `rate_per_hour` (Poisson, so an attempt of length `x` is killed with
/// probability `p = 1 − exp(−λx/3600)`).
///
/// Model: the expected number of killed attempts before success is the
/// geometric `p/(1−p)`, truncated at the retry budget; each killed
/// attempt wastes half its nominal duration in expectation (crashes are
/// uniform over the attempt) plus the first backoff. Monotone in the
/// rate, exactly `x` at rate zero.
pub fn failure_adjusted_seconds(x: f64, rate_per_hour: f64, retry: &RetryConfig) -> f64 {
    assert!(rate_per_hour >= 0.0);
    if rate_per_hour == 0.0 || x <= 0.0 {
        return x;
    }
    let p = 1.0 - (-rate_per_hour * x / 3600.0).exp();
    let expected_failures = (p / (1.0 - p).max(1e-12)).min((retry.max_attempts - 1) as f64);
    x + expected_failures * (0.5 * x + retry.backoff(1))
}

/// Push a per-(task, type) execution-time histogram through
/// [`failure_adjusted_seconds`]. Returns the input unchanged (bit-for-bit)
/// at rate zero, so failure-aware planning is an exact no-op on a
/// reliable cloud.
pub fn failure_adjusted_hist(h: &Histogram, rate_per_hour: f64, retry: &RetryConfig) -> Histogram {
    if rate_per_hour == 0.0 {
        return h.clone();
    }
    let retry = *retry;
    h.map(move |x| failure_adjusted_seconds(x, rate_per_hour, &retry))
}

/// One Monte-Carlo realization of a plan's schedule: list-schedules the
/// DAG with task durations sampled from the estimate table and transfers
/// at their mean, returning `(makespan, cost)`.
///
/// This is the paper's state evaluation: makespan against the
/// probabilistic deadline, cost as the objective (Equations (1)–(3)).
pub fn sampled_schedule(
    wf: &Workflow,
    plan: &Plan,
    table: &ExecTimeTable,
    spec: &CloudSpec,
    rng: &mut DecoRng,
) -> (f64, f64) {
    let mut slot_free = vec![0.0f64; plan.slots.len()];
    let mut slot_span: Vec<Option<(f64, f64)>> = vec![None; plan.slots.len()];
    let mut finish = vec![0.0f64; wf.len()];
    let mut cross_bytes = 0.0;
    for t in plan.dispatch_order(wf) {
        let my_slot = plan.assign[t.index()];
        let mut ready = 0.0f64;
        for p in wf.parents(t) {
            let p_slot = plan.assign[p.index()];
            let mut at = finish[p.index()];
            if p_slot != my_slot {
                let bytes = wf.edge_bytes(p, t).unwrap_or(0.0);
                let from = plan.slots[p_slot];
                let to = plan.slots[my_slot];
                if from.region != to.region {
                    at += deco_cloud::dynamics::phase_seconds_mean(bytes, &spec.cross_region_net());
                    cross_bytes += bytes;
                } else {
                    at += deco_cloud::dynamics::phase_seconds_mean(
                        bytes,
                        &spec.pair_net(from.itype, to.itype),
                    );
                }
            }
            ready = ready.max(at);
        }
        let start = ready.max(slot_free[my_slot]);
        let dur = table
            .hist(t.index(), plan.slots[my_slot].itype)
            .sample(rng)
            .max(0.0);
        finish[t.index()] = start + dur;
        slot_free[my_slot] = finish[t.index()];
        slot_span[my_slot] = Some(match slot_span[my_slot] {
            None => (start, finish[t.index()]),
            Some((a, b)) => (a.min(start), b.max(finish[t.index()])),
        });
    }
    let mut cost = deco_cloud::billing::CostLedger::default();
    for (slot, span) in plan.slots.iter().zip(&slot_span) {
        if let Some((a, b)) = span {
            cost.add_instance(
                b - a,
                spec.billing_quantum,
                spec.price(slot.itype, slot.region),
            );
        }
    }
    cost.add_transfer(cross_bytes, spec.inter_region_price_per_gb);
    let makespan = finish.iter().cloned().fold(0.0f64, f64::max);
    (makespan, cost.total())
}

/// A plan compiled for repeated Monte-Carlo realization: everything that
/// does not depend on the sampled durations is hoisted out of the
/// per-realization loop.
///
/// Per *plan* (once): the dispatch order (a full topological sort), the
/// parent adjacency as a flat CSR array with each edge's constant transfer
/// seconds baked in, the total cross-region traffic, per-slot prices, and
/// a precomputed CDF sampler per task. Per *realization* (hot loop): one
/// uniform draw + binary search per task, adds and maxes — no heap, no
/// `dyn` dispatch, no allocation (buffers live in [`EvalScratch`]).
///
/// The arithmetic — addition order, max folds, the sampler's bin
/// selection — exactly mirrors [`sampled_schedule`], so for the same RNG
/// stream a compiled realization returns bit-for-bit the same
/// `(makespan, cost)` as the reference. `estimate::tests` and
/// `tests/properties.rs` enforce this.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    n_tasks: usize,
    n_slots: usize,
    /// Tasks in dispatch order (`Plan::dispatch_order`, computed once).
    order: Vec<u32>,
    /// CSR row offsets into `parent_edges`, length `n_tasks + 1`, indexed
    /// by task id.
    parent_off: Vec<u32>,
    /// `(parent task id, constant transfer seconds)` per dependency edge,
    /// grouped by child task. Transfer time depends only on edge bytes and
    /// the slot pair, never on sampled durations, so it is a per-plan
    /// constant.
    parent_edges: Vec<(u32, f64)>,
    /// `assign[task]` = slot index, as `u32`.
    assign: Vec<u32>,
    /// CSR row offsets into `samp_cum`, length `n_tasks + 1`, indexed by
    /// task id.
    samp_off: Vec<u32>,
    /// Every task's duration-histogram CDF (inclusive prefix sums, the
    /// exact bits a [`BinSampler`] would hold — except each row's last
    /// entry, which is rewritten to `+∞` so the count of entries `< u`
    /// lands on the last bin by itself, exactly reproducing the clamped
    /// `partition_point`), flattened into one contiguous array: the hot
    /// loop walks a single allocation instead of chasing a per-task `Vec`
    /// through the cache.
    samp_cum: Vec<f64>,
    /// `(lo, width)` bin geometry per task.
    samp_geom: Vec<(f64, f64)>,
    /// Hourly price of each slot (type × region resolved once).
    slot_price: Vec<f64>,
    billing_quantum: f64,
    /// Total inter-region bytes — constant across realizations.
    cross_bytes: f64,
    inter_region_price_per_gb: f64,
}

/// Reusable buffers for [`CompiledPlan`] realizations. One scratch per
/// worker thread makes the steady-state evaluation loop allocation-free;
/// buffers grow to the largest (tasks, slots, iters) seen and are reused.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    /// Finish time per task.
    finish: Vec<f64>,
    /// Next free time per slot.
    slot_free: Vec<f64>,
    /// `(first start, last finish)` per slot; `(INFINITY, NEG_INFINITY)`
    /// marks an unused slot (equivalent to the reference's `None`).
    slot_span: Vec<(f64, f64)>,
    /// Sampled task durations of the current realization, indexed by
    /// dispatch-order position.
    durs: Vec<f64>,
    /// Sampled makespans across the realizations of one evaluation.
    makespans: Vec<f64>,
    /// Buffers of the batched frontier evaluator ([`CompiledFrontier`]),
    /// carried here so search workers thread one scratch through both the
    /// per-plan and the frontier path.
    pub(crate) frontier: FrontierScratch,
}

impl EvalScratch {
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, n_tasks: usize, n_slots: usize) {
        // `finish` and `durs` need the right length but no refill: every
        // entry is written before it is read (parents precede children in
        // dispatch order; the sampling pass fills `durs` first).
        self.finish.resize(n_tasks, 0.0);
        self.durs.resize(n_tasks, 0.0);
        self.slot_free.clear();
        self.slot_free.resize(n_slots, 0.0);
        self.slot_span.clear();
        self.slot_span
            .resize(n_slots, (f64::INFINITY, f64::NEG_INFINITY));
    }
}

impl CompiledPlan {
    /// Hoist every realization-invariant quantity out of `plan`. Costs one
    /// topological sort plus O(tasks + edges + bins) — amortized over all
    /// `iters` realizations of the state evaluation.
    pub fn compile(wf: &Workflow, plan: &Plan, table: &ExecTimeTable, spec: &CloudSpec) -> Self {
        let n_tasks = wf.len();
        let n_slots = plan.slots.len();
        let order: Vec<u32> = plan.dispatch_order(wf).into_iter().map(|t| t.0).collect();

        let mut parent_off = Vec::with_capacity(n_tasks + 1);
        let mut parent_edges = Vec::new();
        let mut cross_bytes = 0.0f64;
        // Iterate tasks in *dispatch order* so `cross_bytes` accumulates in
        // exactly the order the reference evaluator adds it (f64 addition
        // is not associative; same order → same bits). The CSR is indexed
        // by task id, so rows are filled id-ordered below.
        let mut edges_by_task: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n_tasks];
        for &raw in &order {
            let t = deco_workflow::TaskId(raw);
            let my_slot = plan.assign[t.index()];
            for p in wf.parents(t) {
                let p_slot = plan.assign[p.index()];
                let mut transfer = 0.0;
                if p_slot != my_slot {
                    let bytes = wf.edge_bytes(p, t).unwrap_or(0.0);
                    let from = plan.slots[p_slot];
                    let to = plan.slots[my_slot];
                    if from.region != to.region {
                        transfer = deco_cloud::dynamics::phase_seconds_mean(
                            bytes,
                            &spec.cross_region_net(),
                        );
                        cross_bytes += bytes;
                    } else {
                        transfer = deco_cloud::dynamics::phase_seconds_mean(
                            bytes,
                            &spec.pair_net(from.itype, to.itype),
                        );
                    }
                }
                edges_by_task[t.index()].push((p.0, transfer));
            }
        }
        parent_off.push(0u32);
        for row in &edges_by_task {
            parent_edges.extend_from_slice(row);
            parent_off.push(parent_edges.len() as u32);
        }

        let mut samp_off = Vec::with_capacity(n_tasks + 1);
        let mut samp_cum = Vec::new();
        let mut samp_geom = Vec::with_capacity(n_tasks);
        samp_off.push(0u32);
        for t in 0..n_tasks {
            let s: BinSampler = table.hist(t, plan.slots[plan.assign[t]].itype).sampler();
            samp_cum.extend_from_slice(s.cum());
            // `index_for` clamps to the last bin when `u` exceeds the total
            // mass; an infinite last entry folds that clamp into the count
            // itself (`∞ < u` is never true, and once every finite entry is
            // below `u` the count is already len - 1).
            *samp_cum.last_mut().expect("histogram has at least one bin") = f64::INFINITY;
            samp_geom.push((s.lo(), s.width()));
            samp_off.push(samp_cum.len() as u32);
        }
        let slot_price: Vec<f64> = plan
            .slots
            .iter()
            .map(|s| spec.price(s.itype, s.region))
            .collect();

        CompiledPlan {
            n_tasks,
            n_slots,
            order,
            parent_off,
            parent_edges,
            assign: plan.assign.iter().map(|&s| s as u32).collect(),
            samp_off,
            samp_cum,
            samp_geom,
            slot_price,
            billing_quantum: spec.billing_quantum,
            cross_bytes,
            inter_region_price_per_gb: spec.inter_region_price_per_gb,
        }
    }

    pub fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    /// One Monte-Carlo realization — the compiled equivalent of
    /// [`sampled_schedule`], allocation-free given a scratch.
    pub fn realize(&self, scratch: &mut EvalScratch, rng: &mut DecoRng) -> (f64, f64) {
        scratch.reset(self.n_tasks, self.n_slots);
        let finish = &mut scratch.finish[..];
        let slot_free = &mut scratch.slot_free[..];
        let slot_span = &mut scratch.slot_span[..];

        // Pass 1 — draw every task's duration, in dispatch order (one `u`
        // per task: exactly the stream the reference consumes). Inlined
        // `BinSampler::sample`: counting the CDF entries below `u` over a
        // non-decreasing row equals the clamped `partition_point` (the
        // row's last entry is `+∞`, see `compile`) — same bin, same center
        // — but compiles branch-free, and keeping the draws in their own
        // pass frees them from the schedule's dependency chain.
        let durs = &mut scratch.durs[..];
        for (i, &raw) in self.order.iter().enumerate() {
            let t = raw as usize;
            let u: f64 = rand::Rng::gen(rng);
            let row = &self.samp_cum[self.samp_off[t] as usize..self.samp_off[t + 1] as usize];
            let mut bin = 0usize;
            for &c in row {
                bin += (c < u) as usize;
            }
            let (blo, bw) = self.samp_geom[t];
            durs[i] = (blo + (bin as f64 + 0.5) * bw).max(0.0);
        }

        // Pass 2 — the schedule itself.
        let mut makespan = 0.0f64;
        for (i, &raw) in self.order.iter().enumerate() {
            let t = raw as usize;
            let my_slot = self.assign[t] as usize;
            let mut ready = 0.0f64;
            let lo = self.parent_off[t] as usize;
            let hi = self.parent_off[t + 1] as usize;
            for &(p, transfer) in &self.parent_edges[lo..hi] {
                ready = ready.max(finish[p as usize] + transfer);
            }
            let start = ready.max(slot_free[my_slot]);
            let end = start + durs[i];
            finish[t] = end;
            slot_free[my_slot] = end;
            let (a, b) = slot_span[my_slot];
            slot_span[my_slot] = (a.min(start), b.max(end));
            // `max` over non-negative floats is order-independent, so
            // folding in dispatch order here gives the identical value to
            // the reference's id-order pass over `finish`.
            makespan = makespan.max(end);
        }

        let mut cost = deco_cloud::billing::CostLedger::default();
        for (i, &(a, b)) in slot_span.iter().enumerate() {
            if a <= b {
                cost.add_instance(b - a, self.billing_quantum, self.slot_price[i]);
            }
        }
        cost.add_transfer(self.cross_bytes, self.inter_region_price_per_gb);
        (makespan, cost.total())
    }

    /// Monte-Carlo evaluation over `iters` realizations — Algorithm 1 on
    /// the compiled fast path. Identical results to [`mc_evaluate_plan`]
    /// for the same arguments and seed.
    pub fn mc_evaluate(
        &self,
        spec_deadline: f64,
        percentile: f64,
        iters: usize,
        seed: u64,
        scratch: &mut EvalScratch,
    ) -> McEval {
        assert!(iters > 0);
        let mut rng: DecoRng = split_indexed(seed, 0x65737431);
        let mut hits = 0usize;
        let mut cost_sum = 0.0;
        scratch.makespans.clear();
        for _ in 0..iters {
            // `realize` borrows the other scratch buffers; `makespans`
            // stays out of its way.
            let mut makespans = std::mem::take(&mut scratch.makespans);
            let (makespan, cost) = self.realize(scratch, &mut rng);
            if makespan <= spec_deadline {
                hits += 1;
            }
            cost_sum += cost;
            makespans.push(makespan);
            scratch.makespans = makespans;
        }
        McEval {
            prob: hits as f64 / iters as f64,
            mean_cost: cost_sum / iters as f64,
            quantile_makespan: deco_prob::stats::quantile(
                &scratch.makespans,
                percentile.clamp(0.0, 1.0),
            ),
        }
    }
}

/// Monte-Carlo evaluation of a plan over `iters` realizations (Algorithm 1
/// with the typed evaluator).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McEval {
    /// `P(makespan <= deadline)`.
    pub prob: f64,
    /// Mean cost over realizations.
    pub mean_cost: f64,
    /// The `percentile`-quantile of the sampled makespans — the quantity
    /// the probabilistic deadline constrains.
    pub quantile_makespan: f64,
}

/// Monte-Carlo evaluation of a plan: deadline probability, mean cost and
/// the `percentile`-quantile makespan.
///
/// Compiles the plan once and runs the fast realization loop; callers that
/// evaluate many states should hold an [`EvalScratch`] and use
/// [`mc_evaluate_plan_scratch`] to also skip the per-call allocations.
#[allow(clippy::too_many_arguments)]
pub fn mc_evaluate_plan(
    wf: &Workflow,
    plan: &Plan,
    table: &ExecTimeTable,
    spec: &CloudSpec,
    deadline: f64,
    percentile: f64,
    iters: usize,
    seed: u64,
) -> McEval {
    let mut scratch = EvalScratch::new();
    mc_evaluate_plan_scratch(
        wf,
        plan,
        table,
        spec,
        deadline,
        percentile,
        iters,
        seed,
        &mut scratch,
    )
}

/// [`mc_evaluate_plan`] with caller-provided scratch buffers: the
/// steady-state path for search loops (one scratch per worker thread,
/// zero allocation per evaluated state beyond the compiled plan itself).
#[allow(clippy::too_many_arguments)]
pub fn mc_evaluate_plan_scratch(
    wf: &Workflow,
    plan: &Plan,
    table: &ExecTimeTable,
    spec: &CloudSpec,
    deadline: f64,
    percentile: f64,
    iters: usize,
    seed: u64,
    scratch: &mut EvalScratch,
) -> McEval {
    let compiled = CompiledPlan::compile(wf, plan, table, spec);
    compiled.mc_evaluate(deadline, percentile, iters, seed, scratch)
}

/// The pre-compilation evaluator, retained as the executable spec of
/// Algorithm 1: a fresh topological sort, per-edge transfer computation
/// and O(bins) linear-scan sampling in every realization. The property
/// tests pin [`CompiledPlan`] to this loop realization-for-realization;
/// the `mc_eval` bench measures the speedup against it.
#[allow(clippy::too_many_arguments)]
pub fn mc_evaluate_plan_reference(
    wf: &Workflow,
    plan: &Plan,
    table: &ExecTimeTable,
    spec: &CloudSpec,
    deadline: f64,
    percentile: f64,
    iters: usize,
    seed: u64,
) -> McEval {
    assert!(iters > 0);
    let mut rng: DecoRng = split_indexed(seed, 0x65737431);
    let mut hits = 0usize;
    let mut cost_sum = 0.0;
    let mut makespans = Vec::with_capacity(iters);
    for _ in 0..iters {
        let (makespan, cost) = sampled_schedule(wf, plan, table, spec, &mut rng);
        if makespan <= deadline {
            hits += 1;
        }
        cost_sum += cost;
        makespans.push(makespan);
    }
    McEval {
        prob: hits as f64 / iters as f64,
        mean_cost: cost_sum / iters as f64,
        quantile_makespan: deco_prob::stats::quantile(&makespans, percentile.clamp(0.0, 1.0)),
    }
}

/// Realization lanes per frontier pass: [`CompiledFrontier`] runs this
/// many Monte-Carlo realizations of one candidate side by side. Within a
/// lane group every index — CDF row, slot, transfer constant — is shared
/// (the lanes differ only in their drawn `u`s), so the inner loops are
/// branch-free f64 arithmetic over fixed-size lane arrays that the
/// compiler auto-vectorizes: the paper's K×N kernel parallelism, with the
/// N axis mapped onto SIMD lanes and the K axis onto the compiled
/// candidate columns.
pub const FRONTIER_LANES: usize = 8;

/// The realization-invariant, *candidate-invariant* structure of one
/// scheduling problem, compiled once per problem and shared by every
/// frontier batch: the common dispatch order, the parent-edge CSR with raw
/// payload bytes, and every per-(task, type) duration CDF flattened from
/// the [`ExecTimeTable`].
///
/// Sharing is sound because the plan packers assign dispatch ranks in
/// topological-order sequence, so every packed plan's
/// [`Plan::dispatch_order`] equals the workflow's topological order —
/// [`FrontierSkeleton::conforms`] verifies exactly that per candidate (an
/// O(tasks) rank comparison), and non-conforming plans fall back to the
/// per-plan path.
#[derive(Debug, Clone)]
pub struct FrontierSkeleton {
    n_tasks: usize,
    n_types: usize,
    /// Tasks in the shared dispatch order (= topological order).
    order: Vec<u32>,
    /// Expected dispatch rank per task id (its position in `order`).
    ranks: Vec<u32>,
    /// CSR offsets into `epar`/`ebytes`, indexed by *dispatch position*
    /// (not task id — the hot loop walks positions).
    eoff: Vec<u32>,
    /// Parent *dispatch position* per dependency edge (parents precede
    /// children, so the kernel can keep every per-realization array in
    /// position space and write it sequentially).
    epar: Vec<u32>,
    /// Raw payload bytes per edge (`0.0` when unrecorded).
    ebytes: Vec<f64>,
    /// CSR offsets into `cum`, row index `task * n_types + type`. Rows are
    /// ragged: a constant histogram survives `rebin` with a single bin.
    cdf_off: Vec<u32>,
    /// Flattened per-(task, type) CDF rows — the exact bits of each
    /// [`BinSampler`]'s prefix sums, with every row's last entry rewritten
    /// to `+∞` (same clamp-folding trick as [`CompiledPlan`]).
    cum: Vec<f64>,
    /// `(lo, width)` bin geometry per (task, type) row.
    geom: Vec<(f64, f64)>,
}

impl FrontierSkeleton {
    /// Flatten the workflow structure and the whole estimate table. Costs
    /// O(tasks × types × bins) once per [`crate::SchedulingProblem`] —
    /// amortized over every candidate of every frontier batch of the
    /// search.
    pub fn build(wf: &Workflow, table: &ExecTimeTable) -> Self {
        let n_tasks = wf.len();
        let n_types = table.k();
        let order: Vec<u32> = wf.topo_order().into_iter().map(|t| t.0).collect();
        let mut ranks = vec![0u32; n_tasks];
        for (pos, &raw) in order.iter().enumerate() {
            ranks[raw as usize] = pos as u32;
        }
        let mut eoff = Vec::with_capacity(n_tasks + 1);
        let mut epar = Vec::new();
        let mut ebytes = Vec::new();
        eoff.push(0u32);
        for &raw in &order {
            let t = deco_workflow::TaskId(raw);
            for p in wf.parents(t) {
                epar.push(ranks[p.0 as usize]);
                ebytes.push(wf.edge_bytes(p, t).unwrap_or(0.0));
            }
            eoff.push(epar.len() as u32);
        }
        let mut cdf_off = Vec::with_capacity(n_tasks * n_types + 1);
        let mut cum = Vec::new();
        let mut geom = Vec::with_capacity(n_tasks * n_types);
        cdf_off.push(0u32);
        for t in 0..n_tasks {
            for ty in 0..n_types {
                let s: BinSampler = table.hist(t, ty).sampler();
                cum.extend_from_slice(s.cum());
                *cum.last_mut().expect("histogram has at least one bin") = f64::INFINITY;
                geom.push((s.lo(), s.width()));
                cdf_off.push(cum.len() as u32);
            }
        }
        FrontierSkeleton {
            n_tasks,
            n_types,
            order,
            ranks,
            eoff,
            epar,
            ebytes,
            cdf_off,
            cum,
            geom,
        }
    }

    /// Whether a plan's dispatch ranks match the shared skeleton order, so
    /// its realizations can run over the skeleton bit-identically to its
    /// own [`CompiledPlan`]. Distinct ranks equal to topological positions
    /// make [`Plan::dispatch_order`] (Kahn + min-rank heap) pop tasks in
    /// exactly topological order.
    pub fn conforms(&self, plan: &Plan) -> bool {
        plan.order == self.ranks
    }

    pub fn n_tasks(&self) -> usize {
        self.n_tasks
    }
}

/// One candidate column of a [`CompiledFrontier`]: the candidate's type
/// choices resolved against the shared skeleton — CDF-row offsets, bin
/// geometry and slot per dispatch position, transfer constants per edge,
/// prices per slot. Everything realization-varying lives in the scratch;
/// everything here is read-only in the hot loop.
#[derive(Debug, Clone)]
struct FrontierColumn {
    /// The candidate's CDF rows copied out of `skel.cum` into one dense
    /// `n_tasks × row_stride` matrix in dispatch order, short rows padded
    /// with `+∞` (which no uniform draw ever exceeds, so padding never
    /// changes a count). The copy trades O(tasks × bins) compile work for
    /// a scan that streams sequentially with a uniform stride — reused by
    /// every realization group — instead of gathering rows through
    /// offsets.
    rows: Vec<f64>,
    /// Width of every padded row in `rows`.
    row_stride: usize,
    /// Bin geometry of that row, copied out of the skeleton so the hot
    /// loop reads flat streams instead of chasing `geom` through rows.
    row_lo: Vec<f64>,
    row_w: Vec<f64>,
    /// Slot index per dispatch position.
    task_slot: Vec<u32>,
    /// Lane offset into the scratch `slot_start` array where this
    /// position's start times are recorded: `slot * LANES` when the
    /// position is the first task dispatched to its slot (its start IS the
    /// slot's first start — later tasks cannot start earlier than its
    /// finish), or one dummy row past the real slots otherwise. The
    /// unconditional routed store replaces a load + `min` + store per
    /// position.
    start_idx: Vec<u32>,
    /// Constant transfer seconds per skeleton edge — the same per-plan
    /// constant [`CompiledPlan`] bakes into its CSR.
    transfer: Vec<f64>,
    /// Hourly price per slot.
    slot_price: Vec<f64>,
    /// Total inter-region bytes (accumulated in dispatch-edge order — the
    /// reference's f64 addition order).
    cross_bytes: f64,
}

/// K candidate plans compiled over one [`FrontierSkeleton`] for a single
/// K×N-realization pass — the batched counterpart of [`CompiledPlan`].
///
/// Per candidate the arithmetic (draw order, bin counts, max folds, cost
/// ledger) exactly mirrors `CompiledPlan::compile` + `realize`, and each
/// candidate consumes its own RNG stream seeded from its own per-state
/// seed, so `evaluate` returns bit-for-bit the same [`McEval`]s as K
/// independent [`mc_evaluate_plan_scratch`] calls — `tests/properties.rs`
/// pins this.
#[derive(Debug, Clone)]
pub struct CompiledFrontier<'s> {
    skel: &'s FrontierSkeleton,
    cols: Vec<FrontierColumn>,
    billing_quantum: f64,
    inter_region_price_per_gb: f64,
}

/// Reusable buffers for [`CompiledFrontier`] evaluations — one per worker
/// thread, same discipline as [`EvalScratch`] (results never depend on
/// prior contents). All per-realization state is lane-blocked: entry
/// `x * FRONTIER_LANES + r` belongs to realization lane `r`.
#[derive(Debug, Clone, Default)]
pub struct FrontierScratch {
    /// Drawn uniforms, `[position * LANES + lane]`, refilled per group.
    u: Vec<f64>,
    /// Finish time, `[position * LANES + lane]` (position space, so the
    /// schedule pass writes it sequentially).
    finish: Vec<f64>,
    /// Next free time per `[slot * LANES + lane]`, zeroed per group. Its
    /// final value is also each slot's last task finish (per-slot finishes
    /// are monotone in dispatch order), so the cost pass reads the busy
    /// span's end from here and no separate last-finish array exists.
    slot_free: Vec<f64>,
    /// First start per `[slot * LANES + lane]`, plus one trailing dummy
    /// row that absorbs the routed [`FrontierColumn::start_idx`] stores of
    /// non-first positions. `+∞` marks a never-used slot; used slots are
    /// rewritten every group, so the fill happens once per candidate.
    slot_start: Vec<f64>,
    /// Sampled makespans of the candidate under evaluation, realization
    /// order.
    makespans: Vec<f64>,
}

impl FrontierScratch {
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, n_tasks: usize, n_slots: usize) {
        const L: usize = FRONTIER_LANES;
        // `u` and `finish` need the right length but no refill: the draw
        // pass fills `u` first, and parents precede children in dispatch
        // order so every `finish` entry is written before it is read.
        self.u.resize(n_tasks * L, 0.0);
        self.finish.resize(n_tasks * L, 0.0);
        // `slot_free` is refilled at the top of every lane group;
        // `slot_start` only here (see the field docs).
        self.slot_free.resize(n_slots * L, 0.0);
        self.slot_start.clear();
        self.slot_start.resize((n_slots + 1) * L, f64::INFINITY);
        self.makespans.clear();
    }
}

/// A `FRONTIER_LANES`-wide view into a lane-blocked scratch array. The
/// bounds are debug-asserted here and guaranteed by the skeleton/column
/// construction invariants at every call site (task ids `< n_tasks`, slot
/// ids `< n_slots`, arrays sized by [`FrontierScratch::reset`]); skipping
/// the release-mode checks keeps the per-position loop branch-free.
#[inline(always)]
fn lanes(s: &[f64], at: usize) -> &[f64; FRONTIER_LANES] {
    debug_assert!(at + FRONTIER_LANES <= s.len());
    // SAFETY: `at + FRONTIER_LANES <= s.len()` per the construction
    // invariants above.
    unsafe { &*(s.as_ptr().add(at) as *const [f64; FRONTIER_LANES]) }
}

#[inline(always)]
fn lanes_mut(s: &mut [f64], at: usize) -> &mut [f64; FRONTIER_LANES] {
    debug_assert!(at + FRONTIER_LANES <= s.len());
    // SAFETY: as for [`lanes`].
    unsafe { &mut *(s.as_mut_ptr().add(at) as *mut [f64; FRONTIER_LANES]) }
}

/// `f64::max` as a compare-select, which lowers to a bare `maxpd` instead
/// of `maxpd` plus NaN fixups. Bit-equal to `f64::max` whenever no operand
/// is NaN and the operands are not a `-0.0`/`+0.0` pair — schedule times
/// here are sums/maxes of non-negative finite values, so neither case can
/// occur (the debug assertion checks the NaN half).
#[inline(always)]
fn fmax(a: f64, b: f64) -> f64 {
    debug_assert!(!a.is_nan() && !b.is_nan());
    if b < a {
        a
    } else {
        b
    }
}

impl<'s> CompiledFrontier<'s> {
    /// Resolve `plans` into candidate columns over the skeleton. Returns
    /// `None` when any plan does not [`FrontierSkeleton::conforms`] — the
    /// caller then takes the per-plan path (bit-identical by contract).
    /// Much cheaper than K [`CompiledPlan::compile`] calls: no topological
    /// sort and no CDF copies, only O(tasks + edges) resolution per
    /// candidate.
    pub fn compile(skel: &'s FrontierSkeleton, spec: &CloudSpec, plans: &[Plan]) -> Option<Self> {
        if plans.iter().any(|p| !skel.conforms(p)) {
            return None;
        }
        let n = skel.n_tasks;
        let ne = skel.epar.len();
        // Uniform padded row width: the longest CDF row any candidate can
        // reference (rows are ragged only when `rebin` collapsed a
        // constant histogram).
        let row_stride = (0..skel.cdf_off.len() - 1)
            .map(|r| (skel.cdf_off[r + 1] - skel.cdf_off[r]) as usize)
            .max()
            .unwrap_or(0);
        let mut cols = Vec::with_capacity(plans.len());
        for plan in plans {
            let mut col = FrontierColumn {
                rows: vec![f64::INFINITY; n * row_stride],
                row_stride,
                row_lo: vec![0.0f64; n],
                row_w: vec![0.0f64; n],
                task_slot: vec![0u32; n],
                start_idx: vec![0u32; n],
                transfer: vec![0.0f64; ne],
                slot_price: plan
                    .slots
                    .iter()
                    .map(|s| spec.price(s.itype, s.region))
                    .collect(),
                cross_bytes: 0.0,
            };
            let mut cross = 0.0f64;
            let mut slot_seen = vec![false; plan.slots.len()];
            for i in 0..n {
                let t = skel.order[i] as usize;
                let my_slot = plan.assign[t];
                let ty = plan.slots[my_slot].itype;
                let row = t * skel.n_types + ty;
                let (off, end) = (skel.cdf_off[row] as usize, skel.cdf_off[row + 1] as usize);
                col.rows[i * row_stride..i * row_stride + (end - off)]
                    .copy_from_slice(&skel.cum[off..end]);
                let (lo, w) = skel.geom[row];
                col.row_lo[i] = lo;
                col.row_w[i] = w;
                col.task_slot[i] = my_slot as u32;
                col.start_idx[i] = if slot_seen[my_slot] {
                    (plan.slots.len() * FRONTIER_LANES) as u32
                } else {
                    slot_seen[my_slot] = true;
                    (my_slot * FRONTIER_LANES) as u32
                };
                for e in skel.eoff[i] as usize..skel.eoff[i + 1] as usize {
                    let p = skel.order[skel.epar[e] as usize] as usize;
                    let p_slot = plan.assign[p];
                    let mut tr = 0.0;
                    if p_slot != my_slot {
                        let bytes = skel.ebytes[e];
                        let from = plan.slots[p_slot];
                        let to = plan.slots[my_slot];
                        if from.region != to.region {
                            tr = deco_cloud::dynamics::phase_seconds_mean(
                                bytes,
                                &spec.cross_region_net(),
                            );
                            cross += bytes;
                        } else {
                            tr = deco_cloud::dynamics::phase_seconds_mean(
                                bytes,
                                &spec.pair_net(from.itype, to.itype),
                            );
                        }
                    }
                    col.transfer[e] = tr;
                }
            }
            col.cross_bytes = cross;
            cols.push(col);
        }
        Some(CompiledFrontier {
            skel,
            cols,
            billing_quantum: spec.billing_quantum,
            inter_region_price_per_gb: spec.inter_region_price_per_gb,
        })
    }

    /// Number of candidates.
    pub fn k(&self) -> usize {
        self.cols.len()
    }

    /// Monte-Carlo evaluate all K candidates, `iters` realizations each,
    /// in lane-vectorized passes. `seeds[i]` seeds candidate `i`'s own
    /// RNG stream exactly as [`CompiledPlan::mc_evaluate`] would.
    pub fn evaluate(
        &self,
        deadline: f64,
        percentile: f64,
        iters: usize,
        seeds: &[u64],
        scratch: &mut FrontierScratch,
    ) -> Vec<McEval> {
        assert!(iters > 0);
        assert_eq!(seeds.len(), self.cols.len(), "one seed per candidate");
        self.cols
            .iter()
            .zip(seeds)
            .map(|(col, &seed)| self.run_column(col, deadline, percentile, iters, seed, scratch))
            .collect()
    }

    /// One candidate's N realizations, [`FRONTIER_LANES`] at a time. Per
    /// lane the operation sequence — one uniform draw per task in dispatch
    /// order, the branch-free CDF count, the ready/start/finish maxes, the
    /// slot spans, the cost ledger — is exactly [`CompiledPlan::realize`]'s
    /// (lanes are independent realizations; `hits`/`cost_sum`/`makespans`
    /// accumulate in realization order after each group). The draw pass
    /// consumes the RNG stream in realization-major order — the exact
    /// stream positions the per-plan loop reads — and the fused
    /// sample-and-schedule pass then shares each position's CDF row, slot
    /// and transfer constants across all lanes, so the per-lane work is
    /// pure data-parallel f64 arithmetic.
    fn run_column(
        &self,
        col: &FrontierColumn,
        deadline: f64,
        percentile: f64,
        iters: usize,
        seed: u64,
        scratch: &mut FrontierScratch,
    ) -> McEval {
        // Re-compile the lane kernel for the widest vector unit the host
        // actually has: the default x86-64 baseline is SSE2 (2 f64 lanes
        // per op), so on AVX2/AVX-512 hosts the same inner body — every
        // operation per-lane IEEE arithmetic, no FMA contraction — runs
        // bit-identically at 4 or 8 lanes per op. Detection is a cached
        // atomic load, negligible against a column's K×N work.
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                // SAFETY: the avx512f requirement of the target_feature
                // wrapper was just verified at runtime.
                return unsafe {
                    self.run_column_avx512(col, deadline, percentile, iters, seed, scratch)
                };
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: the avx2 requirement of the target_feature
                // wrapper was just verified at runtime.
                return unsafe {
                    self.run_column_avx2(col, deadline, percentile, iters, seed, scratch)
                };
            }
        }
        self.run_column_inner(col, deadline, percentile, iters, seed, scratch)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn run_column_avx2(
        &self,
        col: &FrontierColumn,
        deadline: f64,
        percentile: f64,
        iters: usize,
        seed: u64,
        scratch: &mut FrontierScratch,
    ) -> McEval {
        self.run_column_inner(col, deadline, percentile, iters, seed, scratch)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn run_column_avx512(
        &self,
        col: &FrontierColumn,
        deadline: f64,
        percentile: f64,
        iters: usize,
        seed: u64,
        scratch: &mut FrontierScratch,
    ) -> McEval {
        self.run_column_inner(col, deadline, percentile, iters, seed, scratch)
    }

    #[inline(always)]
    fn run_column_inner(
        &self,
        col: &FrontierColumn,
        deadline: f64,
        percentile: f64,
        iters: usize,
        seed: u64,
        scratch: &mut FrontierScratch,
    ) -> McEval {
        const L: usize = FRONTIER_LANES;
        let n = self.skel.n_tasks;
        let n_slots = col.slot_price.len();
        scratch.reset(n, n_slots);
        let mut rng: DecoRng = split_indexed(seed, 0x65737431);
        let mut hits = 0usize;
        let mut cost_sum = 0.0f64;
        let eoff = &self.skel.eoff[..n + 1];
        let epar = &self.skel.epar[..];
        let stride = col.row_stride;
        let rows = &col.rows[..n * stride];
        let row_lo = &col.row_lo[..n];
        let row_w = &col.row_w[..n];
        let task_slot = &col.task_slot[..n];
        let start_idx = &col.start_idx[..n];
        let transfer = &col.transfer[..];
        let u = &mut scratch.u[..n * L];
        let finish = &mut scratch.finish[..n * L];
        let slot_free = &mut scratch.slot_free[..n_slots * L];
        let slot_start = &mut scratch.slot_start[..(n_slots + 1) * L];

        // The reference ledger charges transfer as `0.0 + bytes/GiB³·price`
        // — with both factors non-negative that sum is bit-equal to the
        // product itself, so it hoists to a per-candidate constant.
        let transfer_cost =
            col.cross_bytes / (1024.0 * 1024.0 * 1024.0) * self.inter_region_price_per_gb;
        let mut done = 0usize;
        while done < iters {
            // Lanes beyond `live` (a short tail group) draw nothing and
            // schedule over stale `u`s; their results are never read.
            let live = L.min(iters - done);
            for r in 0..live {
                for i in 0..n {
                    // SAFETY: `u` has length `n * L`, `i < n`,
                    // `r < live <= L`.
                    unsafe { *u.get_unchecked_mut(i * L + r) = rand::Rng::gen(&mut rng) };
                }
            }
            slot_free.fill(0.0);
            let mut row_iter = rows.chunks_exact(stride.max(1));
            for i in 0..n {
                let ui = lanes(u, i * L);
                let row = row_iter.next().unwrap_or(&[]);
                // Counting in i32 keeps the whole scan in vector registers
                // (compare → masked subtract), and four independent
                // accumulators break the loop-carried dependency so the
                // row entries pipeline instead of serializing — integer
                // partial counts recombine exactly in any order. The total
                // is a small integer, so the conversion below is exact and
                // feeds the bin-center formula as the same value the
                // reference's `bin as f64` produces.
                let mut b0 = [0i32; L];
                let mut b1 = [0i32; L];
                let mut b2 = [0i32; L];
                let mut b3 = [0i32; L];
                let mut quads = row.chunks_exact(4);
                for q in &mut quads {
                    let (c0, c1, c2, c3) = (q[0], q[1], q[2], q[3]);
                    for r in 0..L {
                        b0[r] += (c0 < ui[r]) as i32;
                        b1[r] += (c1 < ui[r]) as i32;
                        b2[r] += (c2 < ui[r]) as i32;
                        b3[r] += (c3 < ui[r]) as i32;
                    }
                }
                for &c in quads.remainder() {
                    for (r, b) in b0.iter_mut().enumerate() {
                        *b += (c < ui[r]) as i32;
                    }
                }
                let mut bin = [0i32; L];
                for r in 0..L {
                    bin[r] = (b0[r] + b1[r]) + (b2[r] + b3[r]);
                }
                let (lo, w) = (row_lo[i], row_w[i]);
                let mut dur = [0.0f64; L];
                for r in 0..L {
                    dur[r] = fmax(lo + (bin[r] as f64 + 0.5) * w, 0.0);
                }
                let mut ready = [0.0f64; L];
                for e in eoff[i] as usize..eoff[i + 1] as usize {
                    // Parent positions precede `i` in dispatch order, so
                    // `epar[e] < n_tasks` and `finish` is already written.
                    let fp = lanes(finish, epar[e] as usize * L);
                    let tr = transfer[e];
                    for (r, rd) in ready.iter_mut().enumerate() {
                        *rd = fmax(*rd, fp[r] + tr);
                    }
                }
                // `task_slot[i] < n_slots` (`compile` resolved it against
                // `plan.slots`) and `start_idx[i] <= n_slots * L` (the
                // dummy row); `finish` is position-indexed so its store is
                // sequential.
                let s = task_slot[i] as usize * L;
                let sf = lanes_mut(slot_free, s);
                let st = lanes_mut(slot_start, start_idx[i] as usize);
                let ft = lanes_mut(finish, i * L);
                for r in 0..L {
                    let start = fmax(ready[r], sf[r]);
                    let end = start + dur[r];
                    ft[r] = end;
                    sf[r] = end;
                    st[r] = start;
                }
            }
            // Cost pass, slot-major so all lanes share each slot's price:
            // per lane this inlines `CostLedger::add_instance`'s math —
            // `ceil(span/quantum)` quanta, a zero-length busy span still
            // billing one — and accumulates `compute` in slot order, the
            // reference's f64 addition order. A slot's busy span runs from
            // its recorded first start to its final `slot_free` (per-slot
            // finishes are monotone); never-used slots keep `start = +∞ >
            // 0 = slot_free` and contribute a masked `+0.0`, bit-equal to
            // the reference skipping the add (the accumulator is never
            // `-0.0`). Quanta counts are small integers, so skipping the
            // reference's f64→u64→f64 round-trip loses nothing. The
            // makespan — the reference's running max over task finishes —
            // folds here from the same final `slot_free` values instead
            // (`max` is associative and commutative over these non-NaN
            // spans, so the value is identical).
            let quantum = self.billing_quantum;
            let mut compute = [0.0f64; L];
            let mut makespan = [0.0f64; L];
            for ((ss, zz), price) in slot_start
                .chunks_exact(L)
                .zip(slot_free.chunks_exact(L))
                .zip(col.slot_price.iter())
            {
                for (((cp, mk), &a), &z) in
                    compute.iter_mut().zip(makespan.iter_mut()).zip(ss).zip(zz)
                {
                    let seconds = z - a;
                    let quanta = if seconds == 0.0 {
                        1.0
                    } else {
                        (seconds / quantum).ceil()
                    };
                    *cp += if a <= z { quanta * price } else { 0.0 };
                    *mk = fmax(*mk, z);
                }
            }
            for r in 0..live {
                if makespan[r] <= deadline {
                    hits += 1;
                }
                cost_sum += compute[r] + transfer_cost;
                scratch.makespans.push(makespan[r]);
            }
            done += live;
        }
        McEval {
            prob: hits as f64 / iters as f64,
            mean_cost: cost_sum / iters as f64,
            quantile_makespan: deco_prob::stats::quantile(
                &scratch.makespans,
                percentile.clamp(0.0, 1.0),
            ),
        }
    }
}

/// The `Dmin`/`Dmax` deadline anchors of the paper's sensitivity study:
/// expected makespan with everything on the fastest / cheapest type.
///
/// Computed from the mean schedule of maximally parallel packed plans so
/// the anchors include inter-instance transfer times and readiness
/// queueing — a pure critical-path sum undershoots them for I/O-heavy
/// workflows, making "Dmin-relative" deadlines unachievable.
pub fn deadline_anchors(wf: &Workflow, spec: &CloudSpec) -> (f64, f64) {
    use deco_cloud::plan::mean_schedule;
    let anchor = |ty: usize| {
        let plan = Plan::packed(wf, &vec![ty; wf.len()], 0, spec);
        mean_schedule(wf, &plan, spec).makespan
    };
    (anchor(spec.priciest_type()), anchor(spec.cheapest_type()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_cloud::plan::mean_exec_seconds;
    use deco_workflow::generators;

    fn setup() -> (Workflow, CloudSpec, MetadataStore) {
        let spec = CloudSpec::amazon_ec2();
        let store = MetadataStore::from_ground_truth(spec.clone(), 40);
        let wf = generators::montage(1, 3);
        (wf, spec, store)
    }

    #[test]
    fn table_means_track_analytic_means() {
        let (wf, spec, store) = setup();
        let table = ExecTimeTable::build(&wf, &store, 12);
        for t in wf.task_ids() {
            for ty in 0..spec.k() {
                let analytic = mean_exec_seconds(&spec, ty, &wf, t);
                let tabled = table.mean(t.index(), ty);
                assert!(
                    (tabled - analytic).abs() / analytic.max(1e-9) < 0.08,
                    "task {t} type {ty}: {tabled} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn faster_types_have_smaller_means() {
        let (wf, _, store) = setup();
        let table = ExecTimeTable::build(&wf, &store, 12);
        for t in 0..table.n_tasks() {
            assert!(table.mean(t, 3) <= table.mean(t, 0) * 1.05);
        }
    }

    #[test]
    fn sampled_schedule_varies_and_centers_on_mean_schedule() {
        let (wf, spec, store) = setup();
        let table = ExecTimeTable::build(&wf, &store, 12);
        let plan = Plan::packed(&wf, &vec![1; wf.len()], 0, &spec);
        let reference = deco_cloud::plan::mean_schedule(&wf, &plan, &spec);
        let mut rng = deco_prob::rng::seeded(5);
        let samples: Vec<f64> = (0..200)
            .map(|_| sampled_schedule(&wf, &plan, &table, &spec, &mut rng).0)
            .collect();
        let mean = deco_prob::stats::mean(&samples);
        assert!(
            (mean - reference.makespan).abs() / reference.makespan < 0.15,
            "MC mean {mean} vs mean-schedule {}",
            reference.makespan
        );
        assert!(deco_prob::stats::std_dev(&samples) > 0.0);
    }

    #[test]
    fn mc_probability_is_monotone_in_deadline() {
        let (wf, spec, store) = setup();
        let table = ExecTimeTable::build(&wf, &store, 12);
        let plan = Plan::packed(&wf, &vec![0; wf.len()], 0, &spec);
        let reference = deco_cloud::plan::mean_schedule(&wf, &plan, &spec).makespan;
        let p_tight =
            mc_evaluate_plan(&wf, &plan, &table, &spec, reference * 0.7, 0.9, 200, 1).prob;
        let p_mid = mc_evaluate_plan(&wf, &plan, &table, &spec, reference, 0.9, 200, 1).prob;
        let p_loose =
            mc_evaluate_plan(&wf, &plan, &table, &spec, reference * 1.5, 0.9, 200, 1).prob;
        assert!(p_tight <= p_mid && p_mid <= p_loose);
        assert!(p_loose > 0.9, "generous deadline should almost surely hold");
        assert!(p_tight < 0.5, "70% of the mean should usually be missed");
    }

    #[test]
    fn anchors_are_ordered() {
        let (wf, spec, _) = setup();
        let (dmin, dmax) = deadline_anchors(&wf, &spec);
        assert!(dmin < dmax);
        assert!(dmin > 0.0);
    }

    #[test]
    fn compiled_evaluator_matches_reference_exactly() {
        let (wf, spec, store) = setup();
        let table = ExecTimeTable::build(&wf, &store, 12);
        for ty in 0..3usize {
            let plan = Plan::packed(&wf, &vec![ty; wf.len()], 0, &spec);
            for seed in [0u64, 7, 99] {
                let a = mc_evaluate_plan_reference(&wf, &plan, &table, &spec, 900.0, 0.9, 64, seed);
                let b = mc_evaluate_plan(&wf, &plan, &table, &spec, 900.0, 0.9, 64, seed);
                assert_eq!(a, b, "compiled evaluator diverged (type {ty}, seed {seed})");
            }
        }
    }

    #[test]
    fn compiled_realizations_match_reference_stream() {
        // Realization-for-realization: the same RNG stream pushed through
        // both loops yields identical (makespan, cost) pairs.
        let (wf, spec, store) = setup();
        let table = ExecTimeTable::build(&wf, &store, 10);
        let plan = Plan::packed(&wf, &vec![1; wf.len()], 0, &spec);
        let compiled = CompiledPlan::compile(&wf, &plan, &table, &spec);
        let mut scratch = EvalScratch::new();
        let mut r_ref = deco_prob::rng::seeded(42);
        let mut r_fast = deco_prob::rng::seeded(42);
        for i in 0..100 {
            let a = sampled_schedule(&wf, &plan, &table, &spec, &mut r_ref);
            let b = compiled.realize(&mut scratch, &mut r_fast);
            assert_eq!(a, b, "realization {i} diverged");
        }
    }

    #[test]
    fn dispatch_order_computed_once_per_compiled_plan() {
        let (wf, spec, store) = setup();
        let table = ExecTimeTable::build(&wf, &store, 12);
        let plan = Plan::packed(&wf, &vec![1; wf.len()], 0, &spec);
        let before = deco_cloud::plan::dispatch_order_calls_on_this_thread();
        let compiled = CompiledPlan::compile(&wf, &plan, &table, &spec);
        let mut scratch = EvalScratch::new();
        let _ = compiled.mc_evaluate(900.0, 0.9, 200, 3, &mut scratch);
        let after = deco_cloud::plan::dispatch_order_calls_on_this_thread();
        assert_eq!(
            after - before,
            1,
            "200 realizations must reuse one topological sort"
        );
        // The reference loop, by contrast, sorts once per realization.
        let before = deco_cloud::plan::dispatch_order_calls_on_this_thread();
        let _ = mc_evaluate_plan_reference(&wf, &plan, &table, &spec, 900.0, 0.9, 10, 3);
        let after = deco_cloud::plan::dispatch_order_calls_on_this_thread();
        assert_eq!(after - before, 10);
    }

    #[test]
    fn scratch_is_reusable_across_plans_of_different_shape() {
        let spec = CloudSpec::amazon_ec2();
        let store = MetadataStore::from_ground_truth(spec.clone(), 20);
        let mut scratch = EvalScratch::new();
        for (wf, iters) in [
            (generators::ligo(20, 1), 50usize),
            (generators::montage(1, 3), 80),
            (generators::ligo(40, 2), 30),
        ] {
            let table = ExecTimeTable::build(&wf, &store, 8);
            let plan = Plan::packed(&wf, &vec![0; wf.len()], 0, &spec);
            let fresh = mc_evaluate_plan(&wf, &plan, &table, &spec, 700.0, 0.9, iters, 5);
            let reused = mc_evaluate_plan_scratch(
                &wf,
                &plan,
                &table,
                &spec,
                700.0,
                0.9,
                iters,
                5,
                &mut scratch,
            );
            assert_eq!(fresh, reused, "dirty scratch changed a verdict");
        }
    }

    #[test]
    fn evaluation_is_deterministic_in_seed() {
        let (wf, spec, store) = setup();
        let table = ExecTimeTable::build(&wf, &store, 12);
        let plan = Plan::packed(&wf, &vec![2; wf.len()], 0, &spec);
        let a = mc_evaluate_plan(&wf, &plan, &table, &spec, 500.0, 0.9, 100, 9);
        let b = mc_evaluate_plan(&wf, &plan, &table, &spec, 500.0, 0.9, 100, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn state_bytes_scale_with_workflow_size() {
        let spec = CloudSpec::amazon_ec2();
        let store = MetadataStore::from_ground_truth(spec, 20);
        let small = ExecTimeTable::build(&generators::ligo(20, 0), &store, 8);
        let large = ExecTimeTable::build(&generators::ligo(1000, 0), &store, 8);
        assert!(large.state_bytes() > 40 * small.state_bytes());
        // A 1000-task state busts the K40's 48 KiB shared memory; a
        // 20-task state fits — the Section 6.3.2 speedup-decline mechanism.
        assert!(large.state_bytes() > 48 * 1024);
        assert!(small.state_bytes() < 48 * 1024);
    }

    #[test]
    fn failure_adjustment_is_identity_at_rate_zero() {
        let (wf, _spec, store) = setup();
        let retry = RetryConfig::default();
        let plain = ExecTimeTable::build(&wf, &store, 12);
        let aware = ExecTimeTable::build_failure_aware(&wf, &store, 12, 0, &retry);
        for t in 0..plain.n_tasks() {
            for j in 0..plain.k() {
                assert_eq!(
                    plain.mean(t, j).to_bits(),
                    aware.mean(t, j).to_bits(),
                    "reliable cloud must leave ({t},{j}) untouched"
                );
            }
        }
        assert_eq!(failure_adjusted_seconds(300.0, 0.0, &retry), 300.0);
    }

    #[test]
    fn failure_adjustment_is_monotone_in_the_rate() {
        let retry = RetryConfig::default();
        let x = 1800.0;
        let mut prev = x;
        for rate in [0.05, 0.2, 0.5, 1.0, 2.0] {
            let adj = failure_adjusted_seconds(x, rate, &retry);
            assert!(adj > prev, "rate {rate}: {adj} must exceed {prev}");
            prev = adj;
        }
        // The retry budget caps the inflation even at absurd rates.
        let worst = failure_adjusted_seconds(x, 1.0e3, &retry);
        let cap = (retry.max_attempts - 1) as f64;
        assert!(worst <= x + cap * (0.5 * x + retry.backoff(1)) + 1e-9);
    }

    #[test]
    fn failure_aware_tables_raise_unreliable_types_only() {
        let (wf, _spec, store) = setup();
        let retry = RetryConfig::default();
        // Type 0 is flaky in region 0; everything else is reliable.
        let mut store = store;
        store.set_fail_rate(0, 0, 1.5);
        let plain = ExecTimeTable::build(&wf, &store, 12);
        let aware = ExecTimeTable::build_failure_aware(&wf, &store, 12, 0, &retry);
        for t in 0..plain.n_tasks() {
            assert!(aware.mean(t, 0) > plain.mean(t, 0));
            for j in 1..plain.k() {
                assert_eq!(plain.mean(t, j).to_bits(), aware.mean(t, j).to_bits());
            }
        }
    }
}
