//! Task execution-time estimation and Monte-Carlo state evaluation.
//!
//! Following the paper's estimation approach (Section 5.1, after Yu et
//! al. and Pietri et al.): a task's execution time on an instance is its
//! CPU time scaled by the instance speed plus its I/O and network time,
//! and because I/O and network performance are dynamic, the estimate is a
//! *distribution* — here a histogram derived from the calibrated metadata
//! store, never from the simulator's ground truth.

use deco_cloud::plan::{exec_time_hist, Plan};
use deco_cloud::{CloudSpec, MetadataStore};
use deco_prob::rng::split_indexed;
use deco_prob::{DecoRng, Histogram};
use deco_workflow::Workflow;

/// Precomputed per-(task, type) execution-time histograms for one
/// workflow — the `T_ij(t)` table of Equation (2).
#[derive(Debug, Clone)]
pub struct ExecTimeTable {
    /// `hists[task][type]`, rebinned to `bins` bins.
    hists: Vec<Vec<Histogram>>,
    /// Mean of each histogram (cached; Equation (2)'s `M_ij`).
    means: Vec<Vec<f64>>,
    /// Bins per histogram.
    bins: usize,
}

impl ExecTimeTable {
    /// Build the table from the metadata store.
    pub fn build(wf: &Workflow, store: &MetadataStore, bins: usize) -> Self {
        assert!(bins >= 2);
        let k = store.spec.k();
        let mut hists = Vec::with_capacity(wf.len());
        for t in wf.task_ids() {
            let row: Vec<Histogram> = (0..k)
                .map(|ty| exec_time_hist(store, ty, wf, t).rebin(bins))
                .collect();
            hists.push(row);
        }
        let means = hists
            .iter()
            .map(|row| row.iter().map(|h| h.mean()).collect())
            .collect();
        ExecTimeTable { hists, means, bins }
    }

    pub fn hist(&self, task: usize, ty: usize) -> &Histogram {
        &self.hists[task][ty]
    }

    /// `M_ij`: mean execution time of task `i` on type `j`.
    pub fn mean(&self, task: usize, ty: usize) -> f64 {
        self.means[task][ty]
    }

    pub fn k(&self) -> usize {
        self.hists.first().map_or(0, |r| r.len())
    }

    pub fn n_tasks(&self) -> usize {
        self.hists.len()
    }

    /// Bytes one provisioning state occupies in the evaluation kernel's
    /// working set (the paper stages each thread's temporary results in
    /// GPU shared memory): per task, the 4-byte configuration, two staged
    /// f64 accumulators (sampled duration, running path length) and the
    /// active row of the execution-time histogram (`bins` centers as f64)
    /// from which the block's threads sample.
    pub fn state_bytes(&self) -> usize {
        self.n_tasks() * (4 + 16 + 8 * self.bins)
    }
}

/// One Monte-Carlo realization of a plan's schedule: list-schedules the
/// DAG with task durations sampled from the estimate table and transfers
/// at their mean, returning `(makespan, cost)`.
///
/// This is the paper's state evaluation: makespan against the
/// probabilistic deadline, cost as the objective (Equations (1)–(3)).
pub fn sampled_schedule(
    wf: &Workflow,
    plan: &Plan,
    table: &ExecTimeTable,
    spec: &CloudSpec,
    rng: &mut DecoRng,
) -> (f64, f64) {
    let mut slot_free = vec![0.0f64; plan.slots.len()];
    let mut slot_span: Vec<Option<(f64, f64)>> = vec![None; plan.slots.len()];
    let mut finish = vec![0.0f64; wf.len()];
    let mut cross_bytes = 0.0;
    for t in plan.dispatch_order(wf) {
        let my_slot = plan.assign[t.index()];
        let mut ready = 0.0f64;
        for p in wf.parents(t) {
            let p_slot = plan.assign[p.index()];
            let mut at = finish[p.index()];
            if p_slot != my_slot {
                let bytes = wf.edge_bytes(p, t).unwrap_or(0.0);
                let from = plan.slots[p_slot];
                let to = plan.slots[my_slot];
                if from.region != to.region {
                    at += deco_cloud::dynamics::phase_seconds_mean(
                        bytes,
                        &spec.cross_region_net(),
                    );
                    cross_bytes += bytes;
                } else {
                    at += deco_cloud::dynamics::phase_seconds_mean(
                        bytes,
                        &spec.pair_net(from.itype, to.itype),
                    );
                }
            }
            ready = ready.max(at);
        }
        let start = ready.max(slot_free[my_slot]);
        let dur = table
            .hist(t.index(), plan.slots[my_slot].itype)
            .sample(rng)
            .max(0.0);
        finish[t.index()] = start + dur;
        slot_free[my_slot] = finish[t.index()];
        slot_span[my_slot] = Some(match slot_span[my_slot] {
            None => (start, finish[t.index()]),
            Some((a, b)) => (a.min(start), b.max(finish[t.index()])),
        });
    }
    let mut cost = deco_cloud::billing::CostLedger::default();
    for (slot, span) in plan.slots.iter().zip(&slot_span) {
        if let Some((a, b)) = span {
            cost.add_instance(b - a, spec.billing_quantum, spec.price(slot.itype, slot.region));
        }
    }
    cost.add_transfer(cross_bytes, spec.inter_region_price_per_gb);
    let makespan = finish.iter().cloned().fold(0.0f64, f64::max);
    (makespan, cost.total())
}

/// Monte-Carlo evaluation of a plan over `iters` realizations (Algorithm 1
/// with the typed evaluator).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McEval {
    /// `P(makespan <= deadline)`.
    pub prob: f64,
    /// Mean cost over realizations.
    pub mean_cost: f64,
    /// The `percentile`-quantile of the sampled makespans — the quantity
    /// the probabilistic deadline constrains.
    pub quantile_makespan: f64,
}

/// Monte-Carlo evaluation of a plan: deadline probability, mean cost and
/// the `percentile`-quantile makespan.
pub fn mc_evaluate_plan(
    wf: &Workflow,
    plan: &Plan,
    table: &ExecTimeTable,
    spec: &CloudSpec,
    deadline: f64,
    percentile: f64,
    iters: usize,
    seed: u64,
) -> McEval {
    assert!(iters > 0);
    let mut rng: DecoRng = split_indexed(seed, 0x65737431);
    let mut hits = 0usize;
    let mut cost_sum = 0.0;
    let mut makespans = Vec::with_capacity(iters);
    for _ in 0..iters {
        let (makespan, cost) = sampled_schedule(wf, plan, table, spec, &mut rng);
        if makespan <= deadline {
            hits += 1;
        }
        cost_sum += cost;
        makespans.push(makespan);
    }
    McEval {
        prob: hits as f64 / iters as f64,
        mean_cost: cost_sum / iters as f64,
        quantile_makespan: deco_prob::stats::quantile(&makespans, percentile.clamp(0.0, 1.0)),
    }
}

/// The `Dmin`/`Dmax` deadline anchors of the paper's sensitivity study:
/// expected makespan with everything on the fastest / cheapest type.
///
/// Computed from the mean schedule of maximally parallel packed plans so
/// the anchors include inter-instance transfer times and readiness
/// queueing — a pure critical-path sum undershoots them for I/O-heavy
/// workflows, making "Dmin-relative" deadlines unachievable.
pub fn deadline_anchors(wf: &Workflow, spec: &CloudSpec) -> (f64, f64) {
    use deco_cloud::plan::mean_schedule;
    let anchor = |ty: usize| {
        let plan = Plan::packed(wf, &vec![ty; wf.len()], 0, spec);
        mean_schedule(wf, &plan, spec).makespan
    };
    (anchor(spec.priciest_type()), anchor(spec.cheapest_type()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_cloud::plan::mean_exec_seconds;
    use deco_workflow::generators;

    fn setup() -> (Workflow, CloudSpec, MetadataStore) {
        let spec = CloudSpec::amazon_ec2();
        let store = MetadataStore::from_ground_truth(spec.clone(), 40);
        let wf = generators::montage(1, 3);
        (wf, spec, store)
    }

    #[test]
    fn table_means_track_analytic_means() {
        let (wf, spec, store) = setup();
        let table = ExecTimeTable::build(&wf, &store, 12);
        for t in wf.task_ids() {
            for ty in 0..spec.k() {
                let analytic = mean_exec_seconds(&spec, ty, &wf, t);
                let tabled = table.mean(t.index(), ty);
                assert!(
                    (tabled - analytic).abs() / analytic.max(1e-9) < 0.08,
                    "task {t} type {ty}: {tabled} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn faster_types_have_smaller_means() {
        let (wf, _, store) = setup();
        let table = ExecTimeTable::build(&wf, &store, 12);
        for t in 0..table.n_tasks() {
            assert!(table.mean(t, 3) <= table.mean(t, 0) * 1.05);
        }
    }

    #[test]
    fn sampled_schedule_varies_and_centers_on_mean_schedule() {
        let (wf, spec, store) = setup();
        let table = ExecTimeTable::build(&wf, &store, 12);
        let plan = Plan::packed(&wf, &vec![1; wf.len()], 0, &spec);
        let reference = deco_cloud::plan::mean_schedule(&wf, &plan, &spec);
        let mut rng = deco_prob::rng::seeded(5);
        let samples: Vec<f64> = (0..200)
            .map(|_| sampled_schedule(&wf, &plan, &table, &spec, &mut rng).0)
            .collect();
        let mean = deco_prob::stats::mean(&samples);
        assert!(
            (mean - reference.makespan).abs() / reference.makespan < 0.15,
            "MC mean {mean} vs mean-schedule {}",
            reference.makespan
        );
        assert!(deco_prob::stats::std_dev(&samples) > 0.0);
    }

    #[test]
    fn mc_probability_is_monotone_in_deadline() {
        let (wf, spec, store) = setup();
        let table = ExecTimeTable::build(&wf, &store, 12);
        let plan = Plan::packed(&wf, &vec![0; wf.len()], 0, &spec);
        let reference = deco_cloud::plan::mean_schedule(&wf, &plan, &spec).makespan;
        let p_tight = mc_evaluate_plan(&wf, &plan, &table, &spec, reference * 0.7, 0.9, 200, 1).prob;
        let p_mid = mc_evaluate_plan(&wf, &plan, &table, &spec, reference, 0.9, 200, 1).prob;
        let p_loose = mc_evaluate_plan(&wf, &plan, &table, &spec, reference * 1.5, 0.9, 200, 1).prob;
        assert!(p_tight <= p_mid && p_mid <= p_loose);
        assert!(p_loose > 0.9, "generous deadline should almost surely hold");
        assert!(p_tight < 0.5, "70% of the mean should usually be missed");
    }

    #[test]
    fn anchors_are_ordered() {
        let (wf, spec, _) = setup();
        let (dmin, dmax) = deadline_anchors(&wf, &spec);
        assert!(dmin < dmax);
        assert!(dmin > 0.0);
    }

    #[test]
    fn evaluation_is_deterministic_in_seed() {
        let (wf, spec, store) = setup();
        let table = ExecTimeTable::build(&wf, &store, 12);
        let plan = Plan::packed(&wf, &vec![2; wf.len()], 0, &spec);
        let a = mc_evaluate_plan(&wf, &plan, &table, &spec, 500.0, 0.9, 100, 9);
        let b = mc_evaluate_plan(&wf, &plan, &table, &spec, 500.0, 0.9, 100, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn state_bytes_scale_with_workflow_size() {
        let spec = CloudSpec::amazon_ec2();
        let store = MetadataStore::from_ground_truth(spec, 20);
        let small = ExecTimeTable::build(&generators::ligo(20, 0), &store, 8);
        let large = ExecTimeTable::build(&generators::ligo(1000, 0), &store, 8);
        assert!(large.state_bytes() > 40 * small.state_bytes());
        // A 1000-task state busts the K40's 48 KiB shared memory; a
        // 20-task state fits — the Section 6.3.2 speedup-decline mechanism.
        assert!(large.state_bytes() > 48 * 1024);
        assert!(small.state_bytes() < 48 * 1024);
    }
}
