//! Use case 2 — workflow ensembles (Section 3.2).
//!
//! Maximize the total score `sum 2^-priority(w)` of completed workflows
//! (Equation (4)) subject to one ensemble-wide budget (Equation (5)) and a
//! probabilistic deadline per workflow (Equation (6)).
//!
//! The search state is the paper's: "an array of boolean values, where
//! each dimension indicates whether to execute a workflow in the
//! ensemble", initially all false, with transitions that admit one more
//! uncompleted workflow. `enabled(astar)` applies with g = h = the state's
//! Score metric.
//!
//! Each member's execution cost under its own probabilistic deadline is
//! obtained by running the use-case-1 optimizer per workflow — this is
//! where Deco's transformation-based per-workflow optimization "allows
//! more workflows to be executed within the budget and deadline
//! constraints" relative to SPSS.

use crate::scheduling::SchedulingProblem;
use deco_cloud::{CloudSpec, MetadataStore, Plan};
use deco_solver::{
    beam_search, EvalBackend, Evaluation, SearchOptions, SearchProblem, SearchResult,
};
use deco_workflow::Ensemble;

/// Per-member planning outcome feeding the admission search.
#[derive(Debug, Clone)]
pub struct MemberPlan {
    /// The optimized plan, when the member's probabilistic deadline is
    /// achievable at all.
    pub plan: Option<Plan>,
    /// Mean cost of the optimized plan (`inf` when unachievable).
    pub cost: f64,
    /// Achieved deadline probability.
    pub prob: f64,
}

/// The ensemble admission problem.
pub struct EnsembleProblem<'a> {
    pub ensemble: &'a Ensemble,
    pub budget: f64,
    pub member_plans: Vec<MemberPlan>,
    scores: Vec<f64>,
}

impl<'a> EnsembleProblem<'a> {
    /// Optimize every member with the use-case-1 engine, then set up the
    /// admission search. `deadlines[i]` and `percentile` give each
    /// member's probabilistic deadline requirement.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ensemble: &'a Ensemble,
        spec: &CloudSpec,
        store: &MetadataStore,
        deadlines: &[f64],
        percentile: f64,
        budget: f64,
        mc_iters: usize,
        backend: &EvalBackend,
    ) -> Self {
        assert_eq!(deadlines.len(), ensemble.len());
        assert!(budget >= 0.0);
        let member_plans = Self::plan_members(
            ensemble,
            spec,
            store,
            deadlines,
            percentile,
            mc_iters,
            &SearchOptions::default(),
            backend,
        );
        Self::with_member_plans(ensemble, member_plans, budget)
    }

    /// Set up the admission search with member plans computed elsewhere —
    /// the plans do not depend on the budget, so sweeping budgets (the
    /// Figure 9 Bgt1–Bgt5 series) plans each member once.
    pub fn with_member_plans(
        ensemble: &'a Ensemble,
        member_plans: Vec<MemberPlan>,
        budget: f64,
    ) -> Self {
        assert_eq!(member_plans.len(), ensemble.len());
        let scores = ensemble.members.iter().map(|m| m.score()).collect();
        EnsembleProblem {
            ensemble,
            budget,
            member_plans,
            scores,
        }
    }

    /// Plan every member with the use-case-1 engine (reusable across
    /// budgets via [`EnsembleProblem::with_member_plans`]).
    #[allow(clippy::too_many_arguments)]
    pub fn plan_members(
        ensemble: &Ensemble,
        spec: &CloudSpec,
        store: &MetadataStore,
        deadlines: &[f64],
        percentile: f64,
        mc_iters: usize,
        search: &SearchOptions,
        backend: &EvalBackend,
    ) -> Vec<MemberPlan> {
        assert_eq!(deadlines.len(), ensemble.len());
        ensemble
            .members
            .iter()
            .zip(deadlines)
            .map(|(m, &d)| {
                let mut p = SchedulingProblem::new(&m.workflow, spec, store, d, percentile);
                p.mc_iters = mc_iters;
                match p.solve_beam(search, 4, backend).best {
                    Some((state, eval)) => MemberPlan {
                        plan: Some(p.plan_of(&state)),
                        cost: eval.objective,
                        prob: eval.constraint_margin,
                    },
                    None => MemberPlan {
                        plan: None,
                        cost: f64::INFINITY,
                        prob: 0.0,
                    },
                }
            })
            .collect()
    }

    /// Total planned cost of an admission mask.
    pub fn cost_of(&self, mask: &[bool]) -> f64 {
        mask.iter()
            .zip(&self.member_plans)
            .filter(|(&m, _)| m)
            .map(|(_, p)| p.cost)
            .sum()
    }

    /// Solve the admission search (A*-style beam on scores).
    pub fn solve(&self, opts: &SearchOptions, backend: &EvalBackend) -> SearchResult<Vec<bool>> {
        beam_search(self, opts, 8, backend)
    }
}

impl SearchProblem for EnsembleProblem<'_> {
    type State = Vec<bool>;
    type Scratch = ();

    fn initial(&self) -> Vec<bool> {
        // "Initially, all dimensions are set to false."
        vec![false; self.ensemble.len()]
    }

    fn neighbors(&self, s: &Vec<bool>) -> Vec<Vec<bool>> {
        // "For state transitions, we consider executing each of the
        // uncompleted workflows."
        let mut out = Vec::new();
        for i in 0..s.len() {
            if !s[i] && self.member_plans[i].plan.is_some() {
                let mut child = s.clone();
                child[i] = true;
                out.push(child);
            }
        }
        out
    }

    fn evaluate(&self, s: &Vec<bool>, _seed: u64) -> Evaluation {
        let cost = self.cost_of(s);
        let score: f64 = s
            .iter()
            .zip(&self.scores)
            .filter(|(&m, _)| m)
            .map(|(_, sc)| sc)
            .sum();
        Evaluation {
            feasible: cost <= self.budget + 1e-9,
            objective: score,
            // Being under budget is the margin; normalize to (0, 1].
            constraint_margin: if cost <= self.budget {
                1.0
            } else if cost.is_finite() && cost > 0.0 {
                (self.budget / cost).max(0.0)
            } else {
                0.0
            },
        }
    }

    fn minimize(&self) -> bool {
        false // maximize the score
    }

    fn state_bytes(&self) -> usize {
        self.ensemble.len()
    }

    fn h_score(&self, s: &Vec<bool>, _e: &Evaluation) -> f64 {
        // Optimistic remaining score (admissible for maximization).
        s.iter()
            .zip(&self.scores)
            .filter(|(&m, _)| !m)
            .map(|(_, sc)| sc)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_workflow::generators::App;
    use deco_workflow::EnsembleType;

    fn setup(count: usize) -> (Ensemble, CloudSpec, MetadataStore) {
        let spec = CloudSpec::amazon_ec2();
        let store = MetadataStore::from_ground_truth(spec.clone(), 25);
        let e = Ensemble::generate(App::Ligo, EnsembleType::UniformUnsorted, count, &[20], 11);
        (e, spec, store)
    }

    fn problem<'a>(
        e: &'a Ensemble,
        spec: &CloudSpec,
        store: &MetadataStore,
        budget: f64,
    ) -> EnsembleProblem<'a> {
        let deadlines: Vec<f64> = e
            .members
            .iter()
            .map(|m| crate::estimate::deadline_anchors(&m.workflow, spec).1 * 1.5)
            .collect();
        EnsembleProblem::new(
            e,
            spec,
            store,
            &deadlines,
            0.9,
            budget,
            40,
            &EvalBackend::SeqCpu,
        )
    }

    #[test]
    fn infinite_budget_admits_everything() {
        let (e, spec, store) = setup(4);
        let p = problem(&e, &spec, &store, f64::INFINITY);
        let r = p.solve(&SearchOptions::default(), &EvalBackend::SeqCpu);
        let (mask, eval) = r.best.unwrap();
        assert!(mask.iter().all(|&m| m));
        assert!((eval.objective - e.max_score()).abs() < 1e-9);
    }

    #[test]
    fn zero_budget_admits_nothing() {
        let (e, spec, store) = setup(3);
        let p = problem(&e, &spec, &store, 0.0);
        let r = p.solve(&SearchOptions::default(), &EvalBackend::SeqCpu);
        let (mask, eval) = r.best.unwrap();
        assert!(mask.iter().all(|&m| !m));
        assert_eq!(eval.objective, 0.0);
    }

    #[test]
    fn limited_budget_prefers_high_priority() {
        let (e, spec, store) = setup(4);
        let full = problem(&e, &spec, &store, f64::INFINITY);
        // Budget for roughly the single cheapest member.
        let min_cost = full
            .member_plans
            .iter()
            .map(|p| p.cost)
            .fold(f64::INFINITY, f64::min);
        let p = problem(&e, &spec, &store, min_cost * 1.05);
        let r = p.solve(&SearchOptions::default(), &EvalBackend::SeqCpu);
        let (mask, eval) = r.best.unwrap();
        let admitted = mask.iter().filter(|&&m| m).count();
        assert!(admitted >= 1, "at least one member fits");
        assert!(eval.objective > 0.0);
        assert!(p.cost_of(&mask) <= min_cost * 1.05 + 1e-9);
    }

    #[test]
    fn score_is_monotone_in_budget() {
        let (e, spec, store) = setup(4);
        let full = problem(&e, &spec, &store, f64::INFINITY);
        let total: f64 = full.member_plans.iter().map(|p| p.cost).sum();
        let mut prev = -1.0;
        for frac in [0.0, 0.3, 0.6, 1.0] {
            let p = problem(&e, &spec, &store, total * frac);
            let r = p.solve(&SearchOptions::default(), &EvalBackend::SeqCpu);
            let score = r.best.map(|(_, e)| e.objective).unwrap_or(0.0);
            assert!(
                score >= prev - 1e-9,
                "score {score} dropped below {prev} at budget fraction {frac}"
            );
            prev = score;
        }
    }
}
