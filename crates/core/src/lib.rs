// User-facing paths return typed errors; panicking shortcuts are banned
// from library code (tests may still unwrap).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! Deco — the declarative optimization engine (the paper's contribution).
//!
//! The engine's pipeline is Figure 3: a WLog program plus a workflow (DAX)
//! plus cloud metadata are translated into a probabilistic intermediate
//! representation; the solver searches provisioning states, evaluating
//! each with Monte-Carlo inference; the best feasible state becomes a
//! resource provisioning plan handed back to the WMS.
//!
//! Two equivalent evaluation paths are provided and cross-validated in the
//! integration tests:
//!
//! * the **WLog path** ([`engine`]) — the full declarative pipeline:
//!   programs like Example 1 are parsed, imports inject workflow and cloud
//!   facts, `exetime` facts are expanded per histogram bin, and every
//!   searched state is scored through the ProLog interpreter. Faithful and
//!   flexible, but interpretation is the price (the reason the paper buys
//!   a GPU).
//! * the **typed path** ([`scheduling`], [`ensemble`], [`followcost`]) —
//!   the same three optimization problems compiled to closed Rust
//!   evaluators over the same histograms; this is what the large-scale
//!   experiments run.
//!
//! * [`estimate`] — per-(task, type) execution-time distributions and the
//!   Monte-Carlo makespan/cost evaluation of a typed state.
//! * [`scheduling`] — use case 1 (Section 3.1): minimize cost under a
//!   probabilistic deadline.
//! * [`ensemble`] — use case 2 (Section 3.2): maximize ensemble score
//!   under budget + per-workflow probabilistic deadlines.
//! * [`followcost`] — use case 3 (Section 3.3): runtime migration across
//!   regions minimizing cost under deadlines.
//! * [`engine`] — the WLog front end tying everything together.

//! * [`error`] — the unified [`DecoError`] taxonomy every user-facing
//!   path returns instead of panicking.
//! * [`supervisor`] — the degradation chain (Deco → heuristic →
//!   autoscaling) that always hands back a plan, with provenance.

pub mod codec;
pub mod engine;
pub mod ensemble;
pub mod error;
pub mod estimate;
pub mod followcost;
pub mod scheduling;
pub mod supervisor;

pub use codec::{decode_supervised_plan, encode_supervised_plan};
pub use engine::{Deco, DecoOptions, DecoPlan};
pub use error::DecoError;
pub use scheduling::{ObjectiveMode, SchedulingProblem};
pub use supervisor::{
    plan_with_fallback, plan_with_fallback_scratch, PlanProvenance, PlanStage, StageSkip,
    SupervisedPlan,
};
