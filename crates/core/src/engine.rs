//! The Deco engine: WLog programs in, provisioning plans out (Figure 3).
//!
//! `import(<cloud>)` injects the calibrated cloud facts (`vm/1`, `price/2`
//! and the histogram-expanded `exetime/3` groups) from the metadata store;
//! `import(<workflow>)` injects the workflow facts (`task/1`, `edge/2`,
//! plus the virtual `root`/`tail` tasks). The optimization variables come
//! from the program's `forall` declaration — the engine recognizes the
//! paper's indicator shape `configs(Tid, Vid, Con)` with the one-hot
//! constraint of Section 3.1 (exactly one type per task) and searches
//! type-vector states, evaluating each state by swapping its `configs`
//! facts into the interpreter and running Monte-Carlo inference on the
//! goal and constraints (Algorithms 1 and 2).
//!
//! The typed fast path ([`Deco::plan_workflow`]) runs the same three-part
//! pipeline with a compiled evaluator; the integration tests cross-check
//! the two paths on workflows small enough for the interpreter.

use crate::error::DecoError;
use crate::estimate::ExecTimeTable;
use crate::scheduling::SchedulingProblem;
use deco_cloud::{CloudSpec, MetadataStore, Plan};
use deco_solver::transform::schedule_neighbors;
use deco_solver::{
    astar_search, beam_search, EvalBackend, Evaluation, SearchOptions, SearchProblem, SearchStats,
};
use deco_wlog::ast::Term;
use deco_wlog::machine::MachineError;
use deco_wlog::problog::{Evaluator, ProbProgram};
use deco_wlog::program::{Goal, WlogProgram};
use deco_workflow::Workflow;
use parking_lot::Mutex;

/// IR-construction failures are translation errors: the program validated,
/// but a clause or weighted group could not be grounded.
fn translate_err(e: MachineError) -> DecoError {
    DecoError::Translate(e.0)
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct DecoOptions {
    /// Monte-Carlo iterations per state (the paper's `Max_iter`).
    pub mc_iters: usize,
    /// Search budget and seeding.
    pub search: SearchOptions,
    /// Beam width of the default search.
    pub beam_width: usize,
    /// Histogram bins for `exetime` expansion in the probabilistic IR
    /// (kept small — each bin is one weighted fact).
    pub wlog_bins: usize,
    /// When set, the typed path plans against failure-adjusted runtime
    /// histograms: each per-(task, type) distribution is inflated by the
    /// expected retry overhead under the store's `fail_rate` facts and this
    /// retry policy. `None` keeps the reliable-cloud estimates.
    pub retry: Option<deco_cloud::RetryConfig>,
    /// Candidate-block width of the batched frontier evaluator on the
    /// typed path (see `SchedulingProblem::frontier_block`). `1` disables
    /// batching; verdicts are bit-identical either way.
    pub frontier_block: usize,
}

impl Default for DecoOptions {
    fn default() -> Self {
        DecoOptions {
            mc_iters: 100,
            search: SearchOptions::default(),
            beam_width: 4,
            wlog_bins: 5,
            retry: None,
            frontier_block: 4 * crate::estimate::FRONTIER_LANES,
        }
    }
}

/// The provisioning plan Deco hands back to the WMS.
#[derive(Debug, Clone)]
pub struct DecoPlan {
    /// Chosen instance type per task.
    pub types: Vec<usize>,
    /// Concrete slots (after consolidation).
    pub plan: Plan,
    /// The winning state's evaluation.
    pub evaluation: Evaluation,
    /// Search statistics (state counts, modeled device time).
    pub stats: SearchStats,
}

/// The declarative optimization engine.
#[derive(Clone)]
pub struct Deco {
    pub store: MetadataStore,
    pub options: DecoOptions,
}

impl Deco {
    pub fn new(store: MetadataStore) -> Self {
        Deco {
            store,
            options: DecoOptions::default(),
        }
    }

    fn spec(&self) -> &CloudSpec {
        &self.store.spec
    }

    /// Typed fast path for the scheduling problem: same pipeline, compiled
    /// evaluator, suitable for 1000-task workflows.
    pub fn plan_workflow(
        &self,
        wf: &Workflow,
        deadline: f64,
        percentile: f64,
        backend: &EvalBackend,
    ) -> Option<DecoPlan> {
        let mut problem = match &self.options.retry {
            Some(retry) => SchedulingProblem::new_failure_aware(
                wf,
                self.spec(),
                &self.store,
                deadline,
                percentile,
                retry,
            ),
            None => SchedulingProblem::new(wf, self.spec(), &self.store, deadline, percentile),
        };
        problem.mc_iters = self.options.mc_iters;
        problem.frontier_block = self.options.frontier_block;
        let result = problem.solve_beam(&self.options.search, self.options.beam_width, backend);
        result.best.map(|(types, evaluation)| DecoPlan {
            plan: problem.plan_of(&types),
            types,
            evaluation,
            stats: result.stats,
        })
    }

    /// The full declarative path: parse and run a WLog program against a
    /// workflow (resolving `import(...)`s), returning the best plan.
    pub fn plan_workflow_wlog(
        &self,
        program_src: &str,
        wf: &Workflow,
        backend: &EvalBackend,
    ) -> Result<DecoPlan, DecoError> {
        let program = WlogProgram::parse(program_src)?;
        program.validate()?;
        let goal = program
            .goal
            .clone()
            .ok_or_else(|| DecoError::Program("no optimization goal declared".into()))?;
        if program.constraints.is_empty() {
            return Err(DecoError::Program(
                "scheduling programs need at least one constraint".into(),
            ));
        }

        // --- translate to the probabilistic IR (Section 5.1) -------------
        let mut prob = ProbProgram::new();
        for c in &program.clauses {
            prob.push_certain(c.clone()).map_err(translate_err)?;
        }
        let k = self.spec().k();
        // Cloud facts from import(cloud): vm ids and per-second prices.
        for j in 0..k {
            prob.push_certain(deco_wlog::ast::Clause::fact(Term::compound(
                "vm",
                vec![vm_atom(j)],
            )))
            .map_err(translate_err)?;
            prob.push_certain(deco_wlog::ast::Clause::fact(Term::compound(
                "price",
                vec![
                    vm_atom(j),
                    Term::num(self.spec().types[j].price_per_hour / 3600.0),
                ],
            )))
            .map_err(translate_err)?;
        }
        // Calibrated reliability facts, also part of import(cloud): the
        // region ids and the per-(type, region) crash rates measured by the
        // metadata store, so failure-aware programs can weigh reliability
        // against price declaratively.
        for r in 0..self.spec().regions.len() {
            prob.push_certain(deco_wlog::ast::Clause::fact(Term::compound(
                "region",
                vec![region_atom(r)],
            )))
            .map_err(translate_err)?;
        }
        for j in 0..k {
            for r in 0..self.spec().regions.len() {
                prob.push_certain(deco_wlog::ast::Clause::fact(Term::compound(
                    "fail_rate",
                    vec![
                        vm_atom(j),
                        region_atom(r),
                        Term::num(self.store.fail_rate(j, r)),
                    ],
                )))
                .map_err(translate_err)?;
            }
        }
        // Workflow facts from import(workflow): tasks, edges, virtual
        // root/tail.
        for t in wf.task_ids() {
            prob.push_certain(deco_wlog::ast::Clause::fact(Term::compound(
                "task",
                vec![task_atom(t.index())],
            )))
            .map_err(translate_err)?;
        }
        for e in wf.edges() {
            prob.push_certain(edge_fact(
                task_atom(e.from.index()),
                task_atom(e.to.index()),
            ))
            .map_err(translate_err)?;
        }
        for r in wf.roots() {
            prob.push_certain(edge_fact(Term::atom("root"), task_atom(r.index())))
                .map_err(translate_err)?;
        }
        for s in wf.sinks() {
            prob.push_certain(edge_fact(task_atom(s.index()), Term::atom("tail")))
                .map_err(translate_err)?;
        }
        // The virtual root costs nothing on any instance.
        prob.push_certain(deco_wlog::ast::Clause::fact(Term::compound(
            "exetime",
            vec![Term::atom("root"), vm_atom(0), Term::num(0.0)],
        )))
        .map_err(translate_err)?;
        // exetime groups: one annotated disjunction per (task, type), one
        // alternative per histogram bin (the `p_j : exetime(...)` facts).
        let table = ExecTimeTable::build(wf, &self.store, self.options.wlog_bins);
        for t in wf.task_ids() {
            for j in 0..k {
                let alts: Vec<(f64, Term)> = table
                    .hist(t.index(), j)
                    .points()
                    .filter(|(_, p)| *p > 0.0)
                    .map(|(x, p)| {
                        (
                            p,
                            Term::compound(
                                "exetime",
                                vec![task_atom(t.index()), vm_atom(j), Term::num(x)],
                            ),
                        )
                    })
                    .collect();
                prob.push_group(alts).map_err(translate_err)?;
            }
        }

        // --- search (Section 5.3) ----------------------------------------
        let var_functor = program
            .var_functors()
            .first()
            .cloned()
            .ok_or_else(|| DecoError::Program("no optimization variable".into()))?;
        if var_functor.1 != 3 {
            return Err(DecoError::Program(format!(
                "optimization variable {}/{} must have arity 3 (task, vm, indicator)",
                var_functor.0, var_functor.1
            )));
        }
        let problem = WlogSchedulingProblem {
            wf,
            spec: self.spec(),
            evaluator: Mutex::new(Evaluator::new(prob).map_err(translate_err)?),
            program: program.clone(),
            goal,
            var_functor,
            mc_iters: self.options.mc_iters,
            state_bytes: table.state_bytes(),
        };
        // The interpreter serializes state evaluation (the Mutex), so the
        // WLog path always runs the sequential backend; the typed path is
        // the one the device-model comparisons use.
        let _ = backend;
        let seq = EvalBackend::SeqCpu;
        let result = if program.astar {
            astar_search(&problem, &self.options.search, &seq)
        } else {
            beam_search(
                &problem,
                &self.options.search,
                self.options.beam_width,
                &seq,
            )
        };
        let (types, evaluation) = result.best.ok_or_else(|| {
            DecoError::Infeasible(if result.stats.truncated {
                format!(
                    "no feasible provisioning plan found within the search budget \
                     ({:.3} ticks spent over {} states)",
                    result.stats.budget_spent, result.stats.states_evaluated
                )
            } else {
                "no feasible provisioning plan found".into()
            })
        })?;
        Ok(DecoPlan {
            plan: Plan::packed(wf, &types, 0, self.spec()),
            types,
            evaluation,
            stats: result.stats,
        })
    }
}

fn task_atom(i: usize) -> Term {
    Term::atom(format!("t{i}"))
}

fn vm_atom(j: usize) -> Term {
    Term::atom(format!("v{j}"))
}

fn region_atom(r: usize) -> Term {
    Term::atom(format!("r{r}"))
}

fn edge_fact(from: Term, to: Term) -> deco_wlog::ast::Clause {
    deco_wlog::ast::Clause::fact(Term::compound("edge", vec![from, to]))
}

/// The scheduling problem evaluated through the WLog interpreter.
struct WlogSchedulingProblem<'a> {
    wf: &'a Workflow,
    spec: &'a CloudSpec,
    evaluator: Mutex<Evaluator>,
    program: WlogProgram,
    /// The validated goal, held by value so evaluation never re-inspects
    /// the program's `Option<Goal>`.
    goal: Goal,
    var_functor: (String, usize),
    mc_iters: usize,
    state_bytes: usize,
}

impl WlogSchedulingProblem<'_> {
    fn goal_minimize(&self) -> bool {
        self.goal.kind == deco_wlog::program::GoalKind::Minimize
    }

    /// The state's variable facts (the declared functor, e.g. `configs/3`):
    /// one-hot per task, plus the virtual root's fixed configuration.
    fn state_facts(&self, s: &[usize]) -> Vec<Term> {
        let f = self.var_functor.0.as_str();
        let mut facts: Vec<Term> = s
            .iter()
            .enumerate()
            .map(|(i, &j)| Term::compound(f, vec![task_atom(i), vm_atom(j), Term::num(1.0)]))
            .collect();
        facts.push(Term::compound(
            f,
            vec![Term::atom("root"), vm_atom(0), Term::num(1.0)],
        ));
        facts
    }
}

impl SearchProblem for WlogSchedulingProblem<'_> {
    type State = Vec<usize>;
    type Scratch = ();

    fn initial(&self) -> Vec<usize> {
        vec![self.spec.cheapest_type(); self.wf.len()]
    }

    fn neighbors(&self, s: &Vec<usize>) -> Vec<Vec<usize>> {
        schedule_neighbors(self.wf, s, self.spec.k(), false)
    }

    fn evaluate(&self, s: &Vec<usize>, seed: u64) -> Evaluation {
        let worst = if self.goal_minimize() {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        };
        let mut ev = self.evaluator.lock();
        let (f, a) = (self.var_functor.0.as_str(), self.var_functor.1);
        if ev.set_state_facts(f, a, self.state_facts(s)).is_err() {
            // A state whose facts do not ground is unschedulable, not a
            // panic: report it as maximally infeasible and keep searching.
            return Evaluation::infeasible(worst);
        }
        let mut rng = deco_prob::rng::seeded(seed);
        // Constraints first (Algorithm 2 line 5 queries feasibility and
        // cost of the state).
        let mut feasible = true;
        let mut margin = 1.0f64;
        for cons in &self.program.constraints {
            match ev.constraint(cons, self.mc_iters, &mut rng) {
                Ok((ok, est)) => {
                    feasible &= ok;
                    margin = margin.min(est.value);
                }
                Err(_) => {
                    feasible = false;
                    margin = 0.0;
                }
            }
        }
        let objective = match ev.goal_value(&self.goal, self.mc_iters, &mut rng) {
            Ok(est) => est.value,
            Err(_) => return Evaluation::infeasible(worst),
        };
        Evaluation {
            feasible,
            objective,
            constraint_margin: margin,
        }
    }

    fn minimize(&self) -> bool {
        self.goal_minimize()
    }

    fn state_bytes(&self) -> usize {
        self.state_bytes
    }

    fn threads_per_state(&self) -> usize {
        self.mc_iters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_workflow::generators;

    fn deco() -> Deco {
        let spec = CloudSpec::amazon_ec2();
        let store = MetadataStore::from_ground_truth(spec, 25);
        let mut d = Deco::new(store);
        d.options.mc_iters = 40;
        d.options.search.max_states = 400;
        d
    }

    /// Example 1 of the paper, parameterized by the deadline literal.
    fn example1(deadline_secs: f64, percentile: u32) -> String {
        format!(
            r#"
import(amazonec2).
import(workflow).
minimize Ct in totalcost(Ct).
T in maxtime(Path,T) satisfies deadline({percentile}%, {deadline_secs}s).
configs(Tid,Vid,Con) forall task(Tid) and vm(Vid).

path(X,Y,Y,Tp) :- edge(X,Y), exetime(X,Vid,T),
  configs(X,Vid,Con), Con==1, Tp is T.
path(X,Y,Z,Tp) :- edge(X,Z), Z\==Y, path(Z,Y,Z2,T1),
  exetime(X,Vid,T), configs(X,Vid,Con), Con==1, Tp is T+T1.
maxtime(Path,T) :- setof([Z,T1], path(root,tail,Z,T1), Set),
  max(Set, [Path,T]).
cost(Tid,Vid,C) :- price(Vid,Up), exetime(Tid,Vid,T),
  configs(Tid,Vid,Con), C is T*Up*Con.
totalcost(Ct) :- findall(C, cost(Tid,Vid,C), Bag), sum(Bag, Ct).
"#
        )
    }

    #[test]
    fn example1_runs_end_to_end_on_a_pipeline() {
        let d = deco();
        let wf = generators::pipeline(3, 900.0, 16 << 20);
        // Deadline between all-small and all-xlarge critical paths.
        let (dmin, dmax) = crate::estimate::deadline_anchors(&wf, &d.store.spec);
        let deadline = 0.5 * (dmin + dmax);
        let plan = d
            .plan_workflow_wlog(&example1(deadline, 90), &wf, &EvalBackend::SeqCpu)
            .expect("program must produce a plan");
        assert!(plan.evaluation.feasible);
        assert!(plan.evaluation.constraint_margin >= 0.9);
        assert_eq!(plan.types.len(), 3);
        plan.plan.validate(&wf, &d.store.spec).unwrap();
        // The deadline forces at least one task off the cheapest type.
        assert!(plan.types.iter().any(|&t| t > 0));
    }

    #[test]
    fn impossible_deadline_reports_no_plan() {
        let d = deco();
        let wf = generators::pipeline(2, 900.0, 0);
        let err = d
            .plan_workflow_wlog(&example1(1.0, 99), &wf, &EvalBackend::SeqCpu)
            .unwrap_err();
        assert!(matches!(err, DecoError::Infeasible(_)));
    }

    #[test]
    fn looser_deadline_is_not_more_expensive() {
        let d = deco();
        let wf = generators::pipeline(3, 900.0, 16 << 20);
        let (dmin, dmax) = crate::estimate::deadline_anchors(&wf, &d.store.spec);
        let tight = d
            .plan_workflow_wlog(&example1(dmin * 1.4, 90), &wf, &EvalBackend::SeqCpu)
            .expect("tight");
        let loose = d
            .plan_workflow_wlog(&example1(dmax * 2.0, 90), &wf, &EvalBackend::SeqCpu)
            .expect("loose");
        // Fractional (Equation (1)) cost comparison.
        assert!(loose.evaluation.objective <= tight.evaluation.objective + 1e-9);
    }

    #[test]
    fn astar_program_is_accepted() {
        let d = deco();
        let wf = generators::pipeline(2, 600.0, 0);
        let (dmin, dmax) = crate::estimate::deadline_anchors(&wf, &d.store.spec);
        let src = format!(
            "{}\nenabled(astar).\ncal_g_score(C) :- totalcost(C).\nest_h_score(C) :- totalcost(C).\n",
            example1(0.5 * (dmin + dmax), 90)
        );
        let plan = d
            .plan_workflow_wlog(&src, &wf, &EvalBackend::SeqCpu)
            .expect("astar path");
        assert!(plan.evaluation.feasible);
    }

    #[test]
    fn typed_path_produces_valid_plans() {
        let d = deco();
        let wf = generators::montage(1, 13);
        let (dmin, dmax) = crate::estimate::deadline_anchors(&wf, &d.store.spec);
        let plan = d
            .plan_workflow(&wf, 0.5 * (dmin + dmax), 0.9, &EvalBackend::SeqCpu)
            .expect("feasible");
        plan.plan.validate(&wf, &d.store.spec).unwrap();
        assert!(plan.evaluation.feasible);
        assert!(plan.stats.states_evaluated > 0);
    }
}
