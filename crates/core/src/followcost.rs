//! Use case 3 — follow-the-cost (Section 3.3).
//!
//! Workflows run across multiple cloud regions with different prices;
//! migrating a partially executed workflow to a cheaper region saves
//! execution cost but pays for moving intermediate data (Equations
//! (7)–(9)) and must still meet each workflow's deadline (Equation (10)).
//! Migration decisions are made *at runtime*; the paper uses the
//! deterministic (static) deadline notion here to exercise Deco's
//! light-weight re-optimization.
//!
//! The search state is the paper's: "an array of integers, where each
//! dimension stands for a migration decision for a workflow" — the target
//! region per workflow. The evaluation is deterministic (probability-1.0
//! IR translation): remaining execution cost at current estimates plus
//! migration transfer cost, subject to estimated completion within the
//! deadline. Generic search explores the region-assignment space.
//!
//! [`DecoFollowCost`] wraps the optimizer as a [`RuntimePolicy`] so the
//! execution engine re-plans periodically, re-optimizing with the runtime
//! performance observed so far (the paper's re-optimization examples:
//! tasks finishing early ⇒ cheaper children; degraded inter-cloud
//! bandwidth ⇒ cancel a migration).

use deco_cloud::plan::{mean_exec_seconds, VmSlot};
use deco_cloud::sim::{RuntimePolicy, Simulation};
use deco_cloud::CloudSpec;
use deco_solver::{
    generic_search, EvalBackend, Evaluation, SearchOptions, SearchProblem, SearchResult,
};
use deco_workflow::{TaskId, Workflow};

/// A snapshot of one workflow's remaining work, extracted at a decision
/// epoch.
#[derive(Debug, Clone)]
pub struct WorkflowSnapshot {
    /// Region each workflow's pending tasks currently target.
    pub current_region: usize,
    /// Instance type per task (fixed by the scheduling stage).
    pub types: Vec<usize>,
    /// Pending (not yet dispatched) tasks.
    pub pending: Vec<TaskId>,
    /// Estimated remaining critical-path seconds (from now).
    pub remaining_path_seconds: f64,
    /// Seconds until the workflow's deadline (from now).
    pub slack_seconds: f64,
    /// Bytes that would cross the region boundary if migrated now
    /// (intermediate data feeding pending tasks).
    pub migration_bytes: f64,
    /// Estimated remaining instance-seconds, per type (for pricing).
    pub remaining_busy_seconds: f64,
    /// Weighted mean hourly base price of the remaining work's types.
    pub mean_base_price: f64,
    /// Hourly base prices of the distinct instances still serving pending
    /// tasks. Migrating restarts each of them in the target region, which
    /// re-bills a partial instance-hour per instance.
    pub pending_slot_prices: Vec<f64>,
}

impl WorkflowSnapshot {
    /// Build a snapshot from a live simulation.
    pub fn capture(
        sim: &Simulation<'_>,
        wf: &Workflow,
        spec: &CloudSpec,
        types: &[usize],
        deadline: f64,
    ) -> Option<WorkflowSnapshot> {
        let pending = sim.pending_tasks();
        if pending.is_empty() {
            return None;
        }
        let current_region = sim.plan().task_region(pending[0]);
        let pending_set: std::collections::HashSet<TaskId> = pending.iter().copied().collect();
        // Remaining critical path over pending tasks only.
        let (_, remaining_path_seconds) = wf.critical_path(|t| {
            if pending_set.contains(&t) {
                mean_exec_seconds(spec, types[t.index()], wf, t)
            } else {
                0.0
            }
        });
        let migration_bytes: f64 = pending
            .iter()
            .flat_map(|&t| {
                wf.parents(t)
                    .filter(|p| !pending_set.contains(p))
                    .map(move |p| wf.edge_bytes(p, t).unwrap_or(0.0))
            })
            .sum();
        let remaining_busy_seconds: f64 = pending
            .iter()
            .map(|&t| mean_exec_seconds(spec, types[t.index()], wf, t))
            .sum();
        let mean_base_price = if remaining_busy_seconds > 0.0 {
            pending
                .iter()
                .map(|&t| {
                    mean_exec_seconds(spec, types[t.index()], wf, t)
                        * spec.types[types[t.index()]].price_per_hour
                })
                .sum::<f64>()
                / remaining_busy_seconds
        } else {
            0.0
        };
        let mut slots: Vec<usize> = pending
            .iter()
            .map(|&t| sim.plan().assign[t.index()])
            .collect();
        slots.sort_unstable();
        slots.dedup();
        // A lost instance (revoked or unbootable) must be replaced whether
        // or not we migrate, so it contributes no migration restart cost.
        let pending_slot_prices = slots
            .iter()
            .filter(|&&s| !sim.slot_lost(s))
            .map(|&s| spec.types[sim.plan().slots[s].itype].price_per_hour)
            .collect();
        Some(WorkflowSnapshot {
            current_region,
            types: types.to_vec(),
            pending,
            remaining_path_seconds,
            slack_seconds: deadline - sim.now(),
            migration_bytes,
            remaining_busy_seconds,
            mean_base_price,
            pending_slot_prices,
        })
    }
}

/// The migration optimization over a set of workflows.
pub struct FollowCostProblem<'a> {
    pub spec: &'a CloudSpec,
    pub snapshots: &'a [WorkflowSnapshot],
}

impl FollowCostProblem<'_> {
    /// Deterministic cost of one workflow under a target region:
    /// `EC_i + MC_i` of Equations (8)–(9).
    fn workflow_cost(&self, snap: &WorkflowSnapshot, region: usize) -> f64 {
        let exec = snap.remaining_busy_seconds / 3600.0
            * snap.mean_base_price
            * self.spec.regions[region].price_multiplier;
        let migration = if region == snap.current_region {
            0.0
        } else {
            // Transfer bill plus the expected partial-hour waste of
            // restarting each still-pending instance in the new region
            // (half a billing quantum each, in expectation).
            let transfer = snap.migration_bytes / (1024.0 * 1024.0 * 1024.0)
                * self.spec.inter_region_price_per_gb;
            let restart: f64 = snap
                .pending_slot_prices
                .iter()
                .map(|p| 0.5 * p * self.spec.regions[region].price_multiplier)
                .sum();
            transfer + restart
        };
        exec + migration
    }

    /// Deterministic completion estimate under a target region (Equation
    /// (10)'s left side): remaining path plus the migration transfer time.
    fn workflow_time(&self, snap: &WorkflowSnapshot, region: usize) -> f64 {
        let mut t = snap.remaining_path_seconds;
        if region != snap.current_region {
            t += deco_cloud::dynamics::phase_seconds_mean(
                snap.migration_bytes,
                &self.spec.cross_region_net(),
            );
        }
        t
    }

    pub fn solve(&self, opts: &SearchOptions, backend: &EvalBackend) -> SearchResult<Vec<usize>> {
        generic_search(self, opts, backend)
    }
}

impl SearchProblem for FollowCostProblem<'_> {
    type State = Vec<usize>;
    type Scratch = ();

    fn initial(&self) -> Vec<usize> {
        self.snapshots.iter().map(|s| s.current_region).collect()
    }

    fn neighbors(&self, s: &Vec<usize>) -> Vec<Vec<usize>> {
        // Change one workflow's target region.
        let mut out = Vec::new();
        for (i, snap) in self.snapshots.iter().enumerate() {
            let _ = snap;
            for r in 0..self.spec.regions.len() {
                if s[i] != r {
                    let mut child = s.clone();
                    child[i] = r;
                    out.push(child);
                }
            }
        }
        out
    }

    fn evaluate(&self, s: &Vec<usize>, _seed: u64) -> Evaluation {
        let mut cost = 0.0;
        let mut feasible = true;
        let mut min_slack_ratio = f64::INFINITY;
        for (snap, &region) in self.snapshots.iter().zip(s) {
            cost += self.workflow_cost(snap, region);
            let t = self.workflow_time(snap, region);
            if t > snap.slack_seconds {
                feasible = false;
            }
            let ratio = if t > 0.0 {
                (snap.slack_seconds / t).min(1.0)
            } else {
                1.0
            };
            min_slack_ratio = min_slack_ratio.min(ratio.max(0.0));
        }
        Evaluation {
            feasible,
            objective: cost,
            constraint_margin: if min_slack_ratio.is_finite() {
                min_slack_ratio
            } else {
                1.0
            },
        }
    }

    fn state_bytes(&self) -> usize {
        self.snapshots.len() * 8
    }
}

/// Deco as a runtime migration policy for one workflow.
pub struct DecoFollowCost {
    pub spec: CloudSpec,
    pub types: Vec<usize>,
    pub deadline: f64,
    pub opts: SearchOptions,
    /// Number of re-optimizations performed.
    pub replans: usize,
}

impl DecoFollowCost {
    pub fn new(spec: CloudSpec, types: Vec<usize>, deadline: f64) -> Self {
        DecoFollowCost {
            spec,
            types,
            deadline,
            opts: SearchOptions {
                max_states: 64,
                ..Default::default()
            },
            replans: 0,
        }
    }
}

impl RuntimePolicy for DecoFollowCost {
    fn replan(&mut self, sim: &mut Simulation<'_>, wf: &Workflow) {
        let Some(snap) = WorkflowSnapshot::capture(sim, wf, &self.spec, &self.types, self.deadline)
        else {
            return;
        };
        self.replans += 1;
        let snaps = [snap];
        let problem = FollowCostProblem {
            spec: &self.spec,
            snapshots: &snaps,
        };
        let result = problem.solve(&self.opts, &EvalBackend::SeqCpu);
        let Some((state, _)) = result.best else {
            return;
        };
        let target = state[0];
        if target != snaps[0].current_region {
            // Preserve consolidation: pending tasks that shared an instance
            // keep sharing one in the target region.
            let mut by_slot: std::collections::BTreeMap<usize, Vec<deco_workflow::TaskId>> =
                std::collections::BTreeMap::new();
            for &t in &snaps[0].pending {
                by_slot
                    .entry(sim.plan().assign[t.index()])
                    .or_default()
                    .push(t);
            }
            for (_, tasks) in by_slot {
                let itype = self.types[tasks[0].index()];
                sim.reassign_group(
                    &tasks,
                    VmSlot {
                        itype,
                        region: target,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_cloud::sim::run_with_policy;
    use deco_cloud::Plan;
    use deco_workflow::generators;

    fn snap(region: usize, busy: f64, bytes: f64, slack: f64) -> WorkflowSnapshot {
        WorkflowSnapshot {
            current_region: region,
            types: vec![0],
            pending: vec![TaskId(0)],
            remaining_path_seconds: busy,
            slack_seconds: slack,
            migration_bytes: bytes,
            remaining_busy_seconds: busy,
            mean_base_price: 0.1,
            pending_slot_prices: vec![0.1],
        }
    }

    #[test]
    fn migrates_compute_heavy_work_to_cheap_region() {
        let spec = CloudSpec::amazon_ec2();
        let snaps = vec![snap(1, 50_000.0, 1024.0, 1e9)];
        let p = FollowCostProblem {
            spec: &spec,
            snapshots: &snaps,
        };
        let r = p.solve(&SearchOptions::default(), &EvalBackend::SeqCpu);
        let (state, eval) = r.best.unwrap();
        assert_eq!(state, vec![0], "us-east is cheaper");
        assert!(eval.feasible);
    }

    #[test]
    fn stays_when_migration_data_dominates() {
        let mut spec = CloudSpec::amazon_ec2();
        spec.inter_region_price_per_gb = 100.0;
        let snaps = vec![snap(1, 100.0, 50.0 * 1024.0 * 1024.0 * 1024.0, 1e9)];
        let p = FollowCostProblem {
            spec: &spec,
            snapshots: &snaps,
        };
        let r = p.solve(&SearchOptions::default(), &EvalBackend::SeqCpu);
        let (state, _) = r.best.unwrap();
        assert_eq!(state, vec![1], "transfer cost dwarfs the price difference");
    }

    #[test]
    fn deadline_blocks_slow_migrations() {
        let spec = CloudSpec::amazon_ec2();
        // Migration moves 100 GB at ~25 MB/s ≈ 4096 s; slack is 1000 s, so
        // the cheap region is unreachable in time.
        let snaps = vec![snap(1, 500.0, 100.0 * 1024.0 * 1024.0 * 1024.0, 1000.0)];
        let p = FollowCostProblem {
            spec: &spec,
            snapshots: &snaps,
        };
        let r = p.solve(&SearchOptions::default(), &EvalBackend::SeqCpu);
        let (state, eval) = r.best.unwrap();
        assert_eq!(state, vec![1], "staying is the only feasible choice");
        assert!(eval.feasible);
    }

    #[test]
    fn multi_workflow_decisions_are_independent_here() {
        let spec = CloudSpec::amazon_ec2();
        let snaps = vec![
            snap(1, 50_000.0, 1024.0, 1e9),
            snap(0, 50_000.0, 1024.0, 1e9),
        ];
        let p = FollowCostProblem {
            spec: &spec,
            snapshots: &snaps,
        };
        let r = p.solve(&SearchOptions::default(), &EvalBackend::SeqCpu);
        let (state, _) = r.best.unwrap();
        assert_eq!(state, vec![0, 0]);
    }

    #[test]
    fn deco_policy_migrates_in_simulation() {
        let spec = CloudSpec::amazon_ec2();
        let wf = generators::pipeline(5, 2000.0, 1024);
        let types = vec![0; wf.len()];
        let plan = Plan::packed(&wf, &types, 1, &spec);
        let mut policy = DecoFollowCost::new(spec.clone(), types, 1e9);
        let r = run_with_policy(&spec, &wf, &plan, &mut policy, 500.0, 21);
        assert!(policy.replans >= 1);
        assert!(
            r.cost.transfer > 0.0,
            "the policy should have moved pending work to us-east"
        );
    }

    #[test]
    fn deco_policy_cheaper_than_staying_for_long_workflows() {
        let spec = CloudSpec::amazon_ec2();
        let wf = generators::pipeline(6, 3600.0, 1024);
        let types = vec![0; wf.len()];
        let plan = Plan::packed(&wf, &types, 1, &spec);
        let stay = deco_cloud::sim::run_plan(&spec, &wf, &plan, 5);
        let mut policy = DecoFollowCost::new(spec.clone(), types, 1e9);
        let moved = run_with_policy(&spec, &wf, &plan, &mut policy, 600.0, 5);
        assert!(
            moved.cost.total() < stay.cost.total(),
            "migrated {} vs stayed {}",
            moved.cost.total(),
            stay.cost.total()
        );
    }
}
