//! Use case 1 — the workflow scheduling problem (Section 3.1).
//!
//! Select an instance type for every task (`vm_ij`) minimizing the mean
//! monetary cost (Equation (1)) subject to the probabilistic deadline
//! `P(makespan <= D) >= p` (Equation (3)). States are type vectors, the
//! transformation operations generate neighbors (Figure 5), and each state
//! is evaluated by Monte Carlo over the calibrated execution-time
//! distributions.

use crate::estimate::{
    mc_evaluate_plan_scratch, CompiledFrontier, EvalScratch, ExecTimeTable, FrontierSkeleton,
    McEval, FRONTIER_LANES,
};
use deco_cloud::{CloudSpec, MetadataStore, Plan};

/// Which monetary objective the search minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveMode {
    /// Realistic: instance-hours of the packed plan (what the bill says).
    HourlyPlan,
    /// Equation (1) literally: sum of mean task seconds x unit price. The
    /// paper's formulation; monotone under promotion from the cheapest
    /// state, which is what licenses A* incumbent pruning.
    FractionalMean,
}
use deco_solver::transform::{schedule_neighbors, TypeState};
use deco_solver::{
    astar_search, beam_search, generic_search, EvalBackend, Evaluation, SearchOptions,
    SearchProblem, SearchResult,
};
use deco_workflow::Workflow;

/// The scheduling problem instance.
pub struct SchedulingProblem<'a> {
    pub wf: &'a Workflow,
    pub spec: &'a CloudSpec,
    pub table: ExecTimeTable,
    /// Probabilistic deadline: `P(makespan <= deadline) >= percentile`.
    pub deadline: f64,
    pub percentile: f64,
    /// Monte-Carlo iterations per state (the paper's `Max_iter`).
    pub mc_iters: usize,
    pub region: usize,
    /// Promote-only neighbor generation: monotone cost growth from the
    /// all-cheapest initial state, enabling A* incumbent pruning (the
    /// paper's Example of Section 5.3).
    pub promote_only: bool,
    /// Monetary objective (see [`ObjectiveMode`]).
    pub objective: ObjectiveMode,
    /// Fraction of the deadline the deterministic packer may consume.
    /// Packing to the full deadline leaves no headroom for the dynamics
    /// the probabilistic constraint guards against; the remainder is the
    /// variance reserve.
    pub pack_safety: f64,
    /// Candidate-block width handed to the batched frontier evaluator:
    /// the search backends chunk each frontier into blocks of this many
    /// states and evaluate every block as one [`CompiledFrontier`] pass.
    /// `1` disables the frontier path (per-state evaluation); results are
    /// bit-identical either way.
    pub frontier_block: usize,
    /// Shared dispatch/CDF structure for the frontier evaluator, compiled
    /// once per problem (rebuilt by [`SchedulingProblem::rebuild_frontier_skeleton`]
    /// if `table` is replaced by hand).
    skeleton: FrontierSkeleton,
}

impl<'a> SchedulingProblem<'a> {
    pub fn new(
        wf: &'a Workflow,
        spec: &'a CloudSpec,
        store: &MetadataStore,
        deadline: f64,
        percentile: f64,
    ) -> Self {
        assert!(deadline > 0.0, "deadline must be positive");
        assert!((0.0..=1.0).contains(&percentile));
        let table = ExecTimeTable::build(wf, store, 12);
        let skeleton = FrontierSkeleton::build(wf, &table);
        SchedulingProblem {
            wf,
            spec,
            table,
            deadline,
            percentile,
            mc_iters: 100,
            region: 0,
            promote_only: false,
            objective: ObjectiveMode::HourlyPlan,
            pack_safety: 0.85,
            frontier_block: 4 * FRONTIER_LANES,
            skeleton,
        }
    }

    /// Like [`SchedulingProblem::new`], but estimation folds the store's
    /// `fail_rate(type, region)` facts into every execution-time
    /// histogram (expected retry overhead under `retry`), so the search
    /// optimizes failure-aware plans through the unchanged Monte-Carlo
    /// path. Identical to [`SchedulingProblem::new`] when the store
    /// records no failures.
    pub fn new_failure_aware(
        wf: &'a Workflow,
        spec: &'a CloudSpec,
        store: &MetadataStore,
        deadline: f64,
        percentile: f64,
        retry: &deco_cloud::RetryConfig,
    ) -> Self {
        let mut p = Self::new(wf, spec, store, deadline, percentile);
        p.table = ExecTimeTable::build_failure_aware(wf, store, 12, p.region, retry);
        p.rebuild_frontier_skeleton();
        p
    }

    /// Rebuild the cached [`FrontierSkeleton`] from the current `table`.
    /// The constructors call this; it only needs calling again if `table`
    /// is replaced by hand after construction (the skeleton flattens the
    /// table's CDF rows, so a stale skeleton would evaluate against stale
    /// distributions).
    pub fn rebuild_frontier_skeleton(&mut self) {
        self.skeleton = FrontierSkeleton::build(self.wf, &self.table);
    }

    /// Map one Monte-Carlo verdict to the search-facing [`Evaluation`] —
    /// the single post-processing used by both the per-plan and the
    /// frontier path (same inputs → same bits).
    fn finish_eval(&self, s: &TypeState, e: McEval) -> Evaluation {
        // The margin is a *continuous* proximity signal: the ratio of the
        // deadline to the p-th-quantile makespan. It equals/exceeds 1 when
        // the probabilistic constraint holds and decays smoothly as plans
        // get slower, giving the search a gradient through the infeasible
        // region (Figure 5's promotion chain).
        let margin = if e.quantile_makespan > 0.0 {
            (self.deadline / e.quantile_makespan).min(1.0)
        } else {
            1.0
        };
        let objective = match self.objective {
            ObjectiveMode::HourlyPlan => e.mean_cost,
            ObjectiveMode::FractionalMean => s
                .iter()
                .enumerate()
                .map(|(i, &ty)| self.table.mean(i, ty) / 3600.0 * self.spec.price(ty, self.region))
                .sum(),
        };
        Evaluation {
            feasible: e.prob >= self.percentile,
            objective,
            constraint_margin: margin,
        }
    }

    /// Materialize a type state into a provisioning plan with
    /// deadline-aware consolidation (the Move/Merge operations), packing
    /// against the safety-contracted deadline.
    pub fn plan_of(&self, s: &TypeState) -> Plan {
        Plan::packed_deadline(
            self.wf,
            s,
            self.region,
            self.spec,
            self.deadline * self.pack_safety,
        )
    }

    /// Solve with the generic search (Algorithm 2).
    pub fn solve_generic(
        &self,
        opts: &SearchOptions,
        backend: &EvalBackend,
    ) -> SearchResult<TypeState> {
        generic_search(self, opts, backend)
    }

    /// Solve with A* (the `enabled(astar)` path: g and h are both the
    /// state's estimated monetary cost, as in the paper's example).
    pub fn solve_astar(
        &self,
        opts: &SearchOptions,
        backend: &EvalBackend,
    ) -> SearchResult<TypeState> {
        astar_search(self, opts, backend)
    }

    /// Solve with the beam search (the engine's default: bootstraps
    /// feasibility by promotion, then descends in cost by demotion, with
    /// the whole frontier evaluated as one device batch per round).
    pub fn solve_beam(
        &self,
        opts: &SearchOptions,
        beam_width: usize,
        backend: &EvalBackend,
    ) -> SearchResult<TypeState> {
        beam_search(self, opts, beam_width, backend)
    }
}

impl SearchProblem for SchedulingProblem<'_> {
    type State = TypeState;
    type Scratch = EvalScratch;

    fn initial(&self) -> TypeState {
        // All tasks on the cheapest type (Figure 5b's initial state).
        vec![self.spec.cheapest_type(); self.wf.len()]
    }

    fn neighbors(&self, s: &TypeState) -> Vec<TypeState> {
        schedule_neighbors(self.wf, s, self.spec.k(), self.promote_only)
    }

    fn evaluate(&self, s: &TypeState, seed: u64) -> Evaluation {
        // Reuse one scratch per thread instead of allocating fresh buffers
        // on every call — this is the fallback path long-lived callers hit
        // without threading a scratch of their own.
        thread_local! {
            static SCRATCH: std::cell::RefCell<EvalScratch> =
                std::cell::RefCell::new(EvalScratch::new());
        }
        SCRATCH.with(|sc| self.evaluate_with(s, seed, &mut sc.borrow_mut()))
    }

    fn evaluate_with(&self, s: &TypeState, seed: u64, scratch: &mut EvalScratch) -> Evaluation {
        let plan = self.plan_of(s);
        let e = mc_evaluate_plan_scratch(
            self.wf,
            &plan,
            &self.table,
            self.spec,
            self.deadline,
            self.percentile,
            self.mc_iters,
            seed,
            scratch,
        );
        self.finish_eval(s, e)
    }

    fn frontier_block(&self) -> usize {
        self.frontier_block.max(1)
    }

    fn evaluate_frontier(
        &self,
        states: &[TypeState],
        seeds: &[u64],
        scratch: &mut EvalScratch,
    ) -> Vec<Evaluation> {
        debug_assert_eq!(states.len(), seeds.len());
        let plans: Vec<Plan> = states.iter().map(|s| self.plan_of(s)).collect();
        match CompiledFrontier::compile(&self.skeleton, self.spec, &plans) {
            Some(frontier) => {
                let verdicts = frontier.evaluate(
                    self.deadline,
                    self.percentile,
                    self.mc_iters,
                    seeds,
                    &mut scratch.frontier,
                );
                states
                    .iter()
                    .zip(verdicts)
                    .map(|(s, e)| self.finish_eval(s, e))
                    .collect()
            }
            // A candidate's dispatch ranks disagree with the shared
            // skeleton (never the case for packer-produced plans): take
            // the per-plan path, which is bit-identical by contract.
            None => states
                .iter()
                .zip(seeds)
                .map(|(s, &seed)| self.evaluate_with(s, seed, scratch))
                .collect(),
        }
    }

    fn state_bytes(&self) -> usize {
        self.table.state_bytes()
    }

    fn threads_per_state(&self) -> usize {
        self.mc_iters
    }

    fn children_monotone(&self) -> bool {
        // Hourly billing breaks cost monotonicity under promotion (a
        // faster type can need fewer instance-hours), so incumbent pruning
        // is only sound for the paper's fractional Equation (1) objective
        // with promote-only moves.
        self.promote_only && self.objective == ObjectiveMode::FractionalMean
    }

    fn h_score(&self, _s: &TypeState, _eval: &Evaluation) -> f64 {
        // The paper's example sets both scores to the state's estimated
        // cost; g (the objective) already carries it, so h adds nothing.
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::deadline_anchors;
    use deco_workflow::generators;

    fn setup(_wf: &Workflow) -> (CloudSpec, MetadataStore) {
        let spec = CloudSpec::amazon_ec2();
        let store = MetadataStore::from_ground_truth(spec.clone(), 30);
        (spec, store)
    }

    fn medium_deadline(wf: &Workflow, spec: &CloudSpec) -> f64 {
        let (dmin, dmax) = deadline_anchors(wf, spec);
        0.5 * (dmin + dmax)
    }

    #[test]
    fn finds_a_feasible_plan_on_montage1() {
        let wf = generators::montage(1, 7);
        let (spec, store) = setup(&wf);
        let d = medium_deadline(&wf, &spec);
        let mut p = SchedulingProblem::new(&wf, &spec, &store, d, 0.9);
        p.mc_iters = 60;
        let r = p.solve_beam(&SearchOptions::default(), 4, &EvalBackend::SeqCpu);
        let (state, eval) = r.best.expect("montage-1 must be schedulable");
        assert!(eval.feasible);
        assert!(eval.constraint_margin >= 0.9);
        let plan = p.plan_of(&state);
        plan.validate(&wf, &spec).unwrap();
    }

    #[test]
    fn backends_agree_on_batched_scheduling_evaluations() {
        // The scratch-carrying fast path must stay backend-invariant: a
        // batch evaluated sequentially, on the multi-core model and on the
        // GPU model — with workers stealing states in different
        // interleavings and reusing dirty scratches — returns identical
        // evaluations for identical (state, seed).
        use deco_solver::eval::evaluate_batch;
        let wf = generators::montage(1, 11);
        let (spec, store) = setup(&wf);
        let d = medium_deadline(&wf, &spec);
        let mut p = SchedulingProblem::new(&wf, &spec, &store, d, 0.9);
        p.mc_iters = 40;
        let states: Vec<_> = (0..4)
            .flat_map(|ty| {
                let s = vec![ty; wf.len()];
                let mut n = p.neighbors(&s);
                n.truncate(3);
                n.push(s);
                n
            })
            .collect();
        let (seq, _) = evaluate_batch(&p, &states, &EvalBackend::SeqCpu, 77);
        let (par, _) = evaluate_batch(&p, &states, &EvalBackend::ParCpu(6), 77);
        let (gpu, _) = evaluate_batch(
            &p,
            &states,
            &EvalBackend::SimGpu(deco_gpu::DeviceSpec::k40()),
            77,
        );
        assert_eq!(seq, par);
        assert_eq!(seq, gpu);
    }

    #[test]
    fn infeasible_deadline_yields_none() {
        let wf = generators::montage(1, 8);
        let (spec, store) = setup(&wf);
        let mut p = SchedulingProblem::new(&wf, &spec, &store, 0.01, 0.99);
        p.mc_iters = 20;
        let opts = SearchOptions {
            max_states: 200,
            ..Default::default()
        };
        let r = p.solve_generic(&opts, &EvalBackend::SeqCpu);
        assert!(r.best.is_none());
    }

    #[test]
    fn tighter_percentile_costs_at_least_as_much() {
        let wf = generators::montage(1, 9);
        let (spec, store) = setup(&wf);
        let d = medium_deadline(&wf, &spec);
        let solve = |pct: f64| {
            let mut p = SchedulingProblem::new(&wf, &spec, &store, d, pct);
            p.mc_iters = 60;
            p.solve_beam(&SearchOptions::default(), 4, &EvalBackend::SeqCpu)
                .best
                .map(|(_, e)| e.objective)
        };
        let loose = solve(0.5).expect("feasible at 50%");
        let tight = solve(0.95).expect("feasible at 95%");
        // Beam search is an anytime heuristic, so exact monotonicity in the
        // percentile is not guaranteed — but the tight requirement should
        // never come out *substantially* cheaper.
        assert!(
            tight >= loose * 0.75 - 1e-9,
            "95% requirement ({tight}) far cheaper than 50% ({loose})"
        );
    }

    #[test]
    fn astar_matches_generic_on_small_instances() {
        let wf = generators::pipeline(4, 600.0, 32 << 20);
        let (spec, store) = setup(&wf);
        let d = medium_deadline(&wf, &spec);
        let mut p = SchedulingProblem::new(&wf, &spec, &store, d, 0.9);
        p.mc_iters = 80;
        p.promote_only = true;
        p.objective = ObjectiveMode::FractionalMean;
        let g = p.solve_generic(&SearchOptions::default(), &EvalBackend::SeqCpu);
        let a = p.solve_astar(&SearchOptions::default(), &EvalBackend::SeqCpu);
        let go = g.best.as_ref().map(|(_, e)| e.objective).unwrap();
        let ao = a.best.as_ref().map(|(_, e)| e.objective).unwrap();
        assert!(
            (go - ao).abs() < 1e-9,
            "A* ({ao}) and generic ({go}) must agree on a 4-task chain"
        );
    }

    #[test]
    fn deco_beats_or_matches_single_type_configs() {
        // The Figure 1 shape: among deadline-meeting configurations, the
        // searched plan is the cheapest.
        let wf = generators::montage(1, 10);
        let (spec, store) = setup(&wf);
        let d = medium_deadline(&wf, &spec);
        let mut p = SchedulingProblem::new(&wf, &spec, &store, d, 0.9);
        p.mc_iters = 80;
        let best = p
            .solve_beam(&SearchOptions::default(), 4, &EvalBackend::SeqCpu)
            .best
            .expect("feasible");
        for ty in 0..spec.k() {
            let s = vec![ty; wf.len()];
            let e = p.evaluate(&s, deco_solver::eval::state_seed(0xD5C0, &s));
            if e.feasible {
                assert!(
                    best.1.objective <= e.objective * 1.02,
                    "single-type {ty} (cost {}) beats the search ({})",
                    e.objective,
                    best.1.objective
                );
            }
        }
    }
}
