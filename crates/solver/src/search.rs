//! Generic (Algorithm 2) and A* search.

use crate::eval::{evaluate_batch, EvalBackend, Evaluation};
use crate::SearchProblem;
use deco_gpu::model_ticks;
use std::collections::{BinaryHeap, HashSet, VecDeque};
use std::time::Instant;

/// An anytime budget for one search (Section 6's requirement that solver
/// overhead stays small relative to workflow makespan).
///
/// The primary budget is **deterministic**: device-model ticks computed by
/// [`deco_gpu::model_ticks`] from launch shapes alone, so the same seed and
/// the same budget always truncate at the same batch boundary and return
/// the same incumbent. The wall-clock guard is an optional safety net for
/// pathological evaluators; it trades that reproducibility for a hard
/// real-time ceiling, so leave it `None` in deterministic pipelines.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchBudget {
    /// Deterministic budget in device-model ticks ([`deco_gpu::model_ticks`]).
    pub ticks: Option<f64>,
    /// Non-deterministic wall-clock guard in host seconds.
    pub wall_seconds: Option<f64>,
}

impl SearchBudget {
    /// No budget: searches run to `max_states`/patience exactly as before.
    pub fn unlimited() -> Self {
        SearchBudget::default()
    }

    /// A deterministic tick budget with no wall-clock guard.
    pub fn ticks(ticks: f64) -> Self {
        SearchBudget {
            ticks: Some(ticks),
            wall_seconds: None,
        }
    }

    pub fn is_unlimited(&self) -> bool {
        self.ticks.is_none() && self.wall_seconds.is_none()
    }

    /// Remaining tick budget after `spent`, floored at zero. Unlimited
    /// budgets stay unlimited.
    pub fn minus_ticks(&self, spent: f64) -> Self {
        SearchBudget {
            ticks: self.ticks.map(|t| (t - spent).max(0.0)),
            wall_seconds: self.wall_seconds,
        }
    }

    /// Split this budget fairly across `n` concurrent consumers: each
    /// share gets `ticks / n` (and `wall_seconds / n`); an unlimited
    /// budget stays unlimited. This is the allocation rule multi-tenant
    /// serving uses to divide a per-cycle tick pool among the tenants of
    /// one solver batch.
    pub fn fair_share(&self, n: usize) -> Self {
        assert!(n >= 1, "fair_share needs at least one consumer");
        SearchBudget {
            ticks: self.ticks.map(|t| t / n as f64),
            wall_seconds: self.wall_seconds.map(|w| w / n as f64),
        }
    }

    fn exhausted(&self, spent_ticks: f64, t0: &Instant) -> bool {
        self.ticks.is_some_and(|b| spent_ticks >= b)
            || self
                .wall_seconds
                .is_some_and(|b| t0.elapsed().as_secs_f64() >= b)
    }
}

/// Search controls.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Hard budget on evaluated states (the paper's Algorithm 2 explores a
    /// FIFO queue; this bounds it for the exponential worst case).
    pub max_states: usize,
    /// Stop when this many consecutive frontier batches bring no
    /// improvement of the incumbent.
    pub patience: usize,
    /// Frontier batch size per kernel launch (the paper launches one block
    /// per searched state across the device's SMs).
    pub batch: usize,
    /// Root seed for the per-state Monte-Carlo seeds.
    pub seed: u64,
    /// Anytime budget: on exhaustion the search returns the best incumbent
    /// found so far with `SearchStats::truncated` set. The default is
    /// unlimited, which leaves behavior bit-identical to an unbudgeted
    /// search.
    pub budget: SearchBudget,
    /// Upper bound on the beam search's runner-up reservoir — evaluated
    /// but unexpanded states kept for backtracking. `None` keeps the
    /// historical bound `(beam_width * 16).max(64)`; searches with it set
    /// to exactly that value are bit-identical to `None`.
    pub pool_reserve: Option<usize>,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            max_states: 20_000,
            patience: 8,
            batch: 64,
            seed: 0xD5C0,
            budget: SearchBudget::unlimited(),
            pool_reserve: None,
        }
    }
}

/// Counters and device-model timing of one search.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    pub states_evaluated: usize,
    pub batches: usize,
    /// Modeled evaluation seconds on the chosen backend's device.
    pub modeled_eval_seconds: f64,
    /// Measured single-core seconds of all evaluation work.
    pub host_eval_seconds: f64,
    /// Wall-clock of the whole search on the host.
    pub wall_seconds: f64,
    /// Deterministic device-model ticks charged against the budget.
    pub budget_spent: f64,
    /// Whether the budget cut the search before its natural stop.
    pub truncated: bool,
}

impl SearchStats {
    /// The deterministic subset of the stats: everything except the two
    /// measured host timings. Two runs with the same seed and budget must
    /// agree on this tuple exactly — the anytime determinism contract.
    pub fn deterministic_key(&self) -> (usize, usize, u64, bool) {
        (
            self.states_evaluated,
            self.batches,
            self.budget_spent.to_bits(),
            self.truncated,
        )
    }
}

/// Result: the incumbent (best feasible state) and stats.
#[derive(Debug, Clone)]
pub struct SearchResult<S> {
    pub best: Option<(S, Evaluation)>,
    pub stats: SearchStats,
}

fn better(minimize: bool, a: f64, b: f64) -> bool {
    if minimize {
        a < b
    } else {
        a > b
    }
}

/// Algorithm 2: breadth-first exploration from the initial state with a
/// visited set, evaluating frontier batches on the backend and keeping the
/// best feasible state.
pub fn generic_search<P: SearchProblem>(
    problem: &P,
    opts: &SearchOptions,
    backend: &EvalBackend,
) -> SearchResult<P::State> {
    let t0 = Instant::now();
    let minimize = problem.minimize();
    // One DeviceSpec clone per search, not per batch: `model_ticks` only
    // needs the launch shape.
    let device = backend.device();
    let mut stats = SearchStats::default();
    let mut visited: HashSet<P::State> = HashSet::new();
    let mut queue: VecDeque<P::State> = VecDeque::new();
    let mut best: Option<(P::State, Evaluation)> = None;
    let init = problem.initial();
    visited.insert(init.clone());
    queue.push_back(init);
    let mut stale_batches = 0usize;

    while !queue.is_empty() && stats.states_evaluated < opts.max_states {
        let take = opts
            .batch
            .min(queue.len())
            .min(opts.max_states - stats.states_evaluated);
        let batch: Vec<P::State> = queue.drain(..take).collect();
        let (evals, timing) = evaluate_batch(problem, &batch, backend, opts.seed);
        stats.states_evaluated += batch.len();
        stats.batches += 1;
        stats.modeled_eval_seconds += timing.modeled_seconds;
        stats.host_eval_seconds += timing.host_seconds;
        stats.budget_spent += model_ticks(
            &device,
            batch.len(),
            problem.threads_per_state(),
            problem.state_bytes(),
        );

        let mut improved = false;
        for (state, eval) in batch.iter().zip(&evals) {
            if eval.feasible
                && best
                    .as_ref()
                    .is_none_or(|(_, b)| better(minimize, eval.objective, b.objective))
            {
                best = Some((state.clone(), *eval));
                improved = true;
            }
        }
        if opts.budget.exhausted(stats.budget_spent, &t0) {
            stats.truncated = true;
            break;
        }
        for state in &batch {
            for child in problem.neighbors(state) {
                if visited.insert(child.clone()) {
                    queue.push_back(child);
                }
            }
        }
        stale_batches = if improved { 0 } else { stale_batches + 1 };
        if best.is_some() && stale_batches >= opts.patience {
            break;
        }
    }
    stats.wall_seconds = t0.elapsed().as_secs_f64();
    SearchResult { best, stats }
}

/// Beam search — the *exploitation* counterpart of Algorithm 2's
/// exploration (the paper discusses the trade-off in Section 5.3 and
/// chooses exploration for GPU parallelism; the beam keeps the same
/// batch-parallel evaluation while following good partial solutions).
///
/// Each round evaluates the whole frontier as one kernel batch, then keeps
/// the best `beam_width` children: feasible states ranked by objective
/// first, infeasible ones ranked by constraint margin (closest to feasible
/// first) to bootstrap feasibility from the all-cheapest initial state.
pub fn beam_search<P: SearchProblem>(
    problem: &P,
    opts: &SearchOptions,
    beam_width: usize,
    backend: &EvalBackend,
) -> SearchResult<P::State> {
    assert!(beam_width > 0);
    let t0 = Instant::now();
    let minimize = problem.minimize();
    let device = backend.device();
    let pool_reserve = opts.pool_reserve.unwrap_or((beam_width * 16).max(64));
    let mut stats = SearchStats::default();
    let mut visited: HashSet<P::State> = HashSet::new();
    let mut best: Option<(P::State, Evaluation)> = None;
    let init = problem.initial();
    visited.insert(init.clone());
    let mut frontier = vec![init];
    // Evaluated states not yet expanded. The beam draws from this global
    // pool, so a round's runners-up stay available later (beam with
    // backtracking) instead of being discarded forever.
    let mut pool: Vec<(P::State, Evaluation)> = Vec::new();
    let mut stale = 0usize;

    let rank = |a: &Evaluation, b: &Evaluation| -> std::cmp::Ordering {
        match (a.feasible, b.feasible) {
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            (true, true) => {
                if minimize {
                    a.objective.total_cmp(&b.objective)
                } else {
                    b.objective.total_cmp(&a.objective)
                }
            }
            (false, false) => b.constraint_margin.total_cmp(&a.constraint_margin),
        }
    };

    while stats.states_evaluated < opts.max_states {
        if !frontier.is_empty() {
            let take = frontier.len().min(opts.max_states - stats.states_evaluated);
            let batch: Vec<P::State> = frontier.drain(..take).collect();
            let (evals, timing) = evaluate_batch(problem, &batch, backend, opts.seed);
            stats.states_evaluated += batch.len();
            stats.batches += 1;
            stats.modeled_eval_seconds += timing.modeled_seconds;
            stats.host_eval_seconds += timing.host_seconds;
            stats.budget_spent += model_ticks(
                &device,
                batch.len(),
                problem.threads_per_state(),
                problem.state_bytes(),
            );

            let mut improved = false;
            for (state, eval) in batch.iter().zip(&evals) {
                if eval.feasible
                    && best
                        .as_ref()
                        .is_none_or(|(_, b)| better(minimize, eval.objective, b.objective))
                {
                    best = Some((state.clone(), *eval));
                    improved = true;
                }
            }
            pool.extend(batch.into_iter().zip(evals));
            if opts.budget.exhausted(stats.budget_spent, &t0) {
                stats.truncated = true;
                break;
            }
            stale = if improved { 0 } else { stale + 1 };
            if best.is_some() && stale >= opts.patience {
                break;
            }
        }
        if pool.is_empty() {
            break;
        }
        // Expand the globally best `beam_width` unexpanded states; keep a
        // bounded reservoir of runners-up for later backtracking.
        pool.sort_by(|(_, a), (_, b)| rank(a, b));
        pool.truncate(pool_reserve);
        let expand = pool.len().min(beam_width);
        for (state, _) in pool.drain(..expand) {
            for child in problem.neighbors(&state) {
                if visited.insert(child.clone()) {
                    frontier.push(child);
                }
            }
        }
        if frontier.is_empty() && pool.is_empty() {
            break;
        }
    }
    stats.wall_seconds = t0.elapsed().as_secs_f64();
    SearchResult { best, stats }
}

/// Heap entry ordered by `f = g + h` (reversed for a min-heap when
/// minimizing).
struct HeapEntry<S> {
    f: f64,
    minimize: bool,
    state: S,
}

impl<S> PartialEq for HeapEntry<S> {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f
    }
}
impl<S> Eq for HeapEntry<S> {}
impl<S> PartialOrd for HeapEntry<S> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for HeapEntry<S> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: best entry = largest. When minimizing,
        // smaller f must compare larger.
        let o = self
            .f
            .partial_cmp(&other.f)
            .unwrap_or(std::cmp::Ordering::Equal);
        if self.minimize {
            o.reverse()
        } else {
            o
        }
    }
}

/// A* search (Section 5.3): user-declared `cal_g_score` / `est_h_score`
/// order the open list; when the problem's children are monotonically
/// worse, states that cannot beat the incumbent are pruned together with
/// their whole subtree — the paper's example prunes child states whose
/// monetary cost already exceeds the best found solution.
pub fn astar_search<P: SearchProblem>(
    problem: &P,
    opts: &SearchOptions,
    backend: &EvalBackend,
) -> SearchResult<P::State> {
    let t0 = Instant::now();
    let minimize = problem.minimize();
    let device = backend.device();
    let mut stats = SearchStats::default();
    let mut visited: HashSet<P::State> = HashSet::new();
    let mut open: BinaryHeap<HeapEntry<P::State>> = BinaryHeap::new();
    let mut best: Option<(P::State, Evaluation)> = None;

    // Evaluate the initial state to seed the heap.
    let init = problem.initial();
    visited.insert(init.clone());
    let (evals, timing) = evaluate_batch(problem, std::slice::from_ref(&init), backend, opts.seed);
    stats.states_evaluated += 1;
    stats.batches += 1;
    stats.modeled_eval_seconds += timing.modeled_seconds;
    stats.host_eval_seconds += timing.host_seconds;
    stats.budget_spent += model_ticks(
        &device,
        1,
        problem.threads_per_state(),
        problem.state_bytes(),
    );
    let e0 = evals[0];
    if e0.feasible {
        best = Some((init.clone(), e0));
    }
    open.push(HeapEntry {
        f: e0.objective + problem.h_score(&init, &e0),
        minimize,
        state: init,
    });

    if opts.budget.exhausted(stats.budget_spent, &t0) {
        stats.truncated = true;
        stats.wall_seconds = t0.elapsed().as_secs_f64();
        return SearchResult { best, stats };
    }

    let mut stale = 0usize;
    while let Some(top) = (stats.states_evaluated < opts.max_states)
        .then(|| open.pop())
        .flatten()
    {
        // Prune by the incumbent when the subtree is monotone.
        if problem.children_monotone() {
            if let Some((_, b)) = &best {
                if !better(minimize, top.f, b.objective) {
                    continue;
                }
            }
        }
        let children: Vec<P::State> = problem
            .neighbors(&top.state)
            .into_iter()
            .filter(|c| visited.insert(c.clone()))
            .collect();
        if children.is_empty() {
            continue;
        }
        let take = children.len().min(opts.max_states - stats.states_evaluated);
        let batch = &children[..take];
        let (evals, timing) = evaluate_batch(problem, batch, backend, opts.seed);
        stats.states_evaluated += batch.len();
        stats.batches += 1;
        stats.modeled_eval_seconds += timing.modeled_seconds;
        stats.host_eval_seconds += timing.host_seconds;
        stats.budget_spent += model_ticks(
            &device,
            batch.len(),
            problem.threads_per_state(),
            problem.state_bytes(),
        );
        let mut improved = false;
        for (state, eval) in batch.iter().zip(&evals) {
            if eval.feasible
                && best
                    .as_ref()
                    .is_none_or(|(_, b)| better(minimize, eval.objective, b.objective))
            {
                best = Some((state.clone(), *eval));
                improved = true;
            }
            open.push(HeapEntry {
                f: eval.objective + problem.h_score(state, eval),
                minimize,
                state: state.clone(),
            });
        }
        if opts.budget.exhausted(stats.budget_spent, &t0) {
            stats.truncated = true;
            break;
        }
        stale = if improved { 0 } else { stale + 1 };
        if best.is_some() && stale >= opts.patience * 8 {
            break;
        }
    }
    stats.wall_seconds = t0.elapsed().as_secs_f64();
    SearchResult { best, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::promotions;

    #[test]
    fn fair_share_divides_ticks_and_preserves_unlimited() {
        let b = SearchBudget::ticks(120.0);
        let share = b.fair_share(4);
        assert_eq!(share.ticks, Some(30.0));
        assert_eq!(share.wall_seconds, None);
        assert!(SearchBudget::unlimited().fair_share(8).is_unlimited());
        let walled = SearchBudget {
            ticks: Some(10.0),
            wall_seconds: Some(2.0),
        };
        let w = walled.fair_share(2);
        assert_eq!(w.ticks, Some(5.0));
        assert_eq!(w.wall_seconds, Some(1.0));
    }

    /// Minimize sum(s) subject to sum(s) >= target — the shape of the
    /// scheduling problem: promotion raises cost and only enough of it
    /// satisfies the constraint. The optimum is exactly `target`.
    struct Threshold {
        n: usize,
        k: usize,
        target: usize,
    }

    impl SearchProblem for Threshold {
        type State = Vec<usize>;
        type Scratch = ();
        fn initial(&self) -> Vec<usize> {
            vec![0; self.n]
        }
        fn neighbors(&self, s: &Vec<usize>) -> Vec<Vec<usize>> {
            promotions(s, self.k)
        }
        fn evaluate(&self, s: &Vec<usize>, _seed: u64) -> Evaluation {
            let sum: usize = s.iter().sum();
            Evaluation {
                feasible: sum >= self.target,
                objective: sum as f64,
                constraint_margin: 1.0,
            }
        }
        fn children_monotone(&self) -> bool {
            true
        }
        fn h_score(&self, s: &Vec<usize>, _e: &Evaluation) -> f64 {
            // Admissible: remaining promotions needed.
            let sum: usize = s.iter().sum();
            self.target.saturating_sub(sum) as f64
        }
    }

    #[test]
    fn generic_search_finds_the_optimum() {
        let p = Threshold {
            n: 3,
            k: 4,
            target: 4,
        };
        let r = generic_search(&p, &SearchOptions::default(), &EvalBackend::SeqCpu);
        let (state, eval) = r.best.expect("a feasible state exists");
        assert_eq!(eval.objective, 4.0);
        assert_eq!(state.iter().sum::<usize>(), 4);
    }

    #[test]
    fn astar_finds_the_same_optimum_with_fewer_states() {
        let p = Threshold {
            n: 3,
            k: 4,
            target: 4,
        };
        let g = generic_search(&p, &SearchOptions::default(), &EvalBackend::SeqCpu);
        let a = astar_search(&p, &SearchOptions::default(), &EvalBackend::SeqCpu);
        assert_eq!(
            a.best.as_ref().unwrap().1.objective,
            g.best.as_ref().unwrap().1.objective
        );
        assert!(
            a.stats.states_evaluated <= g.stats.states_evaluated,
            "A* ({}) must not expand more than generic ({})",
            a.stats.states_evaluated,
            g.stats.states_evaluated
        );
    }

    #[test]
    fn infeasible_problems_return_none() {
        let p = Threshold {
            n: 2,
            k: 2,
            target: 99,
        };
        let r = generic_search(&p, &SearchOptions::default(), &EvalBackend::SeqCpu);
        assert!(r.best.is_none());
        // The whole space is 2^... small; everything gets visited.
        assert_eq!(r.stats.states_evaluated, 4);
    }

    #[test]
    fn max_states_budget_is_respected() {
        let p = Threshold {
            n: 8,
            k: 4,
            target: 24,
        };
        let opts = SearchOptions {
            max_states: 50,
            ..Default::default()
        };
        let r = generic_search(&p, &opts, &EvalBackend::SeqCpu);
        assert!(r.stats.states_evaluated <= 50);
    }

    #[test]
    fn patience_stops_early_after_incumbent() {
        let p = Threshold {
            n: 4,
            k: 4,
            target: 1,
        };
        let opts = SearchOptions {
            patience: 1,
            batch: 4,
            ..Default::default()
        };
        let r = generic_search(&p, &opts, &EvalBackend::SeqCpu);
        assert!(r.best.is_some());
        assert!(
            r.stats.states_evaluated < 100,
            "early stop expected, evaluated {}",
            r.stats.states_evaluated
        );
    }

    #[test]
    fn maximize_mode_prefers_larger() {
        struct MaxSum;
        impl SearchProblem for MaxSum {
            type State = Vec<usize>;
            type Scratch = ();
            fn initial(&self) -> Vec<usize> {
                vec![0; 2]
            }
            fn neighbors(&self, s: &Vec<usize>) -> Vec<Vec<usize>> {
                promotions(s, 3)
            }
            fn evaluate(&self, s: &Vec<usize>, _: u64) -> Evaluation {
                Evaluation {
                    feasible: true,
                    objective: s.iter().sum::<usize>() as f64,
                    constraint_margin: 1.0,
                }
            }
            fn minimize(&self) -> bool {
                false
            }
        }
        let r = generic_search(&MaxSum, &SearchOptions::default(), &EvalBackend::SeqCpu);
        assert_eq!(r.best.unwrap().1.objective, 4.0, "both at type 2");
    }

    #[test]
    fn beam_search_finds_the_optimum_and_scales_deep() {
        // Needs depth-12 promotion chains: BFS cannot reach it in budget,
        // the beam can.
        let p = Threshold {
            n: 6,
            k: 4,
            target: 12,
        };
        let opts = SearchOptions {
            max_states: 2000,
            ..Default::default()
        };
        let r = beam_search(&p, &opts, 4, &EvalBackend::SeqCpu);
        let (_, eval) = r.best.expect("beam must reach a feasible state");
        assert_eq!(eval.objective, 12.0, "beam should land on the optimum");
    }

    #[test]
    fn beam_width_one_is_hill_climbing() {
        let p = Threshold {
            n: 3,
            k: 4,
            target: 5,
        };
        let r = beam_search(&p, &SearchOptions::default(), 1, &EvalBackend::SeqCpu);
        assert_eq!(r.best.unwrap().1.objective, 5.0);
    }

    #[test]
    fn tiny_tick_budget_truncates_with_incumbent() {
        let p = Threshold {
            n: 6,
            k: 4,
            target: 2,
        };
        // One batch of budget: enough to evaluate the root's first frontier
        // but nowhere near the full space.
        let opts = SearchOptions {
            budget: SearchBudget::ticks(1e-9),
            ..Default::default()
        };
        for r in [
            generic_search(&p, &opts, &EvalBackend::SeqCpu),
            beam_search(&p, &opts, 4, &EvalBackend::SeqCpu),
            astar_search(&p, &opts, &EvalBackend::SeqCpu),
        ] {
            assert!(r.stats.truncated, "near-zero budget must truncate");
            assert!(r.stats.budget_spent > 0.0);
            assert!(r.stats.batches >= 1, "the first batch always runs");
        }
    }

    #[test]
    fn explicit_pool_reserve_at_default_bound_is_bit_identical_to_none() {
        let p = Threshold {
            n: 5,
            k: 4,
            target: 8,
        };
        for beam_width in [1usize, 4, 8] {
            let plain = SearchOptions::default();
            let explicit = SearchOptions {
                pool_reserve: Some((beam_width * 16).max(64)),
                ..Default::default()
            };
            let a = beam_search(&p, &plain, beam_width, &EvalBackend::SeqCpu);
            let b = beam_search(&p, &explicit, beam_width, &EvalBackend::SeqCpu);
            assert_eq!(a.stats.deterministic_key(), b.stats.deterministic_key());
            assert_eq!(
                a.best
                    .as_ref()
                    .map(|(s, e)| (s.clone(), e.objective.to_bits())),
                b.best
                    .as_ref()
                    .map(|(s, e)| (s.clone(), e.objective.to_bits())),
            );
        }
    }

    #[test]
    fn unlimited_budget_is_bit_identical_to_default() {
        let p = Threshold {
            n: 5,
            k: 4,
            target: 8,
        };
        let plain = SearchOptions::default();
        let explicit = SearchOptions {
            budget: SearchBudget::unlimited(),
            ..Default::default()
        };
        for (a, b) in [
            (
                generic_search(&p, &plain, &EvalBackend::SeqCpu),
                generic_search(&p, &explicit, &EvalBackend::SeqCpu),
            ),
            (
                beam_search(&p, &plain, 4, &EvalBackend::SeqCpu),
                beam_search(&p, &explicit, 4, &EvalBackend::SeqCpu),
            ),
            (
                astar_search(&p, &plain, &EvalBackend::SeqCpu),
                astar_search(&p, &explicit, &EvalBackend::SeqCpu),
            ),
        ] {
            assert!(!a.stats.truncated && !b.stats.truncated);
            assert_eq!(a.stats.deterministic_key(), b.stats.deterministic_key());
            assert_eq!(
                a.best
                    .as_ref()
                    .map(|(s, e)| (s.clone(), e.objective.to_bits())),
                b.best
                    .as_ref()
                    .map(|(s, e)| (s.clone(), e.objective.to_bits())),
            );
        }
    }

    #[test]
    fn same_seed_same_budget_same_truncation() {
        let p = Threshold {
            n: 8,
            k: 4,
            target: 20,
        };
        let d = deco_gpu::DeviceSpec::cpu(4);
        // Budget for roughly three batches of 64 states.
        let per_batch = model_ticks(&d, 64, p.threads_per_state(), p.state_bytes());
        let opts = SearchOptions {
            budget: SearchBudget::ticks(3.0 * per_batch),
            ..Default::default()
        };
        let backend = EvalBackend::SeqCpu;
        type Run<'a> = Box<dyn Fn(&SearchOptions, &EvalBackend) -> SearchResult<Vec<usize>> + 'a>;
        let runs: Vec<Run<'_>> = vec![
            Box::new(|o, b| generic_search(&p, o, b)),
            Box::new(|o, b| beam_search(&p, o, 4, b)),
            Box::new(|o, b| astar_search(&p, o, b)),
        ];
        for run in runs {
            let a = run(&opts, &backend);
            let b = run(&opts, &backend);
            assert_eq!(
                a.stats.deterministic_key(),
                b.stats.deterministic_key(),
                "anytime determinism: same seed + budget => same stats"
            );
            assert_eq!(
                a.best
                    .as_ref()
                    .map(|(s, e)| (s.clone(), e.objective.to_bits())),
                b.best
                    .as_ref()
                    .map(|(s, e)| (s.clone(), e.objective.to_bits())),
                "anytime determinism: same seed + budget => same incumbent"
            );
        }
    }

    #[test]
    fn budget_remaining_arithmetic() {
        let b = SearchBudget::ticks(10.0);
        assert_eq!(b.minus_ticks(4.0).ticks, Some(6.0));
        assert_eq!(b.minus_ticks(40.0).ticks, Some(0.0));
        assert!(SearchBudget::unlimited().minus_ticks(1e9).is_unlimited());
        assert!(!b.is_unlimited());
    }

    #[test]
    fn stats_accumulate() {
        let p = Threshold {
            n: 3,
            k: 3,
            target: 3,
        };
        let r = generic_search(&p, &SearchOptions::default(), &EvalBackend::SeqCpu);
        assert!(r.stats.batches > 0);
        assert!(r.stats.states_evaluated > 0);
        assert!(r.stats.wall_seconds >= 0.0);
    }
}
