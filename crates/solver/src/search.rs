//! Generic (Algorithm 2) and A* search.

use crate::eval::{evaluate_batch, EvalBackend, Evaluation};
use crate::SearchProblem;
use std::collections::{BinaryHeap, HashSet, VecDeque};
use std::time::Instant;

/// Search controls.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Hard budget on evaluated states (the paper's Algorithm 2 explores a
    /// FIFO queue; this bounds it for the exponential worst case).
    pub max_states: usize,
    /// Stop when this many consecutive frontier batches bring no
    /// improvement of the incumbent.
    pub patience: usize,
    /// Frontier batch size per kernel launch (the paper launches one block
    /// per searched state across the device's SMs).
    pub batch: usize,
    /// Root seed for the per-state Monte-Carlo seeds.
    pub seed: u64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            max_states: 20_000,
            patience: 8,
            batch: 64,
            seed: 0xD5C0,
        }
    }
}

/// Counters and device-model timing of one search.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    pub states_evaluated: usize,
    pub batches: usize,
    /// Modeled evaluation seconds on the chosen backend's device.
    pub modeled_eval_seconds: f64,
    /// Measured single-core seconds of all evaluation work.
    pub host_eval_seconds: f64,
    /// Wall-clock of the whole search on the host.
    pub wall_seconds: f64,
}

/// Result: the incumbent (best feasible state) and stats.
#[derive(Debug, Clone)]
pub struct SearchResult<S> {
    pub best: Option<(S, Evaluation)>,
    pub stats: SearchStats,
}

fn better(minimize: bool, a: f64, b: f64) -> bool {
    if minimize {
        a < b
    } else {
        a > b
    }
}

/// Algorithm 2: breadth-first exploration from the initial state with a
/// visited set, evaluating frontier batches on the backend and keeping the
/// best feasible state.
pub fn generic_search<P: SearchProblem>(
    problem: &P,
    opts: &SearchOptions,
    backend: &EvalBackend,
) -> SearchResult<P::State> {
    let t0 = Instant::now();
    let minimize = problem.minimize();
    let mut stats = SearchStats::default();
    let mut visited: HashSet<P::State> = HashSet::new();
    let mut queue: VecDeque<P::State> = VecDeque::new();
    let mut best: Option<(P::State, Evaluation)> = None;
    let init = problem.initial();
    visited.insert(init.clone());
    queue.push_back(init);
    let mut stale_batches = 0usize;

    while !queue.is_empty() && stats.states_evaluated < opts.max_states {
        let take = opts
            .batch
            .min(queue.len())
            .min(opts.max_states - stats.states_evaluated);
        let batch: Vec<P::State> = (0..take).map(|_| queue.pop_front().unwrap()).collect();
        let (evals, timing) = evaluate_batch(problem, &batch, backend, opts.seed);
        stats.states_evaluated += batch.len();
        stats.batches += 1;
        stats.modeled_eval_seconds += timing.modeled_seconds;
        stats.host_eval_seconds += timing.host_seconds;

        let mut improved = false;
        for (state, eval) in batch.iter().zip(&evals) {
            if eval.feasible
                && best
                    .as_ref()
                    .is_none_or(|(_, b)| better(minimize, eval.objective, b.objective))
            {
                best = Some((state.clone(), *eval));
                improved = true;
            }
            for child in problem.neighbors(state) {
                if visited.insert(child.clone()) {
                    queue.push_back(child);
                }
            }
        }
        stale_batches = if improved { 0 } else { stale_batches + 1 };
        if best.is_some() && stale_batches >= opts.patience {
            break;
        }
    }
    stats.wall_seconds = t0.elapsed().as_secs_f64();
    SearchResult { best, stats }
}

/// Beam search — the *exploitation* counterpart of Algorithm 2's
/// exploration (the paper discusses the trade-off in Section 5.3 and
/// chooses exploration for GPU parallelism; the beam keeps the same
/// batch-parallel evaluation while following good partial solutions).
///
/// Each round evaluates the whole frontier as one kernel batch, then keeps
/// the best `beam_width` children: feasible states ranked by objective
/// first, infeasible ones ranked by constraint margin (closest to feasible
/// first) to bootstrap feasibility from the all-cheapest initial state.
pub fn beam_search<P: SearchProblem>(
    problem: &P,
    opts: &SearchOptions,
    beam_width: usize,
    backend: &EvalBackend,
) -> SearchResult<P::State> {
    assert!(beam_width > 0);
    let t0 = Instant::now();
    let minimize = problem.minimize();
    let mut stats = SearchStats::default();
    let mut visited: HashSet<P::State> = HashSet::new();
    let mut best: Option<(P::State, Evaluation)> = None;
    let init = problem.initial();
    visited.insert(init.clone());
    let mut frontier = vec![init];
    // Evaluated states not yet expanded. The beam draws from this global
    // pool, so a round's runners-up stay available later (beam with
    // backtracking) instead of being discarded forever.
    let mut pool: Vec<(P::State, Evaluation)> = Vec::new();
    let mut stale = 0usize;

    let rank = |a: &Evaluation, b: &Evaluation| -> std::cmp::Ordering {
        match (a.feasible, b.feasible) {
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            (true, true) => {
                if minimize {
                    a.objective.partial_cmp(&b.objective).unwrap()
                } else {
                    b.objective.partial_cmp(&a.objective).unwrap()
                }
            }
            (false, false) => b
                .constraint_margin
                .partial_cmp(&a.constraint_margin)
                .unwrap(),
        }
    };

    while stats.states_evaluated < opts.max_states {
        if !frontier.is_empty() {
            let take = frontier.len().min(opts.max_states - stats.states_evaluated);
            let batch: Vec<P::State> = frontier.drain(..take).collect();
            let (evals, timing) = evaluate_batch(problem, &batch, backend, opts.seed);
            stats.states_evaluated += batch.len();
            stats.batches += 1;
            stats.modeled_eval_seconds += timing.modeled_seconds;
            stats.host_eval_seconds += timing.host_seconds;

            let mut improved = false;
            for (state, eval) in batch.iter().zip(&evals) {
                if eval.feasible
                    && best
                        .as_ref()
                        .is_none_or(|(_, b)| better(minimize, eval.objective, b.objective))
                {
                    best = Some((state.clone(), *eval));
                    improved = true;
                }
            }
            pool.extend(batch.into_iter().zip(evals));
            stale = if improved { 0 } else { stale + 1 };
            if best.is_some() && stale >= opts.patience {
                break;
            }
        }
        if pool.is_empty() {
            break;
        }
        // Expand the globally best `beam_width` unexpanded states; keep a
        // bounded reservoir of runners-up for later backtracking.
        pool.sort_by(|(_, a), (_, b)| rank(a, b));
        pool.truncate((beam_width * 16).max(64));
        let expand = pool.len().min(beam_width);
        for (state, _) in pool.drain(..expand) {
            for child in problem.neighbors(&state) {
                if visited.insert(child.clone()) {
                    frontier.push(child);
                }
            }
        }
        if frontier.is_empty() && pool.is_empty() {
            break;
        }
    }
    stats.wall_seconds = t0.elapsed().as_secs_f64();
    SearchResult { best, stats }
}

/// Heap entry ordered by `f = g + h` (reversed for a min-heap when
/// minimizing).
struct HeapEntry<S> {
    f: f64,
    minimize: bool,
    state: S,
}

impl<S> PartialEq for HeapEntry<S> {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f
    }
}
impl<S> Eq for HeapEntry<S> {}
impl<S> PartialOrd for HeapEntry<S> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for HeapEntry<S> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: best entry = largest. When minimizing,
        // smaller f must compare larger.
        let o = self
            .f
            .partial_cmp(&other.f)
            .unwrap_or(std::cmp::Ordering::Equal);
        if self.minimize {
            o.reverse()
        } else {
            o
        }
    }
}

/// A* search (Section 5.3): user-declared `cal_g_score` / `est_h_score`
/// order the open list; when the problem's children are monotonically
/// worse, states that cannot beat the incumbent are pruned together with
/// their whole subtree — the paper's example prunes child states whose
/// monetary cost already exceeds the best found solution.
pub fn astar_search<P: SearchProblem>(
    problem: &P,
    opts: &SearchOptions,
    backend: &EvalBackend,
) -> SearchResult<P::State> {
    let t0 = Instant::now();
    let minimize = problem.minimize();
    let mut stats = SearchStats::default();
    let mut visited: HashSet<P::State> = HashSet::new();
    let mut open: BinaryHeap<HeapEntry<P::State>> = BinaryHeap::new();
    let mut best: Option<(P::State, Evaluation)> = None;

    // Evaluate the initial state to seed the heap.
    let init = problem.initial();
    visited.insert(init.clone());
    let (evals, timing) = evaluate_batch(problem, std::slice::from_ref(&init), backend, opts.seed);
    stats.states_evaluated += 1;
    stats.batches += 1;
    stats.modeled_eval_seconds += timing.modeled_seconds;
    stats.host_eval_seconds += timing.host_seconds;
    let e0 = evals[0];
    if e0.feasible {
        best = Some((init.clone(), e0));
    }
    open.push(HeapEntry {
        f: e0.objective + problem.h_score(&init, &e0),
        minimize,
        state: init,
    });

    let mut stale = 0usize;
    while let Some(top) = (stats.states_evaluated < opts.max_states)
        .then(|| open.pop())
        .flatten()
    {
        // Prune by the incumbent when the subtree is monotone.
        if problem.children_monotone() {
            if let Some((_, b)) = &best {
                if !better(minimize, top.f, b.objective) {
                    continue;
                }
            }
        }
        let children: Vec<P::State> = problem
            .neighbors(&top.state)
            .into_iter()
            .filter(|c| visited.insert(c.clone()))
            .collect();
        if children.is_empty() {
            continue;
        }
        let take = children.len().min(opts.max_states - stats.states_evaluated);
        let batch = &children[..take];
        let (evals, timing) = evaluate_batch(problem, batch, backend, opts.seed);
        stats.states_evaluated += batch.len();
        stats.batches += 1;
        stats.modeled_eval_seconds += timing.modeled_seconds;
        stats.host_eval_seconds += timing.host_seconds;
        let mut improved = false;
        for (state, eval) in batch.iter().zip(&evals) {
            if eval.feasible
                && best
                    .as_ref()
                    .is_none_or(|(_, b)| better(minimize, eval.objective, b.objective))
            {
                best = Some((state.clone(), *eval));
                improved = true;
            }
            open.push(HeapEntry {
                f: eval.objective + problem.h_score(state, eval),
                minimize,
                state: state.clone(),
            });
        }
        stale = if improved { 0 } else { stale + 1 };
        if best.is_some() && stale >= opts.patience * 8 {
            break;
        }
    }
    stats.wall_seconds = t0.elapsed().as_secs_f64();
    SearchResult { best, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::promotions;

    /// Minimize sum(s) subject to sum(s) >= target — the shape of the
    /// scheduling problem: promotion raises cost and only enough of it
    /// satisfies the constraint. The optimum is exactly `target`.
    struct Threshold {
        n: usize,
        k: usize,
        target: usize,
    }

    impl SearchProblem for Threshold {
        type State = Vec<usize>;
        type Scratch = ();
        fn initial(&self) -> Vec<usize> {
            vec![0; self.n]
        }
        fn neighbors(&self, s: &Vec<usize>) -> Vec<Vec<usize>> {
            promotions(s, self.k)
        }
        fn evaluate(&self, s: &Vec<usize>, _seed: u64) -> Evaluation {
            let sum: usize = s.iter().sum();
            Evaluation {
                feasible: sum >= self.target,
                objective: sum as f64,
                constraint_margin: 1.0,
            }
        }
        fn children_monotone(&self) -> bool {
            true
        }
        fn h_score(&self, s: &Vec<usize>, _e: &Evaluation) -> f64 {
            // Admissible: remaining promotions needed.
            let sum: usize = s.iter().sum();
            self.target.saturating_sub(sum) as f64
        }
    }

    #[test]
    fn generic_search_finds_the_optimum() {
        let p = Threshold {
            n: 3,
            k: 4,
            target: 4,
        };
        let r = generic_search(&p, &SearchOptions::default(), &EvalBackend::SeqCpu);
        let (state, eval) = r.best.expect("a feasible state exists");
        assert_eq!(eval.objective, 4.0);
        assert_eq!(state.iter().sum::<usize>(), 4);
    }

    #[test]
    fn astar_finds_the_same_optimum_with_fewer_states() {
        let p = Threshold {
            n: 3,
            k: 4,
            target: 4,
        };
        let g = generic_search(&p, &SearchOptions::default(), &EvalBackend::SeqCpu);
        let a = astar_search(&p, &SearchOptions::default(), &EvalBackend::SeqCpu);
        assert_eq!(
            a.best.as_ref().unwrap().1.objective,
            g.best.as_ref().unwrap().1.objective
        );
        assert!(
            a.stats.states_evaluated <= g.stats.states_evaluated,
            "A* ({}) must not expand more than generic ({})",
            a.stats.states_evaluated,
            g.stats.states_evaluated
        );
    }

    #[test]
    fn infeasible_problems_return_none() {
        let p = Threshold {
            n: 2,
            k: 2,
            target: 99,
        };
        let r = generic_search(&p, &SearchOptions::default(), &EvalBackend::SeqCpu);
        assert!(r.best.is_none());
        // The whole space is 2^... small; everything gets visited.
        assert_eq!(r.stats.states_evaluated, 4);
    }

    #[test]
    fn max_states_budget_is_respected() {
        let p = Threshold {
            n: 8,
            k: 4,
            target: 24,
        };
        let opts = SearchOptions {
            max_states: 50,
            ..Default::default()
        };
        let r = generic_search(&p, &opts, &EvalBackend::SeqCpu);
        assert!(r.stats.states_evaluated <= 50);
    }

    #[test]
    fn patience_stops_early_after_incumbent() {
        let p = Threshold {
            n: 4,
            k: 4,
            target: 1,
        };
        let opts = SearchOptions {
            patience: 1,
            batch: 4,
            ..Default::default()
        };
        let r = generic_search(&p, &opts, &EvalBackend::SeqCpu);
        assert!(r.best.is_some());
        assert!(
            r.stats.states_evaluated < 100,
            "early stop expected, evaluated {}",
            r.stats.states_evaluated
        );
    }

    #[test]
    fn maximize_mode_prefers_larger() {
        struct MaxSum;
        impl SearchProblem for MaxSum {
            type State = Vec<usize>;
            type Scratch = ();
            fn initial(&self) -> Vec<usize> {
                vec![0; 2]
            }
            fn neighbors(&self, s: &Vec<usize>) -> Vec<Vec<usize>> {
                promotions(s, 3)
            }
            fn evaluate(&self, s: &Vec<usize>, _: u64) -> Evaluation {
                Evaluation {
                    feasible: true,
                    objective: s.iter().sum::<usize>() as f64,
                    constraint_margin: 1.0,
                }
            }
            fn minimize(&self) -> bool {
                false
            }
        }
        let r = generic_search(&MaxSum, &SearchOptions::default(), &EvalBackend::SeqCpu);
        assert_eq!(r.best.unwrap().1.objective, 4.0, "both at type 2");
    }

    #[test]
    fn beam_search_finds_the_optimum_and_scales_deep() {
        // Needs depth-12 promotion chains: BFS cannot reach it in budget,
        // the beam can.
        let p = Threshold {
            n: 6,
            k: 4,
            target: 12,
        };
        let opts = SearchOptions {
            max_states: 2000,
            ..Default::default()
        };
        let r = beam_search(&p, &opts, 4, &EvalBackend::SeqCpu);
        let (_, eval) = r.best.expect("beam must reach a feasible state");
        assert_eq!(eval.objective, 12.0, "beam should land on the optimum");
    }

    #[test]
    fn beam_width_one_is_hill_climbing() {
        let p = Threshold {
            n: 3,
            k: 4,
            target: 5,
        };
        let r = beam_search(&p, &SearchOptions::default(), 1, &EvalBackend::SeqCpu);
        assert_eq!(r.best.unwrap().1.objective, 5.0);
    }

    #[test]
    fn stats_accumulate() {
        let p = Threshold {
            n: 3,
            k: 3,
            target: 3,
        };
        let r = generic_search(&p, &SearchOptions::default(), &EvalBackend::SeqCpu);
        assert!(r.stats.batches > 0);
        assert!(r.stats.states_evaluated > 0);
        assert!(r.stats.wall_seconds >= 0.0);
    }
}
