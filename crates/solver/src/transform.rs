//! Workflow transformation operations (Section 5.3, Figure 5).
//!
//! The paper drives state transitions with six operations from the
//! authors' earlier transformation framework: Move, Merge, Promote,
//! Demote, Split and Co-Scheduling. In this reproduction the search state
//! for instance configuration is the paper's `vm_ij` formulation — a
//! vector of instance types, one per task — and the operations act as
//! follows:
//!
//! * **Promote / Demote** change one task's (or one level's) instance type
//!   to the next more/less powerful one — explicit neighbor generators
//!   here, exactly Figure 5b.
//! * **Merge / Co-Scheduling / Move** decide how typed tasks share
//!   concrete instances and when they start. They are applied by the
//!   greedy slot packer ([`deco_cloud::Plan::packed`]) every time a typed
//!   state is materialized into a plan: tasks whose predecessor slot is
//!   expected free are placed behind it (Merge of partial hours),
//!   same-type parallel tasks reuse free slots (Co-Scheduling), and a
//!   task's start is delayed until its slot frees (Move).
//! * **Split** (suspend/resume) is not expressible under per-started-hour
//!   billing with non-preemptive instances in our execution model and is
//!   omitted; DESIGN.md records this deviation.

use deco_workflow::Workflow;

/// Identifier of the operations, used for ablation reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransformOp {
    Move,
    Merge,
    Promote,
    Demote,
    Split,
    CoScheduling,
}

/// A type-assignment state: instance type per task.
pub type TypeState = Vec<usize>;

/// All single-task promotions of `s` (Figure 5b's children).
pub fn promotions(s: &TypeState, k: usize) -> Vec<TypeState> {
    let mut out = Vec::new();
    for i in 0..s.len() {
        if s[i] + 1 < k {
            let mut child = s.clone();
            child[i] += 1;
            out.push(child);
        }
    }
    out
}

/// All single-task demotions of `s`.
pub fn demotions(s: &TypeState, _k: usize) -> Vec<TypeState> {
    let mut out = Vec::new();
    for i in 0..s.len() {
        if s[i] > 0 {
            let mut child = s.clone();
            child[i] -= 1;
            out.push(child);
        }
    }
    out
}

/// Level-grouped promotions: promote every task of one DAG level together.
///
/// For 1000-task workflows single-task moves make search depth
/// prohibitive; structurally parallel tasks (same level) almost always
/// want the same type, so level moves are the coarse steps and single-task
/// moves the refinement. Both are offered to the search.
pub fn level_promotions(wf: &Workflow, s: &TypeState, k: usize) -> Vec<TypeState> {
    assert_eq!(wf.len(), s.len());
    let mut out = Vec::new();
    for group in wf.level_groups() {
        // Promote every task in the level that is not already at max.
        if group.iter().any(|t| s[t.index()] + 1 < k) {
            let mut child = s.clone();
            for t in &group {
                if child[t.index()] + 1 < k {
                    child[t.index()] += 1;
                }
            }
            if &child != s {
                out.push(child);
            }
        }
    }
    out
}

/// Level-grouped demotions (the dual of [`level_promotions`]).
pub fn level_demotions(wf: &Workflow, s: &TypeState, _k: usize) -> Vec<TypeState> {
    assert_eq!(wf.len(), s.len());
    let mut out = Vec::new();
    for group in wf.level_groups() {
        if group.iter().any(|t| s[t.index()] > 0) {
            let mut child = s.clone();
            for t in &group {
                if child[t.index()] > 0 {
                    child[t.index()] -= 1;
                }
            }
            if &child != s {
                out.push(child);
            }
        }
    }
    out
}

/// Global fleet promotion: every task one type up (saturating at the
/// ceiling). The coarsest Promote step — reaches a feasible uniform fleet
/// in at most `k-1` transitions from the all-cheapest initial state.
pub fn global_promotion(s: &TypeState, k: usize) -> Option<TypeState> {
    let child: TypeState = s.iter().map(|&t| (t + 1).min(k - 1)).collect();
    (&child != s).then_some(child)
}

/// Global fleet demotion: every task one type down (saturating at 0).
pub fn global_demotion(s: &TypeState, _k: usize) -> Option<TypeState> {
    let child: TypeState = s.iter().map(|&t| t.saturating_sub(1)).collect();
    (&child != s).then_some(child)
}

/// Above this task count, single-task moves are dropped from the neighbor
/// set (level and global moves remain): a 1000-task workflow would
/// otherwise produce thousands of children per state, and its levels are
/// the natural granularity anyway.
pub const TASK_MOVE_LIMIT: usize = 48;

/// The neighbor set used by the scheduling problem: global, level-grouped
/// and (for small workflows) single-task promotions/demotions — the
/// Promote/Demote transformation operations applied at three
/// granularities. `promote_only` restricts to cost-increasing moves (the
/// monotone A* configuration of the paper's example).
pub fn schedule_neighbors(
    wf: &Workflow,
    s: &TypeState,
    k: usize,
    promote_only: bool,
) -> Vec<TypeState> {
    let mut out = Vec::new();
    out.extend(global_promotion(s, k));
    out.extend(level_promotions(wf, s, k));
    if s.len() <= TASK_MOVE_LIMIT {
        out.extend(promotions(s, k));
    }
    if !promote_only {
        out.extend(global_demotion(s, k));
        out.extend(level_demotions(wf, s, k));
        if s.len() <= TASK_MOVE_LIMIT {
            out.extend(demotions(s, k));
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_workflow::generators;

    #[test]
    fn promotions_respect_type_ceiling() {
        let s = vec![0, 3, 2];
        let kids = promotions(&s, 4);
        // Task 1 is already at the max type (3 of 0..4).
        assert_eq!(kids, vec![vec![1, 3, 2], vec![0, 3, 3]]);
    }

    #[test]
    fn demotions_respect_floor() {
        let s = vec![0, 2];
        assert_eq!(demotions(&s, 4), vec![vec![0, 1]]);
    }

    #[test]
    fn fully_promoted_state_has_no_promotions() {
        assert!(promotions(&vec![3, 3], 4).is_empty());
        assert!(demotions(&vec![0, 0], 4).is_empty());
    }

    #[test]
    fn level_promotion_moves_whole_levels() {
        let wf = generators::fork_join(3, 1.0, 0.0);
        // Levels: [src], [w0,w1,w2], [sink].
        let s = vec![0; wf.len()];
        let kids = level_promotions(&wf, &s, 4);
        assert_eq!(kids.len(), 3);
        // One child promotes exactly the three middle workers.
        assert!(kids
            .iter()
            .any(|c| c.iter().filter(|&&t| t == 1).count() == 3));
    }

    #[test]
    fn schedule_neighbors_dedup_and_direction() {
        let wf = generators::pipeline(3, 1.0, 0);
        let s = vec![1, 1, 1];
        let all = schedule_neighbors(&wf, &s, 4, false);
        let up_only = schedule_neighbors(&wf, &s, 4, true);
        assert!(up_only.len() < all.len());
        assert!(up_only.iter().all(|c| c.iter().sum::<usize>() > 3));
        // No duplicates.
        let mut sorted = all.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len());
    }

    #[test]
    fn pipeline_levels_are_singletons() {
        // Level moves on a chain degenerate to single-task moves; ensure we
        // do not produce the unchanged state.
        let wf = generators::pipeline(4, 1.0, 0);
        let s = vec![3; 4];
        assert!(level_promotions(&wf, &s, 4).is_empty());
    }
}
