//! State evaluation backends.
//!
//! Evaluating one state means Monte-Carlo estimation of its constraint
//! probabilities and objective (Algorithm 1) — the solver's hot loop. The
//! paper runs it on the GPU with one thread block per state; the CPU
//! comparison uses an OpenMP port on six cores. [`EvalBackend`] selects the
//! device model a frontier batch runs under and accumulates the modeled
//! evaluation time, from which the Section 6.3 speedups are reported.

use crate::SearchProblem;
use deco_gpu::{launch_with, DeviceSpec};
use deco_prob::hash::StableHasher;
use deco_prob::rng::splitmix64;
use std::hash::{Hash, Hasher};

/// Outcome of evaluating one state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Every constraint satisfied?
    pub feasible: bool,
    /// Goal value (mean over Monte-Carlo realizations).
    pub objective: f64,
    /// Smallest constraint probability observed (diagnostic; 1.0 for
    /// deterministic problems).
    pub constraint_margin: f64,
}

impl Evaluation {
    pub fn infeasible(objective: f64) -> Self {
        Evaluation {
            feasible: false,
            objective,
            constraint_margin: 0.0,
        }
    }
}

/// Which device model evaluates frontier batches.
#[derive(Debug, Clone)]
pub enum EvalBackend {
    /// One host core, blocks in sequence (the paper's single-thread
    /// reference).
    SeqCpu,
    /// Multi-core CPU model (the paper's OpenMP 6-core comparator).
    ParCpu(usize),
    /// The GPU device model (one block per state).
    SimGpu(DeviceSpec),
}

impl EvalBackend {
    pub fn device(&self) -> DeviceSpec {
        match self {
            EvalBackend::SeqCpu => DeviceSpec::single_core(),
            EvalBackend::ParCpu(cores) => DeviceSpec::cpu(*cores),
            EvalBackend::SimGpu(d) => d.clone(),
        }
    }

    pub fn name(&self) -> String {
        self.device().name
    }
}

/// Deterministic per-state seed: the search must give the same verdict for
/// the same state no matter when it is reached — and no matter which Rust
/// release built the binary, which is why this uses [`StableHasher`]
/// (fixed FNV-1a/SplitMix64) rather than `DefaultHasher`, whose algorithm
/// may change between toolchains.
pub fn state_seed<S: Hash>(root_seed: u64, state: &S) -> u64 {
    let mut h = StableHasher::new();
    state.hash(&mut h);
    splitmix64(root_seed ^ h.finish())
}

/// Evaluate a batch of states on the backend's device model. Returns the
/// evaluations (in input order) and the modeled kernel seconds.
///
/// When the problem declares a [`SearchProblem::frontier_block`] width
/// above 1, the batch is split into fixed-size candidate blocks (chunked
/// by input order, never by worker) and each block becomes one launch
/// block running [`SearchProblem::evaluate_frontier`] — the K×N batched
/// path. Worker count changes wall-clock only: blocks are stitched back
/// in input order and every candidate keeps its own
/// [`state_seed`]-derived stream, so the evaluations are bit-identical to
/// the per-state path at any thread count.
///
/// Device-model accounting is unchanged by batching: the returned timing
/// is always modeled as one device block per *state* with the problem's
/// declared `threads_per_state`/`state_bytes` shape (each chunk's measured
/// host seconds are spread evenly over its states), and tick budgets in
/// the search loops are charged from that same per-state shape. Batching
/// is a host-side evaluation strategy, not a different kernel launch.
pub fn evaluate_batch<P: SearchProblem>(
    problem: &P,
    states: &[P::State],
    backend: &EvalBackend,
    root_seed: u64,
) -> (Vec<Evaluation>, deco_gpu::KernelTiming) {
    let device = backend.device();
    let block = problem.frontier_block().max(1);
    if block > 1 && states.len() > 1 {
        let seeds: Vec<u64> = states.iter().map(|s| state_seed(root_seed, s)).collect();
        let chunks: Vec<(&[P::State], &[u64])> =
            states.chunks(block).zip(seeds.chunks(block)).collect();
        let report = launch_with(
            &device,
            &chunks,
            problem.threads_per_state(),
            problem.state_bytes(),
            P::Scratch::default,
            |(st, sd), _, scratch| problem.evaluate_frontier(st, sd, scratch),
        );
        // Re-model the launch as one block per state (the paper's shape):
        // each chunk's measured host seconds are split evenly across its
        // states so `host_seconds` is preserved while occupancy and waves
        // are computed from the per-state footprint, exactly as on the
        // per-state path below.
        let host: Vec<f64> = report
            .blocks
            .iter()
            .flat_map(|b| {
                let m = chunks[b.block].0.len();
                std::iter::repeat_n(b.host_seconds / m as f64, m)
            })
            .collect();
        let timing = deco_gpu::model(
            &device,
            &host,
            problem.threads_per_state(),
            problem.state_bytes(),
        );
        let evals: Vec<Evaluation> = report.values().into_iter().flatten().collect();
        debug_assert_eq!(evals.len(), states.len());
        return (evals, timing);
    }
    let report = launch_with(
        &device,
        states,
        problem.threads_per_state(),
        problem.state_bytes(),
        P::Scratch::default,
        |s, _, scratch| problem.evaluate_with(s, state_seed(root_seed, s), scratch),
    );
    let timing = report.timing.clone();
    (report.values(), timing)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy;

    impl SearchProblem for Toy {
        type State = Vec<usize>;
        type Scratch = ();
        fn initial(&self) -> Vec<usize> {
            vec![0, 0]
        }
        fn neighbors(&self, s: &Vec<usize>) -> Vec<Vec<usize>> {
            crate::transform::promotions(s, 3)
        }
        fn evaluate(&self, s: &Vec<usize>, _seed: u64) -> Evaluation {
            let sum: usize = s.iter().sum();
            Evaluation {
                feasible: sum >= 2,
                objective: sum as f64,
                constraint_margin: 1.0,
            }
        }
    }

    #[test]
    fn batch_matches_pointwise() {
        let p = Toy;
        let states = vec![vec![0, 0], vec![1, 1], vec![2, 2]];
        let (evals, timing) = evaluate_batch(&p, &states, &EvalBackend::SeqCpu, 1);
        assert_eq!(evals.len(), 3);
        assert!(!evals[0].feasible);
        assert!(evals[1].feasible);
        assert_eq!(evals[2].objective, 4.0);
        assert!(timing.host_seconds >= 0.0);
    }

    #[test]
    fn backends_agree_on_results() {
        let p = Toy;
        let states = vec![vec![0, 1], vec![2, 0]];
        let (a, _) = evaluate_batch(&p, &states, &EvalBackend::SeqCpu, 9);
        let (b, _) = evaluate_batch(&p, &states, &EvalBackend::ParCpu(6), 9);
        let (c, _) = evaluate_batch(&p, &states, &EvalBackend::SimGpu(DeviceSpec::k40()), 9);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn state_seed_is_stable_and_state_dependent() {
        let s1 = vec![1usize, 2];
        let s2 = vec![2usize, 1];
        assert_eq!(state_seed(7, &s1), state_seed(7, &s1));
        assert_ne!(state_seed(7, &s1), state_seed(7, &s2));
        assert_ne!(state_seed(7, &s1), state_seed(8, &s1));
    }
}
