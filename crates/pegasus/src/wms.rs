//! The WMS facade: submit a DAX, plan it with the chosen scheduler,
//! execute it on the cloud, and report.

use crate::mapper::ExecutableWorkflow;
use crate::scheduler::{Requirements, Scheduler};
use deco_cloud::sim::{run_plan, run_with_policy, RuntimePolicy};
use deco_cloud::{CloudSpec, MetadataStore};
use deco_prob::stats::Summary;
use deco_workflow::dax::{parse_dax, DaxError};
use deco_workflow::Workflow;

/// Outcome of one execution.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    pub scheduler: String,
    pub makespan: f64,
    pub cost: f64,
    pub transfer_cost: f64,
    /// Whether the deadline was met in this run.
    pub met_deadline: bool,
}

/// The workflow management system.
pub struct Pegasus {
    pub spec: CloudSpec,
    pub store: MetadataStore,
}

impl Pegasus {
    pub fn new(store: MetadataStore) -> Self {
        Pegasus {
            spec: store.spec.clone(),
            store,
        }
    }

    /// Submit a DAX document: parse it into the abstract workflow.
    pub fn submit_dax(&self, dax: &str) -> Result<Workflow, DaxError> {
        parse_dax(dax)
    }

    /// Plan an abstract workflow with a scheduler callout and map it.
    pub fn plan(
        &self,
        wf: &Workflow,
        scheduler: &dyn Scheduler,
        req: Requirements,
    ) -> Option<ExecutableWorkflow> {
        let plan = scheduler.schedule(wf, &self.spec, &self.store, req)?;
        ExecutableWorkflow::map(wf, &plan, &self.spec).ok()
    }

    /// Execute a mapped workflow once against the dynamic cloud.
    pub fn execute(
        &self,
        exe: &ExecutableWorkflow,
        req: Requirements,
        scheduler_name: &str,
        seed: u64,
    ) -> ExecutionReport {
        let r = run_plan(&self.spec, &exe.workflow, &exe.plan, seed);
        ExecutionReport {
            scheduler: scheduler_name.to_string(),
            makespan: r.makespan,
            cost: r.cost.total(),
            transfer_cost: r.cost.transfer,
            met_deadline: r.makespan <= req.deadline,
        }
    }

    /// Execute with a runtime re-optimization policy consulted every
    /// `epoch_seconds` (the follow-the-cost loop).
    pub fn execute_with_policy(
        &self,
        exe: &ExecutableWorkflow,
        req: Requirements,
        scheduler_name: &str,
        policy: &mut dyn RuntimePolicy,
        epoch_seconds: f64,
        seed: u64,
    ) -> ExecutionReport {
        let r = run_with_policy(
            &self.spec,
            &exe.workflow,
            &exe.plan,
            policy,
            epoch_seconds,
            seed,
        );
        ExecutionReport {
            scheduler: scheduler_name.to_string(),
            makespan: r.makespan,
            cost: r.cost.total(),
            transfer_cost: r.cost.transfer,
            met_deadline: r.makespan <= req.deadline,
        }
    }

    /// The paper's experimental protocol: run the planned workflow `n`
    /// times against the dynamic cloud; report per-run costs and
    /// makespans plus the fraction of runs meeting the deadline.
    pub fn run_many(
        &self,
        exe: &ExecutableWorkflow,
        req: Requirements,
        scheduler_name: &str,
        n: usize,
        seed: u64,
    ) -> CampaignReport {
        assert!(n > 0);
        let mut costs = Vec::with_capacity(n);
        let mut makespans = Vec::with_capacity(n);
        let mut met = 0usize;
        for i in 0..n {
            let r = self.execute(
                exe,
                req,
                scheduler_name,
                deco_prob::rng::splitmix64(seed ^ i as u64),
            );
            if r.met_deadline {
                met += 1;
            }
            costs.push(r.cost);
            makespans.push(r.makespan);
        }
        CampaignReport {
            scheduler: scheduler_name.to_string(),
            costs,
            makespans,
            deadline_hit_rate: met as f64 / n as f64,
        }
    }
}

/// Aggregate of a repeated-run campaign (the 100-run averages the paper
/// reports).
#[derive(Debug, Clone)]
pub struct CampaignReport {
    pub scheduler: String,
    pub costs: Vec<f64>,
    pub makespans: Vec<f64>,
    /// Fraction of runs whose makespan met the deadline (compared against
    /// the probabilistic requirement).
    pub deadline_hit_rate: f64,
}

impl CampaignReport {
    pub fn mean_cost(&self) -> f64 {
        deco_prob::stats::mean(&self.costs)
    }
    pub fn mean_makespan(&self) -> f64 {
        deco_prob::stats::mean(&self.makespans)
    }
    /// Five-number summary of normalized makespans (Figure 2's box data).
    pub fn makespan_summary(&self) -> Summary {
        Summary::of(&self.makespans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{
        AutoscalingScheduler, DecoScheduler, RandomScheduler, SingleTypeScheduler,
    };
    use deco_workflow::dax::emit_dax;
    use deco_workflow::generators;

    fn wms() -> Pegasus {
        let spec = CloudSpec::amazon_ec2();
        Pegasus::new(MetadataStore::from_ground_truth(spec, 25))
    }

    fn req(wf: &Workflow, spec: &CloudSpec) -> Requirements {
        let (dmin, dmax) = deco_core::estimate::deadline_anchors(wf, spec);
        Requirements {
            deadline: 0.5 * (dmin + dmax),
            percentile: 0.9,
        }
    }

    #[test]
    fn dax_submission_round_trips() {
        let wms = wms();
        let wf = generators::montage(1, 20);
        let submitted = wms.submit_dax(&emit_dax(&wf)).unwrap();
        assert_eq!(submitted.len(), wf.len());
    }

    #[test]
    fn end_to_end_pipeline_random_scheduler() {
        let wms = wms();
        let wf = generators::montage(1, 21);
        let r = req(&wf, &wms.spec);
        let exe = wms.plan(&wf, &RandomScheduler { seed: 5 }, r).unwrap();
        let report = wms.execute(&exe, r, "random", 1);
        assert!(report.makespan > 0.0);
        assert!(report.cost > 0.0);
    }

    #[test]
    fn campaign_statistics_have_variance() {
        let wms = wms();
        let wf = generators::montage(1, 22);
        let r = req(&wf, &wms.spec);
        let exe = wms.plan(&wf, &SingleTypeScheduler { itype: 1 }, r).unwrap();
        let campaign = wms.run_many(&exe, r, "m1.medium", 20, 7);
        let s = campaign.makespan_summary();
        assert!(s.max > s.min, "cloud dynamics must show up across runs");
        assert!(campaign.mean_cost() > 0.0);
    }

    #[test]
    fn deco_meets_probabilistic_deadline_more_often_than_required() {
        let wms = wms();
        let wf = generators::montage(1, 23);
        let r = req(&wf, &wms.spec);
        let mut sched = DecoScheduler::default();
        sched.options.mc_iters = 60;
        let exe = wms.plan(&wf, &sched, r).expect("feasible");
        let campaign = wms.run_many(&exe, r, "deco", 40, 11);
        assert!(
            campaign.deadline_hit_rate >= r.percentile - 0.12,
            "hit rate {} below requirement {}",
            campaign.deadline_hit_rate,
            r.percentile
        );
    }

    #[test]
    fn deco_is_cheaper_than_autoscaling_at_same_qos() {
        // The headline claim (30-50% cheaper); asserted loosely here, and
        // measured precisely by the Figure 8 bench.
        let wms = wms();
        let wf = generators::montage(1, 24);
        let r = req(&wf, &wms.spec);
        let mut sched = DecoScheduler::default();
        sched.options.mc_iters = 60;
        let deco_exe = wms.plan(&wf, &sched, r).expect("deco feasible");
        let auto_exe = wms
            .plan(&wf, &AutoscalingScheduler, r)
            .expect("autoscaling");
        let deco = wms.run_many(&deco_exe, r, "deco", 30, 13);
        let auto = wms.run_many(&auto_exe, r, "autoscaling", 30, 13);
        assert!(
            deco.mean_cost() <= auto.mean_cost() * 1.05,
            "deco {} should not exceed autoscaling {}",
            deco.mean_cost(),
            auto.mean_cost()
        );
    }
}
