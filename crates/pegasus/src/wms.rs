//! The WMS facade: submit a DAX, plan it with the chosen scheduler,
//! execute it on the cloud, and report.

use crate::mapper::ExecutableWorkflow;
use crate::scheduler::{Requirements, Scheduler};
use deco_cloud::sim::{run_plan, run_with_policy, RuntimePolicy};
use deco_cloud::{CloudSpec, MetadataStore, RetryConfig};
use deco_core::supervisor::{plan_with_fallback, PlanProvenance, SupervisedPlan};
use deco_core::{Deco, DecoError};
use deco_faults::{run_with_faults, FaultInjector};
use deco_prob::stats::Summary;
use deco_solver::SearchBudget;
use deco_workflow::dax::{parse_dax, DaxError};
use deco_workflow::Workflow;

/// Outcome of one execution.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    pub scheduler: String,
    pub makespan: f64,
    pub cost: f64,
    pub transfer_cost: f64,
    /// Whether the deadline was met in this run.
    pub met_deadline: bool,
}

/// How one fault-injected run ended. Every submitted workflow gets
/// exactly one of these — a member that lost tasks to exhausted retries is
/// reported `Incomplete`, never silently dropped from the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every task completed within the deadline.
    Met,
    /// Every task completed within the deadline, but on a degraded plan
    /// (the supervisor fell back past the full-quality Deco stage, or the
    /// search was truncated by its budget).
    MetDegraded,
    /// Every task completed, but past the deadline.
    Violated,
    /// Some tasks were abandoned after exhausting their retry budget.
    Incomplete {
        /// Number of abandoned tasks.
        abandoned: usize,
    },
}

/// Outcome of one execution under injected faults.
#[derive(Debug, Clone)]
pub struct FaultExecutionReport {
    pub scheduler: String,
    pub makespan: f64,
    pub cost: f64,
    pub transfer_cost: f64,
    pub outcome: RunOutcome,
    /// Attempts killed by instance revocations during this run.
    pub crashes: usize,
    /// Killed tasks re-dispatched onto replacement instances.
    pub retries: usize,
}

/// The workflow management system.
pub struct Pegasus {
    pub spec: CloudSpec,
    pub store: MetadataStore,
}

impl Pegasus {
    pub fn new(store: MetadataStore) -> Self {
        Pegasus {
            spec: store.spec.clone(),
            store,
        }
    }

    /// Submit a DAX document: parse it into the abstract workflow.
    pub fn submit_dax(&self, dax: &str) -> Result<Workflow, DaxError> {
        parse_dax(dax)
    }

    /// Plan an abstract workflow with a scheduler callout and map it.
    pub fn plan(
        &self,
        wf: &Workflow,
        scheduler: &dyn Scheduler,
        req: Requirements,
    ) -> Result<ExecutableWorkflow, DecoError> {
        let plan = scheduler
            .schedule(wf, &self.spec, &self.store, req)
            .ok_or_else(|| {
                DecoError::Infeasible("scheduler found no plan meeting the requirements".into())
            })?;
        ExecutableWorkflow::map(wf, &plan, &self.spec)
    }

    /// Execute a mapped workflow once against the dynamic cloud.
    pub fn execute(
        &self,
        exe: &ExecutableWorkflow,
        req: Requirements,
        scheduler_name: &str,
        seed: u64,
    ) -> ExecutionReport {
        let r = run_plan(&self.spec, &exe.workflow, &exe.plan, seed);
        ExecutionReport {
            scheduler: scheduler_name.to_string(),
            makespan: r.makespan,
            cost: r.cost.total(),
            transfer_cost: r.cost.transfer,
            met_deadline: r.makespan <= req.deadline,
        }
    }

    /// Execute a plan handed back by the plan-serving engine (deco-serve):
    /// map the supervised plan onto the workflow, run it once against the
    /// dynamic cloud, and classify the run with the plan's provenance — a
    /// deadline hit on a degraded (fallback or truncated) plan reports
    /// [`RunOutcome::MetDegraded`], matching the fault-campaign accounting.
    pub fn execute_served(
        &self,
        served: &SupervisedPlan,
        wf: &Workflow,
        req: Requirements,
        seed: u64,
    ) -> Result<(ExecutionReport, RunOutcome), DecoError> {
        let exe = ExecutableWorkflow::map(wf, &served.plan.plan, &self.spec)?;
        let report = self.execute(&exe, req, "served", seed);
        let outcome = if !report.met_deadline {
            RunOutcome::Violated
        } else if served.provenance.degraded() {
            RunOutcome::MetDegraded
        } else {
            RunOutcome::Met
        };
        Ok((report, outcome))
    }

    /// Execute with a runtime re-optimization policy consulted every
    /// `epoch_seconds` (the follow-the-cost loop).
    pub fn execute_with_policy(
        &self,
        exe: &ExecutableWorkflow,
        req: Requirements,
        scheduler_name: &str,
        policy: &mut dyn RuntimePolicy,
        epoch_seconds: f64,
        seed: u64,
    ) -> ExecutionReport {
        let r = run_with_policy(
            &self.spec,
            &exe.workflow,
            &exe.plan,
            policy,
            epoch_seconds,
            seed,
        );
        ExecutionReport {
            scheduler: scheduler_name.to_string(),
            makespan: r.makespan,
            cost: r.cost.total(),
            transfer_cost: r.cost.transfer,
            met_deadline: r.makespan <= req.deadline,
        }
    }

    /// Execute a mapped workflow once under injected faults: the engine
    /// retries killed tasks on replacement instances per `retry`, and the
    /// report carries an explicit [`RunOutcome`] so lossy runs surface in
    /// campaign statistics instead of disappearing.
    pub fn execute_with_faults(
        &self,
        exe: &ExecutableWorkflow,
        req: Requirements,
        scheduler_name: &str,
        injector: &FaultInjector,
        retry: RetryConfig,
        seed: u64,
    ) -> FaultExecutionReport {
        let r = run_with_faults(&self.spec, &exe.workflow, &exe.plan, injector, retry, seed);
        let outcome = if !r.abandoned.is_empty() {
            RunOutcome::Incomplete {
                abandoned: r.abandoned.len(),
            }
        } else if r.result.makespan <= req.deadline {
            RunOutcome::Met
        } else {
            RunOutcome::Violated
        };
        FaultExecutionReport {
            scheduler: scheduler_name.to_string(),
            makespan: r.result.makespan,
            cost: r.result.cost.total(),
            transfer_cost: r.result.cost.transfer,
            outcome,
            crashes: r.crashes,
            retries: r.retries,
        }
    }

    /// Repeated-run campaign under faults: each run draws an independent
    /// fault stream (`fault_seed ^ i`) and dynamics stream, and every run
    /// is accounted for in exactly one outcome bucket.
    #[allow(clippy::too_many_arguments)]
    pub fn run_many_with_faults(
        &self,
        exe: &ExecutableWorkflow,
        req: Requirements,
        scheduler_name: &str,
        model: &deco_faults::FaultModel,
        retry: RetryConfig,
        n: usize,
        fault_seed: u64,
        seed: u64,
    ) -> FaultCampaignReport {
        assert!(n > 0);
        let mut reports = Vec::with_capacity(n);
        for i in 0..n {
            let inj = FaultInjector::new(model.clone(), fault_seed ^ i as u64);
            reports.push(self.execute_with_faults(
                exe,
                req,
                scheduler_name,
                &inj,
                retry,
                deco_prob::rng::splitmix64(seed ^ i as u64),
            ));
        }
        FaultCampaignReport {
            scheduler: scheduler_name.to_string(),
            reports,
        }
    }

    /// Supervised fault campaign: plan through the degradation chain
    /// ([`plan_with_fallback`]), execute `n` fault-injected runs, and —
    /// when a run loses tasks to exhausted retries (instance loss) —
    /// consult the supervisor again with the *remaining* deterministic
    /// budget before retrying that run once on the fresh plan. Deadline
    /// hits on degraded plans are reported [`RunOutcome::MetDegraded`], so
    /// campaign statistics separate optimizer-quality hits from
    /// fallback-quality hits.
    #[allow(clippy::too_many_arguments)]
    pub fn run_many_with_faults_supervised(
        &self,
        deco: &Deco,
        wf: &Workflow,
        req: Requirements,
        model: &deco_faults::FaultModel,
        retry: RetryConfig,
        n: usize,
        fault_seed: u64,
        seed: u64,
        budget: &SearchBudget,
    ) -> Result<SupervisedCampaignReport, DecoError> {
        assert!(n > 0);
        let name = "supervised";
        let sup = plan_with_fallback(deco, wf, req.deadline, req.percentile, budget)?;
        let mut remaining = budget.minus_ticks(sup.provenance.budget_spent);
        let mut exe = ExecutableWorkflow::map(wf, &sup.plan.plan, &self.spec)?;
        let mut provenance = sup.provenance;
        let mut reports = Vec::with_capacity(n);
        let mut replans = 0usize;
        for i in 0..n {
            let inj = FaultInjector::new(model.clone(), fault_seed ^ i as u64);
            let mut r = self.execute_with_faults(
                &exe,
                req,
                name,
                &inj,
                retry,
                deco_prob::rng::splitmix64(seed ^ i as u64),
            );
            if matches!(r.outcome, RunOutcome::Incomplete { .. }) {
                // Instance loss defeated the retry budget: replan with
                // whatever deterministic budget is left and retry once.
                let again = plan_with_fallback(deco, wf, req.deadline, req.percentile, &remaining)?;
                remaining = remaining.minus_ticks(again.provenance.budget_spent);
                exe = ExecutableWorkflow::map(wf, &again.plan.plan, &self.spec)?;
                provenance = again.provenance;
                replans += 1;
                r = self.execute_with_faults(
                    &exe,
                    req,
                    name,
                    &inj,
                    retry,
                    deco_prob::rng::splitmix64(seed ^ i as u64 ^ 0x5EED),
                );
            }
            if r.outcome == RunOutcome::Met && provenance.degraded() {
                r.outcome = RunOutcome::MetDegraded;
            }
            reports.push(r);
        }
        Ok(SupervisedCampaignReport {
            report: FaultCampaignReport {
                scheduler: name.to_string(),
                reports,
            },
            provenance,
            replans,
        })
    }

    /// The paper's experimental protocol: run the planned workflow `n`
    /// times against the dynamic cloud; report per-run costs and
    /// makespans plus the fraction of runs meeting the deadline.
    pub fn run_many(
        &self,
        exe: &ExecutableWorkflow,
        req: Requirements,
        scheduler_name: &str,
        n: usize,
        seed: u64,
    ) -> CampaignReport {
        assert!(n > 0);
        let mut costs = Vec::with_capacity(n);
        let mut makespans = Vec::with_capacity(n);
        let mut met = 0usize;
        for i in 0..n {
            let r = self.execute(
                exe,
                req,
                scheduler_name,
                deco_prob::rng::splitmix64(seed ^ i as u64),
            );
            if r.met_deadline {
                met += 1;
            }
            costs.push(r.cost);
            makespans.push(r.makespan);
        }
        CampaignReport {
            scheduler: scheduler_name.to_string(),
            costs,
            makespans,
            deadline_hit_rate: met as f64 / n as f64,
        }
    }
}

/// Aggregate of a repeated-run campaign (the 100-run averages the paper
/// reports).
#[derive(Debug, Clone)]
pub struct CampaignReport {
    pub scheduler: String,
    pub costs: Vec<f64>,
    pub makespans: Vec<f64>,
    /// Fraction of runs whose makespan met the deadline (compared against
    /// the probabilistic requirement).
    pub deadline_hit_rate: f64,
}

/// Aggregate of a fault-injected campaign. `met + violated + incomplete`
/// always equals the number of runs — the accounting identity the chaos
/// tests assert.
#[derive(Debug, Clone)]
pub struct FaultCampaignReport {
    pub scheduler: String,
    pub reports: Vec<FaultExecutionReport>,
}

/// A fault campaign planned and re-planned through the supervisor.
#[derive(Debug, Clone)]
pub struct SupervisedCampaignReport {
    pub report: FaultCampaignReport,
    /// Provenance of the plan the campaign ended on.
    pub provenance: PlanProvenance,
    /// Times the supervisor was re-consulted after instance loss.
    pub replans: usize,
}

impl FaultCampaignReport {
    pub fn met(&self) -> usize {
        self.count(|o| o == RunOutcome::Met)
    }
    /// Deadline hits achieved on a degraded (fallback or truncated) plan.
    pub fn met_degraded(&self) -> usize {
        self.count(|o| o == RunOutcome::MetDegraded)
    }
    pub fn violated(&self) -> usize {
        self.count(|o| o == RunOutcome::Violated)
    }
    pub fn incomplete(&self) -> usize {
        self.count(|o| matches!(o, RunOutcome::Incomplete { .. }))
    }
    pub fn total_crashes(&self) -> usize {
        self.reports.iter().map(|r| r.crashes).sum()
    }
    pub fn mean_cost(&self) -> f64 {
        let costs: Vec<f64> = self.reports.iter().map(|r| r.cost).collect();
        deco_prob::stats::mean(&costs)
    }
    fn count(&self, pred: impl Fn(RunOutcome) -> bool) -> usize {
        self.reports.iter().filter(|r| pred(r.outcome)).count()
    }
}

impl CampaignReport {
    pub fn mean_cost(&self) -> f64 {
        deco_prob::stats::mean(&self.costs)
    }
    pub fn mean_makespan(&self) -> f64 {
        deco_prob::stats::mean(&self.makespans)
    }
    /// Five-number summary of normalized makespans (Figure 2's box data).
    pub fn makespan_summary(&self) -> Summary {
        Summary::of(&self.makespans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{
        AutoscalingScheduler, DecoScheduler, RandomScheduler, SingleTypeScheduler,
    };
    use deco_workflow::dax::emit_dax;
    use deco_workflow::generators;

    fn wms() -> Pegasus {
        let spec = CloudSpec::amazon_ec2();
        Pegasus::new(MetadataStore::from_ground_truth(spec, 25))
    }

    fn req(wf: &Workflow, spec: &CloudSpec) -> Requirements {
        let (dmin, dmax) = deco_core::estimate::deadline_anchors(wf, spec);
        Requirements {
            deadline: 0.5 * (dmin + dmax),
            percentile: 0.9,
        }
    }

    #[test]
    fn dax_submission_round_trips() {
        let wms = wms();
        let wf = generators::montage(1, 20);
        let submitted = wms.submit_dax(&emit_dax(&wf).unwrap()).unwrap();
        assert_eq!(submitted.len(), wf.len());
    }

    #[test]
    fn end_to_end_pipeline_random_scheduler() {
        let wms = wms();
        let wf = generators::montage(1, 21);
        let r = req(&wf, &wms.spec);
        let exe = wms.plan(&wf, &RandomScheduler { seed: 5 }, r).unwrap();
        let report = wms.execute(&exe, r, "random", 1);
        assert!(report.makespan > 0.0);
        assert!(report.cost > 0.0);
    }

    #[test]
    fn campaign_statistics_have_variance() {
        let wms = wms();
        let wf = generators::montage(1, 22);
        let r = req(&wf, &wms.spec);
        let exe = wms.plan(&wf, &SingleTypeScheduler { itype: 1 }, r).unwrap();
        let campaign = wms.run_many(&exe, r, "m1.medium", 20, 7);
        let s = campaign.makespan_summary();
        assert!(s.max > s.min, "cloud dynamics must show up across runs");
        assert!(campaign.mean_cost() > 0.0);
    }

    #[test]
    fn deco_meets_probabilistic_deadline_more_often_than_required() {
        let wms = wms();
        let wf = generators::montage(1, 23);
        let r = req(&wf, &wms.spec);
        let mut sched = DecoScheduler::default();
        sched.options.mc_iters = 60;
        let exe = wms.plan(&wf, &sched, r).expect("feasible");
        let campaign = wms.run_many(&exe, r, "deco", 40, 11);
        assert!(
            campaign.deadline_hit_rate >= r.percentile - 0.12,
            "hit rate {} below requirement {}",
            campaign.deadline_hit_rate,
            r.percentile
        );
    }

    #[test]
    fn deco_is_cheaper_than_autoscaling_at_same_qos() {
        // The headline claim (30-50% cheaper); asserted loosely here, and
        // measured precisely by the Figure 8 bench.
        let wms = wms();
        let wf = generators::montage(1, 24);
        let r = req(&wf, &wms.spec);
        let mut sched = DecoScheduler::default();
        sched.options.mc_iters = 60;
        let deco_exe = wms.plan(&wf, &sched, r).expect("deco feasible");
        let auto_exe = wms
            .plan(&wf, &AutoscalingScheduler, r)
            .expect("autoscaling");
        let deco = wms.run_many(&deco_exe, r, "deco", 30, 13);
        let auto = wms.run_many(&auto_exe, r, "autoscaling", 30, 13);
        assert!(
            deco.mean_cost() <= auto.mean_cost() * 1.05,
            "deco {} should not exceed autoscaling {}",
            deco.mean_cost(),
            auto.mean_cost()
        );
    }

    #[test]
    fn fault_campaign_accounts_for_every_run() {
        let wms = wms();
        let wf = generators::montage(1, 25);
        let r = req(&wf, &wms.spec);
        let exe = wms.plan(&wf, &SingleTypeScheduler { itype: 0 }, r).unwrap();
        let model = deco_faults::FaultModel::uniform_crash(&wms.spec, 1.0);
        let campaign = wms.run_many_with_faults(
            &exe,
            r,
            "m1.small",
            &model,
            RetryConfig::default(),
            12,
            4,
            17,
        );
        assert_eq!(
            campaign.met() + campaign.violated() + campaign.incomplete(),
            campaign.reports.len(),
            "every run lands in exactly one bucket"
        );
        assert!(campaign.total_crashes() > 0, "rate 1/h over 12 runs");
        assert!(campaign.mean_cost() > 0.0);
    }

    #[test]
    fn supervised_campaign_under_tiny_budget_reports_degraded_hits() {
        let wms = wms();
        let wf = generators::montage(1, 27);
        let r = req(&wf, &wms.spec);
        let mut deco = Deco::new(wms.store.clone());
        deco.options.mc_iters = 40;
        deco.options.search.max_states = 400;
        let campaign = wms
            .run_many_with_faults_supervised(
                &deco,
                &wf,
                r,
                &deco_faults::FaultModel::none(),
                RetryConfig::default(),
                5,
                3,
                19,
                &SearchBudget::ticks(1e-12),
            )
            .expect("supervisor always plans");
        assert!(campaign.provenance.degraded());
        assert!(campaign.provenance.truncated);
        let rep = &campaign.report;
        assert_eq!(rep.met(), 0, "degraded plans never report plain Met");
        assert_eq!(
            rep.met_degraded() + rep.violated() + rep.incomplete(),
            rep.reports.len(),
            "every run lands in exactly one bucket"
        );
    }

    #[test]
    fn supervised_campaign_with_full_budget_reports_plain_met() {
        let wms = wms();
        let wf = generators::montage(1, 28);
        let r = req(&wf, &wms.spec);
        let mut deco = Deco::new(wms.store.clone());
        deco.options.mc_iters = 60;
        deco.options.search.max_states = 400;
        let campaign = wms
            .run_many_with_faults_supervised(
                &deco,
                &wf,
                r,
                &deco_faults::FaultModel::none(),
                RetryConfig::default(),
                8,
                5,
                23,
                &SearchBudget::unlimited(),
            )
            .expect("unbudgeted supervision");
        assert_eq!(
            campaign.provenance.stage,
            deco_core::supervisor::PlanStage::Deco
        );
        assert!(!campaign.provenance.degraded());
        assert_eq!(campaign.report.met_degraded(), 0);
        assert_eq!(campaign.replans, 0, "no faults, no instance loss");
        assert!(campaign.report.met() > 0, "deco meets a medium deadline");
    }

    #[test]
    fn supervised_campaign_replans_within_the_remaining_budget() {
        // An aggressive crash rate with a stingy retry budget forces
        // Incomplete runs, which must trigger supervisor replans.
        let wms = wms();
        let wf = generators::montage(1, 29);
        let r = req(&wf, &wms.spec);
        let mut deco = Deco::new(wms.store.clone());
        deco.options.mc_iters = 40;
        deco.options.search.max_states = 200;
        let model = deco_faults::FaultModel::uniform_crash(&wms.spec, 50.0);
        let retry = RetryConfig {
            max_attempts: 1,
            ..RetryConfig::default()
        };
        let campaign = wms
            .run_many_with_faults_supervised(
                &deco,
                &wf,
                r,
                &model,
                retry,
                6,
                9,
                31,
                &SearchBudget::unlimited(),
            )
            .expect("supervised");
        assert!(
            campaign.replans > 0,
            "50/h crash rate with one attempt must lose instances"
        );
        let rep = &campaign.report;
        assert_eq!(
            rep.met() + rep.met_degraded() + rep.violated() + rep.incomplete(),
            rep.reports.len()
        );
    }

    #[test]
    fn served_plans_execute_and_classify_by_provenance() {
        let wms = wms();
        let wf = generators::montage(1, 30);
        let r = req(&wf, &wms.spec);
        let mut deco = Deco::new(wms.store.clone());
        deco.options.mc_iters = 40;
        deco.options.search.max_states = 200;
        let served = plan_with_fallback(
            &deco,
            &wf,
            r.deadline,
            r.percentile,
            &SearchBudget::unlimited(),
        )
        .expect("feasible");
        let (report, outcome) = wms.execute_served(&served, &wf, r, 33).expect("maps");
        assert!(report.makespan > 0.0 && report.cost > 0.0);
        if report.met_deadline {
            assert_eq!(outcome, RunOutcome::Met, "full-quality plan hits plainly");
        } else {
            assert_eq!(outcome, RunOutcome::Violated);
        }
        // A budget-truncated plan can only ever report a degraded hit.
        let degraded = plan_with_fallback(
            &deco,
            &wf,
            r.deadline,
            r.percentile,
            &SearchBudget::ticks(1e-12),
        )
        .expect("supervisor always plans");
        assert!(degraded.provenance.degraded());
        let (report, outcome) = wms.execute_served(&degraded, &wf, r, 33).expect("maps");
        assert_eq!(
            outcome,
            if report.met_deadline {
                RunOutcome::MetDegraded
            } else {
                RunOutcome::Violated
            }
        );
    }

    #[test]
    fn quiescent_faults_reproduce_the_plain_report() {
        let wms = wms();
        let wf = generators::montage(1, 26);
        let r = req(&wf, &wms.spec);
        let exe = wms.plan(&wf, &SingleTypeScheduler { itype: 1 }, r).unwrap();
        let plain = wms.execute(&exe, r, "m1.medium", 21);
        let inj = FaultInjector::new(deco_faults::FaultModel::none(), 0);
        let faulty =
            wms.execute_with_faults(&exe, r, "m1.medium", &inj, RetryConfig::default(), 21);
        assert_eq!(plain.makespan.to_bits(), faulty.makespan.to_bits());
        assert_eq!(plain.cost.to_bits(), faulty.cost.to_bits());
        assert_eq!(
            faulty.outcome,
            if plain.met_deadline {
                RunOutcome::Met
            } else {
                RunOutcome::Violated
            }
        );
    }
}
