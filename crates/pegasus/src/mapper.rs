//! The mapper: abstract workflow → executable workflow.
//!
//! Pegasus' mapper resolves, for each task, the executable to run and the
//! execution site. In our reproduction a site is a plan slot (a concrete
//! instance of a type in a region); the mapper binds every task to its
//! slot and records the executable invocation line — "an executable
//! workflow contains information such as where to find the executable
//! file of a task and which site the task should execute on".

use deco_cloud::{CloudSpec, Plan};
use deco_core::DecoError;
use deco_workflow::{TaskId, Workflow};

/// One mapped task: executable plus site binding.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedTask {
    pub task: TaskId,
    /// Invocation line, e.g. `/usr/bin/mProjectPP`.
    pub executable: String,
    /// Slot index in the plan (the site).
    pub site: usize,
    /// Human-readable site label, e.g. `m1.large@us-east-1#3`.
    pub site_label: String,
}

/// An executable workflow: the abstract DAG plus per-task site bindings.
#[derive(Debug, Clone)]
pub struct ExecutableWorkflow {
    pub workflow: Workflow,
    pub plan: Plan,
    pub mapped: Vec<MappedTask>,
}

impl ExecutableWorkflow {
    /// Bind `wf` to `plan`'s sites.
    pub fn map(wf: &Workflow, plan: &Plan, spec: &CloudSpec) -> Result<Self, DecoError> {
        plan.validate(wf, spec).map_err(DecoError::Plan)?;
        let mapped = wf
            .tasks()
            .map(|t| {
                let site = plan.assign[t.id.index()];
                let slot = plan.slots[site];
                MappedTask {
                    task: t.id,
                    executable: format!("/usr/bin/{}", t.executable),
                    site,
                    site_label: format!(
                        "{}@{}#{}",
                        spec.types[slot.itype].name, spec.regions[slot.region].name, site
                    ),
                }
            })
            .collect();
        Ok(ExecutableWorkflow {
            workflow: wf.clone(),
            plan: plan.clone(),
            mapped,
        })
    }

    /// Tasks bound to a given site.
    pub fn tasks_on_site(&self, site: usize) -> Vec<TaskId> {
        self.mapped
            .iter()
            .filter(|m| m.site == site)
            .map(|m| m.task)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_cloud::CloudSpec;
    use deco_workflow::generators;

    #[test]
    fn mapping_binds_every_task() {
        let spec = CloudSpec::amazon_ec2();
        let wf = generators::montage(1, 2);
        let plan = Plan::packed(&wf, &vec![1; wf.len()], 0, &spec);
        let exe = ExecutableWorkflow::map(&wf, &plan, &spec).unwrap();
        assert_eq!(exe.mapped.len(), wf.len());
        assert!(exe.mapped[0].executable.starts_with("/usr/bin/"));
        assert!(exe.mapped[0].site_label.contains("m1.medium"));
        // Site partitioning covers all tasks exactly once.
        let total: usize = (0..plan.slots.len())
            .map(|s| exe.tasks_on_site(s).len())
            .sum();
        assert_eq!(total, wf.len());
    }

    #[test]
    fn mapping_rejects_mismatched_plans() {
        let spec = CloudSpec::amazon_ec2();
        let wf = generators::pipeline(3, 1.0, 0);
        let plan = Plan::single_type(2, 0, 0);
        let err = ExecutableWorkflow::map(&wf, &plan, &spec).unwrap_err();
        assert!(matches!(err, DecoError::Plan(_)), "{err}");
    }
}
