//! A Pegasus-style workflow management system with Deco integrated as a
//! scheduler callout (the paper's Figure 3).
//!
//! Users submit workflows as DAX documents. The **mapper** turns the
//! abstract workflow into an executable one — which site (instance) each
//! task runs on — by consulting a pluggable **scheduler**: Pegasus'
//! default Random scheduler, fixed single-type configurations, the
//! Autoscaling comparator, or Deco. The **execution engine** dispatches
//! the executable workflow onto the cloud substrate and reports makespan
//! and monetary cost; for the follow-the-cost use case it consults a
//! runtime policy at every decision epoch.
//!
//! * [`scheduler`] — the scheduler callout trait and its implementations.
//! * [`mapper`] — abstract → executable workflow translation.
//! * [`wms`] — the WMS facade: submit, plan, execute, repeat-100-times.

pub mod mapper;
pub mod scheduler;
pub mod wms;

pub use mapper::ExecutableWorkflow;
pub use scheduler::{
    AutoscalingScheduler, DecoScheduler, RandomScheduler, Scheduler, SingleTypeScheduler,
};
pub use wms::{
    ExecutionReport, FaultCampaignReport, FaultExecutionReport, Pegasus, RunOutcome,
    SupervisedCampaignReport,
};
