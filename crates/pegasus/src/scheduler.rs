//! Scheduler callouts.
//!
//! Pegasus lets users choose the component that decides "which task runs
//! on which resource". The paper plugs Deco in as an alternative to the
//! traditional schedulers; we reproduce that plug-in architecture.

use deco_baselines::autoscaling::autoscaling_plan;
use deco_baselines::naive::{random_plan, single_type_plan};
use deco_cloud::{CloudSpec, MetadataStore, Plan};
use deco_core::{Deco, DecoOptions};
use deco_solver::EvalBackend;
use deco_workflow::Workflow;

/// What the user asked of the run (the paper's QoS setting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Requirements {
    /// Deadline in seconds.
    pub deadline: f64,
    /// Probabilistic requirement: `P(makespan <= deadline) >= percentile`.
    /// Deterministic schedulers read only the deadline.
    pub percentile: f64,
}

/// A scheduler callout: abstract workflow + cloud knowledge → plan.
pub trait Scheduler {
    fn name(&self) -> &str;

    /// Produce a provisioning plan, or `None` when the scheduler deems the
    /// requirements unachievable.
    fn schedule(
        &self,
        wf: &Workflow,
        spec: &CloudSpec,
        store: &MetadataStore,
        req: Requirements,
    ) -> Option<Plan>;
}

/// Pegasus' default: random site selection per task.
pub struct RandomScheduler {
    pub seed: u64,
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> &str {
        "random"
    }
    fn schedule(
        &self,
        wf: &Workflow,
        spec: &CloudSpec,
        _store: &MetadataStore,
        _req: Requirements,
    ) -> Option<Plan> {
        Some(random_plan(wf, spec, self.seed, 0))
    }
}

/// Everything on one fixed instance type (Figure 1's m1.* bars).
pub struct SingleTypeScheduler {
    pub itype: usize,
}

impl Scheduler for SingleTypeScheduler {
    fn name(&self) -> &str {
        "single-type"
    }
    fn schedule(
        &self,
        wf: &Workflow,
        spec: &CloudSpec,
        _store: &MetadataStore,
        req: Requirements,
    ) -> Option<Plan> {
        // Same 15% variance reserve as the Deco planner, so Figure 1
        // compares type choices, not packing headroom.
        Some(single_type_plan(
            wf,
            spec,
            self.itype,
            0,
            req.deadline * 0.85,
        ))
    }
}

/// The Autoscaling comparator.
///
/// Autoscaling's deadline notion is deterministic. For a fair comparison
/// under a probabilistic requirement, the paper "sets the deadline of
/// Autoscaling according to the QoS setting in Deco" — the effective
/// deterministic deadline corresponds to the requested percentile. We
/// reproduce that with a short calibration loop: plan for an effective
/// deadline, estimate the plan's p-th-quantile makespan from the metadata
/// store, and shrink the effective deadline until the requirement holds
/// (or the fleet tops out).
pub struct AutoscalingScheduler;

impl Scheduler for AutoscalingScheduler {
    fn name(&self) -> &str {
        "autoscaling"
    }
    fn schedule(
        &self,
        wf: &Workflow,
        spec: &CloudSpec,
        store: &MetadataStore,
        req: Requirements,
    ) -> Option<Plan> {
        use deco_core::estimate::{mc_evaluate_plan, ExecTimeTable};
        let table = ExecTimeTable::build(wf, store, 12);
        let mut effective = req.deadline;
        let mut plan = autoscaling_plan(wf, spec, effective, 0);
        for _ in 0..4 {
            let e = mc_evaluate_plan(
                wf,
                &plan,
                &table,
                spec,
                req.deadline,
                req.percentile,
                100,
                0xA570,
            );
            if e.prob >= req.percentile || e.quantile_makespan <= 0.0 {
                break;
            }
            // Shrink proportionally to the overshoot of the quantile.
            effective *= (req.deadline / e.quantile_makespan).min(0.95);
            plan = autoscaling_plan(wf, spec, effective, 0);
        }
        Some(plan)
    }
}

/// Deco as the scheduler callout.
pub struct DecoScheduler {
    pub options: DecoOptions,
    pub backend: EvalBackend,
}

impl Default for DecoScheduler {
    fn default() -> Self {
        DecoScheduler {
            options: DecoOptions::default(),
            backend: EvalBackend::SeqCpu,
        }
    }
}

impl Scheduler for DecoScheduler {
    fn name(&self) -> &str {
        "deco"
    }
    fn schedule(
        &self,
        wf: &Workflow,
        _spec: &CloudSpec,
        store: &MetadataStore,
        req: Requirements,
    ) -> Option<Plan> {
        let mut deco = Deco::new(store.clone());
        deco.options = self.options.clone();
        deco.plan_workflow(wf, req.deadline, req.percentile, &self.backend)
            .map(|p| p.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_workflow::generators;

    fn env() -> (Workflow, CloudSpec, MetadataStore) {
        let spec = CloudSpec::amazon_ec2();
        let store = MetadataStore::from_ground_truth(spec.clone(), 25);
        (generators::montage(1, 17), spec, store)
    }

    fn req(wf: &Workflow, spec: &CloudSpec) -> Requirements {
        let (dmin, dmax) = deco_core::estimate::deadline_anchors(wf, spec);
        Requirements {
            deadline: 0.5 * (dmin + dmax),
            percentile: 0.9,
        }
    }

    #[test]
    fn every_scheduler_produces_a_valid_plan() {
        let (wf, spec, store) = env();
        let r = req(&wf, &spec);
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(RandomScheduler { seed: 1 }),
            Box::new(SingleTypeScheduler { itype: 2 }),
            Box::new(AutoscalingScheduler),
        ];
        for s in schedulers {
            let plan = s
                .schedule(&wf, &spec, &store, r)
                .unwrap_or_else(|| panic!("{}", s.name()));
            plan.validate(&wf, &spec)
                .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
        }
    }

    #[test]
    fn deco_scheduler_plans_within_requirements() {
        let (wf, spec, store) = env();
        let r = req(&wf, &spec);
        let mut s = DecoScheduler::default();
        s.options.mc_iters = 40;
        let plan = s.schedule(&wf, &spec, &store, r).expect("feasible");
        plan.validate(&wf, &spec).unwrap();
    }
}
