//! Deterministic worker-fault injection for the serving layer.
//!
//! `deco-faults` models what the *cloud* does to a running plan; this
//! module models what the *machine room* does to the plan server itself:
//! solver workers that crash mid-solve or straggle through a cycle. The
//! discipline is the same as `deco_faults::FaultInjector`'s per-slot
//! fates — every draw is a domain-separated
//! [`StableHasher`](deco_prob::hash::StableHasher) digest of the plan
//! seed, so a fault schedule is a pure value: identical across platforms,
//! Rust releases, and (crucially) *physical worker counts*.
//!
//! Fates are keyed by **(virtual worker, cycle)**, not by OS thread. Jobs
//! are assigned to a fixed-size pool of virtual workers in canonical
//! content-key order, so which fate a job draws is independent of how
//! many real threads happen to drain the solve channel. That is what
//! keeps the serving layer's signature invariant — byte-identical
//! response streams at 1, 2, or 8 workers — intact under injected
//! failures.

use deco_prob::hash::StableHasher;
use deco_prob::rng::splitmix64;
use std::hash::Hasher;

/// What happens to one virtual worker in one solve cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkerFate {
    /// The worker completes its jobs normally.
    Healthy,
    /// The worker dies mid-solve: every job assigned to it this cycle is
    /// lost and must be re-enqueued (with backoff) or escalated.
    Crash,
    /// The worker finishes, but late: each of its jobs charges this many
    /// extra device-model ticks of service time.
    Straggler(f64),
}

/// A seeded, reproducible schedule of worker fates.
#[derive(Debug, Clone)]
pub struct WorkerFaultPlan {
    /// Root seed; every fate draw is a domain-separated digest of it.
    pub seed: u64,
    /// Probability a (virtual worker, cycle) pair crashes.
    pub crash_prob: f64,
    /// Probability a surviving (virtual worker, cycle) pair straggles.
    pub straggler_prob: f64,
    /// Mean extra service ticks of a straggling worker (exponential-ish:
    /// scaled by a uniform draw in `[0, 2)` so the mean is this value).
    pub straggler_mean_ticks: f64,
    /// Size of the virtual worker pool fates are keyed on. Independent of
    /// the physical pool so the schedule is worker-count-invariant.
    pub virtual_workers: usize,
}

impl Default for WorkerFaultPlan {
    /// The default plan is the quiescent one: no faults ever.
    fn default() -> Self {
        WorkerFaultPlan::quiescent()
    }
}

impl WorkerFaultPlan {
    /// The empty plan: every fate is [`WorkerFate::Healthy`] and the
    /// server's fault machinery short-circuits to the exact pre-fault
    /// code path (bit-identical output, pinned by the chaos tests).
    pub fn quiescent() -> Self {
        WorkerFaultPlan {
            seed: 0,
            crash_prob: 0.0,
            straggler_prob: 0.0,
            straggler_mean_ticks: 0.0,
            virtual_workers: 8,
        }
    }

    /// A plan that crashes each (virtual worker, cycle) pair with
    /// probability `crash_prob` and nothing else.
    pub fn crashes(seed: u64, crash_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&crash_prob), "probabilities in [0,1]");
        WorkerFaultPlan {
            seed,
            crash_prob,
            ..WorkerFaultPlan::quiescent()
        }
    }

    /// True when no fate can ever be drawn — the server's fast path.
    pub fn is_quiescent(&self) -> bool {
        self.crash_prob == 0.0 && self.straggler_prob == 0.0
    }

    /// Domain-separated uniform draw in `[0, 1)`.
    fn unit(&self, domain: &str, cycle: u64, vworker: u64) -> f64 {
        let mut h = StableHasher::with_seed(self.seed ^ 0x5EE7_FA7E);
        h.write(domain.as_bytes());
        h.write_u64(cycle);
        h.write_u64(vworker);
        (splitmix64(h.finish()) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The fate of virtual worker `vworker` in solve cycle `cycle`.
    /// Fixed draw order (crash, then straggle, then delay) so fates stay
    /// stable as the model changes shape — the same discipline as
    /// `deco_faults::FaultInjector::slot_fate`.
    pub fn fate(&self, cycle: u64, vworker: usize) -> WorkerFate {
        if self.is_quiescent() {
            return WorkerFate::Healthy;
        }
        let v = vworker as u64;
        if self.unit("crash", cycle, v) < self.crash_prob {
            return WorkerFate::Crash;
        }
        if self.unit("straggle", cycle, v) < self.straggler_prob {
            let delay = self.straggler_mean_ticks * 2.0 * self.unit("delay", cycle, v);
            return WorkerFate::Straggler(delay);
        }
        WorkerFate::Healthy
    }

    /// The virtual worker a job lands on, given its rank in the cycle's
    /// canonical (content-key-ordered) job list.
    pub fn assign(&self, job_rank: usize) -> usize {
        job_rank % self.virtual_workers.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_plans_never_draw_a_fate() {
        let p = WorkerFaultPlan::quiescent();
        assert!(p.is_quiescent());
        for cycle in 0..50 {
            for w in 0..8 {
                assert_eq!(p.fate(cycle, w), WorkerFate::Healthy);
            }
        }
    }

    #[test]
    fn fates_are_reproducible_per_seed_and_decorrelate_across_seeds() {
        let a = WorkerFaultPlan::crashes(7, 0.3);
        let b = WorkerFaultPlan::crashes(7, 0.3);
        let c = WorkerFaultPlan::crashes(8, 0.3);
        let draw = |p: &WorkerFaultPlan| -> Vec<WorkerFate> {
            (0..200).map(|i| p.fate(i / 8, (i % 8) as usize)).collect()
        };
        assert_eq!(draw(&a), draw(&b), "same seed, same schedule");
        assert_ne!(draw(&a), draw(&c), "different seed decorrelates");
    }

    #[test]
    fn crash_rate_tracks_the_probability() {
        let p = WorkerFaultPlan::crashes(3, 0.1);
        let n = 4000;
        let crashes = (0..n)
            .filter(|&i| p.fate(i / 8, (i % 8) as usize) == WorkerFate::Crash)
            .count();
        let rate = crashes as f64 / n as f64;
        assert!(
            (rate - 0.1).abs() < 0.02,
            "10% crash plan crashed at rate {rate}"
        );
    }

    #[test]
    fn stragglers_charge_bounded_positive_delays() {
        let p = WorkerFaultPlan {
            straggler_prob: 1.0,
            straggler_mean_ticks: 50.0,
            ..WorkerFaultPlan::crashes(5, 0.0)
        };
        for cycle in 0..100 {
            match p.fate(cycle, 0) {
                WorkerFate::Straggler(d) => {
                    assert!((0.0..100.0).contains(&d), "delay {d} out of range")
                }
                other => panic!("straggler_prob 1.0 must straggle, got {other:?}"),
            }
        }
    }

    #[test]
    fn assignment_is_round_robin_over_virtual_workers() {
        let p = WorkerFaultPlan::quiescent();
        assert_eq!(p.assign(0), 0);
        assert_eq!(p.assign(7), 7);
        assert_eq!(p.assign(8), 0);
        assert_eq!(p.assign(19), 3);
    }
}
