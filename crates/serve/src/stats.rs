//! Serving counters and queue-wait percentiles.
//!
//! Everything here is measured in deterministic quantities — request
//! counts and device-model ticks — so two runs of the same trace produce
//! *equal* `ServeStats` regardless of how many worker threads raced to
//! produce them. The interleaving tests assert exactly that.

use deco_prob::hash::StableHasher;
use std::hash::Hasher;

/// Counters for one [`crate::server::PlanServer::serve_trace`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Requests admitted and answered (planned or rejected-invalid).
    pub requests: u64,
    /// Requests answered with a plan.
    pub planned: u64,
    /// Cache hits (warm responses).
    pub hits: u64,
    /// Cold solves (unique cache misses dispatched to workers).
    pub misses: u64,
    /// Requests answered by a sibling's solve in the same cycle.
    pub coalesced: u64,
    /// Requests refused by admission backpressure.
    pub rejected_overload: u64,
    /// Requests refused for structural invalidity.
    pub rejected_invalid: u64,
    /// Cold solves where even the fallback chain failed.
    pub solve_failures: u64,
    /// Cache entries evicted by LRU pressure.
    pub evictions: u64,
    /// Cache entries purged for belonging to an older catalog epoch.
    pub stale_purged: u64,
    /// Solve cycles executed.
    pub cycles: u64,
    /// Plans produced by the Deco beam search stage.
    pub stage_deco: u64,
    /// Plans produced by the follow-the-cost heuristic stage.
    pub stage_heuristic: u64,
    /// Plans produced by the autoscaling backstop stage.
    pub stage_autoscaling: u64,
    /// Per-planned-request queueing delay (admission → cycle start), in
    /// model ticks; kept in response (seq) order.
    pub waits: Vec<f64>,
}

/// Nearest-rank percentile (p in \[0, 1\]) over an unsorted slice.
fn nearest_rank(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl ServeStats {
    /// Median queue wait in model ticks.
    pub fn p50_wait(&self) -> f64 {
        nearest_rank(&self.waits, 0.50)
    }

    /// 95th-percentile queue wait in model ticks.
    pub fn p95_wait(&self) -> f64 {
        nearest_rank(&self.waits, 0.95)
    }

    /// Warm fraction of all planned responses (hits + coalesced count as
    /// warm; 0 when nothing was planned).
    pub fn hit_rate(&self) -> f64 {
        if self.planned == 0 {
            0.0
        } else {
            (self.hits + self.coalesced) as f64 / self.planned as f64
        }
    }

    /// Canonical single-line rendering (floats as raw bits) for
    /// byte-comparison across worker counts.
    pub fn canonical_line(&self) -> String {
        format!(
            "requests={} planned={} hits={} misses={} coalesced={} \
             rej_overload={} rej_invalid={} solve_failures={} evictions={} \
             stale_purged={} cycles={} deco={} heuristic={} autoscaling={} \
             p50={:016x} p95={:016x}",
            self.requests,
            self.planned,
            self.hits,
            self.misses,
            self.coalesced,
            self.rejected_overload,
            self.rejected_invalid,
            self.solve_failures,
            self.evictions,
            self.stale_purged,
            self.cycles,
            self.stage_deco,
            self.stage_heuristic,
            self.stage_autoscaling,
            self.p50_wait().to_bits(),
            self.p95_wait().to_bits(),
        )
    }

    /// Stable digest of the canonical line plus every recorded wait.
    pub fn digest(&self) -> u64 {
        let mut h = StableHasher::with_seed(0x57A7);
        h.write(self.canonical_line().as_bytes());
        for &w in &self.waits {
            h.write_f64(w);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let stats = ServeStats {
            waits: vec![4.0, 1.0, 3.0, 2.0],
            ..ServeStats::default()
        };
        assert_eq!(stats.p50_wait(), 2.0);
        assert_eq!(stats.p95_wait(), 4.0);
        assert_eq!(ServeStats::default().p50_wait(), 0.0);
    }

    #[test]
    fn hit_rate_counts_coalesced_as_warm() {
        let stats = ServeStats {
            planned: 10,
            hits: 4,
            coalesced: 1,
            misses: 5,
            ..ServeStats::default()
        };
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(ServeStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn digest_is_sensitive_to_waits_beyond_percentiles() {
        let a = ServeStats {
            waits: vec![1.0, 2.0, 3.0],
            ..ServeStats::default()
        };
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());
        b.waits[0] = 1.5; // p50/p95 unchanged, digest must still move
        assert_ne!(a.digest(), b.digest());
    }
}
