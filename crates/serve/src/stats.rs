//! Serving counters, queue-wait percentiles, and per-cycle rows.
//!
//! Everything here is measured in deterministic quantities — request
//! counts and device-model ticks — so two runs of the same trace produce
//! *equal* `ServeStats` regardless of how many worker threads raced to
//! produce them. The interleaving tests assert exactly that.
//!
//! The canonical line is kept **byte-compatible with the pre-fault
//! format** when a run is quiescent: the robustness counters (shed,
//! crashes, retries, …) are appended only when at least one is nonzero,
//! so a fault-free run digests to exactly what it did before the fault
//! machinery existed. Per-cycle rows are observability output and are
//! deliberately *excluded* from [`ServeStats::digest`].

use deco_prob::hash::StableHasher;
use std::hash::Hasher;

/// One solve cycle's structured accounting, emitted in cycle order. Rows
/// feed the `serve` experiment subcommand's on-disk trace; they do not
/// participate in [`ServeStats::digest`] (the per-request response stream
/// already pins every observable).
#[derive(Debug, Clone, PartialEq)]
pub struct CycleRow {
    /// Cycle index, from 0.
    pub cycle: u64,
    /// Model tick at which the cycle started.
    pub start_tick: f64,
    /// Catalog epoch the whole cycle integrated against.
    pub epoch: u64,
    /// Requests drained into this cycle's batch.
    pub batch: u64,
    /// Cold solves dispatched.
    pub dispatched: u64,
    /// Warm (cache-hit) answers.
    pub hits: u64,
    /// Coalesced answers.
    pub coalesced: u64,
    /// Solves lost to injected worker crashes this cycle.
    pub crashes: u64,
    /// Jobs answered after one or more retries this cycle.
    pub retried: u64,
    /// Jobs escalated to the fallback chain (retries exhausted).
    pub escalated: u64,
    /// Jobs answered from quarantine this cycle.
    pub quarantined: u64,
    /// Extra straggler ticks charged to this cycle's solves.
    pub straggler_ticks: f64,
    /// Requests shed from the queue while this cycle was admitting.
    pub shed: u64,
}

impl CycleRow {
    /// One-line JSON rendering (stable field order, floats as decimals)
    /// for the experiments trace file.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cycle\":{},\"start_tick\":{},\"epoch\":{},\"batch\":{},\"dispatched\":{},\
             \"hits\":{},\"coalesced\":{},\"crashes\":{},\"retried\":{},\"escalated\":{},\
             \"quarantined\":{},\"straggler_ticks\":{},\"shed\":{}}}",
            self.cycle,
            self.start_tick,
            self.epoch,
            self.batch,
            self.dispatched,
            self.hits,
            self.coalesced,
            self.crashes,
            self.retried,
            self.escalated,
            self.quarantined,
            self.straggler_ticks,
            self.shed,
        )
    }
}

/// Counters for one [`crate::server::PlanServer::serve_trace`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Requests admitted and answered (planned or rejected-invalid).
    pub requests: u64,
    /// Requests answered with a plan.
    pub planned: u64,
    /// Cache hits (warm responses).
    pub hits: u64,
    /// Cold solves (unique cache misses dispatched to workers).
    pub misses: u64,
    /// Requests answered by a sibling's solve in the same cycle.
    pub coalesced: u64,
    /// Requests refused by admission backpressure.
    pub rejected_overload: u64,
    /// Requests refused for structural invalidity.
    pub rejected_invalid: u64,
    /// Requests refused by a per-tenant quota breach.
    pub rejected_quota: u64,
    /// Cold solves where even the fallback chain failed.
    pub solve_failures: u64,
    /// Cache entries evicted by LRU pressure.
    pub evictions: u64,
    /// Cache entries purged for belonging to an older catalog epoch.
    pub stale_purged: u64,
    /// Solve cycles executed.
    pub cycles: u64,
    /// Plans produced by the Deco beam search stage.
    pub stage_deco: u64,
    /// Plans produced by the follow-the-cost heuristic stage.
    pub stage_heuristic: u64,
    /// Plans produced by the autoscaling backstop stage.
    pub stage_autoscaling: u64,
    /// Admitted requests dropped by the deadline-aware shed policy.
    pub shed: u64,
    /// (virtual worker, cycle) crash fates that actually lost jobs.
    pub worker_crashes: u64,
    /// Re-enqueues of crashed solves (one per lost attempt).
    pub retries: u64,
    /// Jobs escalated to the fallback chain after exhausting retries.
    pub escalated: u64,
    /// Requests answered from the quarantine path.
    pub quarantined: u64,
    /// Calibration refreshes applied between cycles.
    pub refreshes: u64,
    /// Total extra straggler ticks charged across the run.
    pub straggler_ticks: f64,
    /// Per-planned-request queueing delay (admission → cycle start), in
    /// model ticks; kept in response (seq) order.
    pub waits: Vec<f64>,
    /// Per-cycle structured rows, in cycle order. Observability only:
    /// excluded from [`ServeStats::digest`] and equality of digests.
    pub cycle_rows: Vec<CycleRow>,
}

/// Nearest-rank percentile (p in \[0, 1\]) over an unsorted slice.
fn nearest_rank(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl ServeStats {
    /// Median queue wait in model ticks.
    pub fn p50_wait(&self) -> f64 {
        nearest_rank(&self.waits, 0.50)
    }

    /// 95th-percentile queue wait in model ticks.
    pub fn p95_wait(&self) -> f64 {
        nearest_rank(&self.waits, 0.95)
    }

    /// Warm fraction of all planned responses (hits + coalesced count as
    /// warm; 0 when nothing was planned).
    pub fn hit_rate(&self) -> f64 {
        if self.planned == 0 {
            0.0
        } else {
            (self.hits + self.coalesced) as f64 / self.planned as f64
        }
    }

    /// True when none of the robustness counters fired — the run behaved
    /// exactly like a pre-fault server and must digest identically to one.
    fn robustness_quiet(&self) -> bool {
        self.rejected_quota == 0
            && self.shed == 0
            && self.worker_crashes == 0
            && self.retries == 0
            && self.escalated == 0
            && self.quarantined == 0
            && self.refreshes == 0
            && self.straggler_ticks == 0.0
    }

    /// Canonical single-line rendering (floats as raw bits) for
    /// byte-comparison across worker counts. Robustness counters are
    /// appended only when at least one fired, keeping quiescent runs
    /// byte-identical to the pre-fault format.
    pub fn canonical_line(&self) -> String {
        let mut line = format!(
            "requests={} planned={} hits={} misses={} coalesced={} \
             rej_overload={} rej_invalid={} solve_failures={} evictions={} \
             stale_purged={} cycles={} deco={} heuristic={} autoscaling={} \
             p50={:016x} p95={:016x}",
            self.requests,
            self.planned,
            self.hits,
            self.misses,
            self.coalesced,
            self.rejected_overload,
            self.rejected_invalid,
            self.solve_failures,
            self.evictions,
            self.stale_purged,
            self.cycles,
            self.stage_deco,
            self.stage_heuristic,
            self.stage_autoscaling,
            self.p50_wait().to_bits(),
            self.p95_wait().to_bits(),
        );
        if !self.robustness_quiet() {
            line.push_str(&format!(
                " rej_quota={} shed={} crashes={} retries={} escalated={} \
                 quarantined={} refreshes={} straggler_ticks={:016x}",
                self.rejected_quota,
                self.shed,
                self.worker_crashes,
                self.retries,
                self.escalated,
                self.quarantined,
                self.refreshes,
                self.straggler_ticks.to_bits(),
            ));
        }
        line
    }

    /// Stable digest of the canonical line plus every recorded wait.
    /// Cycle rows are excluded on purpose: they are observability output,
    /// and the response stream already pins everything observable.
    pub fn digest(&self) -> u64 {
        let mut h = StableHasher::with_seed(0x57A7);
        h.write(self.canonical_line().as_bytes());
        for &w in &self.waits {
            h.write_f64(w);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let stats = ServeStats {
            waits: vec![4.0, 1.0, 3.0, 2.0],
            ..ServeStats::default()
        };
        assert_eq!(stats.p50_wait(), 2.0);
        assert_eq!(stats.p95_wait(), 4.0);
        assert_eq!(ServeStats::default().p50_wait(), 0.0);
    }

    #[test]
    fn hit_rate_counts_coalesced_as_warm() {
        let stats = ServeStats {
            planned: 10,
            hits: 4,
            coalesced: 1,
            misses: 5,
            ..ServeStats::default()
        };
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(ServeStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn digest_is_sensitive_to_waits_beyond_percentiles() {
        let a = ServeStats {
            waits: vec![1.0, 2.0, 3.0],
            ..ServeStats::default()
        };
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());
        b.waits[0] = 1.5; // p50/p95 unchanged, digest must still move
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn quiescent_lines_keep_the_pre_fault_byte_format() {
        let stats = ServeStats {
            requests: 3,
            planned: 3,
            misses: 3,
            cycles: 1,
            stage_deco: 3,
            ..ServeStats::default()
        };
        let line = stats.canonical_line();
        assert!(
            !line.contains("shed=") && !line.contains("crashes="),
            "quiescent runs must not grow new fields: {line}"
        );
        assert!(line.starts_with("requests=3 planned=3"));
    }

    #[test]
    fn robustness_counters_appear_once_any_fires() {
        let mut stats = ServeStats {
            requests: 3,
            ..ServeStats::default()
        };
        let quiet = stats.digest();
        stats.shed = 1;
        let line = stats.canonical_line();
        assert!(line.contains("shed=1"), "missing shed counter: {line}");
        assert!(line.contains("rej_quota=0"));
        assert_ne!(stats.digest(), quiet, "a shed must move the digest");
    }

    #[test]
    fn cycle_rows_do_not_affect_the_digest() {
        let a = ServeStats {
            requests: 5,
            ..ServeStats::default()
        };
        let mut b = a.clone();
        b.cycle_rows.push(CycleRow {
            cycle: 0,
            start_tick: 0.0,
            epoch: 1,
            batch: 5,
            dispatched: 5,
            hits: 0,
            coalesced: 0,
            crashes: 0,
            retried: 0,
            escalated: 0,
            quarantined: 0,
            straggler_ticks: 0.0,
            shed: 0,
        });
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a, b, "rows still participate in equality");
    }

    #[test]
    fn cycle_rows_render_stable_json() {
        let row = CycleRow {
            cycle: 2,
            start_tick: 30.5,
            epoch: 4,
            batch: 8,
            dispatched: 3,
            hits: 4,
            coalesced: 1,
            crashes: 1,
            retried: 1,
            escalated: 0,
            quarantined: 0,
            straggler_ticks: 12.5,
            shed: 0,
        };
        assert_eq!(
            row.to_json(),
            "{\"cycle\":2,\"start_tick\":30.5,\"epoch\":4,\"batch\":8,\"dispatched\":3,\
             \"hits\":4,\"coalesced\":1,\"crashes\":1,\"retried\":1,\"escalated\":0,\
             \"quarantined\":0,\"straggler_ticks\":12.5,\"shed\":0}"
        );
    }
}
