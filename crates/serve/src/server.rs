//! The plan server: admission → cache → worker pool → supervisor.
//!
//! [`PlanServer::serve_trace`] replays a recorded [`ArrivalTrace`] through
//! a deterministic cycle loop:
//!
//! 1. **Admit** every arrival whose tick has passed, up to the queue
//!    capacity and the optional per-tenant quota; a full queue first tries
//!    the deadline-aware shed policy (drop a waiter whose canonical
//!    deadline is already unmeetable) and only then answers the newcomer
//!    `Rejected` with the [`DecoError::Overloaded`] rendering.
//! 2. **Drain** one batch — priority classes first, FIFO within a class —
//!    and classify each request against the content-addressed cache: warm
//!    hits answer immediately; quarantined keys answer from the fallback
//!    chain; equal keys within the batch (or matching a pending retry)
//!    coalesce onto one solve; the remaining unique misses become solve
//!    jobs with fair-share budgets.
//! 3. **Solve** the jobs on a pool of worker threads (vendored crossbeam
//!    channels, one reusable [`EvalScratch`] per worker), every job routed
//!    through [`plan_with_fallback_scratch`]. A [`WorkerFaultPlan`] may
//!    crash or straggle *virtual* workers: fates are keyed on
//!    (virtual worker, cycle) with jobs assigned by canonical key rank, so
//!    injected failures are independent of the physical thread count.
//!    Crashed solves re-enqueue with capped exponential backoff charged
//!    against their remaining budget; exhausted retries escalate to the
//!    degradation chain; repeat offenders are quarantined.
//! 4. **Integrate** results in canonical key order (a `BTreeMap`, so the
//!    cache and stats are updated identically no matter which worker
//!    finished first), respond in sequence order, and advance the model
//!    clock by the cycle's deterministic service ticks.
//!
//! Because every step orders by content key or trace sequence — never by
//! thread completion — the response stream and stats are byte-identical
//! at 1, 2, or 8 workers, with or without injected faults. The chaos
//! tests pin this, and additionally pin that a quiescent fault plan is
//! bit-identical to a server without the fault machinery at all.
//!
//! ## The backend abstraction
//!
//! The cycle loop itself is generic: [`serve_trace_backend`] drives any
//! [`ServeBackend`] — an implementation of the cache, the
//! quarantine/strike books, the solver pool, and the calibration swap.
//! [`PlanServer`] is the single-process backend (one [`PlanCache`], one
//! pool); the `deco-shard` crate implements the same trait with the cache
//! and books **partitioned by contiguous content-key range** across N
//! shards, each with its own worker pool and durable WAL-backed store.
//! Every observable the engine produces is ordered by content key or
//! trace sequence, and a key-range partition walked shard-by-shard in
//! ascending range order visits keys in exactly the global canonical
//! order — which is why an N-shard backend replays byte-identically to
//! this single-process one (the shard tests pin N ∈ {1, 2, 4}).

use crate::cache::{plan_key, workflow_shape_hash, PlanCache};
use crate::faults::{WorkerFate, WorkerFaultPlan};
use crate::queue::{effective_budget, fair_share_budgets, AdmissionQueue, QueuedRequest};
use crate::request::{
    Arrival, ArrivalTrace, PlanRequest, PlanResponse, PlanSource, ServeOutcome, ServedPlan,
    TenantId,
};
use crate::stats::{CycleRow, ServeStats};
use deco_cloud::{MetadataStore, RetryConfig};
use deco_core::estimate::EvalScratch;
use deco_core::supervisor::{
    plan_fallback_only, plan_with_fallback_scratch, PlanStage, SupervisedPlan,
};
use deco_core::{Deco, DecoError};
use deco_solver::SearchBudget;
use deco_workflow::Workflow;
use std::collections::{BTreeMap, BTreeSet};

/// Serving policy knobs. Defaults suit the integration tests and bench;
/// production traces should size `queue_capacity` to tolerated burst.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission queue bound; arrivals beyond it are shed-or-rejected.
    pub queue_capacity: usize,
    /// Requests drained per solve cycle.
    pub batch_size: usize,
    /// Plan cache bound (entries). Zero is a documented no-op cache:
    /// every request solves cold (fail-soft for misconfigured shards).
    pub cache_capacity: usize,
    /// Deadline canonicalization bucket, seconds. Deadlines are floored
    /// to a bucket multiple (never below one bucket), so near-identical
    /// requests share cache lines while the served deadline stays
    /// conservative (no later than requested).
    pub deadline_bucket: f64,
    /// Per-request search budget cap (before fair-share and hints).
    pub budget: SearchBudget,
    /// Optional per-cycle tick pool split fairly across the cycle's
    /// tenants. Cache-key-transparent: a pooled solve may be shallower
    /// than an unpooled one, but the key records only the request-level
    /// budget.
    pub cycle_tick_pool: Option<f64>,
    /// Modeled ticks to answer a warm or coalesced request.
    pub hit_ticks: f64,
    /// Optional per-tenant bound on queued requests; breaches reject only
    /// the over-quota tenant ([`DecoError::QuotaExceeded`]).
    pub tenant_quota: Option<usize>,
    /// Retry policy for solves lost to worker crashes: backoff ticks are
    /// `capped_backoff(base, cap, retry)` (the same shared helper
    /// `deco_faults::recovery` uses) and are charged against the
    /// request's remaining budget.
    pub retry: RetryConfig,
    /// Cumulative worker-crash strikes after which a content key is
    /// quarantined: answered from the fallback chain, never dispatched to
    /// workers again (until a calibration refresh clears the set). Kept
    /// above `retry.max_attempts` by default so a single job escalates
    /// before its key is quarantined.
    pub quarantine_threshold: u32,
    /// Feed the deadline-aware shed policy a per-shape solve-cost
    /// estimate: the mean observed `budget_spent` of this run's worker
    /// solves, keyed by [`workflow_shape_hash`]. Off by default — the
    /// conservative zero estimate sheds only already-expired waiters, and
    /// quiescent response digests are unchanged. On, a waiter whose
    /// remaining slack cannot cover one more solve of its shape is shed
    /// at queue overflow instead of sacrificing viable work.
    pub shed_estimate: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            batch_size: 16,
            cache_capacity: 256,
            deadline_bucket: 60.0,
            budget: SearchBudget::unlimited(),
            cycle_tick_pool: None,
            hit_ticks: 0.0,
            tenant_quota: None,
            retry: RetryConfig::default(),
            quarantine_threshold: 6,
            shed_estimate: false,
        }
    }
}

/// A scheduled calibration swap: at the first cycle boundary at or after
/// `at_tick`, the server atomically replaces its metadata store and bumps
/// the catalog epoch. No cycle ever integrates plans from two epochs —
/// the epoch-mix invariant test pins this.
#[derive(Debug, Clone)]
pub struct CalibrationRefresh {
    pub at_tick: f64,
    pub store: MetadataStore,
}

/// Environment for one serve run: the worker fault schedule plus any
/// scheduled calibration refreshes. `Default` is the quiescent session —
/// no faults, no refreshes — under which
/// [`PlanServer::serve_trace_session`] is bit-identical to
/// [`PlanServer::serve_trace`].
#[derive(Debug, Clone, Default)]
pub struct ServeSession {
    pub faults: WorkerFaultPlan,
    pub refreshes: Vec<CalibrationRefresh>,
}

/// Floor a deadline to its canonical bucket: multiples of
/// `bucket`, never below one bucket, and never above the request.
pub fn canonical_deadline(deadline: f64, bucket: f64) -> f64 {
    assert!(
        bucket > 0.0 && bucket.is_finite(),
        "bucket must be positive"
    );
    if deadline <= bucket {
        deadline
    } else {
        (deadline / bucket).floor() * bucket
    }
}

/// One cold solve dispatched to a worker pool. Public so alternative
/// [`ServeBackend`]s (the shard tier) can route jobs to their own pools.
#[derive(Debug)]
pub struct SolveJob {
    pub key: u64,
    pub workflow: Workflow,
    /// Canonical (bucket-floored) deadline.
    pub deadline: f64,
    pub percentile: f64,
    pub budget: SearchBudget,
}

/// The state a serving cycle loop runs against: a plan cache, the
/// quarantine/strike books, a solver pool, and the calibration swap.
///
/// [`serve_trace_backend`] is written so that **every** mutation and
/// query it issues is keyed by content key (or applies to the whole
/// backend), and every iteration it performs over backend-derived data is
/// in canonical key order. A backend that partitions its state by
/// disjoint key ranges — with range-local storage but globally consistent
/// answers (one logical LRU, one logical strike book) — is therefore
/// observationally identical to the single-map implementation, which is
/// the design contract the `deco-shard` tier builds on.
pub trait ServeBackend {
    /// The engine configuration and catalog every key is derived from.
    fn deco(&self) -> &Deco;
    /// Serving policy. Read once per trace replay.
    fn config(&self) -> &ServeConfig;
    /// Cache lookup; refreshes the entry's LRU stamp on a hit. Must
    /// advance the LRU clock on misses too (the single-process cache
    /// does, and eviction tie-breaking depends on it).
    fn cache_get(&mut self, key: u64) -> Option<SupervisedPlan>;
    /// Cache insert; returns entries evicted to make room (0 or 1).
    fn cache_insert(&mut self, key: u64, plan: &SupervisedPlan, epoch: u64) -> usize;
    /// Drop every entry solved under an older catalog epoch.
    fn cache_purge_stale(&mut self, epoch: u64) -> usize;
    /// Is this content key answered from the fallback chain?
    fn is_key_quarantined(&self, key: u64) -> bool;
    /// Worker-crash strikes recorded against a key, if any.
    fn strike_count(&self, key: u64) -> Option<u32>;
    /// Record one more crash strike; returns the new total.
    fn add_strike(&mut self, key: u64) -> u32;
    /// Quarantine a key (answered from fallback until a refresh).
    fn quarantine_key(&mut self, key: u64);
    /// Clear a key's strikes after a successful solve.
    fn clear_strikes(&mut self, key: u64);
    /// Solve one cycle's unique misses; results must land keyed by
    /// content key so integration order is canonical.
    #[allow(clippy::type_complexity)]
    fn solve_jobs(
        &self,
        jobs: Vec<SolveJob>,
        workers: usize,
    ) -> BTreeMap<u64, (SearchBudget, Result<SupervisedPlan, DecoError>)>;
    /// Atomically swap in freshly calibrated metadata between cycles;
    /// returns `(new_epoch, purged_entries)`.
    fn refresh_calibration(&mut self, store: MetadataStore) -> (u64, usize);
    /// Hook invoked at every cycle boundary, just before the cycle's
    /// classification pass. The single-process server does nothing; the
    /// shard tier injects deterministic shard restarts (and WAL
    /// compaction) here, strictly between cycles.
    fn on_cycle_boundary(&mut self, _cycle: u64) {}
}

/// One solve a cycle is responsible for: a fresh miss (attempt 0) or a
/// re-enqueued crash victim, plus every request waiting on its key.
#[derive(Debug)]
struct PendingSolve {
    key: u64,
    workflow: Workflow,
    /// Canonical (bucket-floored) deadline.
    deadline: f64,
    percentile: f64,
    budget: SearchBudget,
    /// The budget component of the cache key (hint or config cap), kept
    /// so the job can be re-keyed after a calibration refresh.
    key_budget: Option<f64>,
    /// Dispatches lost to worker crashes so far.
    attempt: u32,
    /// Earliest tick at which this job may be dispatched again.
    not_before: f64,
    /// Requests answered by this solve, in join order (the first is the
    /// original requester).
    waiters: Vec<QueuedRequest>,
}

/// How one request will be answered at the end of a cycle.
enum Answer {
    Plan {
        plan: Box<SupervisedPlan>,
        source: PlanSource,
    },
    Reject {
        reason: String,
        /// Whether this answer still charges `hit_ticks` (a coalesced
        /// waiter of a failed solve did queue behind the shared attempt).
        charge_hit: bool,
    },
}

/// Tighter-of-both on every budget axis.
fn min_budget(a: &SearchBudget, b: &SearchBudget) -> SearchBudget {
    fn min_axis(x: Option<f64>, y: Option<f64>) -> Option<f64> {
        match (x, y) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        }
    }
    SearchBudget {
        ticks: min_axis(a.ticks, b.ticks),
        wall_seconds: min_axis(a.wall_seconds, b.wall_seconds),
    }
}

/// Answer a request from the degradation chain without touching the
/// worker pool (quarantined keys, exhausted retries). Returns the answer
/// plus its deterministic service-tick charge; `Err` from the chain
/// becomes a `Reject` (counted as a solve failure by the caller).
fn fallback_answer(
    deco: &Deco,
    workflow: &Workflow,
    deadline: f64,
    percentile: f64,
    reason: &str,
    source: PlanSource,
    scratch: &mut EvalScratch,
) -> (Answer, f64, bool) {
    match plan_fallback_only(deco, workflow, deadline, percentile, reason, scratch) {
        Ok(plan) => {
            let spent = plan.provenance.budget_spent;
            (
                Answer::Plan {
                    plan: Box::new(plan),
                    source,
                },
                spent,
                false,
            )
        }
        Err(e) => (
            Answer::Reject {
                reason: e.to_string(),
                charge_hit: false,
            },
            0.0,
            true,
        ),
    }
}

/// Observed per-shape solve costs for this run: shape hash → (solves,
/// total budget_spent). Feeds the shed policy's service estimate when
/// [`ServeConfig::shed_estimate`] is on.
type ShapeCosts = BTreeMap<u64, (u64, f64)>;

/// Mean observed solve cost for a request's workflow shape; zero when the
/// shape has not been solved yet (conservative: never sheds on a guess).
fn mean_shape_cost(costs: &ShapeCosts, request: &PlanRequest) -> f64 {
    let shape = workflow_shape_hash(&request.workflow);
    match costs.get(&shape) {
        Some(&(n, total)) if n > 0 => total / n as f64,
        _ => 0.0,
    }
}

/// Structural validation before any key derivation or solving.
fn validate_request(req: &PlanRequest) -> Result<(), DecoError> {
    if req.workflow.is_empty() {
        return Err(DecoError::Plan("workflow has no tasks".into()));
    }
    if !req.deadline.is_finite() || req.deadline <= 0.0 {
        return Err(DecoError::Plan(format!(
            "deadline must be finite and positive, got {}",
            req.deadline
        )));
    }
    if !(req.percentile > 0.0 && req.percentile <= 1.0) {
        return Err(DecoError::Plan(format!(
            "percentile must lie in (0, 1], got {}",
            req.percentile
        )));
    }
    if let Some(h) = req.budget_hint {
        if !h.is_finite() || h <= 0.0 {
            return Err(DecoError::Plan(format!(
                "budget hint must be finite and positive, got {h}"
            )));
        }
    }
    Ok(())
}

/// Replay a recorded trace against any [`ServeBackend`] under an explicit
/// [`ServeSession`]. This is the deterministic cycle loop behind
/// [`PlanServer::serve_trace_session`] and the shard tier's replay:
/// identical `(trace, session)` inputs produce byte-identical response
/// streams and stats at any worker count — and, for a key-range
/// partitioned backend, at any shard count.
pub fn serve_trace_backend<B: ServeBackend>(
    backend: &mut B,
    trace: &ArrivalTrace,
    workers: usize,
    session: &ServeSession,
) -> (Vec<PlanResponse>, ServeStats) {
    assert!(workers >= 1, "the pool needs at least one worker");
    let cfg = backend.config().clone();
    assert!(cfg.batch_size >= 1, "batch_size must be at least 1");
    let mut stats = ServeStats::default();
    let epoch0 = backend.deco().store.catalog_epoch();
    stats.stale_purged += backend.cache_purge_stale(epoch0) as u64;

    let mut refreshes: Vec<CalibrationRefresh> = session.refreshes.clone();
    refreshes.sort_by(|a, b| a.at_tick.total_cmp(&b.at_tick));
    let mut refresh_next = 0usize;

    let mut responses: Vec<PlanResponse> = Vec::with_capacity(trace.len());
    let mut queue = AdmissionQueue::new(cfg.queue_capacity);
    if let Some(quota) = cfg.tenant_quota {
        queue = queue.with_tenant_quota(quota);
    }
    let mut retries: Vec<PendingSolve> = Vec::new();
    let mut shape_costs: ShapeCosts = ShapeCosts::new();
    let arrivals = trace.arrivals();
    let mut next = 0usize;
    let mut now = 0.0f64;
    let mut shed_pending = 0u64;

    while next < arrivals.len() || !queue.is_empty() || !retries.is_empty() {
        // An idle server sleeps until the next recorded arrival or the
        // earliest retry's backoff expiry, whichever comes first.
        if queue.is_empty() && !retries.iter().any(|j| j.not_before <= now) {
            let wake_arrival = arrivals
                .get(next)
                .map(|a| a.at_tick)
                .unwrap_or(f64::INFINITY);
            let wake_retry = retries
                .iter()
                .map(|j| j.not_before)
                .fold(f64::INFINITY, f64::min);
            let wake = wake_arrival.min(wake_retry);
            if wake.is_finite() && wake > now {
                now = wake;
            }
        }

        // Apply due calibration refreshes strictly between cycles,
        // re-keying pending retries into the new epoch.
        while refresh_next < refreshes.len() && refreshes[refresh_next].at_tick <= now {
            let refresh = refreshes[refresh_next].clone();
            refresh_next += 1;
            let (_, purged) = backend.refresh_calibration(refresh.store);
            stats.refreshes += 1;
            stats.stale_purged += purged as u64;
            let deco = backend.deco();
            for job in retries.iter_mut() {
                job.key = plan_key(
                    &job.workflow,
                    &deco.store,
                    &deco.options,
                    job.deadline,
                    job.percentile,
                    job.key_budget,
                );
            }
        }

        // Admit everything that has arrived by now. Quota breaches
        // reject the offending tenant only; a full queue first tries
        // to shed a waiter whose deadline is already unmeetable, and
        // rejects the newcomer only when every waiter is still
        // viable.
        while next < arrivals.len() && arrivals[next].at_tick <= now {
            let Arrival { at_tick, request } = arrivals[next].clone();
            let seq = next as u64;
            let tenant = request.tenant;
            next += 1;
            match queue.try_admit(seq, at_tick, request.clone()) {
                Ok(()) => {}
                Err(e @ DecoError::QuotaExceeded { .. }) => {
                    stats.rejected_quota += 1;
                    responses.push(PlanResponse {
                        seq,
                        tenant,
                        key: 0,
                        outcome: ServeOutcome::Rejected {
                            reason: e.to_string(),
                        },
                    });
                }
                Err(e) => {
                    // The shed estimate: zero by default (a waiter is
                    // doomed only once its canonical deadline has
                    // *already* expired in queue — viable work is never
                    // sacrificed to a forecast); with `shed_estimate` on,
                    // the mean observed solve cost of the waiter's
                    // workflow shape, so a waiter that cannot fit one
                    // more solve of its own shape is sacrificed first.
                    let shed = if cfg.shed_estimate {
                        let est = |r: &PlanRequest| mean_shape_cost(&shape_costs, r);
                        queue.shed_unmeetable(now, cfg.deadline_bucket, &est)
                    } else {
                        queue.shed_unmeetable(now, cfg.deadline_bucket, &|_| 0.0)
                    };
                    match shed {
                        Some(victim) => {
                            stats.shed += 1;
                            shed_pending += 1;
                            let cd =
                                canonical_deadline(victim.request.deadline, cfg.deadline_bucket);
                            responses.push(PlanResponse {
                                seq: victim.seq,
                                tenant: victim.request.tenant,
                                key: 0,
                                outcome: ServeOutcome::Shed {
                                    reason: format!(
                                        "canonical deadline {cd} already unmeetable \
                                         at queue overflow"
                                    ),
                                },
                            });
                            if let Err(e2) = queue.try_admit(seq, at_tick, request) {
                                stats.rejected_overload += 1;
                                responses.push(PlanResponse {
                                    seq,
                                    tenant,
                                    key: 0,
                                    outcome: ServeOutcome::Rejected {
                                        reason: e2.to_string(),
                                    },
                                });
                            }
                        }
                        None => {
                            stats.rejected_overload += 1;
                            responses.push(PlanResponse {
                                seq,
                                tenant,
                                key: 0,
                                outcome: ServeOutcome::Rejected {
                                    reason: e.to_string(),
                                },
                            });
                        }
                    }
                }
            }
        }

        let batch = queue.drain_batch(cfg.batch_size);
        let (ready, waiting): (Vec<PendingSolve>, Vec<PendingSolve>) =
            retries.drain(..).partition(|j| j.not_before <= now);
        retries = waiting;
        if batch.is_empty() && ready.is_empty() {
            continue;
        }
        let cycle = stats.cycles;
        // Cycle boundary: the shard tier restarts crashed shards (and
        // compacts WALs) here, strictly between cycles. No-op for the
        // single-process server.
        backend.on_cycle_boundary(cycle);
        stats.cycles += 1;
        // The whole cycle integrates against one epoch, read once
        // here; refreshes only land between cycles (above).
        let epoch = backend.deco().store.catalog_epoch();
        let cycle_start = now;
        now += run_cycle(
            backend,
            &cfg,
            batch,
            ready,
            cycle,
            cycle_start,
            epoch,
            workers,
            &session.faults,
            &mut retries,
            shed_pending,
            &mut shape_costs,
            &mut stats,
            &mut responses,
        );
        shed_pending = 0;
    }

    responses.sort_by_key(|r| r.seq);
    (responses, stats)
}

/// Classify, solve, and answer one batch (plus any retry jobs whose
/// backoff expired); returns the cycle's deterministic service ticks.
#[allow(clippy::too_many_arguments)]
fn run_cycle<B: ServeBackend>(
    backend: &mut B,
    cfg: &ServeConfig,
    batch: Vec<QueuedRequest>,
    ready: Vec<PendingSolve>,
    cycle: u64,
    cycle_start: f64,
    epoch: u64,
    workers: usize,
    faults: &WorkerFaultPlan,
    retries: &mut Vec<PendingSolve>,
    shed_this_round: u64,
    shape_costs: &mut ShapeCosts,
    stats: &mut ServeStats,
    responses: &mut Vec<PlanResponse>,
) -> f64 {
    let mut scratch = EvalScratch::new();
    let mut service = 0.0f64;
    let mut row = CycleRow {
        cycle,
        start_tick: cycle_start,
        epoch,
        batch: batch.len() as u64,
        dispatched: 0,
        hits: 0,
        coalesced: 0,
        crashes: 0,
        retried: 0,
        escalated: 0,
        quarantined: 0,
        straggler_ticks: 0.0,
        shed: shed_this_round,
    };

    // This cycle's solves, keyed canonically: retry jobs whose
    // backoff expired, then fresh misses from the batch.
    let mut jobs: BTreeMap<u64, PendingSolve> = ready.into_iter().map(|j| (j.key, j)).collect();
    let mut fresh_order: Vec<u64> = Vec::new();
    // (request, key, canonical deadline, answer), assembled across
    // the cycle and emitted in seq order at the end.
    let mut answers: Vec<(QueuedRequest, u64, f64, Answer)> = Vec::new();

    // Classification pass, in drain (priority, then seq) order —
    // which also fixes the cache's LRU refresh order.
    for qr in batch {
        stats.requests += 1;
        if let Err(e) = validate_request(&qr.request) {
            stats.rejected_invalid += 1;
            answers.push((
                qr,
                0,
                0.0,
                Answer::Reject {
                    reason: e.to_string(),
                    charge_hit: false,
                },
            ));
            continue;
        }
        let cd = canonical_deadline(qr.request.deadline, cfg.deadline_bucket);
        let key_budget = qr.request.budget_hint.or(cfg.budget.ticks);
        let key = {
            let deco = backend.deco();
            plan_key(
                &qr.request.workflow,
                &deco.store,
                &deco.options,
                cd,
                qr.request.percentile,
                key_budget,
            )
        };
        if let Some(plan) = backend.cache_get(key) {
            answers.push((
                qr,
                key,
                cd,
                Answer::Plan {
                    plan: Box::new(plan),
                    source: PlanSource::Warm,
                },
            ));
            continue;
        }
        if backend.is_key_quarantined(key) {
            let strikes = backend
                .strike_count(key)
                .unwrap_or(cfg.quarantine_threshold);
            let reason = format!("content key quarantined after {strikes} worker crashes");
            let (answer, spent, failed) = fallback_answer(
                backend.deco(),
                &qr.request.workflow,
                cd,
                qr.request.percentile,
                &reason,
                PlanSource::Quarantined,
                &mut scratch,
            );
            service += spent;
            stats.solve_failures += u64::from(failed);
            answers.push((qr, key, cd, answer));
            continue;
        }
        if let Some(job) = jobs.get_mut(&key) {
            // Coalesce onto this cycle's solve for the same key
            // (a fresh sibling or a retry being redispatched now).
            job.waiters.push(qr);
            continue;
        }
        if let Some(job) = retries.iter_mut().find(|j| j.key == key) {
            // The key is backing off after a crash: join its waiters
            // instead of racing a duplicate solve.
            job.waiters.push(qr);
            continue;
        }
        fresh_order.push(key);
        jobs.insert(
            key,
            PendingSolve {
                key,
                workflow: qr.request.workflow.clone(),
                deadline: cd,
                percentile: qr.request.percentile,
                budget: SearchBudget::unlimited(), // budgeted below
                key_budget,
                attempt: 0,
                not_before: cycle_start,
                waiters: vec![qr],
            },
        );
    }

    // Fair-share the cycle pool across the fresh misses' tenants,
    // then clamp by the per-request cap and each request's hint.
    // Retry jobs keep their original (backoff-decremented) budgets.
    let tenants: Vec<TenantId> = fresh_order
        .iter()
        .map(|k| jobs[k].waiters[0].request.tenant)
        .collect();
    let shares = fair_share_budgets(cfg.cycle_tick_pool, &tenants);
    for (key, share) in fresh_order.iter().zip(shares) {
        let job = jobs.get_mut(key).expect("fresh keys were just inserted");
        let capped = min_budget(&cfg.budget, &share);
        job.budget = effective_budget(&capped, job.waiters[0].request.budget_hint);
    }

    // Draw worker fates by canonical job rank: rank -> virtual worker
    // -> fate, independent of the physical pool size.
    let crashed_keys: Vec<u64> = jobs
        .iter()
        .enumerate()
        .filter_map(
            |(rank, (&key, _))| match faults.fate(cycle, faults.assign(rank)) {
                WorkerFate::Crash => Some(key),
                WorkerFate::Straggler(delay) => {
                    service += delay;
                    row.straggler_ticks += delay;
                    stats.straggler_ticks += delay;
                    None
                }
                WorkerFate::Healthy => None,
            },
        )
        .collect();

    // Crashed solves: strike the key, then quarantine, escalate, or
    // re-enqueue with capped backoff charged against the budget.
    for key in crashed_keys {
        let mut job = jobs
            .remove(&key)
            .expect("crashed keys come from the job map");
        row.crashes += 1;
        stats.worker_crashes += 1;
        // The lost attempt burned its budget on a dead worker.
        service += job.budget.ticks.unwrap_or(0.0);
        job.attempt += 1;
        let strikes = backend.add_strike(key);
        if strikes >= cfg.quarantine_threshold {
            backend.quarantine_key(key);
            let reason = format!("content key quarantined after {strikes} worker crashes");
            for qr in job.waiters {
                let (answer, spent, failed) = fallback_answer(
                    backend.deco(),
                    &job.workflow,
                    job.deadline,
                    job.percentile,
                    &reason,
                    PlanSource::Quarantined,
                    &mut scratch,
                );
                service += spent;
                stats.solve_failures += u64::from(failed);
                answers.push((qr, key, job.deadline, answer));
            }
        } else if job.attempt >= cfg.retry.max_attempts {
            stats.escalated += 1;
            row.escalated += 1;
            let reason = format!("retries exhausted after {} worker crashes", job.attempt);
            for qr in job.waiters {
                let (answer, spent, failed) = fallback_answer(
                    backend.deco(),
                    &job.workflow,
                    job.deadline,
                    job.percentile,
                    &reason,
                    PlanSource::Retried,
                    &mut scratch,
                );
                service += spent;
                stats.solve_failures += u64::from(failed);
                answers.push((qr, key, job.deadline, answer));
            }
        } else {
            stats.retries += 1;
            let backoff = cfg.retry.backoff(job.attempt);
            job.not_before = cycle_start + backoff;
            job.budget = job.budget.minus_ticks(backoff);
            retries.push(job);
        }
    }

    // Dispatch the surviving jobs to the backend's pool(s).
    let dispatch: Vec<SolveJob> = jobs
        .values()
        .map(|job| SolveJob {
            key: job.key,
            workflow: job.workflow.clone(),
            deadline: job.deadline,
            percentile: job.percentile,
            budget: job.budget.clone(),
        })
        .collect();
    row.dispatched = dispatch.len() as u64;
    let solved = backend.solve_jobs(dispatch, workers);

    // Integrate in canonical key order: cache updates (and therefore
    // eviction order and LRU clocks) are independent of which worker
    // finished first.
    for (key, (budget, result)) in &solved {
        match result {
            Ok(plan) => {
                service += plan.provenance.budget_spent;
                stats.evictions += backend.cache_insert(*key, plan, epoch) as u64;
                backend.clear_strikes(*key);
            }
            Err(_) => {
                stats.solve_failures += 1;
                service += budget.ticks.unwrap_or(0.0);
            }
        }
    }

    // Attach each job's waiters to its result, key order.
    for (key, job) in jobs {
        let (_, result) = solved
            .get(&key)
            .expect("every dispatched key has a solve result");
        match result {
            Ok(plan) => {
                if cfg.shed_estimate {
                    // Feed the shed policy's per-shape solve-cost model.
                    let shape = workflow_shape_hash(&job.workflow);
                    let entry = shape_costs.entry(shape).or_insert((0, 0.0));
                    entry.0 += 1;
                    entry.1 += plan.provenance.budget_spent;
                }
                if job.attempt == 0 {
                    for (i, qr) in job.waiters.into_iter().enumerate() {
                        let source = if i == 0 {
                            PlanSource::Cold
                        } else {
                            PlanSource::Coalesced
                        };
                        answers.push((
                            qr,
                            key,
                            job.deadline,
                            Answer::Plan {
                                plan: Box::new(plan.clone()),
                                source,
                            },
                        ));
                    }
                } else {
                    row.retried += 1;
                    for qr in job.waiters {
                        answers.push((
                            qr,
                            key,
                            job.deadline,
                            Answer::Plan {
                                plan: Box::new(plan.clone()),
                                source: PlanSource::Retried,
                            },
                        ));
                    }
                }
            }
            Err(e) => {
                for (i, qr) in job.waiters.into_iter().enumerate() {
                    answers.push((
                        qr,
                        key,
                        job.deadline,
                        Answer::Reject {
                            reason: e.to_string(),
                            charge_hit: i > 0 && job.attempt == 0,
                        },
                    ));
                }
            }
        }
    }

    // Answer in sequence order (hit ticks are charged here so the
    // service sum's float-addition order matches the pre-fault
    // server exactly on quiescent runs).
    answers.sort_by_key(|(qr, ..)| qr.seq);
    for (qr, key, cd, answer) in answers {
        match answer {
            Answer::Plan { plan, source } => {
                match source {
                    PlanSource::Warm => {
                        service += cfg.hit_ticks;
                        stats.hits += 1;
                        row.hits += 1;
                    }
                    PlanSource::Cold => stats.misses += 1,
                    PlanSource::Coalesced => {
                        service += cfg.hit_ticks;
                        stats.coalesced += 1;
                        row.coalesced += 1;
                    }
                    PlanSource::Retried => {}
                    PlanSource::Quarantined => {
                        stats.quarantined += 1;
                        row.quarantined += 1;
                    }
                }
                match plan.provenance.stage {
                    PlanStage::Deco => stats.stage_deco += 1,
                    PlanStage::Heuristic => stats.stage_heuristic += 1,
                    PlanStage::Autoscaling => stats.stage_autoscaling += 1,
                }
                stats.planned += 1;
                let wait = cycle_start - qr.arrived_at;
                stats.waits.push(wait);
                responses.push(PlanResponse {
                    seq: qr.seq,
                    tenant: qr.request.tenant,
                    key,
                    outcome: ServeOutcome::Planned(Box::new(ServedPlan {
                        plan: *plan,
                        source,
                        wait_ticks: wait,
                        canonical_deadline: cd,
                    })),
                });
            }
            Answer::Reject { reason, charge_hit } => {
                if charge_hit {
                    service += cfg.hit_ticks;
                }
                responses.push(PlanResponse {
                    seq: qr.seq,
                    tenant: qr.request.tenant,
                    key,
                    outcome: ServeOutcome::Rejected { reason },
                });
            }
        }
    }
    stats.cycle_rows.push(row);
    service
}

/// Solve a set of jobs on a scoped worker-thread pool (vendored crossbeam
/// channels, one reusable [`EvalScratch`] per worker). Results land in a
/// `BTreeMap`, so downstream iteration is in key order no matter the
/// thread interleaving. Shared by [`PlanServer`] and the shard tier's
/// per-shard pools.
#[allow(clippy::type_complexity)]
pub fn solve_jobs_on_pool(
    deco: &Deco,
    jobs: Vec<SolveJob>,
    workers: usize,
) -> BTreeMap<u64, (SearchBudget, Result<SupervisedPlan, DecoError>)> {
    if jobs.is_empty() {
        return BTreeMap::new();
    }
    let pool = workers.min(jobs.len()).max(1);
    let (job_tx, job_rx) = crossbeam::channel::unbounded::<SolveJob>();
    let (res_tx, res_rx) =
        crossbeam::channel::unbounded::<(u64, (SearchBudget, Result<SupervisedPlan, DecoError>))>();
    std::thread::scope(|scope| {
        for _ in 0..pool {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            scope.spawn(move || {
                // One reusable scratch per worker; reuse is
                // bit-identical to fresh scratch (pinned in
                // deco-core's supervisor tests).
                let mut scratch = EvalScratch::new();
                for job in job_rx.iter() {
                    let result = plan_with_fallback_scratch(
                        deco,
                        &job.workflow,
                        job.deadline,
                        job.percentile,
                        &job.budget,
                        &mut scratch,
                    );
                    if res_tx.send((job.key, (job.budget, result))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(job_rx);
        drop(res_tx);
        for job in jobs {
            job_tx
                .send(job)
                .expect("workers outlive the job queue within the scope");
        }
        drop(job_tx);
        res_rx.iter().collect()
    })
}

/// The single-process serving engine: a [`Deco`] instance, its plan
/// cache, policy, and the fault-tolerance bookkeeping (per-key crash
/// strikes + quarantine). This is the canonical [`ServeBackend`]; the
/// shard tier's partitioned backend is pinned byte-identical to it.
pub struct PlanServer {
    pub deco: Deco,
    config: ServeConfig,
    cache: PlanCache,
    /// Content keys answered from the fallback chain instead of workers.
    quarantine: BTreeSet<u64>,
    /// Cumulative worker-crash strikes per content key (reset on a
    /// successful solve or a calibration refresh).
    key_failures: BTreeMap<u64, u32>,
}

impl PlanServer {
    pub fn new(deco: Deco, config: ServeConfig) -> Self {
        assert!(config.batch_size >= 1, "batch_size must be at least 1");
        let cache = PlanCache::new(config.cache_capacity);
        PlanServer {
            deco,
            config,
            cache,
            quarantine: BTreeSet::new(),
            key_failures: BTreeMap::new(),
        }
    }

    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Number of content keys currently quarantined.
    pub fn quarantined_keys(&self) -> usize {
        self.quarantine.len()
    }

    pub fn is_quarantined(&self, key: u64) -> bool {
        self.quarantine.contains(&key)
    }

    /// The content key [`serve_trace`](Self::serve_trace) would derive for
    /// a request — exposed so tests and benches can predict hits.
    pub fn key_for(&self, req: &crate::request::PlanRequest) -> u64 {
        let cd = canonical_deadline(req.deadline, self.config.deadline_bucket);
        plan_key(
            &req.workflow,
            &self.deco.store,
            &self.deco.options,
            cd,
            req.percentile,
            req.budget_hint.or(self.config.budget.ticks),
        )
    }

    /// Atomically swap in freshly calibrated metadata between cycles. The
    /// catalog epoch strictly increases (bumped past the old store's if
    /// the new one's is not already ahead), stale cache entries are
    /// reclaimed — they were already unreachable, every key embeds the
    /// epoch — and the quarantine/strike books are cleared: a new
    /// calibration is a new world, old offenders get a clean slate.
    /// Returns `(new_epoch, purged_entries)`.
    pub fn refresh_calibration(&mut self, store: MetadataStore) -> (u64, usize) {
        let old = self.deco.store.catalog_epoch();
        self.deco.store = store;
        while self.deco.store.catalog_epoch() <= old {
            self.deco.store.bump_catalog_epoch();
        }
        let epoch = self.deco.store.catalog_epoch();
        let purged = self.cache.purge_stale(epoch);
        self.quarantine.clear();
        self.key_failures.clear();
        (epoch, purged)
    }

    /// Replay a recorded trace with `workers` solver threads under a
    /// quiescent session (no faults, no refreshes), returning the
    /// response stream in trace order plus the run's stats. The response
    /// stream and stats are byte-identical for any `workers`.
    pub fn serve_trace(
        &mut self,
        trace: &ArrivalTrace,
        workers: usize,
    ) -> (Vec<PlanResponse>, ServeStats) {
        self.serve_trace_session(trace, workers, &ServeSession::default())
    }

    /// Replay a recorded trace under an explicit [`ServeSession`]: a
    /// seeded [`WorkerFaultPlan`] plus scheduled [`CalibrationRefresh`]es.
    /// Identical `(trace, session)` inputs produce byte-identical
    /// response streams and stats at any worker count; a default session
    /// is bit-identical to [`serve_trace`](Self::serve_trace).
    pub fn serve_trace_session(
        &mut self,
        trace: &ArrivalTrace,
        workers: usize,
        session: &ServeSession,
    ) -> (Vec<PlanResponse>, ServeStats) {
        serve_trace_backend(self, trace, workers, session)
    }
}

impl ServeBackend for PlanServer {
    fn deco(&self) -> &Deco {
        &self.deco
    }

    fn config(&self) -> &ServeConfig {
        &self.config
    }

    fn cache_get(&mut self, key: u64) -> Option<SupervisedPlan> {
        self.cache.get(key).cloned()
    }

    fn cache_insert(&mut self, key: u64, plan: &SupervisedPlan, epoch: u64) -> usize {
        self.cache.insert(key, plan.clone(), epoch)
    }

    fn cache_purge_stale(&mut self, epoch: u64) -> usize {
        self.cache.purge_stale(epoch)
    }

    fn is_key_quarantined(&self, key: u64) -> bool {
        self.quarantine.contains(&key)
    }

    fn strike_count(&self, key: u64) -> Option<u32> {
        self.key_failures.get(&key).copied()
    }

    fn add_strike(&mut self, key: u64) -> u32 {
        let s = self.key_failures.entry(key).or_insert(0);
        *s += 1;
        *s
    }

    fn quarantine_key(&mut self, key: u64) {
        self.quarantine.insert(key);
    }

    fn clear_strikes(&mut self, key: u64) {
        self.key_failures.remove(&key);
    }

    fn solve_jobs(
        &self,
        jobs: Vec<SolveJob>,
        workers: usize,
    ) -> BTreeMap<u64, (SearchBudget, Result<SupervisedPlan, DecoError>)> {
        solve_jobs_on_pool(&self.deco, jobs, workers)
    }

    fn refresh_calibration(&mut self, store: MetadataStore) -> (u64, usize) {
        PlanServer::refresh_calibration(self, store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{PlanRequest, Priority};
    use deco_cloud::{CloudSpec, MetadataStore};
    use deco_core::estimate::deadline_anchors;
    use deco_workflow::generators;

    fn small_deco() -> Deco {
        let store = MetadataStore::from_ground_truth(CloudSpec::amazon_ec2(), 20);
        let mut deco = Deco::new(store);
        deco.options.mc_iters = 20;
        deco.options.search.max_states = 60;
        deco.options.beam_width = 4;
        deco
    }

    fn request(tenant: u32, wf_seed: u64) -> PlanRequest {
        let deco = small_deco();
        let workflow = generators::montage(1, wf_seed);
        let (dmin, dmax) = deadline_anchors(&workflow, &deco.store.spec);
        PlanRequest {
            tenant,
            workflow,
            deadline: 0.5 * (dmin + dmax),
            percentile: 0.9,
            budget_hint: None,
            priority: Priority::default(),
        }
    }

    #[test]
    fn canonical_deadline_floors_to_buckets_conservatively() {
        assert_eq!(canonical_deadline(45.0, 60.0), 45.0); // below one bucket: kept
        assert_eq!(canonical_deadline(60.0, 60.0), 60.0);
        assert_eq!(canonical_deadline(61.0, 60.0), 60.0);
        assert_eq!(canonical_deadline(179.9, 60.0), 120.0);
        assert!(
            canonical_deadline(179.9, 60.0) <= 179.9,
            "never later than asked"
        );
    }

    #[test]
    fn identical_requests_hit_after_the_first_cycle() {
        let mut server = PlanServer::new(small_deco(), ServeConfig::default());
        let trace = ArrivalTrace::new(vec![
            Arrival {
                at_tick: 0.0,
                request: request(1, 7),
            },
            Arrival {
                at_tick: 1e9,
                request: request(2, 7),
            },
        ]);
        let (responses, stats) = server.serve_trace(&trace, 1);
        assert_eq!(responses.len(), 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        let lines: Vec<String> = responses.iter().map(|r| r.canonical_line()).collect();
        assert!(lines[0].contains("source=cold"), "{}", lines[0]);
        assert!(lines[1].contains("source=warm"), "{}", lines[1]);
        // Same key, bit-identical plan payload either way.
        assert_eq!(responses[0].key, responses[1].key);
    }

    #[test]
    fn same_cycle_duplicates_coalesce_onto_one_solve() {
        let mut server = PlanServer::new(small_deco(), ServeConfig::default());
        let trace = ArrivalTrace::new(vec![
            Arrival {
                at_tick: 0.0,
                request: request(1, 7),
            },
            Arrival {
                at_tick: 0.0,
                request: request(2, 7),
            },
            Arrival {
                at_tick: 0.0,
                request: request(3, 7),
            },
        ]);
        let (responses, stats) = server.serve_trace(&trace, 2);
        assert_eq!(stats.misses, 1, "one solve for three equal keys");
        assert_eq!(stats.coalesced, 2);
        assert_eq!(stats.hits, 0);
        assert!(responses[0].canonical_line().contains("source=cold"));
        assert!(responses[1].canonical_line().contains("source=coalesced"));
    }

    #[test]
    fn overflow_arrivals_are_rejected_with_overload() {
        let config = ServeConfig {
            queue_capacity: 2,
            batch_size: 2,
            ..ServeConfig::default()
        };
        let mut server = PlanServer::new(small_deco(), config);
        let arrivals = (0..4)
            .map(|i| Arrival {
                at_tick: 0.0,
                request: request(i, 7),
            })
            .collect();
        let (responses, stats) = server.serve_trace(&ArrivalTrace::new(arrivals), 1);
        assert_eq!(stats.rejected_overload, 2);
        assert_eq!(stats.shed, 0, "fresh deadlines are never shed");
        assert_eq!(stats.planned, 2);
        let rejected: Vec<_> = responses
            .iter()
            .filter(|r| matches!(&r.outcome, ServeOutcome::Rejected { reason } if reason.contains("overloaded")))
            .collect();
        assert_eq!(rejected.len(), 2);
    }

    #[test]
    fn invalid_requests_are_rejected_not_solved() {
        let mut server = PlanServer::new(small_deco(), ServeConfig::default());
        let mut bad_deadline = request(1, 7);
        bad_deadline.deadline = f64::NAN;
        let mut bad_pct = request(2, 7);
        bad_pct.percentile = 1.5;
        let empty = PlanRequest {
            tenant: 3,
            workflow: deco_workflow::Workflow::new("empty"),
            deadline: 100.0,
            percentile: 0.9,
            budget_hint: None,
            priority: Priority::default(),
        };
        let trace = ArrivalTrace::new(vec![
            Arrival {
                at_tick: 0.0,
                request: bad_deadline,
            },
            Arrival {
                at_tick: 0.0,
                request: bad_pct,
            },
            Arrival {
                at_tick: 0.0,
                request: empty,
            },
        ]);
        let (responses, stats) = server.serve_trace(&trace, 1);
        assert_eq!(stats.rejected_invalid, 3);
        assert_eq!(stats.misses, 0);
        assert!(responses
            .iter()
            .all(|r| matches!(r.outcome, ServeOutcome::Rejected { .. })));
    }

    #[test]
    fn waits_reflect_batched_service_in_model_ticks() {
        // batch_size 1 with a tick pool: the second request must wait for
        // the first's service before its cycle starts.
        let config = ServeConfig {
            batch_size: 1,
            cycle_tick_pool: Some(1e7),
            budget: SearchBudget::ticks(1e7),
            ..ServeConfig::default()
        };
        let mut server = PlanServer::new(small_deco(), config);
        let trace = ArrivalTrace::new(vec![
            Arrival {
                at_tick: 0.0,
                request: request(1, 7),
            },
            Arrival {
                at_tick: 0.0,
                request: request(2, 11),
            },
        ]);
        let (_, stats) = server.serve_trace(&trace, 1);
        assert_eq!(stats.waits.len(), 2);
        assert_eq!(stats.waits[0], 0.0);
        assert!(
            stats.waits[1] > 0.0,
            "second request waits out the first solve: {:?}",
            stats.waits
        );
        assert_eq!(stats.cycles, 2);
    }

    #[test]
    fn tenant_quota_rejections_are_typed_and_counted() {
        let config = ServeConfig {
            tenant_quota: Some(1),
            batch_size: 4,
            ..ServeConfig::default()
        };
        let mut server = PlanServer::new(small_deco(), config);
        let trace = ArrivalTrace::new(vec![
            Arrival {
                at_tick: 0.0,
                request: request(1, 7),
            },
            Arrival {
                at_tick: 0.0,
                request: request(1, 11), // tenant 1 again: over quota
            },
            Arrival {
                at_tick: 0.0,
                request: request(2, 13), // tenant 2: admitted
            },
        ]);
        let (responses, stats) = server.serve_trace(&trace, 1);
        assert_eq!(stats.rejected_quota, 1);
        assert_eq!(stats.rejected_overload, 0);
        assert_eq!(stats.planned, 2);
        assert!(responses[1]
            .canonical_line()
            .contains("quota exceeded: tenant 1"));
    }

    #[test]
    fn certain_crashes_escalate_to_the_fallback_chain() {
        // Every (vworker, cycle) crashes: the solve loses max_attempts
        // dispatches, then escalates inline — the request still gets a
        // terminal planned response, provenance says why.
        let config = ServeConfig {
            retry: RetryConfig {
                max_attempts: 2,
                backoff_base: 10.0,
                backoff_cap: 40.0,
            },
            quarantine_threshold: 99,
            ..ServeConfig::default()
        };
        let mut server = PlanServer::new(small_deco(), config);
        let trace = ArrivalTrace::new(vec![Arrival {
            at_tick: 0.0,
            request: request(1, 7),
        }]);
        let session = ServeSession {
            faults: WorkerFaultPlan::crashes(42, 1.0),
            refreshes: Vec::new(),
        };
        let (responses, stats) = server.serve_trace_session(&trace, 1, &session);
        assert_eq!(responses.len(), 1);
        assert_eq!(stats.worker_crashes, 2);
        assert_eq!(stats.retries, 1, "one re-enqueue before escalation");
        assert_eq!(stats.escalated, 1);
        let line = responses[0].canonical_line();
        assert!(line.contains("source=retried"), "{line}");
        assert!(
            !line.contains("stage=deco"),
            "escalation skips the deco stage: {line}"
        );
        assert_eq!(server.cache_len(), 0, "escalated answers are never cached");
        assert!(matches!(responses[0].outcome, ServeOutcome::Planned(_)));
    }

    #[test]
    fn repeat_offender_keys_are_quarantined_and_answered_from_fallback() {
        let config = ServeConfig {
            quarantine_threshold: 1, // first crash quarantines
            ..ServeConfig::default()
        };
        let mut server = PlanServer::new(small_deco(), config);
        let trace = ArrivalTrace::new(vec![
            Arrival {
                at_tick: 0.0,
                request: request(1, 7),
            },
            Arrival {
                at_tick: 1e9,
                request: request(2, 7), // same key, much later
            },
        ]);
        let session = ServeSession {
            faults: WorkerFaultPlan::crashes(42, 1.0),
            refreshes: Vec::new(),
        };
        let (responses, stats) = server.serve_trace_session(&trace, 1, &session);
        assert_eq!(stats.quarantined, 2, "both answered from quarantine");
        assert_eq!(server.quarantined_keys(), 1);
        assert!(server.is_quarantined(server.key_for(&request(1, 7))));
        assert_eq!(server.cache_len(), 0, "quarantined keys never cached");
        for r in &responses {
            let line = r.canonical_line();
            assert!(line.contains("source=quarantined"), "{line}");
        }
    }

    #[test]
    fn refresh_calibration_strictly_increases_the_epoch_and_clears_books() {
        let mut server = PlanServer::new(small_deco(), ServeConfig::default());
        let before = server.deco.store.catalog_epoch();
        // Swap in a same-epoch store: the server must bump past it.
        let (epoch, _) = server.refresh_calibration(MetadataStore::from_ground_truth(
            CloudSpec::amazon_ec2(),
            20,
        ));
        assert!(epoch > before, "epoch must strictly increase");
        // Quarantine books are cleared by a refresh.
        server.quarantine.insert(77);
        server.key_failures.insert(77, 3);
        let (epoch2, _) = server.refresh_calibration(MetadataStore::from_ground_truth(
            CloudSpec::amazon_ec2(),
            20,
        ));
        assert!(epoch2 > epoch);
        assert_eq!(server.quarantined_keys(), 0);
        assert!(server.key_failures.is_empty());
    }

    #[test]
    fn zero_capacity_cache_serves_cold_without_panicking() {
        // Satellite: a misconfigured cache_capacity of 0 fails soft — the
        // server still answers every request, every one a cold solve.
        let config = ServeConfig {
            cache_capacity: 0,
            ..ServeConfig::default()
        };
        let mut server = PlanServer::new(small_deco(), config);
        let trace = ArrivalTrace::new(vec![
            Arrival {
                at_tick: 0.0,
                request: request(1, 7),
            },
            Arrival {
                at_tick: 1e9,
                request: request(2, 7), // same key, later: would be warm
            },
        ]);
        let (responses, stats) = server.serve_trace(&trace, 1);
        assert_eq!(responses.len(), 2);
        assert_eq!(stats.misses, 2, "nothing is ever cached");
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.evictions, 0, "no phantom evictions");
        assert_eq!(server.cache_len(), 0);
    }

    #[test]
    fn shed_estimate_flag_defaults_off_and_keeps_digests() {
        // The same overload trace, flag off vs a second server that never
        // observed a shape cost: identical digests (flag off is the
        // pre-existing behavior; flag on with no data degrades to it).
        let base = ServeConfig {
            queue_capacity: 2,
            batch_size: 2,
            ..ServeConfig::default()
        };
        let arrivals: Vec<Arrival> = (0..4)
            .map(|i| Arrival {
                at_tick: 0.0,
                request: request(i, 7),
            })
            .collect();
        let trace = ArrivalTrace::new(arrivals);
        let mut off = PlanServer::new(small_deco(), base.clone());
        let (resp_off, stats_off) = off.serve_trace(&trace, 1);
        let mut on = PlanServer::new(
            small_deco(),
            ServeConfig {
                shed_estimate: true,
                ..base
            },
        );
        let (resp_on, stats_on) = on.serve_trace(&trace, 1);
        let lines = |rs: &[PlanResponse]| {
            rs.iter()
                .map(|r| r.canonical_line())
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            lines(&resp_off),
            lines(&resp_on),
            "first-contact overload: no shape data yet, estimate is 0"
        );
        assert_eq!(stats_off.digest(), stats_on.digest());
    }

    #[test]
    fn shed_estimate_sheds_waiters_that_cannot_fit_one_more_solve() {
        // Warm up the shape-cost model with one solved shape, then
        // overload the queue with same-shape requests whose slack is
        // smaller than the observed solve cost: with the flag on, the
        // doomed waiter is shed; with it off, the newcomer is rejected
        // and the waiter is left to miss its deadline.
        let config = ServeConfig {
            queue_capacity: 1,
            batch_size: 1,
            shed_estimate: true,
            deadline_bucket: 60.0,
            ..ServeConfig::default()
        };
        let mut server = PlanServer::new(small_deco(), config);
        let mut tight = request(2, 7);
        tight.deadline = 70.0; // canonical 60: tighter than one solve
        let mut tight2 = request(3, 7);
        tight2.deadline = 70.0;
        let trace = ArrivalTrace::new(vec![
            Arrival {
                at_tick: 0.0,
                request: request(1, 7), // solves cold, records shape cost
            },
            // Arrive while the queue is busy: the second occupies the
            // 1-slot queue, the third overflows it.
            Arrival {
                at_tick: 1.0,
                request: tight,
            },
            Arrival {
                at_tick: 1.0,
                request: tight2,
            },
        ]);
        let (responses, stats) = server.serve_trace(&trace, 1);
        // The first request solved and recorded its shape's cost (well
        // above 60 canonical ticks for this engine config); the queued
        // tight-deadline waiter is estimated unmeetable and shed.
        assert_eq!(stats.shed, 1, "{responses:?}");
        assert!(responses
            .iter()
            .any(|r| matches!(&r.outcome, ServeOutcome::Shed { .. })));
    }
}
