//! The plan server: admission → cache → worker pool → supervisor.
//!
//! [`PlanServer::serve_trace`] replays a recorded [`ArrivalTrace`] through
//! a deterministic cycle loop:
//!
//! 1. **Admit** every arrival whose tick has passed, up to the queue
//!    capacity; excess arrivals are answered `Rejected` with the
//!    [`DecoError::Overloaded`] rendering (backpressure, not blocking).
//! 2. **Drain** one batch and classify each request against the
//!    content-addressed cache: warm hits answer immediately; equal keys
//!    within the batch coalesce onto one solve; the remaining unique
//!    misses become solve jobs with fair-share budgets.
//! 3. **Solve** the miss jobs on a pool of worker threads (vendored
//!    crossbeam channels, one reusable [`EvalScratch`] per worker), every
//!    job routed through [`plan_with_fallback_scratch`] — the same
//!    degradation chain a direct caller gets.
//! 4. **Integrate** results in canonical key order (a `BTreeMap`, so the
//!    cache and stats are updated identically no matter which worker
//!    finished first), respond in sequence order, and advance the model
//!    clock by the cycle's deterministic service ticks.
//!
//! Because every step orders by content key or trace sequence — never by
//! thread completion — the response stream and stats are byte-identical
//! at 1, 2, or 8 workers. The integration tests pin this.

use crate::cache::{plan_key, PlanCache};
use crate::queue::{effective_budget, fair_share_budgets, AdmissionQueue, QueuedRequest};
use crate::request::{Arrival, ArrivalTrace, PlanResponse, PlanSource, ServeOutcome, ServedPlan};
use crate::stats::ServeStats;
use deco_core::estimate::EvalScratch;
use deco_core::supervisor::{plan_with_fallback_scratch, PlanStage, SupervisedPlan};
use deco_core::{Deco, DecoError};
use deco_solver::SearchBudget;
use deco_workflow::Workflow;
use std::collections::{BTreeMap, BTreeSet};

/// Serving policy knobs. Defaults suit the integration tests and bench;
/// production traces should size `queue_capacity` to tolerated burst.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission queue bound; arrivals beyond it are rejected.
    pub queue_capacity: usize,
    /// Requests drained per solve cycle.
    pub batch_size: usize,
    /// Plan cache bound (entries).
    pub cache_capacity: usize,
    /// Deadline canonicalization bucket, seconds. Deadlines are floored
    /// to a bucket multiple (never below one bucket), so near-identical
    /// requests share cache lines while the served deadline stays
    /// conservative (no later than requested).
    pub deadline_bucket: f64,
    /// Per-request search budget cap (before fair-share and hints).
    pub budget: SearchBudget,
    /// Optional per-cycle tick pool split fairly across the cycle's
    /// tenants. Cache-key-transparent: a pooled solve may be shallower
    /// than an unpooled one, but the key records only the request-level
    /// budget.
    pub cycle_tick_pool: Option<f64>,
    /// Modeled ticks to answer a warm or coalesced request.
    pub hit_ticks: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            batch_size: 16,
            cache_capacity: 256,
            deadline_bucket: 60.0,
            budget: SearchBudget::unlimited(),
            cycle_tick_pool: None,
            hit_ticks: 0.0,
        }
    }
}

/// Floor a deadline to its canonical bucket: multiples of
/// `bucket`, never below one bucket, and never above the request.
pub fn canonical_deadline(deadline: f64, bucket: f64) -> f64 {
    assert!(
        bucket > 0.0 && bucket.is_finite(),
        "bucket must be positive"
    );
    if deadline <= bucket {
        deadline
    } else {
        (deadline / bucket).floor() * bucket
    }
}

/// One cold solve dispatched to the worker pool.
#[derive(Debug)]
struct SolveJob {
    key: u64,
    workflow: Workflow,
    deadline: f64,
    percentile: f64,
    budget: SearchBudget,
}

/// How a batched request will be answered once solves complete.
enum Classified {
    Warm(Box<SupervisedPlan>),
    Miss { first: bool },
}

/// The serving engine: a [`Deco`] instance, its plan cache, and policy.
pub struct PlanServer {
    pub deco: Deco,
    config: ServeConfig,
    cache: PlanCache,
}

/// Tighter-of-both on every budget axis.
fn min_budget(a: &SearchBudget, b: &SearchBudget) -> SearchBudget {
    fn min_axis(x: Option<f64>, y: Option<f64>) -> Option<f64> {
        match (x, y) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        }
    }
    SearchBudget {
        ticks: min_axis(a.ticks, b.ticks),
        wall_seconds: min_axis(a.wall_seconds, b.wall_seconds),
    }
}

impl PlanServer {
    pub fn new(deco: Deco, config: ServeConfig) -> Self {
        assert!(config.batch_size >= 1, "batch_size must be at least 1");
        let cache = PlanCache::new(config.cache_capacity);
        PlanServer {
            deco,
            config,
            cache,
        }
    }

    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The content key [`serve_trace`](Self::serve_trace) would derive for
    /// a request — exposed so tests and benches can predict hits.
    pub fn key_for(&self, req: &crate::request::PlanRequest) -> u64 {
        let cd = canonical_deadline(req.deadline, self.config.deadline_bucket);
        plan_key(
            &req.workflow,
            &self.deco.store,
            &self.deco.options,
            cd,
            req.percentile,
            req.budget_hint.or(self.config.budget.ticks),
        )
    }

    /// Structural validation before any key derivation or solving.
    fn validate(req: &crate::request::PlanRequest) -> Result<(), DecoError> {
        if req.workflow.is_empty() {
            return Err(DecoError::Plan("workflow has no tasks".into()));
        }
        if !req.deadline.is_finite() || req.deadline <= 0.0 {
            return Err(DecoError::Plan(format!(
                "deadline must be finite and positive, got {}",
                req.deadline
            )));
        }
        if !(req.percentile > 0.0 && req.percentile <= 1.0) {
            return Err(DecoError::Plan(format!(
                "percentile must lie in (0, 1], got {}",
                req.percentile
            )));
        }
        if let Some(h) = req.budget_hint {
            if !h.is_finite() || h <= 0.0 {
                return Err(DecoError::Plan(format!(
                    "budget hint must be finite and positive, got {h}"
                )));
            }
        }
        Ok(())
    }

    /// Replay a recorded trace with `workers` solver threads, returning
    /// the response stream in trace order plus the run's stats. The
    /// response stream and stats are byte-identical for any `workers`.
    pub fn serve_trace(
        &mut self,
        trace: &ArrivalTrace,
        workers: usize,
    ) -> (Vec<PlanResponse>, ServeStats) {
        assert!(workers >= 1, "the pool needs at least one worker");
        let mut stats = ServeStats::default();
        let epoch = self.deco.store.catalog_epoch();
        stats.stale_purged += self.cache.purge_stale(epoch) as u64;

        let mut responses: Vec<PlanResponse> = Vec::with_capacity(trace.len());
        let mut queue = AdmissionQueue::new(self.config.queue_capacity);
        let arrivals = trace.arrivals();
        let mut next = 0usize;
        let mut now = 0.0f64;

        while next < arrivals.len() || !queue.is_empty() {
            // An idle server sleeps until the next recorded arrival.
            if queue.is_empty() && arrivals[next].at_tick > now {
                now = arrivals[next].at_tick;
            }
            // Admit everything that has arrived by now; answer overflow
            // immediately with backpressure.
            while next < arrivals.len() && arrivals[next].at_tick <= now {
                let Arrival { at_tick, request } = arrivals[next].clone();
                let seq = next as u64;
                let tenant = request.tenant;
                if let Err(e) = queue.try_admit(seq, at_tick, request) {
                    stats.rejected_overload += 1;
                    responses.push(PlanResponse {
                        seq,
                        tenant,
                        key: 0,
                        outcome: ServeOutcome::Rejected {
                            reason: e.to_string(),
                        },
                    });
                }
                next += 1;
            }

            let batch = queue.drain_batch(self.config.batch_size);
            if batch.is_empty() {
                continue;
            }
            stats.cycles += 1;
            let cycle_start = now;
            now += self.run_cycle(
                batch,
                cycle_start,
                epoch,
                workers,
                &mut stats,
                &mut responses,
            );
        }

        responses.sort_by_key(|r| r.seq);
        (responses, stats)
    }

    /// Classify, solve, and answer one batch; returns the cycle's
    /// deterministic service ticks.
    fn run_cycle(
        &mut self,
        batch: Vec<QueuedRequest>,
        cycle_start: f64,
        epoch: u64,
        workers: usize,
        stats: &mut ServeStats,
        responses: &mut Vec<PlanResponse>,
    ) -> f64 {
        // Classification pass, in sequence order (which also fixes the
        // cache's LRU refresh order).
        let mut classified: Vec<(QueuedRequest, u64, f64, Result<Classified, DecoError>)> =
            Vec::with_capacity(batch.len());
        let mut jobs: Vec<SolveJob> = Vec::new();
        let mut job_tenants = Vec::new();
        let mut seen_keys: BTreeSet<u64> = BTreeSet::new();
        for qr in batch {
            stats.requests += 1;
            if let Err(e) = Self::validate(&qr.request) {
                stats.rejected_invalid += 1;
                classified.push((qr, 0, 0.0, Err(e)));
                continue;
            }
            let cd = canonical_deadline(qr.request.deadline, self.config.deadline_bucket);
            let key = plan_key(
                &qr.request.workflow,
                &self.deco.store,
                &self.deco.options,
                cd,
                qr.request.percentile,
                qr.request.budget_hint.or(self.config.budget.ticks),
            );
            let class = if let Some(plan) = self.cache.get(key) {
                Classified::Warm(Box::new(plan.clone()))
            } else if !seen_keys.insert(key) {
                Classified::Miss { first: false }
            } else {
                jobs.push(SolveJob {
                    key,
                    workflow: qr.request.workflow.clone(),
                    deadline: cd,
                    percentile: qr.request.percentile,
                    budget: SearchBudget::unlimited(), // budgeted below
                });
                job_tenants.push(qr.request.tenant);
                Classified::Miss { first: true }
            };
            classified.push((qr, key, cd, Ok(class)));
        }

        // Fair-share the cycle pool across the miss jobs' tenants, then
        // clamp by the per-request cap and each request's hint.
        let shares = fair_share_budgets(self.config.cycle_tick_pool, &job_tenants);
        let hints: BTreeMap<u64, Option<f64>> = classified
            .iter()
            .filter(|(_, _, _, c)| matches!(c, Ok(Classified::Miss { first: true })))
            .map(|(qr, key, _, _)| (*key, qr.request.budget_hint))
            .collect();
        for (job, share) in jobs.iter_mut().zip(shares) {
            let capped = min_budget(&self.config.budget, &share);
            job.budget = effective_budget(&capped, hints.get(&job.key).copied().flatten());
        }

        let solved = self.solve_jobs(jobs, workers);

        // Integrate in canonical key order: cache updates (and therefore
        // eviction order and LRU clocks) are independent of which worker
        // finished first.
        let mut service = 0.0f64;
        for (key, (budget, result)) in &solved {
            match result {
                Ok(plan) => {
                    service += plan.provenance.budget_spent;
                    stats.evictions += self.cache.insert(*key, plan.clone(), epoch) as u64;
                }
                Err(_) => {
                    stats.solve_failures += 1;
                    service += budget.ticks.unwrap_or(0.0);
                }
            }
        }

        // Answer in sequence order.
        for (qr, key, cd, class) in classified {
            match class {
                Err(e) => responses.push(PlanResponse {
                    seq: qr.seq,
                    tenant: qr.request.tenant,
                    key,
                    outcome: ServeOutcome::Rejected {
                        reason: e.to_string(),
                    },
                }),
                Ok(class) => {
                    let (source, outcome) = match class {
                        Classified::Warm(plan) => {
                            service += self.config.hit_ticks;
                            (Some(PlanSource::Warm), Ok(plan))
                        }
                        Classified::Miss { first } => {
                            let source = if first {
                                PlanSource::Cold
                            } else {
                                service += self.config.hit_ticks;
                                PlanSource::Coalesced
                            };
                            match &solved
                                .get(&key)
                                .expect("every miss key has a solve result")
                                .1
                            {
                                Ok(plan) => (Some(source), Ok(Box::new(plan.clone()))),
                                Err(e) => (None, Err(e.to_string())),
                            }
                        }
                    };
                    match (source, outcome) {
                        (Some(source), Ok(plan)) => {
                            match source {
                                PlanSource::Warm => stats.hits += 1,
                                PlanSource::Cold => stats.misses += 1,
                                PlanSource::Coalesced => stats.coalesced += 1,
                            }
                            match plan.provenance.stage {
                                PlanStage::Deco => stats.stage_deco += 1,
                                PlanStage::Heuristic => stats.stage_heuristic += 1,
                                PlanStage::Autoscaling => stats.stage_autoscaling += 1,
                            }
                            stats.planned += 1;
                            let wait = cycle_start - qr.arrived_at;
                            stats.waits.push(wait);
                            responses.push(PlanResponse {
                                seq: qr.seq,
                                tenant: qr.request.tenant,
                                key,
                                outcome: ServeOutcome::Planned(Box::new(ServedPlan {
                                    plan: *plan,
                                    source,
                                    wait_ticks: wait,
                                    canonical_deadline: cd,
                                })),
                            });
                        }
                        (_, Err(reason)) => responses.push(PlanResponse {
                            seq: qr.seq,
                            tenant: qr.request.tenant,
                            key,
                            outcome: ServeOutcome::Rejected { reason },
                        }),
                        (None, Ok(_)) => unreachable!("failed solves carry Err"),
                    }
                }
            }
        }
        service
    }

    /// Solve the cycle's unique misses on a scoped worker pool. Results
    /// land in a `BTreeMap`, so downstream iteration is in key order no
    /// matter the thread interleaving.
    #[allow(clippy::type_complexity)]
    fn solve_jobs(
        &self,
        jobs: Vec<SolveJob>,
        workers: usize,
    ) -> BTreeMap<u64, (SearchBudget, Result<SupervisedPlan, DecoError>)> {
        if jobs.is_empty() {
            return BTreeMap::new();
        }
        let pool = workers.min(jobs.len());
        let deco = &self.deco;
        let (job_tx, job_rx) = crossbeam::channel::unbounded::<SolveJob>();
        let (res_tx, res_rx) = crossbeam::channel::unbounded::<(
            u64,
            (SearchBudget, Result<SupervisedPlan, DecoError>),
        )>();
        std::thread::scope(|scope| {
            for _ in 0..pool {
                let job_rx = job_rx.clone();
                let res_tx = res_tx.clone();
                scope.spawn(move || {
                    // One reusable scratch per worker; reuse is
                    // bit-identical to fresh scratch (pinned in
                    // deco-core's supervisor tests).
                    let mut scratch = EvalScratch::new();
                    for job in job_rx.iter() {
                        let result = plan_with_fallback_scratch(
                            deco,
                            &job.workflow,
                            job.deadline,
                            job.percentile,
                            &job.budget,
                            &mut scratch,
                        );
                        if res_tx.send((job.key, (job.budget, result))).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(job_rx);
            drop(res_tx);
            for job in jobs {
                job_tx
                    .send(job)
                    .expect("workers outlive the job queue within the scope");
            }
            drop(job_tx);
            res_rx.iter().collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::PlanRequest;
    use deco_cloud::{CloudSpec, MetadataStore};
    use deco_core::estimate::deadline_anchors;
    use deco_workflow::generators;

    fn small_deco() -> Deco {
        let store = MetadataStore::from_ground_truth(CloudSpec::amazon_ec2(), 20);
        let mut deco = Deco::new(store);
        deco.options.mc_iters = 20;
        deco.options.search.max_states = 60;
        deco.options.beam_width = 4;
        deco
    }

    fn request(tenant: u32, wf_seed: u64) -> PlanRequest {
        let deco = small_deco();
        let workflow = generators::montage(1, wf_seed);
        let (dmin, dmax) = deadline_anchors(&workflow, &deco.store.spec);
        PlanRequest {
            tenant,
            workflow,
            deadline: 0.5 * (dmin + dmax),
            percentile: 0.9,
            budget_hint: None,
        }
    }

    #[test]
    fn canonical_deadline_floors_to_buckets_conservatively() {
        assert_eq!(canonical_deadline(45.0, 60.0), 45.0); // below one bucket: kept
        assert_eq!(canonical_deadline(60.0, 60.0), 60.0);
        assert_eq!(canonical_deadline(61.0, 60.0), 60.0);
        assert_eq!(canonical_deadline(179.9, 60.0), 120.0);
        assert!(
            canonical_deadline(179.9, 60.0) <= 179.9,
            "never later than asked"
        );
    }

    #[test]
    fn identical_requests_hit_after_the_first_cycle() {
        let mut server = PlanServer::new(small_deco(), ServeConfig::default());
        let trace = ArrivalTrace::new(vec![
            Arrival {
                at_tick: 0.0,
                request: request(1, 7),
            },
            Arrival {
                at_tick: 1e9,
                request: request(2, 7),
            },
        ]);
        let (responses, stats) = server.serve_trace(&trace, 1);
        assert_eq!(responses.len(), 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        let lines: Vec<String> = responses.iter().map(|r| r.canonical_line()).collect();
        assert!(lines[0].contains("source=cold"), "{}", lines[0]);
        assert!(lines[1].contains("source=warm"), "{}", lines[1]);
        // Same key, bit-identical plan payload either way.
        assert_eq!(responses[0].key, responses[1].key);
    }

    #[test]
    fn same_cycle_duplicates_coalesce_onto_one_solve() {
        let mut server = PlanServer::new(small_deco(), ServeConfig::default());
        let trace = ArrivalTrace::new(vec![
            Arrival {
                at_tick: 0.0,
                request: request(1, 7),
            },
            Arrival {
                at_tick: 0.0,
                request: request(2, 7),
            },
            Arrival {
                at_tick: 0.0,
                request: request(3, 7),
            },
        ]);
        let (responses, stats) = server.serve_trace(&trace, 2);
        assert_eq!(stats.misses, 1, "one solve for three equal keys");
        assert_eq!(stats.coalesced, 2);
        assert_eq!(stats.hits, 0);
        assert!(responses[0].canonical_line().contains("source=cold"));
        assert!(responses[1].canonical_line().contains("source=coalesced"));
    }

    #[test]
    fn overflow_arrivals_are_rejected_with_overload() {
        let config = ServeConfig {
            queue_capacity: 2,
            batch_size: 2,
            ..ServeConfig::default()
        };
        let mut server = PlanServer::new(small_deco(), config);
        let arrivals = (0..4)
            .map(|i| Arrival {
                at_tick: 0.0,
                request: request(i, 7),
            })
            .collect();
        let (responses, stats) = server.serve_trace(&ArrivalTrace::new(arrivals), 1);
        assert_eq!(stats.rejected_overload, 2);
        assert_eq!(stats.planned, 2);
        let rejected: Vec<_> = responses
            .iter()
            .filter(|r| matches!(&r.outcome, ServeOutcome::Rejected { reason } if reason.contains("overloaded")))
            .collect();
        assert_eq!(rejected.len(), 2);
    }

    #[test]
    fn invalid_requests_are_rejected_not_solved() {
        let mut server = PlanServer::new(small_deco(), ServeConfig::default());
        let mut bad_deadline = request(1, 7);
        bad_deadline.deadline = f64::NAN;
        let mut bad_pct = request(2, 7);
        bad_pct.percentile = 1.5;
        let empty = PlanRequest {
            tenant: 3,
            workflow: deco_workflow::Workflow::new("empty"),
            deadline: 100.0,
            percentile: 0.9,
            budget_hint: None,
        };
        let trace = ArrivalTrace::new(vec![
            Arrival {
                at_tick: 0.0,
                request: bad_deadline,
            },
            Arrival {
                at_tick: 0.0,
                request: bad_pct,
            },
            Arrival {
                at_tick: 0.0,
                request: empty,
            },
        ]);
        let (responses, stats) = server.serve_trace(&trace, 1);
        assert_eq!(stats.rejected_invalid, 3);
        assert_eq!(stats.misses, 0);
        assert!(responses
            .iter()
            .all(|r| matches!(r.outcome, ServeOutcome::Rejected { .. })));
    }

    #[test]
    fn waits_reflect_batched_service_in_model_ticks() {
        // batch_size 1 with a tick pool: the second request must wait for
        // the first's service before its cycle starts.
        let config = ServeConfig {
            batch_size: 1,
            cycle_tick_pool: Some(1e7),
            budget: SearchBudget::ticks(1e7),
            ..ServeConfig::default()
        };
        let mut server = PlanServer::new(small_deco(), config);
        let trace = ArrivalTrace::new(vec![
            Arrival {
                at_tick: 0.0,
                request: request(1, 7),
            },
            Arrival {
                at_tick: 0.0,
                request: request(2, 11),
            },
        ]);
        let (_, stats) = server.serve_trace(&trace, 1);
        assert_eq!(stats.waits.len(), 2);
        assert_eq!(stats.waits[0], 0.0);
        assert!(
            stats.waits[1] > 0.0,
            "second request waits out the first solve: {:?}",
            stats.waits
        );
        assert_eq!(stats.cycles, 2);
    }
}
