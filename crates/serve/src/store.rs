//! The durable plan store: an append-only WAL plus snapshot compaction.
//!
//! A shard's cache and fault books are reconstructible from two files in
//! its store directory:
//!
//! * `snapshot.bin` — the materialized state as of the last compaction,
//!   written atomically (temp file + rename) and never appended to;
//! * `wal.log` — every mutation since that snapshot, one frame per
//!   cache insert / LRU touch / eviction / strike / quarantine / epoch
//!   bump, in the order the serving engine issued them.
//!
//! Both files share one frame format:
//!
//! ```text
//! [u32 LE body_len][body bytes][u64 LE StableHasher checksum of body]
//! ```
//!
//! The body's first byte is a frame tag; plans inside `Put` frames use
//! the canonical [`deco_core::encode_supervised_plan`] codec, so a
//! recovered plan is bit-identical to the one that was cached (f64s
//! round-trip as raw bits). Recovery replays the snapshot, then the WAL,
//! and **stops at the first invalid frame**: a torn tail — a frame cut
//! mid-write by a crash at any byte offset — silently ends the log
//! instead of poisoning recovery. The store never deletes on supersede:
//! a later `Put` for the same key simply shadows the earlier one at
//! replay, and compaction reclaims the dead frames.
//!
//! Epoch discipline matches the serving engine's `purge_stale`: an
//! `Epoch` frame (appended at every calibration refresh) drops every
//! recovered entry solved under a different epoch and clears the
//! strike/quarantine books — a new calibration is a new world, on disk
//! as in memory.

use deco_core::supervisor::SupervisedPlan;
use deco_core::{decode_supervised_plan, encode_supervised_plan, DecoError};
use deco_prob::hash::StableHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::hash::Hasher;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Domain-separation seed for frame checksums.
const FRAME_DOMAIN: u64 = 0x5E72_ECAC_4E00_0002;
/// Reject frames claiming bodies larger than this (corrupt length word).
const MAX_FRAME_BODY: usize = 64 * 1024 * 1024;

const TAG_PUT: u8 = 1;
const TAG_TOUCH: u8 = 2;
const TAG_DEL: u8 = 3;
const TAG_STRIKE: u8 = 4;
const TAG_CLEAR_KEY: u8 = 5;
const TAG_QUARANTINE: u8 = 6;
const TAG_EPOCH: u8 = 7;

/// One durable mutation. The vocabulary mirrors exactly the state a
/// [`crate::ServeBackend`] keeps per key: the cached plan (with its LRU
/// stamp and solve epoch), the crash-strike count, and quarantine.
///
/// `Put` carries a whole plan and dwarfs the bookkeeping variants; the
/// asymmetry is inherent to a WAL vocabulary and frames are transient
/// (encoded immediately), so no boxing.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum StoreFrame {
    /// Cache a solved plan. A later `Put` for the same key supersedes —
    /// the store never rewrites old frames.
    Put {
        key: u64,
        epoch: u64,
        last_use: u64,
        plan: SupervisedPlan,
    },
    /// Refresh a key's LRU stamp (a warm hit).
    Touch { key: u64, last_use: u64 },
    /// Evict a key (LRU eviction or stale purge).
    Del { key: u64 },
    /// Record a key's cumulative worker-crash strikes.
    Strike { key: u64, count: u32 },
    /// Clear a key's strikes (a successful solve).
    ClearKey { key: u64 },
    /// Quarantine a key (answered from fallback until a refresh).
    Quarantine { key: u64 },
    /// A calibration refresh: recovery drops entries from other epochs
    /// and clears the strike/quarantine books.
    Epoch { epoch: u64 },
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn checksum(body: &[u8]) -> u64 {
    let mut h = StableHasher::with_seed(FRAME_DOMAIN);
    h.write(body);
    h.finish()
}

impl StoreFrame {
    /// Serialize the frame body (tag + fields, no length/checksum).
    fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            StoreFrame::Put {
                key,
                epoch,
                last_use,
                plan,
            } => {
                out.push(TAG_PUT);
                push_u64(&mut out, *key);
                push_u64(&mut out, *epoch);
                push_u64(&mut out, *last_use);
                let payload = encode_supervised_plan(plan);
                push_u32(&mut out, payload.len() as u32);
                out.extend_from_slice(&payload);
            }
            StoreFrame::Touch { key, last_use } => {
                out.push(TAG_TOUCH);
                push_u64(&mut out, *key);
                push_u64(&mut out, *last_use);
            }
            StoreFrame::Del { key } => {
                out.push(TAG_DEL);
                push_u64(&mut out, *key);
            }
            StoreFrame::Strike { key, count } => {
                out.push(TAG_STRIKE);
                push_u64(&mut out, *key);
                push_u32(&mut out, *count);
            }
            StoreFrame::ClearKey { key } => {
                out.push(TAG_CLEAR_KEY);
                push_u64(&mut out, *key);
            }
            StoreFrame::Quarantine { key } => {
                out.push(TAG_QUARANTINE);
                push_u64(&mut out, *key);
            }
            StoreFrame::Epoch { epoch } => {
                out.push(TAG_EPOCH);
                push_u64(&mut out, *epoch);
            }
        }
        out
    }

    /// Serialize the full on-disk frame: length, body, checksum.
    pub fn encode(&self) -> Vec<u8> {
        let body = self.encode_body();
        let mut out = Vec::with_capacity(body.len() + 12);
        push_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        push_u64(&mut out, checksum(&body));
        out
    }

    /// Parse one frame body. `None` on any structural defect (unknown
    /// tag, short fields, bad plan payload) — recovery treats that frame
    /// and everything after it as torn.
    fn decode_body(body: &[u8]) -> Option<StoreFrame> {
        let mut r = FrameReader { buf: body, pos: 0 };
        let tag = r.u8()?;
        let frame = match tag {
            TAG_PUT => {
                let key = r.u64()?;
                let epoch = r.u64()?;
                let last_use = r.u64()?;
                let len = r.u32()? as usize;
                let payload = r.bytes(len)?;
                let plan = decode_supervised_plan(payload).ok()?;
                StoreFrame::Put {
                    key,
                    epoch,
                    last_use,
                    plan,
                }
            }
            TAG_TOUCH => StoreFrame::Touch {
                key: r.u64()?,
                last_use: r.u64()?,
            },
            TAG_DEL => StoreFrame::Del { key: r.u64()? },
            TAG_STRIKE => StoreFrame::Strike {
                key: r.u64()?,
                count: r.u32()?,
            },
            TAG_CLEAR_KEY => StoreFrame::ClearKey { key: r.u64()? },
            TAG_QUARANTINE => StoreFrame::Quarantine { key: r.u64()? },
            TAG_EPOCH => StoreFrame::Epoch { epoch: r.u64()? },
            _ => return None,
        };
        if r.pos != body.len() {
            return None; // trailing bytes: not a frame we wrote
        }
        Some(frame)
    }
}

struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }
    fn u32(&mut self) -> Option<u32> {
        self.bytes(4).map(|b| {
            let mut a = [0u8; 4];
            a.copy_from_slice(b);
            u32::from_le_bytes(a)
        })
    }
    fn u64(&mut self) -> Option<u64> {
        self.bytes(8).map(|b| {
            let mut a = [0u8; 8];
            a.copy_from_slice(b);
            u64::from_le_bytes(a)
        })
    }
}

/// A cache entry reconstructed from the log.
#[derive(Debug, Clone)]
pub struct RecoveredEntry {
    pub plan: SupervisedPlan,
    /// Catalog epoch the plan was solved under.
    pub epoch: u64,
    /// LRU stamp at the time of the last persisted touch.
    pub last_use: u64,
}

/// Everything a shard needs to resume serving warm: the cache entries,
/// the fault books, and the epoch the log ended in. Entries are keyed
/// canonically (`BTreeMap`), so a warm-started shard walks its state in
/// the same order a never-restarted one would.
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// The last epoch recorded in the log (0 if none was).
    pub epoch: u64,
    pub entries: BTreeMap<u64, RecoveredEntry>,
    pub strikes: BTreeMap<u64, u32>,
    pub quarantine: BTreeSet<u64>,
}

impl RecoveredState {
    fn apply(&mut self, frame: StoreFrame) {
        match frame {
            StoreFrame::Put {
                key,
                epoch,
                last_use,
                plan,
            } => {
                // Supersede, never rewrite: the latest Put wins.
                self.entries.insert(
                    key,
                    RecoveredEntry {
                        plan,
                        epoch,
                        last_use,
                    },
                );
            }
            StoreFrame::Touch { key, last_use } => {
                if let Some(e) = self.entries.get_mut(&key) {
                    e.last_use = last_use;
                }
            }
            StoreFrame::Del { key } => {
                self.entries.remove(&key);
            }
            StoreFrame::Strike { key, count } => {
                self.strikes.insert(key, count);
            }
            StoreFrame::ClearKey { key } => {
                self.strikes.remove(&key);
            }
            StoreFrame::Quarantine { key } => {
                self.quarantine.insert(key);
            }
            StoreFrame::Epoch { epoch } => {
                // A refresh is a new world: stale entries and the books
                // do not survive it (mirrors `refresh_calibration`).
                self.epoch = epoch;
                self.entries.retain(|_, e| e.epoch == epoch);
                self.strikes.clear();
                self.quarantine.clear();
            }
        }
    }

    /// The frames that reproduce this state verbatim — what compaction
    /// writes into a snapshot. Key order throughout, epoch first.
    pub fn to_frames(&self) -> Vec<StoreFrame> {
        let mut frames = Vec::with_capacity(1 + self.entries.len() + self.strikes.len());
        frames.push(StoreFrame::Epoch { epoch: self.epoch });
        for (&key, e) in &self.entries {
            frames.push(StoreFrame::Put {
                key,
                epoch: e.epoch,
                last_use: e.last_use,
                plan: e.plan.clone(),
            });
        }
        for (&key, &count) in &self.strikes {
            frames.push(StoreFrame::Strike { key, count });
        }
        for &key in &self.quarantine {
            frames.push(StoreFrame::Quarantine { key });
        }
        frames
    }
}

/// Counters describing the store's life so far; surfaced through the
/// shard tier's stats so recovery behavior is observable in tests and
/// benches.
#[derive(Debug, Default, Clone)]
pub struct StoreStats {
    /// WAL frames appended since open.
    pub appends: u64,
    /// Valid frames replayed by the last `recover` (snapshot + WAL).
    pub frames_recovered: u64,
    /// Bytes discarded from a torn WAL/snapshot tail at last `recover`.
    pub torn_bytes: u64,
    /// Snapshot compactions performed.
    pub snapshots: u64,
    /// Entries alive after the last `recover`'s epoch filtering.
    pub entries_recovered: u64,
    /// Entries dropped by the final epoch filter at last `recover`.
    pub stale_dropped: u64,
}

fn store_err(what: &str, path: &Path, e: impl std::fmt::Display) -> DecoError {
    DecoError::Store(format!("{what} {}: {e}", path.display()))
}

/// The WAL-backed durable plan store for one shard.
///
/// All I/O failures surface as [`DecoError::Store`]; the shard tier
/// responds by dropping to memory-only operation (degraded, logged in
/// its stats) rather than panicking — persistence is an availability
/// feature and must never become an unavailability one.
pub struct PlanStore {
    dir: PathBuf,
    wal: File,
    stats: StoreStats,
}

impl PlanStore {
    /// Open (creating if needed) the store rooted at `dir`.
    pub fn open(dir: &Path) -> Result<PlanStore, DecoError> {
        std::fs::create_dir_all(dir).map_err(|e| store_err("create store dir", dir, e))?;
        let wal_path = dir.join("wal.log");
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)
            .map_err(|e| store_err("open WAL", &wal_path, e))?;
        Ok(PlanStore {
            dir: dir.to_path_buf(),
            wal,
            stats: StoreStats::default(),
        })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join("wal.log")
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.bin")
    }

    /// Append one frame to the WAL.
    pub fn append(&mut self, frame: &StoreFrame) -> Result<(), DecoError> {
        let bytes = frame.encode();
        let path = self.wal_path();
        self.wal
            .write_all(&bytes)
            .map_err(|e| store_err("append to WAL", &path, e))?;
        self.wal
            .flush()
            .map_err(|e| store_err("flush WAL", &path, e))?;
        self.stats.appends += 1;
        Ok(())
    }

    /// Current WAL size in bytes (compaction trigger input).
    pub fn wal_len(&self) -> u64 {
        self.wal.metadata().map(|m| m.len()).unwrap_or(0)
    }

    /// Scan one log file, applying every valid frame in order and
    /// stopping at the first torn or corrupt one. Returns the frames
    /// applied; missing files count as empty logs.
    fn replay_file(
        path: &Path,
        state: &mut RecoveredState,
        stats: &mut StoreStats,
    ) -> Result<(), DecoError> {
        let mut file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(store_err("open log", path, e)),
        };
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)
            .map_err(|e| store_err("read log", path, e))?;
        let mut pos = 0usize;
        while pos < buf.len() {
            let frame = Self::frame_at(&buf, pos);
            match frame {
                Some((frame, next)) => {
                    state.apply(frame);
                    stats.frames_recovered += 1;
                    pos = next;
                }
                None => {
                    // Torn tail: a crash mid-append. Everything from
                    // here on is discarded, not an error.
                    stats.torn_bytes += (buf.len() - pos) as u64;
                    break;
                }
            }
        }
        Ok(())
    }

    /// Decode the frame starting at `pos`; `None` if it is torn,
    /// corrupt, or claims an absurd length.
    fn frame_at(buf: &[u8], pos: usize) -> Option<(StoreFrame, usize)> {
        let remaining = buf.len().checked_sub(pos)?;
        if remaining < 4 {
            return None;
        }
        let mut len_bytes = [0u8; 4];
        len_bytes.copy_from_slice(&buf[pos..pos + 4]);
        let body_len = u32::from_le_bytes(len_bytes) as usize;
        if body_len > MAX_FRAME_BODY {
            return None;
        }
        let body_start = pos + 4;
        let body_end = body_start.checked_add(body_len)?;
        let sum_end = body_end.checked_add(8)?;
        if sum_end > buf.len() {
            return None;
        }
        let body = &buf[body_start..body_end];
        let mut sum_bytes = [0u8; 8];
        sum_bytes.copy_from_slice(&buf[body_end..sum_end]);
        if u64::from_le_bytes(sum_bytes) != checksum(body) {
            return None;
        }
        StoreFrame::decode_body(body).map(|f| (f, sum_end))
    }

    /// Reconstruct the shard state: replay `snapshot.bin`, then
    /// `wal.log`, tolerating a torn tail in either; finally drop any
    /// entry whose epoch disagrees with the log's last recorded epoch
    /// (when one was recorded).
    pub fn recover(&mut self) -> Result<RecoveredState, DecoError> {
        self.stats.frames_recovered = 0;
        self.stats.torn_bytes = 0;
        let mut state = RecoveredState::default();
        let snapshot = self.snapshot_path();
        let wal = self.wal_path();
        let mut stats = std::mem::take(&mut self.stats);
        let result = Self::replay_file(&snapshot, &mut state, &mut stats)
            .and_then(|_| Self::replay_file(&wal, &mut state, &mut stats));
        self.stats = stats;
        result?;
        if state.epoch != 0 {
            let before = state.entries.len();
            state.entries.retain(|_, e| e.epoch == state.epoch);
            self.stats.stale_dropped += (before - state.entries.len()) as u64;
        }
        self.stats.entries_recovered = state.entries.len() as u64;
        Ok(state)
    }

    /// Compact: atomically write `frames` as the new snapshot (temp file
    /// + rename), then truncate the WAL — its content is now redundant.
    pub fn compact(&mut self, frames: &[StoreFrame]) -> Result<(), DecoError> {
        let tmp = self.dir.join("snapshot.tmp");
        {
            let mut f = File::create(&tmp).map_err(|e| store_err("create snapshot", &tmp, e))?;
            for frame in frames {
                f.write_all(&frame.encode())
                    .map_err(|e| store_err("write snapshot", &tmp, e))?;
            }
            f.sync_all()
                .map_err(|e| store_err("sync snapshot", &tmp, e))?;
        }
        let snapshot = self.snapshot_path();
        std::fs::rename(&tmp, &snapshot)
            .map_err(|e| store_err("publish snapshot", &snapshot, e))?;
        let wal_path = self.wal_path();
        self.wal
            .set_len(0)
            .map_err(|e| store_err("truncate WAL", &wal_path, e))?;
        self.wal
            .seek(SeekFrom::Start(0))
            .map_err(|e| store_err("rewind WAL", &wal_path, e))?;
        self.stats.snapshots += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_cloud::{CloudSpec, MetadataStore};
    use deco_core::supervisor::plan_with_fallback;
    use deco_core::Deco;
    use deco_solver::SearchBudget;
    use deco_workflow::generators;

    fn temp_store_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("deco_store_{}_{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn plan(marker: u64) -> SupervisedPlan {
        let st = MetadataStore::from_ground_truth(CloudSpec::amazon_ec2(), 20);
        let mut d = Deco::new(st);
        d.options.mc_iters = 10;
        d.options.search.max_states = 40;
        let wf = generators::pipeline(2, 50.0, 0);
        let (dmin, dmax) = deco_core::estimate::deadline_anchors(&wf, &d.store.spec);
        let mut p = plan_with_fallback(
            &d,
            &wf,
            0.5 * (dmin + dmax),
            0.9,
            &SearchBudget::unlimited(),
        )
        .expect("feasible");
        p.provenance.budget_spent += marker as f64;
        p
    }

    #[test]
    fn empty_and_missing_logs_recover_to_an_empty_state() {
        let dir = temp_store_dir("empty");
        let mut store = PlanStore::open(&dir).unwrap();
        // Nothing written at all: both files missing (WAL exists but is
        // zero bytes).
        let state = store.recover().unwrap();
        assert_eq!(state.entries.len(), 0);
        assert_eq!(state.epoch, 0);
        assert!(state.strikes.is_empty() && state.quarantine.is_empty());
        assert_eq!(store.stats().frames_recovered, 0);
        assert_eq!(store.stats().torn_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn round_trips_every_frame_kind_through_the_wal() {
        let dir = temp_store_dir("round_trip");
        let p = plan(7);
        {
            let mut store = PlanStore::open(&dir).unwrap();
            store
                .append(&StoreFrame::Epoch { epoch: 3 })
                .and_then(|_| {
                    store.append(&StoreFrame::Put {
                        key: 11,
                        epoch: 3,
                        last_use: 1,
                        plan: p.clone(),
                    })
                })
                .and_then(|_| {
                    store.append(&StoreFrame::Put {
                        key: 12,
                        epoch: 3,
                        last_use: 2,
                        plan: p.clone(),
                    })
                })
                .and_then(|_| {
                    store.append(&StoreFrame::Touch {
                        key: 11,
                        last_use: 5,
                    })
                })
                .and_then(|_| store.append(&StoreFrame::Del { key: 12 }))
                .and_then(|_| store.append(&StoreFrame::Strike { key: 13, count: 2 }))
                .and_then(|_| store.append(&StoreFrame::Strike { key: 14, count: 1 }))
                .and_then(|_| store.append(&StoreFrame::ClearKey { key: 14 }))
                .and_then(|_| store.append(&StoreFrame::Quarantine { key: 13 }))
                .unwrap();
        }
        let mut store = PlanStore::open(&dir).unwrap();
        let state = store.recover().unwrap();
        assert_eq!(state.epoch, 3);
        assert_eq!(state.entries.len(), 1, "12 was deleted");
        let e = &state.entries[&11];
        assert_eq!(e.last_use, 5, "touch superseded the put's stamp");
        assert_eq!(e.epoch, 3);
        // Bit-identical plan payload through the codec.
        assert_eq!(
            e.plan.provenance.budget_spent.to_bits(),
            p.provenance.budget_spent.to_bits()
        );
        assert_eq!(
            e.plan.plan.evaluation.objective.to_bits(),
            p.plan.evaluation.objective.to_bits()
        );
        assert_eq!(state.strikes.get(&13), Some(&2));
        assert!(!state.strikes.contains_key(&14), "cleared");
        assert!(state.quarantine.contains(&13));
        assert_eq!(store.stats().torn_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_key_is_superseded_by_the_latest_put() {
        let dir = temp_store_dir("supersede");
        let p1 = plan(1);
        let p2 = plan(2);
        {
            let mut store = PlanStore::open(&dir).unwrap();
            store
                .append(&StoreFrame::Put {
                    key: 42,
                    epoch: 1,
                    last_use: 1,
                    plan: p1,
                })
                .and_then(|_| {
                    store.append(&StoreFrame::Put {
                        key: 42,
                        epoch: 1,
                        last_use: 9,
                        plan: p2.clone(),
                    })
                })
                .unwrap();
        }
        let mut store = PlanStore::open(&dir).unwrap();
        let state = store.recover().unwrap();
        assert_eq!(state.entries.len(), 1);
        let e = &state.entries[&42];
        assert_eq!(e.last_use, 9);
        assert_eq!(
            e.plan.provenance.budget_spent.to_bits(),
            p2.provenance.budget_spent.to_bits(),
            "the later Put wins"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn epoch_stale_entries_are_dropped_at_recovery() {
        let dir = temp_store_dir("epoch_stale");
        {
            let mut store = PlanStore::open(&dir).unwrap();
            store
                .append(&StoreFrame::Put {
                    key: 1,
                    epoch: 1,
                    last_use: 1,
                    plan: plan(1),
                })
                .and_then(|_| store.append(&StoreFrame::Strike { key: 9, count: 3 }))
                .and_then(|_| store.append(&StoreFrame::Quarantine { key: 9 }))
                .and_then(|_| store.append(&StoreFrame::Epoch { epoch: 2 }))
                .and_then(|_| {
                    store.append(&StoreFrame::Put {
                        key: 2,
                        epoch: 2,
                        last_use: 2,
                        plan: plan(2),
                    })
                })
                .unwrap();
        }
        let mut store = PlanStore::open(&dir).unwrap();
        let state = store.recover().unwrap();
        assert_eq!(state.epoch, 2);
        assert!(
            !state.entries.contains_key(&1),
            "epoch-1 entry dropped by the epoch-2 refresh"
        );
        assert!(state.entries.contains_key(&2));
        assert!(
            state.strikes.is_empty() && state.quarantine.is_empty(),
            "refresh clears the books on disk as in memory"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_frame_is_tolerated_at_every_byte_offset() {
        let dir = temp_store_dir("torn");
        let p = plan(5);
        {
            let mut store = PlanStore::open(&dir).unwrap();
            store
                .append(&StoreFrame::Put {
                    key: 1,
                    epoch: 1,
                    last_use: 1,
                    plan: p.clone(),
                })
                .and_then(|_| store.append(&StoreFrame::Strike { key: 2, count: 1 }))
                .unwrap();
        }
        let wal = dir.join("wal.log");
        let full = std::fs::read(&wal).unwrap();
        let first_len = {
            // Recompute the first frame's on-disk size.
            let frame = StoreFrame::Put {
                key: 1,
                epoch: 1,
                last_use: 1,
                plan: p,
            };
            frame.encode().len()
        };
        assert!(first_len < full.len());
        // Truncate the log inside the SECOND frame at every byte offset:
        // the first frame must always survive, the torn tail never errors.
        for cut in first_len..full.len() {
            std::fs::write(&wal, &full[..cut]).unwrap();
            let mut store = PlanStore::open(&dir).unwrap();
            let state = store.recover().unwrap();
            assert!(
                state.entries.contains_key(&1),
                "first frame must survive a cut at {cut}"
            );
            if cut == full.len() {
                assert_eq!(state.strikes.get(&2), Some(&1));
            } else {
                assert!(
                    state.strikes.is_empty(),
                    "partial second frame must be discarded (cut at {cut})"
                );
                assert_eq!(store.stats().torn_bytes, (cut - first_len) as u64);
            }
        }
        // And a cut INSIDE the first frame leaves an empty (but valid)
        // recovery.
        for cut in [0usize, 1, 4, first_len / 2, first_len - 1] {
            std::fs::write(&wal, &full[..cut]).unwrap();
            let mut store = PlanStore::open(&dir).unwrap();
            let state = store.recover().unwrap();
            assert!(state.entries.is_empty(), "cut at {cut} inside frame 1");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checksum_ends_replay_at_the_bad_frame() {
        let dir = temp_store_dir("corrupt");
        {
            let mut store = PlanStore::open(&dir).unwrap();
            store
                .append(&StoreFrame::Strike { key: 1, count: 1 })
                .and_then(|_| store.append(&StoreFrame::Strike { key: 2, count: 2 }))
                .and_then(|_| store.append(&StoreFrame::Strike { key: 3, count: 3 }))
                .unwrap();
        }
        let wal = dir.join("wal.log");
        let mut bytes = std::fs::read(&wal).unwrap();
        let frame_len = bytes.len() / 3;
        // Flip one byte in the second frame's body.
        bytes[frame_len + 6] ^= 0xFF;
        std::fs::write(&wal, &bytes).unwrap();
        let mut store = PlanStore::open(&dir).unwrap();
        let state = store.recover().unwrap();
        assert_eq!(state.strikes.get(&1), Some(&1), "frame 1 survives");
        assert!(
            !state.strikes.contains_key(&2) && !state.strikes.contains_key(&3),
            "corruption ends replay: frames 2 and 3 discarded"
        );
        assert_eq!(store.stats().torn_bytes, (frame_len * 2) as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_snapshots_state_and_truncates_the_wal() {
        let dir = temp_store_dir("compact");
        let p = plan(3);
        let mut store = PlanStore::open(&dir).unwrap();
        store
            .append(&StoreFrame::Epoch { epoch: 1 })
            .and_then(|_| {
                store.append(&StoreFrame::Put {
                    key: 5,
                    epoch: 1,
                    last_use: 4,
                    plan: p.clone(),
                })
            })
            .and_then(|_| store.append(&StoreFrame::Quarantine { key: 6 }))
            .unwrap();
        let state = store.recover().unwrap();
        assert!(store.wal_len() > 0);
        store.compact(&state.to_frames()).unwrap();
        assert_eq!(store.wal_len(), 0, "WAL truncated after snapshot");
        // Append one post-snapshot delta, then recover fresh: snapshot +
        // WAL compose.
        store
            .append(&StoreFrame::Strike { key: 7, count: 1 })
            .unwrap();
        let mut store2 = PlanStore::open(&dir).unwrap();
        let state2 = store2.recover().unwrap();
        assert_eq!(state2.epoch, 1);
        assert_eq!(state2.entries[&5].last_use, 4);
        assert!(state2.quarantine.contains(&6));
        assert_eq!(state2.strikes.get(&7), Some(&1));
        assert_eq!(store2.stats().snapshots, 0);
        assert_eq!(store.stats().snapshots, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
