//! Plan requests, arrival traces, and responses.
//!
//! A serving front end deals in *recorded arrival traces*: every request
//! carries its arrival instant in device-model ticks, so an entire traffic
//! history is a value that can be replayed bit-for-bit. Responses carry a
//! canonical rendering ([`PlanResponse::canonical_line`]) used by the
//! determinism tests to compare whole response streams byte-for-byte
//! across worker-pool sizes.

use deco_core::supervisor::{PlanStage, SupervisedPlan};
use deco_prob::hash::StableHasher;
use deco_workflow::Workflow;
use std::hash::Hasher;

/// Identifier of one tenant of the serving engine.
pub type TenantId = u32;

/// Admission priority class. Draining is ordered by class first
/// (`Interactive` ahead of `Batch` ahead of `Background`), then FIFO
/// within a class, and the deadline-aware shed policy victimizes lower
/// classes first. A queue in which every request carries the default
/// class drains exactly like the original FIFO queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// A user is waiting on the response (portal submissions).
    Interactive,
    /// Ordinary planned work — the default class.
    #[default]
    Batch,
    /// Speculative or prefetch work; first to wait, first to shed.
    Background,
}

impl Priority {
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::Background => "background",
        }
    }
}

/// One tenant's request for a provisioning plan.
#[derive(Debug, Clone)]
pub struct PlanRequest {
    pub tenant: TenantId,
    /// The workflow to provision (a parsed DAX document).
    pub workflow: Workflow,
    /// Requested deadline, seconds. The server plans against the
    /// *canonical* (bucket-floored) deadline — see
    /// [`crate::server::ServeConfig::deadline_bucket`].
    pub deadline: f64,
    /// Probabilistic deadline percentile in `(0, 1]`.
    pub percentile: f64,
    /// Optional per-request tick-budget hint. The effective budget is the
    /// smaller of this and whatever the admission queue's fair-share
    /// policy allots.
    pub budget_hint: Option<f64>,
    /// Admission priority class (drain ordering and shed preference).
    pub priority: Priority,
}

/// One arrival: a request plus its arrival instant in model ticks.
#[derive(Debug, Clone)]
pub struct Arrival {
    pub at_tick: f64,
    pub request: PlanRequest,
}

/// A recorded request trace, sorted by arrival tick (stable, so
/// same-instant arrivals keep their submission order).
#[derive(Debug, Clone, Default)]
pub struct ArrivalTrace {
    arrivals: Vec<Arrival>,
}

impl ArrivalTrace {
    pub fn new(mut arrivals: Vec<Arrival>) -> Self {
        assert!(
            arrivals
                .iter()
                .all(|a| a.at_tick.is_finite() && a.at_tick >= 0.0),
            "arrival ticks must be finite and non-negative"
        );
        arrivals.sort_by(|a, b| a.at_tick.total_cmp(&b.at_tick));
        ArrivalTrace { arrivals }
    }

    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }
}

/// How a served plan was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// Solved in this cycle (a cache miss).
    Cold,
    /// Answered from the plan cache (a hit).
    Warm,
    /// Answered by a sibling request's solve in the same cycle (request
    /// coalescing: equal keys in one batch are solved exactly once).
    Coalesced,
    /// Solved after at least one injected worker crash forced the job to
    /// be re-enqueued with backoff (only under a non-empty
    /// [`crate::faults::WorkerFaultPlan`]).
    Retried,
    /// Answered from the fallback degradation chain because the content
    /// key is quarantined (it wedged solver workers too many times).
    Quarantined,
}

impl PlanSource {
    pub fn name(self) -> &'static str {
        match self {
            PlanSource::Cold => "cold",
            PlanSource::Warm => "warm",
            PlanSource::Coalesced => "coalesced",
            PlanSource::Retried => "retried",
            PlanSource::Quarantined => "quarantined",
        }
    }
}

/// A successfully planned response.
#[derive(Debug, Clone)]
pub struct ServedPlan {
    /// The plan plus its provenance, exactly as a cold
    /// [`deco_core::supervisor::plan_with_fallback`] call would return it.
    pub plan: SupervisedPlan,
    pub source: PlanSource,
    /// Modeled queueing delay (admission to solve-cycle start), in
    /// deterministic device-model ticks.
    pub wait_ticks: f64,
    /// The canonical deadline the plan was actually solved for.
    pub canonical_deadline: f64,
}

/// The verdict of one request.
#[derive(Debug, Clone)]
pub enum ServeOutcome {
    Planned(Box<ServedPlan>),
    /// Refused without planning: backpressure
    /// ([`deco_core::DecoError::Overloaded`]), a per-tenant quota breach
    /// ([`deco_core::DecoError::QuotaExceeded`]), or a structurally
    /// invalid request. The string is the `DecoError` rendering.
    Rejected {
        reason: String,
    },
    /// Dropped *after* admission by the deadline-aware shed policy: the
    /// queue was full and this request's bucket-floored canonical
    /// deadline was already unmeetable under the current fair-share
    /// budget, so it was sacrificed instead of the newest arrival.
    Shed {
        reason: String,
    },
}

/// One response of the stream; `seq` is the request's index in the trace,
/// and the stream is always emitted in `seq` order.
#[derive(Debug, Clone)]
pub struct PlanResponse {
    pub seq: u64,
    pub tenant: TenantId,
    /// The content-addressed cache key (0 for requests rejected before
    /// key derivation).
    pub key: u64,
    pub outcome: ServeOutcome,
}

impl PlanResponse {
    /// Canonical single-line rendering with every float spelled as raw
    /// bits: two responses are byte-identical iff the server produced the
    /// same answer, regardless of solver-worker interleaving.
    pub fn canonical_line(&self) -> String {
        match &self.outcome {
            ServeOutcome::Planned(p) => {
                let stage = match p.plan.provenance.stage {
                    PlanStage::Deco => "deco",
                    PlanStage::Heuristic => "heuristic",
                    PlanStage::Autoscaling => "autoscaling",
                };
                format!(
                    "seq={} tenant={} key={:016x} source={} wait={:016x} deadline={:016x} \
                     stage={} truncated={} spent={:016x} feasible={} objective={:016x} types={:?}",
                    self.seq,
                    self.tenant,
                    self.key,
                    p.source.name(),
                    p.wait_ticks.to_bits(),
                    p.canonical_deadline.to_bits(),
                    stage,
                    p.plan.provenance.truncated,
                    p.plan.provenance.budget_spent.to_bits(),
                    p.plan.plan.evaluation.feasible,
                    p.plan.plan.evaluation.objective.to_bits(),
                    p.plan.plan.types,
                )
            }
            ServeOutcome::Rejected { reason } => format!(
                "seq={} tenant={} key={:016x} rejected reason={reason}",
                self.seq, self.tenant, self.key
            ),
            ServeOutcome::Shed { reason } => format!(
                "seq={} tenant={} key={:016x} shed reason={reason}",
                self.seq, self.tenant, self.key
            ),
        }
    }

    /// Stable digest of [`PlanResponse::canonical_line`].
    pub fn digest(&self) -> u64 {
        let mut h = StableHasher::with_seed(0x5E72E);
        h.write(self.canonical_line().as_bytes());
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_workflow::generators;

    fn req(t: TenantId) -> PlanRequest {
        PlanRequest {
            tenant: t,
            workflow: generators::pipeline(2, 10.0, 0),
            deadline: 100.0,
            percentile: 0.9,
            budget_hint: None,
            priority: Priority::default(),
        }
    }

    #[test]
    fn priority_orders_interactive_ahead_of_batch_ahead_of_background() {
        assert!(Priority::Interactive < Priority::Batch);
        assert!(Priority::Batch < Priority::Background);
        assert_eq!(Priority::default(), Priority::Batch);
        assert_eq!(Priority::Background.name(), "background");
    }

    #[test]
    fn shed_responses_render_canonically() {
        let r = PlanResponse {
            seq: 4,
            tenant: 2,
            key: 0xF00,
            outcome: ServeOutcome::Shed {
                reason: "deadline unmeetable".into(),
            },
        };
        assert_eq!(
            r.canonical_line(),
            "seq=4 tenant=2 key=0000000000000f00 shed reason=deadline unmeetable"
        );
    }

    #[test]
    fn traces_sort_stably_by_arrival_tick() {
        let trace = ArrivalTrace::new(vec![
            Arrival {
                at_tick: 5.0,
                request: req(1),
            },
            Arrival {
                at_tick: 0.0,
                request: req(2),
            },
            Arrival {
                at_tick: 5.0,
                request: req(3),
            },
        ]);
        let tenants: Vec<TenantId> = trace.arrivals().iter().map(|a| a.request.tenant).collect();
        assert_eq!(tenants, vec![2, 1, 3], "stable sort keeps 1 before 3");
    }

    #[test]
    #[should_panic]
    fn traces_reject_non_finite_ticks() {
        ArrivalTrace::new(vec![Arrival {
            at_tick: f64::NAN,
            request: req(1),
        }]);
    }

    #[test]
    fn rejected_responses_render_canonically() {
        let r = PlanResponse {
            seq: 3,
            tenant: 7,
            key: 0xABC,
            outcome: ServeOutcome::Rejected {
                reason: "overloaded: x".into(),
            },
        };
        assert_eq!(
            r.canonical_line(),
            "seq=3 tenant=7 key=0000000000000abc rejected reason=overloaded: x"
        );
        assert_eq!(r.digest(), r.digest());
    }
}
