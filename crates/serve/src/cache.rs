//! The content-addressed plan cache.
//!
//! A plan is a pure function of (workflow DAG shape, catalog facts, engine
//! options, canonical deadline, percentile, budget). The cache keys on a
//! [`StableHasher`] digest of exactly those inputs:
//!
//! * the **workflow shape** — task profiles and data edges in canonical
//!   order; task and workflow *names* are deliberately excluded, so two
//!   tenants submitting structurally identical DAX documents share one
//!   cache line;
//! * the **catalog epoch** ([`MetadataStore::catalog_epoch`]) plus a
//!   price-table fingerprint — a recalibration or price refresh bumps the
//!   epoch, which changes every key derived afterwards and strands the
//!   stale entries (reaped by [`PlanCache::purge_stale`] and LRU);
//! * the **engine options** that shape the search (MC iterations, beam
//!   width, seeds, retry policy);
//! * the **canonical deadline** (bucket-floored by the server), the
//!   percentile, and the request-level budget.
//!
//! A warm hit therefore returns a plan bit-identical to what a cold solve
//! of the same canonical request would produce — the property the
//! proptests pin.

use deco_cloud::MetadataStore;
use deco_core::supervisor::SupervisedPlan;
use deco_core::DecoOptions;
use deco_prob::hash::StableHasher;
use deco_workflow::Workflow;
use std::collections::HashMap;
use std::hash::Hasher;

/// Domain-separation seed: bump when the key derivation changes shape.
const KEY_DOMAIN: u64 = 0x5E72_ECAC_4E00_0001;

/// Canonical structural hash of a workflow: profiles and edges, no names.
pub fn workflow_shape_hash(wf: &Workflow) -> u64 {
    let mut h = StableHasher::with_seed(KEY_DOMAIN ^ 0x0DA6);
    h.write_usize(wf.len());
    for t in wf.tasks() {
        h.write_f64(t.profile.cpu_seconds);
        h.write_f64(t.profile.read_bytes);
        h.write_f64(t.profile.write_bytes);
    }
    // Canonical edge order: (from, to) — insertion order is not content.
    let mut edges: Vec<(u32, u32, f64)> = wf.edges().map(|e| (e.from.0, e.to.0, e.bytes)).collect();
    edges.sort_by_key(|e| (e.0, e.1));
    h.write_usize(edges.len());
    for (from, to, bytes) in edges {
        h.write_u32(from);
        h.write_u32(to);
        h.write_f64(bytes);
    }
    h.finish()
}

/// Fingerprint of the catalog the planner consults: the epoch (the
/// monotonic staleness signal) plus the price table and billing geometry,
/// so even an un-bumped store swap cannot alias keys.
pub fn catalog_fingerprint(store: &MetadataStore) -> u64 {
    let mut h = StableHasher::with_seed(KEY_DOMAIN ^ 0xCA7A);
    h.write_u64(store.catalog_epoch());
    let spec = &store.spec;
    h.write_usize(spec.types.len());
    for t in &spec.types {
        h.write_f64(t.price_per_hour);
        h.write_f64(t.ecu);
    }
    h.write_usize(spec.regions.len());
    for r in &spec.regions {
        h.write_f64(r.price_multiplier);
    }
    h.write_f64(spec.billing_quantum);
    h.write_f64(spec.inter_region_price_per_gb);
    h.finish()
}

/// Fingerprint of every engine option that can change a solve's verdict.
pub fn options_fingerprint(options: &DecoOptions) -> u64 {
    let mut h = StableHasher::with_seed(KEY_DOMAIN ^ 0x0975);
    h.write_usize(options.mc_iters);
    h.write_usize(options.beam_width);
    h.write_usize(options.wlog_bins);
    h.write_usize(options.search.max_states);
    h.write_usize(options.search.patience);
    h.write_usize(options.search.batch);
    h.write_u64(options.search.seed);
    match &options.retry {
        None => h.write_u8(0),
        Some(r) => {
            h.write_u8(1);
            h.write_u32(r.max_attempts);
            h.write_f64(r.backoff_base);
            h.write_f64(r.backoff_cap);
        }
    }
    h.finish()
}

/// The full content-addressed key of one canonical plan request.
#[allow(clippy::too_many_arguments)]
pub fn plan_key(
    wf: &Workflow,
    store: &MetadataStore,
    options: &DecoOptions,
    canonical_deadline: f64,
    percentile: f64,
    budget_ticks: Option<f64>,
) -> u64 {
    let mut h = StableHasher::with_seed(KEY_DOMAIN);
    h.write_u64(workflow_shape_hash(wf));
    h.write_u64(catalog_fingerprint(store));
    h.write_u64(options_fingerprint(options));
    h.write_f64(canonical_deadline);
    h.write_f64(percentile);
    match budget_ticks {
        None => h.write_u8(0),
        Some(t) => {
            h.write_u8(1);
            h.write_f64(t);
        }
    }
    h.finish()
}

struct Entry {
    plan: SupervisedPlan,
    /// Catalog epoch the plan was solved under (for `purge_stale`).
    epoch: u64,
    /// Logical last-use stamp for LRU eviction.
    last_use: u64,
}

/// A bounded LRU map from content key to supervised plan. Eviction is
/// deterministic: the least-recently-used entry goes first, ties broken by
/// smaller key.
///
/// A **zero-capacity cache is a documented no-op**: [`PlanCache::insert`]
/// never stores (and never evicts a phantom entry), every lookup misses,
/// and `len()` stays 0. A shard misconfigured with `cache_capacity: 0`
/// therefore fails soft — it serves every request as a cold solve instead
/// of panicking at construction.
pub struct PlanCache {
    map: HashMap<u64, Entry>,
    capacity: usize,
    clock: u64,
}

impl PlanCache {
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            map: HashMap::new(),
            capacity,
            clock: 0,
        }
    }

    /// The configured entry bound (0 means the cache never stores).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up a key, refreshing its LRU stamp on a hit.
    pub fn get(&mut self, key: u64) -> Option<&SupervisedPlan> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(&key).map(|e| {
            e.last_use = clock;
            &e.plan
        })
    }

    /// Insert a solved plan; returns how many entries were evicted to
    /// make room (0 or 1). With `capacity == 0` this is a no-op: nothing
    /// is stored, nothing is evicted.
    pub fn insert(&mut self, key: u64, plan: SupervisedPlan, epoch: u64) -> usize {
        self.clock += 1;
        if self.capacity == 0 {
            return 0;
        }
        let mut evicted = 0;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(victim) = self
                .map
                .iter()
                .map(|(&k, e)| (e.last_use, k))
                .min()
                .map(|(_, k)| k)
            {
                self.map.remove(&victim);
                evicted = 1;
            }
        }
        self.map.insert(
            key,
            Entry {
                plan,
                epoch,
                last_use: self.clock,
            },
        );
        evicted
    }

    /// Drop every entry solved under an older catalog epoch; returns the
    /// number purged. (Stale entries are already unreachable — the epoch
    /// is part of every key — so this is reclamation, not correctness.)
    pub fn purge_stale(&mut self, current_epoch: u64) -> usize {
        let before = self.map.len();
        self.map.retain(|_, e| e.epoch == current_epoch);
        before - self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_cloud::{CloudSpec, MetadataStore};
    use deco_core::supervisor::plan_with_fallback;
    use deco_core::Deco;
    use deco_solver::SearchBudget;
    use deco_workflow::generators;

    fn store() -> MetadataStore {
        MetadataStore::from_ground_truth(CloudSpec::amazon_ec2(), 20)
    }

    #[test]
    fn shape_hash_ignores_names_but_not_structure() {
        let a = generators::montage(1, 5);
        let mut b = a.clone();
        b.name = "renamed".into();
        assert_eq!(workflow_shape_hash(&a), workflow_shape_hash(&b));
        let c = generators::montage(1, 6);
        assert_ne!(workflow_shape_hash(&a), workflow_shape_hash(&c));
        assert_ne!(
            workflow_shape_hash(&generators::pipeline(3, 10.0, 0)),
            workflow_shape_hash(&generators::pipeline(4, 10.0, 0))
        );
    }

    #[test]
    fn keys_track_epoch_deadline_budget_and_options() {
        let wf = generators::montage(1, 5);
        let mut st = store();
        let opts = DecoOptions::default();
        let base = plan_key(&wf, &st, &opts, 1000.0, 0.9, None);
        assert_eq!(base, plan_key(&wf, &st, &opts, 1000.0, 0.9, None));
        st.bump_catalog_epoch();
        assert_ne!(base, plan_key(&wf, &st, &opts, 1000.0, 0.9, None));
        let st = store();
        assert_ne!(base, plan_key(&wf, &st, &opts, 2000.0, 0.9, None));
        assert_ne!(base, plan_key(&wf, &st, &opts, 1000.0, 0.95, None));
        assert_ne!(base, plan_key(&wf, &st, &opts, 1000.0, 0.9, Some(50.0)));
        let mut tweaked = DecoOptions::default();
        tweaked.mc_iters += 1;
        assert_ne!(base, plan_key(&wf, &st, &tweaked, 1000.0, 0.9, None));
    }

    fn dummy_plan(seed: u64) -> SupervisedPlan {
        let st = store();
        let mut d = Deco::new(st);
        d.options.mc_iters = 10;
        d.options.search.max_states = 40;
        let wf = generators::pipeline(2, 50.0, 0);
        let (dmin, dmax) = deco_core::estimate::deadline_anchors(&wf, &d.store.spec);
        plan_with_fallback(
            &d,
            &wf,
            0.5 * (dmin + dmax),
            0.9,
            &SearchBudget::unlimited(),
        )
        .map(|mut p| {
            p.provenance.budget_spent += seed as f64; // distinguishable marker
            p
        })
        .expect("feasible")
    }

    #[test]
    fn lru_evicts_least_recently_used_deterministically() {
        let mut cache = PlanCache::new(2);
        assert_eq!(cache.insert(1, dummy_plan(1), 0), 0);
        assert_eq!(cache.insert(2, dummy_plan(2), 0), 0);
        assert!(cache.get(1).is_some()); // refresh 1; victim becomes 2
        assert_eq!(cache.insert(3, dummy_plan(3), 0), 1);
        assert!(cache.get(2).is_none(), "2 was least recently used");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_cache_is_a_no_op() {
        let mut cache = PlanCache::new(0);
        assert_eq!(cache.capacity(), 0);
        assert_eq!(
            cache.insert(1, dummy_plan(1), 0),
            0,
            "no phantom eviction on a no-op insert"
        );
        assert!(cache.get(1).is_none(), "nothing is ever stored");
        assert_eq!(cache.len(), 0);
        assert!(cache.is_empty());
        // Repeated inserts stay no-ops and never evict.
        for k in 0..10 {
            assert_eq!(cache.insert(k, dummy_plan(k), 0), 0);
        }
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.purge_stale(1), 0);
    }

    #[test]
    fn purge_drops_only_stale_epochs() {
        let mut cache = PlanCache::new(8);
        cache.insert(1, dummy_plan(1), 0);
        cache.insert(2, dummy_plan(2), 1);
        cache.insert(3, dummy_plan(3), 1);
        assert_eq!(cache.purge_stale(1), 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_none());
        assert_eq!(cache.purge_stale(2), 2);
        assert!(cache.is_empty());
    }
}
