// User-facing paths return typed errors; panicking shortcuts are banned
// from library code (tests may still unwrap).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! deco-serve — a deterministic multi-tenant plan-serving engine.
//!
//! The paper's engine answers one question at a time: *given this
//! workflow, deadline, and cloud, what is the cheapest provisioning
//! plan?* A shared deployment answers that question for many tenants
//! concurrently, and most questions repeat — the same Montage DAG, the
//! same deadline bucket, the same price table. This crate puts a serving
//! layer in front of [`deco_core::supervisor::plan_with_fallback`]:
//!
//! * [`queue`] — bounded admission with priority-class drain ordering,
//!   per-tenant queue quotas, deadline-aware shedding, and
//!   [`deco_core::DecoError::Overloaded`] backpressure plus per-tenant
//!   fair-share search budgets;
//! * [`cache`] — a content-addressed plan cache keyed by the canonical
//!   structural hash of (DAG shape, catalog epoch + price table, engine
//!   options, bucketed deadline, percentile, budget); warm hits are
//!   bit-identical to cold solves;
//! * [`faults`] — seeded, worker-count-invariant injection of solver
//!   worker crashes and stragglers, keyed per (virtual worker, cycle);
//! * [`server`] — the cycle loop and the scoped solver-worker pool (one
//!   reusable evaluation scratch per worker, vendored crossbeam
//!   channels), with deterministic crash retry/quarantine and atomic
//!   calibration refreshes between cycles;
//! * [`request`] / [`stats`] — recorded arrival traces, canonical
//!   response rendering, and deterministic serving statistics with
//!   per-cycle structured rows.
//!
//! The load-bearing property is **deterministic replay**: a fixed
//! (trace, fault seed) produces a byte-identical response stream and
//! identical stats whether the pool runs 1, 2, or 8 workers, because
//! every observable ordering is by content key or trace sequence — and
//! worker fates are keyed by virtual worker — never by thread completion
//! time.

pub mod cache;
pub mod faults;
pub mod queue;
pub mod request;
pub mod server;
pub mod stats;
pub mod store;

pub use cache::{plan_key, workflow_shape_hash, PlanCache};
pub use faults::{WorkerFate, WorkerFaultPlan};
pub use queue::AdmissionQueue;
pub use request::{
    Arrival, ArrivalTrace, PlanRequest, PlanResponse, PlanSource, Priority, ServeOutcome,
    ServedPlan, TenantId,
};
pub use server::{
    canonical_deadline, serve_trace_backend, solve_jobs_on_pool, CalibrationRefresh, PlanServer,
    ServeBackend, ServeConfig, ServeSession, SolveJob,
};
pub use stats::{CycleRow, ServeStats};
pub use store::{PlanStore, RecoveredState, StoreFrame, StoreStats};
