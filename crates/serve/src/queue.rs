//! Admission control and fair-share budget allocation.
//!
//! The queue is bounded: once `capacity` requests are waiting, further
//! arrivals are refused with [`DecoError::Overloaded`] — backpressure is a
//! response, not a blocked caller. Within a solve cycle, the optional
//! tick pool is split *per tenant first*, then per job within each
//! tenant, so one tenant flooding the batch cannot starve another's
//! search depth.

use crate::request::{PlanRequest, TenantId};
use deco_core::DecoError;
use deco_solver::SearchBudget;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// One queued request: its trace sequence number, arrival tick, and body.
#[derive(Debug, Clone)]
pub struct QueuedRequest {
    pub seq: u64,
    pub arrived_at: f64,
    pub request: PlanRequest,
}

/// A bounded FIFO admission queue.
#[derive(Debug)]
pub struct AdmissionQueue {
    pending: VecDeque<QueuedRequest>,
    capacity: usize,
}

impl AdmissionQueue {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "a zero-capacity queue admits nothing");
        AdmissionQueue {
            pending: VecDeque::new(),
            capacity,
        }
    }

    pub fn len(&self) -> usize {
        self.pending.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Admit a request, or refuse it with [`DecoError::Overloaded`] when
    /// the queue is full.
    pub fn try_admit(
        &mut self,
        seq: u64,
        arrived_at: f64,
        request: PlanRequest,
    ) -> Result<(), DecoError> {
        if self.pending.len() >= self.capacity {
            return Err(DecoError::Overloaded {
                queued: self.pending.len(),
                capacity: self.capacity,
            });
        }
        self.pending.push_back(QueuedRequest {
            seq,
            arrived_at,
            request,
        });
        Ok(())
    }

    /// Pop up to `n` requests in admission order.
    pub fn drain_batch(&mut self, n: usize) -> Vec<QueuedRequest> {
        let take = n.min(self.pending.len());
        self.pending.drain(..take).collect()
    }
}

/// Split a cycle's tick pool fairly across the tenants owning this
/// cycle's cold solves, then across each tenant's jobs. Returns one
/// budget per entry of `tenants`, in order. With no pool, every job gets
/// an unlimited cycle share (the per-request cap still applies).
pub fn fair_share_budgets(pool: Option<f64>, tenants: &[TenantId]) -> Vec<SearchBudget> {
    let Some(pool) = pool else {
        return vec![SearchBudget::unlimited(); tenants.len()];
    };
    let mut per_tenant: BTreeMap<TenantId, usize> = BTreeMap::new();
    for &t in tenants {
        *per_tenant.entry(t).or_insert(0) += 1;
    }
    let tenant_share = SearchBudget::ticks(pool).fair_share(per_tenant.len().max(1));
    tenants
        .iter()
        .map(|t| tenant_share.fair_share(per_tenant[t]))
        .collect()
}

/// Clamp a cycle share by the request's own budget hint: the effective
/// budget is the tighter of the two on every axis.
pub fn effective_budget(share: &SearchBudget, hint: Option<f64>) -> SearchBudget {
    let ticks = match (share.ticks, hint) {
        (Some(s), Some(h)) => Some(s.min(h)),
        (Some(s), None) => Some(s),
        (None, Some(h)) => Some(h),
        (None, None) => None,
    };
    SearchBudget {
        ticks,
        wall_seconds: share.wall_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_workflow::generators;

    fn req(t: TenantId) -> PlanRequest {
        PlanRequest {
            tenant: t,
            workflow: generators::pipeline(2, 10.0, 0),
            deadline: 100.0,
            percentile: 0.9,
            budget_hint: None,
        }
    }

    #[test]
    fn queue_rejects_above_capacity_and_drains_fifo() {
        let mut q = AdmissionQueue::new(2);
        q.try_admit(0, 0.0, req(1)).expect("admit");
        q.try_admit(1, 1.0, req(2)).expect("admit");
        let err = q.try_admit(2, 2.0, req(3)).expect_err("full");
        assert!(matches!(
            err,
            DecoError::Overloaded {
                queued: 2,
                capacity: 2
            }
        ));
        let batch = q.drain_batch(10);
        assert_eq!(batch.iter().map(|b| b.seq).collect::<Vec<_>>(), vec![0, 1]);
        assert!(q.is_empty());
        // Draining frees capacity again.
        q.try_admit(3, 3.0, req(3)).expect("admit after drain");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn fair_share_splits_per_tenant_then_per_job() {
        // Tenant 1 owns two jobs, tenant 2 one: pool 120 → 60 per tenant,
        // then 30/30 for tenant 1's jobs and 60 for tenant 2's.
        let budgets = fair_share_budgets(Some(120.0), &[1, 2, 1]);
        let ticks: Vec<f64> = budgets.iter().map(|b| b.ticks.expect("limited")).collect();
        assert_eq!(ticks, vec![30.0, 60.0, 30.0]);
        // No pool → unlimited shares.
        assert!(fair_share_budgets(None, &[1, 2])
            .iter()
            .all(|b| b.is_unlimited()));
    }

    #[test]
    fn hints_tighten_but_never_loosen_budgets() {
        let share = SearchBudget::ticks(50.0);
        assert_eq!(effective_budget(&share, Some(20.0)).ticks, Some(20.0));
        assert_eq!(effective_budget(&share, Some(80.0)).ticks, Some(50.0));
        assert_eq!(effective_budget(&share, None).ticks, Some(50.0));
        let open = SearchBudget::unlimited();
        assert_eq!(effective_budget(&open, Some(9.0)).ticks, Some(9.0));
        assert!(effective_budget(&open, None).is_unlimited());
    }
}
