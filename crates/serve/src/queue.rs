//! Admission control and fair-share budget allocation.
//!
//! The queue is bounded: once `capacity` requests are waiting, further
//! arrivals are refused with [`DecoError::Overloaded`] — backpressure is a
//! response, not a blocked caller — *unless* the deadline-aware shed
//! policy can identify an already-doomed waiter to sacrifice instead
//! (see [`AdmissionQueue::shed_unmeetable`]). Draining is ordered by
//! [`Priority`] class first, then FIFO within a class, so a queue of
//! all-default-priority requests drains exactly like the original FIFO
//! queue. An optional per-tenant quota rejects only the over-quota tenant
//! ([`DecoError::QuotaExceeded`]) while other tenants keep being
//! admitted. Within a solve cycle, the optional tick pool is split *per
//! tenant first*, then per job within each tenant, so one tenant flooding
//! the batch cannot starve another's search depth.

use crate::request::{PlanRequest, Priority, TenantId};
use crate::server::canonical_deadline;
use deco_core::DecoError;
use deco_solver::SearchBudget;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// One queued request: its trace sequence number, arrival tick, and body.
#[derive(Debug, Clone)]
pub struct QueuedRequest {
    pub seq: u64,
    pub arrived_at: f64,
    pub request: PlanRequest,
}

/// A bounded admission queue, drained by (priority class, admission
/// order).
#[derive(Debug)]
pub struct AdmissionQueue {
    pending: VecDeque<QueuedRequest>,
    capacity: usize,
    /// Optional per-tenant bound on waiting requests.
    tenant_quota: Option<usize>,
}

impl AdmissionQueue {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "a zero-capacity queue admits nothing");
        AdmissionQueue {
            pending: VecDeque::new(),
            capacity,
            tenant_quota: None,
        }
    }

    /// Bound each tenant to at most `quota` waiting requests.
    pub fn with_tenant_quota(mut self, quota: usize) -> Self {
        assert!(quota >= 1, "a zero quota admits nothing for anyone");
        self.tenant_quota = Some(quota);
        self
    }

    pub fn len(&self) -> usize {
        self.pending.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Admit a request, or refuse it: [`DecoError::QuotaExceeded`] when
    /// its tenant already holds its full share of the queue,
    /// [`DecoError::Overloaded`] when the queue itself is full.
    pub fn try_admit(
        &mut self,
        seq: u64,
        arrived_at: f64,
        request: PlanRequest,
    ) -> Result<(), DecoError> {
        if let Some(quota) = self.tenant_quota {
            let queued = self
                .pending
                .iter()
                .filter(|q| q.request.tenant == request.tenant)
                .count();
            if queued >= quota {
                return Err(DecoError::QuotaExceeded {
                    tenant: u64::from(request.tenant),
                    queued,
                    quota,
                });
            }
        }
        if self.pending.len() >= self.capacity {
            return Err(DecoError::Overloaded {
                queued: self.pending.len(),
                capacity: self.capacity,
            });
        }
        self.pending.push_back(QueuedRequest {
            seq,
            arrived_at,
            request,
        });
        Ok(())
    }

    /// Pop up to `n` requests, priority classes first
    /// (`Interactive` → `Batch` → `Background`), admission order within a
    /// class. With uniform priorities this is exactly FIFO.
    pub fn drain_batch(&mut self, n: usize) -> Vec<QueuedRequest> {
        let take = n.min(self.pending.len());
        if take == 0 {
            return Vec::new();
        }
        // Rank by (priority, seq): stable and deterministic.
        let mut order: Vec<usize> = (0..self.pending.len()).collect();
        order.sort_by_key(|&i| (self.pending[i].request.priority, self.pending[i].seq));
        order.truncate(take);
        order.sort_unstable(); // remove back-to-front so indices stay valid
        let mut batch: Vec<QueuedRequest> = order
            .into_iter()
            .rev()
            .filter_map(|i| self.pending.remove(i))
            .collect();
        batch.sort_by_key(|q| (q.request.priority, q.seq));
        batch
    }

    /// The deadline-aware shed policy: find the waiting request whose
    /// bucket-floored canonical deadline is already unmeetable — its
    /// remaining slack at `now`, minus the per-request service estimate
    /// `est_service_ticks(request)` for one more cycle, has run out — and
    /// remove it from the queue. The estimator is a function of the
    /// request so callers can thread a per-shape solve-cost model (the
    /// server's `shed_estimate` flag feeds the mean observed
    /// `budget_spent` for the request's workflow shape); a constant
    /// `|_| 0.0` reproduces the conservative policy that only sheds
    /// already-expired waiters. Victims are chosen lowest [`Priority`]
    /// class first, then most-negative slack, then smallest `seq`; `None`
    /// when every waiter can still meet its deadline (the caller then
    /// falls back to rejecting the newest arrival, the pre-shed behavior).
    pub fn shed_unmeetable(
        &mut self,
        now: f64,
        deadline_bucket: f64,
        est_service_ticks: &dyn Fn(&PlanRequest) -> f64,
    ) -> Option<QueuedRequest> {
        let mut victim: Option<(Priority, f64, u64, usize)> = None;
        for (i, q) in self.pending.iter().enumerate() {
            let cd = canonical_deadline(q.request.deadline, deadline_bucket);
            let slack = cd - (now - q.arrived_at) - est_service_ticks(&q.request);
            if slack >= 0.0 {
                continue;
            }
            let cand = (q.request.priority, slack, q.seq, i);
            // Lowest class first (Background > Batch in the Ord), then
            // most expired (smallest slack), then earliest seq.
            let better = match &victim {
                None => true,
                Some((p, s, seq, _)) => {
                    cand.0 > *p
                        || (cand.0 == *p && (cand.1 < *s || (cand.1 == *s && cand.2 < *seq)))
                }
            };
            if better {
                victim = Some(cand);
            }
        }
        let (_, _, _, idx) = victim?;
        self.pending.remove(idx)
    }
}

/// Split a cycle's tick pool fairly across the tenants owning this
/// cycle's cold solves, then across each tenant's jobs. Returns one
/// budget per entry of `tenants`, in order. With no pool, every job gets
/// an unlimited cycle share (the per-request cap still applies).
pub fn fair_share_budgets(pool: Option<f64>, tenants: &[TenantId]) -> Vec<SearchBudget> {
    let Some(pool) = pool else {
        return vec![SearchBudget::unlimited(); tenants.len()];
    };
    let mut per_tenant: BTreeMap<TenantId, usize> = BTreeMap::new();
    for &t in tenants {
        *per_tenant.entry(t).or_insert(0) += 1;
    }
    let tenant_share = SearchBudget::ticks(pool).fair_share(per_tenant.len().max(1));
    tenants
        .iter()
        .map(|t| tenant_share.fair_share(per_tenant[t]))
        .collect()
}

/// Clamp a cycle share by the request's own budget hint: the effective
/// budget is the tighter of the two on every axis.
pub fn effective_budget(share: &SearchBudget, hint: Option<f64>) -> SearchBudget {
    let ticks = match (share.ticks, hint) {
        (Some(s), Some(h)) => Some(s.min(h)),
        (Some(s), None) => Some(s),
        (None, Some(h)) => Some(h),
        (None, None) => None,
    };
    SearchBudget {
        ticks,
        wall_seconds: share.wall_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_workflow::generators;

    fn req(t: TenantId) -> PlanRequest {
        PlanRequest {
            tenant: t,
            workflow: generators::pipeline(2, 10.0, 0),
            deadline: 100.0,
            percentile: 0.9,
            budget_hint: None,
            priority: Priority::default(),
        }
    }

    fn req_pri(t: TenantId, priority: Priority) -> PlanRequest {
        PlanRequest { priority, ..req(t) }
    }

    #[test]
    fn queue_rejects_above_capacity_and_drains_fifo() {
        let mut q = AdmissionQueue::new(2);
        q.try_admit(0, 0.0, req(1)).expect("admit");
        q.try_admit(1, 1.0, req(2)).expect("admit");
        let err = q.try_admit(2, 2.0, req(3)).expect_err("full");
        assert!(matches!(
            err,
            DecoError::Overloaded {
                queued: 2,
                capacity: 2
            }
        ));
        let batch = q.drain_batch(10);
        assert_eq!(batch.iter().map(|b| b.seq).collect::<Vec<_>>(), vec![0, 1]);
        assert!(q.is_empty());
        // Draining frees capacity again.
        q.try_admit(3, 3.0, req(3)).expect("admit after drain");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn priority_classes_drain_ahead_of_fifo() {
        let mut q = AdmissionQueue::new(8);
        q.try_admit(0, 0.0, req_pri(1, Priority::Background))
            .expect("admit");
        q.try_admit(1, 0.0, req_pri(2, Priority::Batch))
            .expect("admit");
        q.try_admit(2, 0.0, req_pri(3, Priority::Interactive))
            .expect("admit");
        q.try_admit(3, 0.0, req_pri(4, Priority::Interactive))
            .expect("admit");
        // Interactive (seq order), then batch, then background.
        let batch = q.drain_batch(3);
        assert_eq!(
            batch.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![2, 3, 1]
        );
        let rest = q.drain_batch(3);
        assert_eq!(rest.iter().map(|b| b.seq).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn tenant_quota_rejects_only_the_over_quota_tenant() {
        let mut q = AdmissionQueue::new(8).with_tenant_quota(2);
        q.try_admit(0, 0.0, req(1)).expect("admit");
        q.try_admit(1, 0.0, req(1)).expect("admit");
        let err = q
            .try_admit(2, 0.0, req(1))
            .expect_err("tenant 1 over quota");
        assert!(matches!(
            err,
            DecoError::QuotaExceeded {
                tenant: 1,
                queued: 2,
                quota: 2
            }
        ));
        // Another tenant is still welcome.
        q.try_admit(3, 0.0, req(2)).expect("tenant 2 within quota");
        assert_eq!(q.len(), 3);
        // Draining tenant 1's requests frees its quota again.
        q.drain_batch(10);
        q.try_admit(4, 0.0, req(1)).expect("admit after drain");
    }

    #[test]
    fn shed_picks_the_expired_lowest_class_first() {
        let mut q = AdmissionQueue::new(8);
        // Deadline 100 s; bucket 60 floors it to 60 canonical ticks.
        // Both the interactive and background requests arrived at 0 and
        // have expired by now=500; the fresh one (arrived 490) has not.
        q.try_admit(0, 0.0, req_pri(1, Priority::Interactive))
            .expect("admit");
        q.try_admit(1, 0.0, req_pri(2, Priority::Background))
            .expect("admit");
        q.try_admit(2, 490.0, req_pri(3, Priority::Batch))
            .expect("admit");
        let victim = q
            .shed_unmeetable(500.0, 60.0, &|_| 0.0)
            .expect("two waiters are doomed");
        assert_eq!(victim.seq, 1, "background sheds before interactive");
        let victim = q
            .shed_unmeetable(500.0, 60.0, &|_| 0.0)
            .expect("the doomed interactive is next");
        assert_eq!(victim.seq, 0);
        assert!(
            q.shed_unmeetable(500.0, 60.0, &|_| 0.0).is_none(),
            "the fresh request still has slack"
        );
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn shed_accounts_for_the_per_request_service_estimate() {
        let mut q = AdmissionQueue::new(8);
        q.try_admit(0, 0.0, req(1)).expect("admit");
        // At now=30 with canonical deadline 60, slack is 30: alive with a
        // free cycle, doomed once a cycle is estimated to cost 40 ticks.
        assert!(q.shed_unmeetable(30.0, 60.0, &|_| 0.0).is_none());
        assert!(q.shed_unmeetable(30.0, 60.0, &|_| 40.0).is_some());
    }

    #[test]
    fn shed_estimator_sees_the_request_it_prices() {
        let mut q = AdmissionQueue::new(8);
        q.try_admit(0, 0.0, req(1)).expect("admit");
        q.try_admit(1, 0.0, req(2)).expect("admit");
        // A shape-aware estimator dooms only tenant 2's request.
        let est = |r: &PlanRequest| if r.tenant == 2 { 80.0 } else { 0.0 };
        let victim = q
            .shed_unmeetable(10.0, 60.0, &est)
            .expect("tenant 2 estimated past its deadline");
        assert_eq!(victim.request.tenant, 2);
        assert!(q.shed_unmeetable(10.0, 60.0, &est).is_none());
    }

    #[test]
    fn fair_share_splits_per_tenant_then_per_job() {
        // Tenant 1 owns two jobs, tenant 2 one: pool 120 → 60 per tenant,
        // then 30/30 for tenant 1's jobs and 60 for tenant 2's.
        let budgets = fair_share_budgets(Some(120.0), &[1, 2, 1]);
        let ticks: Vec<f64> = budgets.iter().map(|b| b.ticks.expect("limited")).collect();
        assert_eq!(ticks, vec![30.0, 60.0, 30.0]);
        // No pool → unlimited shares.
        assert!(fair_share_budgets(None, &[1, 2])
            .iter()
            .all(|b| b.is_unlimited()));
    }

    #[test]
    fn hints_tighten_but_never_loosen_budgets() {
        let share = SearchBudget::ticks(50.0);
        assert_eq!(effective_budget(&share, Some(20.0)).ticks, Some(20.0));
        assert_eq!(effective_budget(&share, Some(80.0)).ticks, Some(50.0));
        assert_eq!(effective_budget(&share, None).ticks, Some(50.0));
        let open = SearchBudget::unlimited();
        assert_eq!(effective_budget(&open, Some(9.0)).ticks, Some(9.0));
        assert!(effective_budget(&open, None).is_unlimited());
    }
}
