//! An execution-driven GPU device model.
//!
//! The paper offloads two hot loops to an NVIDIA K40: the Monte-Carlo
//! evaluation of the probabilistic IR (one GPU thread per iteration, one
//! thread block per searched state) and the breadth-first exploration of
//! the search tree (Sections 5.2–5.3). Its implementation principles:
//! light-weight work per thread, block-local cooperation via shared memory,
//! no cross-block communication.
//!
//! No GPU is assumed here. Instead this crate provides a *device model*
//! that (a) really executes kernels block-parallel on host threads, so
//! results are identical and wall-clock speedup is real, and (b) reports a
//! *modeled* kernel time derived from measured per-block work and the
//! device's throughput parameters — SM count, lanes per SM, per-lane speed
//! relative to a host core, shared-memory capacity per block, and a
//! global-memory spill penalty once a block's working set exceeds shared
//! memory. The spill term is what makes speedups *decline with workflow
//! size*, the paper's Section 6.3.2 observation (36×/22×/18× for
//! 20/100/1000-task ensembles).
//!
//! * [`device`] — device descriptions ([`DeviceSpec::k40`],
//!   [`DeviceSpec::cpu`]).
//! * [`kernel`] — the launch API: blocks of lane-parallel thread work.
//! * [`timing`] — the throughput/timing model.

pub mod device;
pub mod kernel;
pub mod timing;

pub use device::DeviceSpec;
pub use kernel::{launch, launch_with, BlockResult, LaunchReport};
pub use timing::{model, model_ticks, KernelTiming};
