//! The kernel launch API.
//!
//! A launch maps a slice of block inputs (one searched state per block, as
//! in the paper) through a block function, running blocks concurrently on
//! host worker threads (crossbeam scope) and measuring each block's
//! single-core work to feed the timing model.
//!
//! The block function receives `(block_input, block_index)` and performs
//! the whole block's thread-parallel work (e.g. `threads_per_block`
//! Monte-Carlo iterations); lane parallelism *within* a block is accounted
//! for analytically by the timing model rather than oversubscribing the
//! host.

use crate::device::DeviceSpec;
use crate::timing::{model, KernelTiming};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Result of one block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockResult<R> {
    pub block: usize,
    pub value: R,
    /// Measured single-core seconds of this block's work.
    pub host_seconds: f64,
}

/// Result of a launch: per-block outputs plus modeled timing.
#[derive(Debug, Clone)]
pub struct LaunchReport<R> {
    pub blocks: Vec<BlockResult<R>>,
    pub timing: KernelTiming,
}

impl<R> LaunchReport<R> {
    /// Block outputs in block order.
    pub fn values(self) -> Vec<R> {
        self.blocks.into_iter().map(|b| b.value).collect()
    }
}

/// Launch `inputs.len()` blocks on the device model.
///
/// * `threads_per_block` — lane-parallel width inside one block (the
///   paper's `K`, e.g. the Monte-Carlo iteration count).
/// * `block_bytes` — per-block working set, for the shared-memory model.
/// * `block_fn(input, block_idx)` — the block's whole work.
///
/// Blocks execute concurrently across host cores (capped at the device's
/// SM count — the paper runs one block per SM), so results are bitwise
/// identical to a sequential run while wall-clock improves; the returned
/// [`KernelTiming`] is the modeled device time.
pub fn launch<S: Sync, R: Send>(
    device: &DeviceSpec,
    inputs: &[S],
    threads_per_block: usize,
    block_bytes: usize,
    block_fn: impl Fn(&S, usize) -> R + Sync,
) -> LaunchReport<R> {
    launch_with(
        device,
        inputs,
        threads_per_block,
        block_bytes,
        || (),
        |s, b, ()| block_fn(s, b),
    )
}

/// [`launch`] with per-worker mutable state: `worker_init()` runs once on
/// each worker thread and the resulting value is threaded through every
/// block that worker executes.
///
/// This is how evaluation scratch buffers (see `deco-core`'s
/// `EvalScratch`) are reused across the blocks of a batch without
/// allocation and without sharing: one scratch per worker, not per block.
/// Block results must not depend on the scratch's prior contents (workers
/// steal blocks dynamically), which the scratch-reuse tests in `deco-core`
/// and `deco-solver` enforce.
pub fn launch_with<S: Sync, R: Send, W>(
    device: &DeviceSpec,
    inputs: &[S],
    threads_per_block: usize,
    block_bytes: usize,
    worker_init: impl Fn() -> W + Sync,
    block_fn: impl Fn(&S, usize, &mut W) -> R + Sync,
) -> LaunchReport<R> {
    assert!(threads_per_block > 0, "empty blocks");
    let n = inputs.len();
    let workers = device
        .sms
        .min(n)
        .min(std::thread::available_parallelism().map_or(1, |p| p.get()))
        .max(1);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<BlockResult<R>>> = (0..n).map(|_| None).collect();
    // Hand out block indices dynamically; collect into per-worker result
    // buckets, then stitch.
    let results: Vec<Vec<BlockResult<R>>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let block_fn = &block_fn;
                let worker_init = &worker_init;
                scope.spawn(move |_| {
                    let mut scratch = worker_init();
                    let mut mine = Vec::new();
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= n {
                            return mine;
                        }
                        let t0 = Instant::now();
                        let value = block_fn(&inputs[b], b, &mut scratch);
                        mine.push(BlockResult {
                            block: b,
                            value,
                            host_seconds: t0.elapsed().as_secs_f64(),
                        });
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("kernel worker panicked");
    for bucket in results {
        for r in bucket {
            let idx = r.block;
            slots[idx] = Some(r);
        }
    }
    let blocks: Vec<BlockResult<R>> = slots
        .into_iter()
        .map(|s| s.expect("every block must have run"))
        .collect();
    let host: Vec<f64> = blocks.iter().map(|b| b.host_seconds).collect();
    let timing = model(device, &host, threads_per_block, block_bytes);
    LaunchReport { blocks, timing }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_block_order() {
        let d = DeviceSpec::cpu(4);
        let inputs: Vec<u64> = (0..64).collect();
        let report = launch(&d, &inputs, 8, 0, |&x, idx| {
            assert_eq!(x, idx as u64);
            x * x
        });
        let values = report.values();
        assert_eq!(values, (0..64).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn identical_to_sequential_reference() {
        let d = DeviceSpec::k40();
        let inputs: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let report = launch(&d, &inputs, 128, 1024, |&x, _| (x * 1.5).sqrt());
        let seq: Vec<f64> = inputs.iter().map(|&x| (x * 1.5).sqrt()).collect();
        assert_eq!(report.values(), seq);
    }

    #[test]
    fn timing_reflects_work() {
        let d = DeviceSpec::cpu(2);
        let inputs = vec![200_000u64; 6];
        let report = launch(&d, &inputs, 1, 0, |&n, _| {
            // Busy work so host_seconds is measurably > 0.
            let mut acc = 0u64;
            for i in 0..n {
                acc = acc.wrapping_add(i).rotate_left(1);
            }
            acc
        });
        assert!(report.timing.host_seconds > 0.0);
        assert_eq!(report.timing.waves, 3);
        assert!(report.timing.modeled_seconds <= report.timing.host_seconds);
    }

    #[test]
    fn single_block_launch() {
        let d = DeviceSpec::k40();
        let report = launch(&d, &[7u32], 192, 100, |&x, _| x + 1);
        assert_eq!(report.timing.waves, 1);
        assert_eq!(report.values(), vec![8]);
    }

    #[test]
    fn worker_state_is_reused_not_shared() {
        let d = DeviceSpec::cpu(4);
        let inputs: Vec<u64> = (0..32).collect();
        // Each block records how many blocks its worker ran before it; the
        // result must still be block-deterministic in the payload.
        let report = launch_with(&d, &inputs, 4, 0, Vec::<u64>::new, |&x, _, seen| {
            seen.push(x);
            x * 3
        });
        assert_eq!(
            report.values(),
            (0..32).map(|x| x * 3).collect::<Vec<u64>>()
        );
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        let d = DeviceSpec::k40();
        launch(&d, &[1], 0, 0, |&x: &i32, _| x);
    }
}
