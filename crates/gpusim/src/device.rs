//! Device descriptions.

/// Throughput description of an execution device.
///
/// The model is deliberately coarse — the paper's performance claims are
/// throughput-shaped, not cycle-accurate — but every parameter is a real
/// hardware quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    pub name: String,
    /// Independent multiprocessors; each runs one block at a time in this
    /// model (the paper launches N blocks for N SMs).
    pub sms: usize,
    /// Parallel lanes per SM (CUDA cores / SIMD width).
    pub lanes_per_sm: usize,
    /// Speed of one lane relative to one reference host core (< 1 for a
    /// GPU lane: lower clock, in-order, no private cache).
    pub lane_speed: f64,
    /// Shared memory per block, bytes. Working sets beyond this spill to
    /// global memory.
    pub shared_mem_bytes: usize,
    /// Penalty slope once a block's working set exceeds shared memory: the
    /// block's time is multiplied by `1 + spill_slope * (excess_ratio)`.
    pub spill_slope: f64,
}

impl DeviceSpec {
    /// NVIDIA Tesla K40 (the paper's accelerator): 15 SMs × 192 lanes,
    /// 48 KiB shared memory per block. The lane-speed ratio reflects a
    /// 745 MHz in-order lane against a ~3 GHz out-of-order Xeon core.
    pub fn k40() -> DeviceSpec {
        DeviceSpec {
            name: "tesla-k40".into(),
            sms: 15,
            lanes_per_sm: 192,
            lane_speed: 1.0 / 30.0,
            shared_mem_bytes: 48 * 1024,
            spill_slope: 1.0,
        }
    }

    /// The paper's CPU comparator: a 6-core Xeon running the OpenMP port of
    /// the same algorithm. One "SM" per core with a single full-speed lane
    /// and effectively unbounded cache-resident working set (no spill
    /// cliff on the host for these state sizes).
    pub fn cpu(cores: usize) -> DeviceSpec {
        DeviceSpec {
            name: format!("cpu-{cores}core"),
            sms: cores,
            lanes_per_sm: 1,
            lane_speed: 1.0,
            shared_mem_bytes: usize::MAX,
            spill_slope: 0.0,
        }
    }

    /// A single host core (the sequential baseline).
    pub fn single_core() -> DeviceSpec {
        DeviceSpec::cpu(1)
    }

    /// Total lane parallelism.
    pub fn total_lanes(&self) -> usize {
        self.sms * self.lanes_per_sm
    }

    /// Multiplier applied to a block's compute time for a working set of
    /// `bytes`.
    pub fn spill_factor(&self, bytes: usize) -> f64 {
        if bytes <= self.shared_mem_bytes {
            1.0
        } else {
            let excess = bytes as f64 / self.shared_mem_bytes as f64 - 1.0;
            1.0 + self.spill_slope * excess
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40_shape() {
        let d = DeviceSpec::k40();
        assert_eq!(d.total_lanes(), 2880);
        assert!(d.lane_speed < 0.1);
    }

    #[test]
    fn cpu_has_full_speed_lanes() {
        let d = DeviceSpec::cpu(6);
        assert_eq!(d.total_lanes(), 6);
        assert_eq!(d.lane_speed, 1.0);
        assert_eq!(d.spill_factor(usize::MAX - 1), 1.0);
    }

    #[test]
    fn spill_kicks_in_beyond_shared_mem() {
        let d = DeviceSpec::k40();
        assert_eq!(d.spill_factor(1024), 1.0);
        assert_eq!(d.spill_factor(48 * 1024), 1.0);
        let f = d.spill_factor(96 * 1024);
        assert!(
            (f - 2.0).abs() < 1e-9,
            "double the working set -> 2x penalty"
        );
        assert!(d.spill_factor(144 * 1024) > f);
    }
}
