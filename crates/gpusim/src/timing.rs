//! The kernel timing model.
//!
//! Input: the measured single-core host seconds of each block's work and
//! the block's working-set size. Output: the modeled time the kernel would
//! take on a [`crate::DeviceSpec`].
//!
//! Model, per block `b` with host work `w_b` seconds and `threads` lanes of
//! parallel work inside the block:
//!
//! ```text
//! t_b = w_b / (lane_speed * min(threads, lanes_per_sm)) * spill_factor
//! ```
//!
//! Blocks are scheduled onto SMs in waves of `sms` blocks (the paper uses
//! one block per SM); the kernel time is the sum over waves of the slowest
//! block in each wave:
//!
//! ```text
//! T = sum over waves of max(t_b in wave)
//! ```

use crate::device::DeviceSpec;

/// Modeled timing of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTiming {
    /// Modeled kernel seconds on the device.
    pub modeled_seconds: f64,
    /// Total measured single-core host seconds across blocks (the
    /// sequential baseline work `W`).
    pub host_seconds: f64,
    /// Number of scheduling waves.
    pub waves: usize,
    /// Spill factor applied (1.0 = fits in shared memory).
    pub spill_factor: f64,
}

impl KernelTiming {
    /// Speedup of this launch relative to a sequential single-core run of
    /// the same work.
    pub fn speedup_vs_sequential(&self) -> f64 {
        if self.modeled_seconds == 0.0 {
            1.0
        } else {
            self.host_seconds / self.modeled_seconds
        }
    }
}

/// Deterministic device-model cost ("ticks") of one kernel launch.
///
/// Unlike [`model`], which consumes *measured* single-core host seconds,
/// this assumes one unit of work per lane-thread per block, so the result
/// depends only on the launch shape `(blocks, threads, bytes)` and the
/// device — never on wall-clock noise. Anytime-search budgets are charged
/// in these ticks, which makes budget truncation bit-reproducible: the
/// same seed and the same tick budget always cut the search at the same
/// batch boundary.
pub fn model_ticks(
    device: &DeviceSpec,
    blocks: usize,
    threads_per_block: usize,
    block_bytes: usize,
) -> f64 {
    if blocks == 0 {
        return 0.0;
    }
    let unit_work = vec![threads_per_block as f64; blocks];
    model(device, &unit_work, threads_per_block, block_bytes).modeled_seconds
}

/// Compute the modeled kernel time.
///
/// `block_host_seconds[b]` is the measured single-core time of block `b`'s
/// whole work; `threads_per_block` the lane-parallel width inside a block;
/// `block_bytes` the per-block working set.
pub fn model(
    device: &DeviceSpec,
    block_host_seconds: &[f64],
    threads_per_block: usize,
    block_bytes: usize,
) -> KernelTiming {
    assert!(threads_per_block > 0);
    let spill = device.spill_factor(block_bytes);
    let lane_par = device.lanes_per_sm.min(threads_per_block) as f64;
    let per_block: Vec<f64> = block_host_seconds
        .iter()
        .map(|w| w / (device.lane_speed * lane_par) * spill)
        .collect();
    let mut modeled = 0.0;
    let mut waves = 0;
    for wave in per_block.chunks(device.sms.max(1)) {
        modeled += wave.iter().cloned().fold(0.0f64, f64::max);
        waves += 1;
    }
    KernelTiming {
        modeled_seconds: modeled,
        host_seconds: block_host_seconds.iter().sum(),
        waves,
        spill_factor: spill,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_wave_takes_slowest_block() {
        let d = DeviceSpec::cpu(4);
        let t = model(&d, &[1.0, 2.0, 3.0], 1, 0);
        assert_eq!(t.waves, 1);
        assert!((t.modeled_seconds - 3.0).abs() < 1e-12);
        assert!((t.host_seconds - 6.0).abs() < 1e-12);
        assert!((t.speedup_vs_sequential() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn waves_accumulate() {
        let d = DeviceSpec::cpu(2);
        let t = model(&d, &[1.0, 1.0, 1.0, 1.0], 1, 0);
        assert_eq!(t.waves, 2);
        assert!((t.modeled_seconds - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lane_parallelism_divides_block_time() {
        let d = DeviceSpec::k40();
        // One block, 192 threads of work measured at 1 host-second total.
        let t = model(&d, &[1.0], 192, 1024);
        // 1 / (1/30 * 192) = 0.15625 s.
        assert!((t.modeled_seconds - 0.15625).abs() < 1e-9);
        assert!(t.speedup_vs_sequential() > 6.0);
    }

    #[test]
    fn threads_beyond_lanes_do_not_help() {
        let d = DeviceSpec::k40();
        let a = model(&d, &[1.0], 192, 1024);
        let b = model(&d, &[1.0], 10_000, 1024);
        assert_eq!(a.modeled_seconds, b.modeled_seconds);
    }

    #[test]
    fn spill_shrinks_speedup() {
        let d = DeviceSpec::k40();
        let fit = model(&d, &[1.0; 15], 192, 16 * 1024);
        let spilled = model(&d, &[1.0; 15], 192, 160 * 1024);
        assert!(spilled.modeled_seconds > fit.modeled_seconds * 2.0);
        assert!(spilled.speedup_vs_sequential() < fit.speedup_vs_sequential());
    }

    #[test]
    fn ticks_are_deterministic_and_scale_with_waves() {
        let d = DeviceSpec::k40();
        let a = model_ticks(&d, 10, 64, 1024);
        let b = model_ticks(&d, 10, 64, 1024);
        assert_eq!(a.to_bits(), b.to_bits(), "shape-only cost is exact");
        // Twice the SM count of blocks -> two waves -> twice the ticks.
        let one_wave = model_ticks(&d, d.sms, 64, 1024);
        let two_waves = model_ticks(&d, 2 * d.sms, 64, 1024);
        assert!((two_waves - 2.0 * one_wave).abs() < 1e-12);
        assert_eq!(model_ticks(&d, 0, 64, 1024), 0.0);
    }

    #[test]
    fn gpu_beats_6core_for_wide_kernels() {
        // The Section 6.3 comparison shape: GPU >> 6-core CPU when there
        // are many light-weight MC threads and the state fits shared mem.
        let gpu = DeviceSpec::k40();
        let cpu = DeviceSpec::cpu(6);
        let work = vec![0.01; 30]; // 30 states
        let t_gpu = model(&gpu, &work, 256, 8 * 1024);
        let t_cpu = model(&cpu, &work, 256, 8 * 1024);
        let speedup = t_cpu.modeled_seconds / t_gpu.modeled_seconds;
        assert!(
            (5.0..60.0).contains(&speedup),
            "expected an order-of-10x GPU advantage, got {speedup}"
        );
    }
}
