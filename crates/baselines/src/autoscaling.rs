//! Autoscaling (Mao & Humphrey, "Auto-scaling to Minimize Cost and Meet
//! Application Deadlines in Cloud Workflows", SC'11).
//!
//! The algorithm the paper compares Deco against on the workflow
//! scheduling problem. Its pipeline, reproduced here:
//!
//! 1. **Deadline assignment** — distribute the workflow deadline over the
//!    DAG's levels proportionally to each level's expected duration on a
//!    reference (fastest) type, so every task receives a sub-deadline.
//! 2. **Instance selection** — for each task, the most *cost-efficient*
//!    type that still meets the task's sub-deadline on mean execution
//!    times (deterministic — Autoscaling has no notion of performance
//!    distributions, which is exactly where Deco's probabilistic
//!    evaluation wins).
//! 3. **Consolidation** — pack the typed tasks onto instances to exploit
//!    partial hours (shared with every other algorithm in this repository
//!    via [`Plan::packed`]).
//!
//! The known weakness the paper exploits: deadline assignment fixes each
//! task's budget *locally*, so slack cannot be shifted between levels, and
//! mean-based selection under-provisions high-percentile requirements.

use deco_cloud::plan::mean_exec_seconds;
use deco_cloud::{CloudSpec, Plan};
use deco_workflow::Workflow;

/// Per-task sub-deadlines via proportional level-based deadline assignment.
///
/// Returns `(level_of_task, subdeadline_of_task)`; the sub-deadline of a
/// task is the absolute time by which its level must complete.
pub fn assign_deadlines(
    wf: &Workflow,
    spec: &CloudSpec,
    deadline: f64,
    reference_type: usize,
) -> Vec<f64> {
    assert!(deadline > 0.0);
    let groups = wf.level_groups();
    // Level weight: slowest task of the level on the reference type.
    let weights: Vec<f64> = groups
        .iter()
        .map(|g| {
            g.iter()
                .map(|&t| mean_exec_seconds(spec, reference_type, wf, t))
                .fold(0.0f64, f64::max)
        })
        .collect();
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "workflow has no work");
    // Absolute deadline per level (prefix sums).
    let mut acc = 0.0;
    let level_deadline: Vec<f64> = weights
        .iter()
        .map(|w| {
            acc += w / total * deadline;
            acc
        })
        .collect();
    let levels = wf.levels();
    wf.task_ids()
        .map(|t| level_deadline[levels[t.index()]])
        .collect()
}

/// The per-level *duration budget* each task must fit into.
fn level_budgets(
    wf: &Workflow,
    spec: &CloudSpec,
    deadline: f64,
    reference_type: usize,
) -> Vec<f64> {
    let groups = wf.level_groups();
    let weights: Vec<f64> = groups
        .iter()
        .map(|g| {
            g.iter()
                .map(|&t| mean_exec_seconds(spec, reference_type, wf, t))
                .fold(0.0f64, f64::max)
        })
        .collect();
    let total: f64 = weights.iter().sum();
    weights.iter().map(|w| w / total * deadline).collect()
}

/// Instance types chosen by Autoscaling for every task.
pub fn autoscaling_types(wf: &Workflow, spec: &CloudSpec, deadline: f64) -> Vec<usize> {
    let reference = spec.priciest_type();
    let budgets = level_budgets(wf, spec, deadline, reference);
    let levels = wf.levels();
    wf.task_ids()
        .map(|t| {
            let budget = budgets[levels[t.index()]];
            // Cost-efficiency: cheapest hourly price among the types whose
            // mean execution time fits the budget; fall back to the
            // fastest type when none fits.
            (0..spec.k())
                .filter(|&ty| mean_exec_seconds(spec, ty, wf, t) <= budget)
                .min_by(|&a, &b| {
                    spec.types[a]
                        .price_per_hour
                        .partial_cmp(&spec.types[b].price_per_hour)
                        .unwrap()
                })
                .unwrap_or(reference)
        })
        .collect()
}

/// The complete Autoscaling plan: typed selection + consolidation (the
/// same deadline-aware packer every algorithm uses, so comparisons isolate
/// the *type selection* policy).
pub fn autoscaling_plan(wf: &Workflow, spec: &CloudSpec, deadline: f64, region: usize) -> Plan {
    let types = autoscaling_types(wf, spec, deadline);
    Plan::packed_deadline(wf, &types, region, spec, deadline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_cloud::plan::mean_exec_seconds;
    use deco_workflow::generators;

    fn spec() -> CloudSpec {
        CloudSpec::amazon_ec2()
    }

    /// Critical-path mean makespan under a type assignment.
    fn mean_makespan(wf: &Workflow, spec: &CloudSpec, types: &[usize]) -> f64 {
        wf.critical_path(|t| mean_exec_seconds(spec, types[t.index()], wf, t))
            .1
    }

    #[test]
    fn subdeadlines_are_monotone_over_levels() {
        let spec = spec();
        let wf = generators::montage(1, 1);
        let d = assign_deadlines(&wf, &spec, 1000.0, 3);
        let levels = wf.levels();
        for e in wf.edges() {
            assert!(
                d[e.from.index()] <= d[e.to.index()] + 1e-9,
                "parent deadline after child"
            );
            assert!(levels[e.from.index()] < levels[e.to.index()]);
        }
        // The last level's deadline is the workflow deadline.
        let max = d.iter().cloned().fold(0.0f64, f64::max);
        assert!((max - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn tight_deadline_buys_big_instances() {
        let spec = spec();
        let wf = generators::montage(1, 2);
        // Dmin-ish: everything on the fastest type along the critical path.
        let tight = mean_makespan(&wf, &spec, &vec![3; wf.len()]) * 1.2;
        let types = autoscaling_types(&wf, &spec, tight);
        let avg: f64 = types.iter().sum::<usize>() as f64 / types.len() as f64;
        assert!(avg > 1.5, "tight deadlines need powerful types, got {avg}");
    }

    #[test]
    fn loose_deadline_buys_cheap_instances() {
        let spec = spec();
        let wf = generators::montage(1, 2);
        let loose = mean_makespan(&wf, &spec, &vec![0; wf.len()]) * 10.0;
        let types = autoscaling_types(&wf, &spec, loose);
        assert!(
            types.iter().all(|&t| t == 0),
            "with huge slack everything fits the cheapest type: {types:?}"
        );
    }

    #[test]
    fn selection_meets_mean_deadline_when_feasible() {
        let spec = spec();
        let wf = generators::montage(1, 3);
        let feasible = mean_makespan(&wf, &spec, &vec![3; wf.len()]) * 2.0;
        let types = autoscaling_types(&wf, &spec, feasible);
        let makespan = mean_makespan(&wf, &spec, &types);
        assert!(
            makespan <= feasible * 1.05,
            "mean makespan {makespan} vs deadline {feasible}"
        );
    }

    #[test]
    fn impossible_deadline_falls_back_to_fastest() {
        let spec = spec();
        let wf = generators::montage(1, 4);
        let types = autoscaling_types(&wf, &spec, 0.001);
        assert!(types.iter().all(|&t| t == spec.priciest_type()));
    }

    #[test]
    fn plan_is_valid_and_consolidated() {
        let spec = spec();
        let wf = generators::montage(1, 5);
        let plan = autoscaling_plan(&wf, &spec, 2000.0, 0);
        plan.validate(&wf, &spec).unwrap();
        assert!(
            plan.slots.len() < wf.len(),
            "consolidation must reuse instances"
        );
    }
}
