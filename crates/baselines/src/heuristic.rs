//! The follow-the-cost comparator (paper Section 6.1, "Heuristic").
//!
//! "At the offline stage, we consider the price differences among cloud
//! data centers and determine the plan of migrating the workflows from
//! their initial deployed data center to the more cost-efficient one. At
//! runtime, we monitor the task execution time and make migration
//! adjustments when the monitored execution time differs from the
//! estimation by a threshold."

use deco_cloud::plan::{mean_exec_seconds, VmSlot};
use deco_cloud::sim::{RuntimePolicy, Simulation};
use deco_cloud::CloudSpec;
use deco_workflow::{TaskId, Workflow};

/// The offline stage: pick the cheaper region for the whole workflow,
/// charging the migration's transfer bytes against the price difference.
pub fn offline_region_choice(
    wf: &Workflow,
    spec: &CloudSpec,
    types: &[usize],
    initial_region: usize,
) -> usize {
    let mut best = initial_region;
    let mut best_cost = f64::INFINITY;
    for (r, _) in spec.regions.iter().enumerate() {
        // Execution cost: mean instance-seconds priced in region r.
        let exec: f64 = wf
            .task_ids()
            .map(|t| {
                let ty = types[t.index()];
                mean_exec_seconds(spec, ty, wf, t) / 3600.0 * spec.price(ty, r)
            })
            .sum();
        // Migration cost: staged input bytes cross the region boundary.
        let migration = if r == initial_region {
            0.0
        } else {
            let bytes: f64 = wf
                .roots()
                .iter()
                .map(|&t| wf.task(t).profile.read_bytes)
                .sum();
            bytes / (1024.0 * 1024. * 1024.0) * spec.inter_region_price_per_gb
        };
        let total = exec + migration;
        if total < best_cost {
            best_cost = total;
            best = r;
        }
    }
    best
}

/// The runtime stage: a [`RuntimePolicy`] that re-runs the offline decision
/// whenever a finished task's measured duration deviates from its estimate
/// by more than `threshold` (relative).
pub struct FollowCostHeuristic {
    pub spec: CloudSpec,
    pub types: Vec<usize>,
    pub threshold: f64,
    /// Estimated duration per task (mean model), set at construction.
    estimates: Vec<f64>,
    /// Tasks whose deviation we already reacted to.
    handled: Vec<bool>,
    /// Count of runtime adjustments performed (exposed for the Figure 10b
    /// overhead/threshold trade-off study).
    pub adjustments: usize,
}

impl FollowCostHeuristic {
    pub fn new(wf: &Workflow, spec: CloudSpec, types: Vec<usize>, threshold: f64) -> Self {
        assert!(threshold > 0.0);
        assert_eq!(types.len(), wf.len());
        let estimates = wf
            .task_ids()
            .map(|t| mean_exec_seconds(&spec, types[t.index()], wf, t))
            .collect();
        FollowCostHeuristic {
            spec,
            types,
            threshold,
            estimates,
            handled: vec![false; wf.len()],
            adjustments: 0,
        }
    }
}

impl RuntimePolicy for FollowCostHeuristic {
    fn replan(&mut self, sim: &mut Simulation<'_>, wf: &Workflow) {
        // Monitor: any newly dispatched task whose *measured* duration
        // deviates from its estimate by more than the threshold?
        let mut triggered = false;
        for t in wf.task_ids() {
            if self.handled[t.index()] || !sim.is_started(t) {
                continue;
            }
            self.handled[t.index()] = true;
            let est = self.estimates[t.index()];
            if est <= 0.0 {
                continue;
            }
            let measured = sim.duration_of(t).expect("started task has a duration");
            if (measured - est).abs() / est > self.threshold {
                triggered = true;
            }
        }
        // First replan always runs the offline stage once (initial
        // migration decision); afterwards only on trigger.
        if self.adjustments > 0 && !triggered {
            return;
        }
        self.adjustments += 1;
        let pending = sim.pending_tasks();
        if pending.is_empty() {
            return;
        }
        // Offline decision for the remaining tasks.
        let current_region = sim.plan().task_region(pending[0]);
        let target = offline_region_choice(wf, &self.spec, &self.types, current_region);
        if target != current_region {
            // Group by previous instance so migration keeps consolidation.
            let mut by_slot: std::collections::BTreeMap<usize, Vec<TaskId>> =
                std::collections::BTreeMap::new();
            for t in pending {
                by_slot
                    .entry(sim.plan().assign[t.index()])
                    .or_default()
                    .push(t);
            }
            for (_, tasks) in by_slot {
                let itype = self.types[tasks[0].index()];
                sim.reassign_group(
                    &tasks,
                    VmSlot {
                        itype,
                        region: target,
                    },
                );
            }
        }
    }
}

/// Convenience: tasks not yet dispatched, in topological order (mirrors
/// the Unfinished(sw) set of Equation (7)).
pub fn pending_in_topo_order(sim: &Simulation<'_>, wf: &Workflow) -> Vec<TaskId> {
    wf.topo_order()
        .into_iter()
        .filter(|&t| !sim.is_started(t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_cloud::sim::run_with_policy;
    use deco_cloud::Plan;
    use deco_workflow::generators;

    #[test]
    fn offline_choice_prefers_cheap_region_for_compute_heavy_work() {
        let spec = CloudSpec::amazon_ec2();
        // Heavy CPU, tiny data: migration is nearly free, so the cheaper
        // region (0) wins even when starting in region 1.
        let wf = generators::pipeline(4, 5000.0, 1024);
        let choice = offline_region_choice(&wf, &spec, &[2; 4], 1);
        assert_eq!(choice, 0, "us-east is 33% cheaper");
    }

    #[test]
    fn offline_choice_stays_put_when_data_dominates() {
        let mut spec = CloudSpec::amazon_ec2();
        spec.inter_region_price_per_gb = 1e6; // prohibitive transfer
        let wf = generators::pipeline(2, 1.0, 10 * 1024 * 1024 * 1024);
        let choice = offline_region_choice(&wf, &spec, &[0; 2], 1);
        assert_eq!(choice, 1, "staying in the pricier region avoids transfer");
    }

    #[test]
    fn policy_migrates_a_workflow_started_in_the_expensive_region() {
        let spec = CloudSpec::amazon_ec2();
        let wf = generators::pipeline(4, 3000.0, 1024);
        let types = vec![0; 4];
        let plan = Plan::packed(&wf, &types, 1, &spec); // starts in Singapore
        let mut policy = FollowCostHeuristic::new(&wf, spec.clone(), types, 0.5);
        let r = run_with_policy(&spec, &wf, &plan, &mut policy, 100.0, 3);
        assert!(policy.adjustments >= 1);
        // At least one later task must have moved to region 0 (it pays a
        // cross-region transfer on the way).
        assert!(
            r.cost.transfer > 0.0,
            "migration crosses the region boundary"
        );
    }

    #[test]
    fn already_cheap_region_stays_without_transfer() {
        let spec = CloudSpec::amazon_ec2();
        let wf = generators::pipeline(4, 3000.0, 1024);
        let types = vec![0; 4];
        let plan = Plan::packed(&wf, &types, 0, &spec);
        let mut policy = FollowCostHeuristic::new(&wf, spec.clone(), types, 0.5);
        let r = run_with_policy(&spec, &wf, &plan, &mut policy, 100.0, 4);
        assert_eq!(r.cost.transfer, 0.0);
    }
}
