//! SPSS — Static Provisioning Static Scheduling (Malawski, Juve, Deelman,
//! Nabrzyski: "Cost- and Deadline-constrained Provisioning for Scientific
//! Workflow Ensembles in IaaS Clouds", SC'12).
//!
//! The ensemble comparator of Section 6.3.2. SPSS is an *offline* planner:
//! it walks the ensemble in priority order and, for each workflow, builds
//! a static plan that meets the workflow's deadline, admitting the
//! workflow if the plan's estimated cost still fits the remaining budget.
//! Heuristics "reduce resource waste on workflows that cannot be
//! completed": a workflow whose deadline cannot be met at all is skipped
//! outright.
//!
//! Our SPSS plans each workflow with the classic uniform-fleet rule:
//! choose the cheapest instance type whose mean critical-path makespan
//! meets the deadline, then consolidate. That is deliberately coarser than
//! Deco's per-task search — the gap (the paper measures SPSS' average
//! per-workflow cost at ~1.4× Deco's) comes precisely from this rigidity.

use deco_cloud::plan::{mean_exec_seconds, mean_schedule};
use deco_cloud::{CloudSpec, Plan};
use deco_workflow::{Ensemble, Workflow};

/// Admission outcome for an ensemble.
#[derive(Debug, Clone)]
pub struct SpssOutcome {
    /// Which members were admitted (same order as `ensemble.members`).
    pub admitted: Vec<bool>,
    /// Planned cost per admitted member (0 for skipped ones).
    pub est_cost: Vec<f64>,
    /// Plans for admitted members.
    pub plans: Vec<Option<Plan>>,
    /// Total planned cost.
    pub total_cost: f64,
    /// Ensemble score (Equation (4)) of the admitted set.
    pub score: f64,
}

/// Plan a single workflow for SPSS: cheapest uniform type meeting the
/// deadline on mean times. `None` when even the fastest fleet misses it.
pub fn spss_plan_workflow(
    wf: &Workflow,
    spec: &CloudSpec,
    deadline: f64,
    region: usize,
) -> Option<(Plan, f64)> {
    let mut by_price: Vec<usize> = (0..spec.k()).collect();
    by_price.sort_by(|&a, &b| {
        spec.types[a]
            .price_per_hour
            .partial_cmp(&spec.types[b].price_per_hour)
            .unwrap()
    });
    // SPSS keeps the standard 15% scheduling margin when packing (as every
    // planner here does); its distinguishing weakness is the *deterministic*
    // mean-based admission criterion, not reckless packing.
    let packing_deadline = deadline * 0.85;
    for ty in by_price {
        let plan = Plan::packed_deadline(wf, &vec![ty; wf.len()], region, spec, packing_deadline);
        let sched = mean_schedule(wf, &plan, spec);
        if sched.makespan <= packing_deadline {
            return Some((plan, sched.cost.total()));
        }
    }
    None
}

/// Run SPSS admission over an ensemble with per-member deadlines and a
/// shared budget.
pub fn spss_admit(
    ensemble: &Ensemble,
    spec: &CloudSpec,
    deadlines: &[f64],
    budget: f64,
    region: usize,
) -> SpssOutcome {
    assert_eq!(deadlines.len(), ensemble.len());
    let n = ensemble.len();
    let mut admitted = vec![false; n];
    let mut est_cost = vec![0.0; n];
    let mut plans: Vec<Option<Plan>> = vec![None; n];
    let mut total = 0.0;
    for &i in &ensemble.by_priority() {
        let wf = &ensemble.members[i].workflow;
        if let Some((plan, cost)) = spss_plan_workflow(wf, spec, deadlines[i], region) {
            if total + cost <= budget + 1e-9 {
                total += cost;
                admitted[i] = true;
                est_cost[i] = cost;
                plans[i] = Some(plan);
            }
        }
    }
    let score = ensemble.score_of(&admitted);
    SpssOutcome {
        admitted,
        est_cost,
        plans,
        total_cost: total,
        score,
    }
}

/// The smallest deadline any fleet can achieve for `wf` (mean critical
/// path on the fastest type) — used to construct the paper's
/// MinDeadline/MaxDeadline and MinBudget/MaxBudget experiment ranges.
pub fn min_possible_makespan(wf: &Workflow, spec: &CloudSpec) -> f64 {
    let fastest = spec.priciest_type();
    wf.critical_path(|t| mean_exec_seconds(spec, fastest, wf, t))
        .1
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_workflow::generators::App;
    use deco_workflow::EnsembleType;

    fn small_ensemble() -> Ensemble {
        Ensemble::generate(App::Ligo, EnsembleType::Constant, 4, &[20], 1)
    }

    fn spec() -> CloudSpec {
        CloudSpec::amazon_ec2()
    }

    fn loose_deadlines(e: &Ensemble, spec: &CloudSpec) -> Vec<f64> {
        e.members
            .iter()
            .map(|m| min_possible_makespan(&m.workflow, spec) * 20.0)
            .collect()
    }

    #[test]
    fn unlimited_budget_admits_everything() {
        let e = small_ensemble();
        let spec = spec();
        let d = loose_deadlines(&e, &spec);
        let out = spss_admit(&e, &spec, &d, f64::INFINITY, 0);
        assert!(out.admitted.iter().all(|&a| a));
        assert!((out.score - e.max_score()).abs() < 1e-12);
        assert!(out.total_cost > 0.0);
    }

    #[test]
    fn zero_budget_admits_nothing() {
        let e = small_ensemble();
        let spec = spec();
        let d = loose_deadlines(&e, &spec);
        let out = spss_admit(&e, &spec, &d, 0.0, 0);
        assert!(out.admitted.iter().all(|&a| !a));
        assert_eq!(out.score, 0.0);
    }

    #[test]
    fn admission_is_by_priority() {
        let e = small_ensemble();
        let spec = spec();
        let d = loose_deadlines(&e, &spec);
        // Budget for exactly the highest-priority workflow.
        let full = spss_admit(&e, &spec, &d, f64::INFINITY, 0);
        let top = e.by_priority()[0];
        let out = spss_admit(&e, &spec, &d, full.est_cost[top] * 1.01, 0);
        // The highest-priority member is admitted first; anything else
        // admitted must be cheaper members that still fit the remainder.
        assert!(out.admitted[top], "priority-0 member must be admitted");
        assert!(out.score >= 1.0);
        assert!(out.total_cost <= full.est_cost[top] * 1.01 + 1e-9);
    }

    #[test]
    fn impossible_deadlines_are_skipped_without_spending() {
        let e = small_ensemble();
        let spec = spec();
        let d = vec![0.0001; e.len()];
        let out = spss_admit(&e, &spec, &d, f64::INFINITY, 0);
        assert!(out.admitted.iter().all(|&a| !a));
        assert_eq!(out.total_cost, 0.0);
    }

    #[test]
    fn tighter_deadline_raises_cost() {
        let e = small_ensemble();
        let spec = spec();
        let wf = &e.members[0].workflow;
        let dmin = min_possible_makespan(wf, &spec);
        let (_, loose_cost) = spss_plan_workflow(wf, &spec, dmin * 30.0, 0).unwrap();
        let (_, tight_cost) = spss_plan_workflow(wf, &spec, dmin * 1.3, 0).unwrap();
        assert!(
            tight_cost >= loose_cost,
            "tight {tight_cost} vs loose {loose_cost}"
        );
    }

    #[test]
    fn plans_meet_their_deadlines_in_expectation() {
        let e = small_ensemble();
        let spec = spec();
        let d = loose_deadlines(&e, &spec);
        let out = spss_admit(&e, &spec, &d, f64::INFINITY, 0);
        for (i, plan) in out.plans.iter().enumerate() {
            let plan = plan.as_ref().unwrap();
            let sched = mean_schedule(&e.members[i].workflow, plan, &spec);
            assert!(sched.makespan <= d[i]);
        }
    }
}
