//! State-of-the-art comparators the paper evaluates Deco against
//! (Section 6.1 "Implementation details"):
//!
//! * [`autoscaling`] — Mao & Humphrey (SC'11): deadline assignment plus
//!   cost-efficient per-task instance selection, for the workflow
//!   scheduling problem.
//! * [`spss`] — Malawski et al. (SC'12): Static Provisioning Static
//!   Scheduling, for workflow ensembles.
//! * [`heuristic`] — the paper's own light-weight comparator for
//!   follow-the-cost: an offline price-difference migration plan plus
//!   threshold-triggered runtime adjustment.
//! * [`naive`] — the Figure 1 configurations: one fixed instance type for
//!   everything, and Pegasus' default Random scheduler.

pub mod autoscaling;
pub mod heuristic;
pub mod naive;
pub mod spss;

pub use autoscaling::autoscaling_plan;
pub use heuristic::FollowCostHeuristic;
pub use naive::{random_types, single_type_plan};
pub use spss::{spss_admit, SpssOutcome};
