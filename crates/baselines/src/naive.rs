//! The naive configurations of Figure 1: a single fixed instance type for
//! every task, and Pegasus' default Random scheduler.

use deco_cloud::{CloudSpec, Plan};
use deco_prob::rng::split_indexed;
use deco_workflow::Workflow;
use rand::Rng;

/// All tasks on one instance type, consolidated against the deadline (the
/// "m1.small", "m1.medium", … bars of Figure 1).
pub fn single_type_plan(
    wf: &Workflow,
    spec: &CloudSpec,
    itype: usize,
    region: usize,
    deadline: f64,
) -> Plan {
    Plan::packed_deadline(wf, &vec![itype; wf.len()], region, spec, deadline)
}

/// Random instance type per task (Pegasus' default Random scheduler in the
/// site-selection sense).
pub fn random_types(wf: &Workflow, spec: &CloudSpec, seed: u64) -> Vec<usize> {
    let mut rng = split_indexed(seed, 0x72616e64);
    (0..wf.len()).map(|_| rng.gen_range(0..spec.k())).collect()
}

/// Random scheduler plan.
pub fn random_plan(wf: &Workflow, spec: &CloudSpec, seed: u64, region: usize) -> Plan {
    Plan::packed(wf, &random_types(wf, spec, seed), region, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_workflow::generators;

    #[test]
    fn single_type_uses_only_that_type() {
        let spec = CloudSpec::amazon_ec2();
        let wf = generators::montage(1, 0);
        let plan = single_type_plan(&wf, &spec, 2, 0, 1e9);
        assert!(plan.slots.iter().all(|s| s.itype == 2));
        plan.validate(&wf, &spec).unwrap();
    }

    #[test]
    fn random_types_cover_the_catalog_eventually() {
        let spec = CloudSpec::amazon_ec2();
        let wf = generators::montage(4, 0);
        let types = random_types(&wf, &spec, 42);
        let distinct: std::collections::HashSet<_> = types.iter().collect();
        assert_eq!(
            distinct.len(),
            spec.k(),
            "hundreds of draws hit all 4 types"
        );
        // Deterministic per seed.
        assert_eq!(types, random_types(&wf, &spec, 42));
        assert_ne!(types, random_types(&wf, &spec, 43));
    }

    #[test]
    fn random_plan_validates() {
        let spec = CloudSpec::amazon_ec2();
        let wf = generators::montage(1, 0);
        random_plan(&wf, &spec, 7, 0).validate(&wf, &spec).unwrap();
    }
}
