//! Regenerate the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p deco-bench --bin experiments -- all
//! cargo run --release -p deco-bench --bin experiments -- fig8 --quick
//! ```
//!
//! Targets: table2, fig1, fig2, fig6, fig7, fig8, fig9, fig10, fig11,
//! speedup-sched, speedup-ens, serve, ablations, all. `--quick` shrinks
//! the workloads (see `deco_bench::Scale`). The `serve` target also
//! writes the faulted run's per-cycle rows to
//! `results/serve_cycles.jsonl`.

use deco_bench::common::Env;
use deco_bench::{
    ablation, ensemble_exp, figures, followcost_exp, scheduling_exp, serve_exp, speedup_exp, Scale,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let targets = if targets.is_empty() {
        vec!["all"]
    } else {
        targets
    };
    let scale = if quick { Scale::Quick } else { Scale::Full };
    eprintln!("# scale: {scale:?} — calibrating the cloud …");
    let env = Env::new(scale);

    let want = |name: &str| targets.contains(&name) || targets.contains(&"all");

    if want("table2") {
        println!("{}", figures::table2(&env));
    }
    if want("fig6") {
        println!("{}", figures::fig6(&env).render());
    }
    if want("fig7") {
        println!("{}", figures::fig7(&env).render());
    }
    if want("fig1") {
        eprintln!("# running fig1 …");
        println!("{}", figures::fig1(&env).render());
    }
    if want("fig2") {
        eprintln!("# running fig2 …");
        println!("{}", figures::fig2(&env).render());
    }
    if want("fig8") {
        eprintln!("# running fig8 …");
        println!("{}", scheduling_exp::fig8(&env).render());
    }
    if want("fig11") {
        eprintln!("# running fig11 …");
        println!("{}", scheduling_exp::fig11(&env).render());
    }
    if want("fig9") {
        eprintln!("# running fig9 …");
        let r = ensemble_exp::fig9(&env);
        println!("{}", r.render());
        println!(
            "mean per-workflow cost ratio SPSS/Deco: {:.2} (paper: ~1.4)\n",
            r.mean_cost_ratio()
        );
    }
    if want("fig10") || want("fig10a") || want("fig10b") {
        eprintln!("# running fig10 …");
        println!("{}", followcost_exp::fig10(&env).render());
    }
    if want("speedup-sched") {
        eprintln!("# running speedup-sched …");
        println!(
            "{}",
            speedup_exp::speedup_scheduling(&env)
                .render("Section 6.3.1: GPU vs CPU search speedups (scheduling)")
        );
    }
    if want("speedup-ens") || want("overhead") {
        eprintln!("# running speedup-ens …");
        println!(
            "{}",
            speedup_exp::speedup_ensemble(&env)
                .render("Section 6.3.2: GPU vs CPU speedups + per-task overhead (ensembles)")
        );
    }
    if want("serve") {
        eprintln!("# running serve …");
        let r = serve_exp::run(&env);
        println!("{}", r.render());
        let out = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/serve_cycles.jsonl"
        );
        std::fs::write(out, r.cycle_rows_jsonl()).expect("write results/serve_cycles.jsonl");
        eprintln!(
            "# wrote {} per-cycle rows to results/serve_cycles.jsonl",
            r.faulted.cycle_rows.len()
        );
    }
    if want("ablations") {
        eprintln!("# running ablations …");
        for a in ablation::all(&env) {
            println!("{}", a.render());
        }
    }
}
