//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Section 6).
//!
//! Each `figNN` / `tableNN` module exposes a `run(scale) -> …Result` that
//! produces the same rows/series the paper reports, plus a `render()` that
//! prints them. The `experiments` binary drives them from the command
//! line; the Criterion benches in `benches/` time the computational core
//! of each experiment at [`Scale::Quick`].
//!
//! Absolute numbers come from the simulated substrate, so the comparisons
//! to check against the paper are the *shapes*: who wins, by what factor,
//! and where the crossovers fall. EXPERIMENTS.md records paper-vs-measured
//! for every row.

pub mod ablation;
pub mod common;
pub mod ensemble_exp;
pub mod figures;
pub mod followcost_exp;
pub mod scheduling_exp;
pub mod serve_exp;
pub mod speedup_exp;

/// Experiment scale.
///
/// `Quick` shrinks workflows, repetitions and Monte-Carlo budgets so a full
/// sweep finishes in seconds (used by Criterion and CI); `Full` runs the
/// paper's configuration sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Quick,
    Full,
}

impl Scale {
    /// Montage degrees standing in for Montage-1/4/8.
    pub fn montage_degrees(self) -> Vec<u32> {
        match self {
            Scale::Quick => vec![1, 2],
            Scale::Full => vec![1, 4, 8],
        }
    }

    /// Repetitions of each plan against the dynamic cloud (the paper runs
    /// 100).
    pub fn runs(self) -> usize {
        match self {
            Scale::Quick => 20,
            Scale::Full => 100,
        }
    }

    /// Monte-Carlo iterations per searched state.
    pub fn mc_iters(self) -> usize {
        match self {
            Scale::Quick => 50,
            Scale::Full => 200,
        }
    }

    /// Calibration samples per component (the paper measures 10,000).
    pub fn calibration_samples(self) -> usize {
        match self {
            Scale::Quick => 2_000,
            Scale::Full => 10_000,
        }
    }
}
