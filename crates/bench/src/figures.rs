//! Figures 1, 2, 6, 7 and Table 2: motivation and calibration results.

use crate::common::{row, Env, ROOT_SEED};
use deco_pegasus::scheduler::{
    AutoscalingScheduler, DecoScheduler, RandomScheduler, Requirements, Scheduler,
    SingleTypeScheduler,
};
use deco_pegasus::Pegasus;
use deco_prob::fit::normality_test;
use deco_prob::stats::{self, Summary};
use deco_workflow::generators;

// ---------------------------------------------------------------------------
// Figure 1 — normalized average cost under seven instance configurations
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig1Row {
    pub config: String,
    /// Average cost over the campaign, normalized to the most expensive
    /// configuration.
    pub norm_cost: f64,
    /// Fraction of runs meeting the deadline (the paper notes m1.small and
    /// m1.medium cannot satisfy the constraint).
    pub deadline_hit_rate: f64,
}

#[derive(Debug, Clone)]
pub struct Fig1Result {
    pub rows: Vec<Fig1Row>,
}

/// Run the Figure 1 experiment: Montage with a deadline constraint under
/// the seven configurations of the introduction.
pub fn fig1(env: &Env) -> Fig1Result {
    let degree = *env.scale.montage_degrees().last().unwrap();
    let wf = generators::montage(degree, ROOT_SEED);
    let wms = Pegasus::new(env.store.clone());
    let req = Requirements {
        deadline: env.medium_deadline(&wf),
        percentile: 0.96,
    };
    let deco = DecoScheduler {
        options: env.deco_options(),
        ..Default::default()
    };
    let schedulers: Vec<(String, Box<dyn Scheduler>)> = vec![
        (
            "m1.small".into(),
            Box::new(SingleTypeScheduler { itype: 0 }),
        ),
        (
            "m1.medium".into(),
            Box::new(SingleTypeScheduler { itype: 1 }),
        ),
        (
            "m1.large".into(),
            Box::new(SingleTypeScheduler { itype: 2 }),
        ),
        (
            "m1.xlarge".into(),
            Box::new(SingleTypeScheduler { itype: 3 }),
        ),
        (
            "random".into(),
            Box::new(RandomScheduler { seed: ROOT_SEED }),
        ),
        ("autoscaling".into(), Box::new(AutoscalingScheduler)),
        ("deco".into(), Box::new(deco)),
    ];
    let mut raw = Vec::new();
    for (name, s) in &schedulers {
        let exe = wms
            .plan(&wf, s.as_ref(), req)
            .unwrap_or_else(|e| panic!("{name} failed to plan: {e}"));
        let campaign = wms.run_many(&exe, req, name, env.scale.runs(), ROOT_SEED ^ 0xF161);
        raw.push((
            name.clone(),
            campaign.mean_cost(),
            campaign.deadline_hit_rate,
        ));
    }
    let max_cost = raw.iter().map(|r| r.1).fold(0.0f64, f64::max);
    Fig1Result {
        rows: raw
            .into_iter()
            .map(|(config, cost, hit)| Fig1Row {
                config,
                norm_cost: cost / max_cost,
                deadline_hit_rate: hit,
            })
            .collect(),
    }
}

impl Fig1Result {
    pub fn render(&self) -> String {
        let mut s = String::from(
            "Figure 1: normalized average cost of Montage under instance configurations\n",
        );
        s.push_str(&format!(
            "{:<24} {:>9} {:>9}\n",
            "config", "norm cost", "hit rate"
        ));
        for r in &self.rows {
            s.push_str(&row(&r.config, &[r.norm_cost, r.deadline_hit_rate]));
            s.push('\n');
        }
        s
    }

    pub fn get(&self, config: &str) -> &Fig1Row {
        self.rows
            .iter()
            .find(|r| r.config == config)
            .expect("unknown config")
    }
}

// ---------------------------------------------------------------------------
// Figure 2 — execution time variance of Deco-optimized Montage runs
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig2Row {
    pub workflow: String,
    /// Quantiles of makespans normalized by their mean (box-plot data).
    pub normalized: Summary,
    /// (max - min) / mean spread.
    pub relative_spread: f64,
}

#[derive(Debug, Clone)]
pub struct Fig2Result {
    pub rows: Vec<Fig2Row>,
}

/// Run the Figure 2 experiment: per-size makespan variance of 100
/// executions of Deco-planned Montage workflows.
pub fn fig2(env: &Env) -> Fig2Result {
    let wms = Pegasus::new(env.store.clone());
    let mut rows = Vec::new();
    for degree in env.scale.montage_degrees() {
        let wf = generators::montage(degree, ROOT_SEED);
        let req = Requirements {
            deadline: env.medium_deadline(&wf),
            percentile: 0.96,
        };
        let deco = DecoScheduler {
            options: env.deco_options(),
            ..Default::default()
        };
        let exe = wms.plan(&wf, &deco, req).expect("deco plan");
        let campaign = wms.run_many(&exe, req, "deco", env.scale.runs(), ROOT_SEED ^ 0xF162);
        let mean = campaign.mean_makespan();
        let normalized: Vec<f64> = campaign.makespans.iter().map(|m| m / mean).collect();
        rows.push(Fig2Row {
            workflow: format!("Montage-{degree}"),
            normalized: Summary::of(&normalized),
            relative_spread: stats::relative_spread(&campaign.makespans),
        });
    }
    Fig2Result { rows }
}

impl Fig2Result {
    pub fn render(&self) -> String {
        let mut s = String::from("Figure 2: normalized execution-time quantiles (Deco plans)\n");
        s.push_str(&format!(
            "{:<24} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            "workflow", "min", "q1", "median", "q3", "max", "spread"
        ));
        for r in &self.rows {
            s.push_str(&row(
                &r.workflow,
                &[
                    r.normalized.min,
                    r.normalized.q1,
                    r.normalized.median,
                    r.normalized.q3,
                    r.normalized.max,
                    r.relative_spread,
                ],
            ));
            s.push('\n');
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Table 2 — calibrated I/O distribution parameters
// ---------------------------------------------------------------------------

/// Regenerate Table 2 from the environment's calibration.
pub fn table2(env: &Env) -> String {
    let mut s = String::from("Table 2: fitted I/O performance distributions\n");
    s.push_str(&env.calibration.table2());
    s
}

// ---------------------------------------------------------------------------
// Figures 6 and 7 — network performance dynamics
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// Relative spread of m1.medium network bandwidth (the "up to 50%"
    /// observation of Figure 6a).
    pub medium_spread: f64,
    /// Fitted Normal (mu, sigma) of the medium network samples.
    pub medium_fit: (f64, f64),
    /// Chi-square p-value of the normality test (Figure 6b).
    pub normality_p: f64,
}

pub fn fig6(env: &Env) -> Fig6Result {
    let medium = &env.calibration.types[1];
    let (fit, gof) = normality_test(&medium.net_samples, 20);
    Fig6Result {
        medium_spread: stats::relative_spread(&medium.net_samples),
        medium_fit: (fit.mu, fit.sigma),
        normality_p: gof.p_value,
    }
}

impl Fig6Result {
    pub fn render(&self) -> String {
        format!(
            "Figure 6: m1.medium network dynamics\n\
             relative spread (max-min)/mean: {:.3}\n\
             fitted Normal: mu = {:.1} MB/s, sigma = {:.1} MB/s\n\
             normality chi-square p-value: {:.3} (null retained at 1%: {})\n",
            self.medium_spread,
            self.medium_fit.0,
            self.medium_fit.1,
            self.normality_p,
            self.normality_p >= 0.01
        )
    }
}

#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Coefficient of variation of the large↔large link.
    pub large_cv: f64,
    /// Coefficient of variation of the medium↔large link (dominated by
    /// the medium endpoint).
    pub medium_large_cv: f64,
}

pub fn fig7(env: &Env) -> Fig7Result {
    use deco_cloud::PerfComponent;
    // The pair law is the slower endpoint's law (Section 2 of the cloud
    // crate); sample the calibrated histograms.
    let large = env.store.hist(2, PerfComponent::Net);
    let med_large = env.store.pair_net_hist(1, 2);
    let cv = |h: &deco_prob::Histogram| h.variance().sqrt() / h.mean();
    Fig7Result {
        large_cv: cv(large),
        medium_large_cv: cv(med_large),
    }
}

impl Fig7Result {
    pub fn render(&self) -> String {
        format!(
            "Figure 7: network histograms by instance-type pairing\n\
             m1.large <-> m1.large   cv = {:.4}\n\
             m1.medium <-> m1.large  cv = {:.4}  (medium endpoint dominates: {})\n",
            self.large_cv,
            self.medium_large_cv,
            self.medium_large_cv > self.large_cv
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    fn env() -> Env {
        Env::new(Scale::Quick)
    }

    #[test]
    fn fig1_shape_matches_paper() {
        let env = env();
        let r = fig1(&env);
        assert_eq!(r.rows.len(), 7);
        // m1.small misses the probabilistic deadline; m1.xlarge meets it.
        assert!(r.get("m1.small").deadline_hit_rate < 0.96);
        assert!(r.get("m1.xlarge").deadline_hit_rate >= 0.9);
        // Among deadline-meeting configurations, Deco is the cheapest.
        let deco = r.get("deco");
        assert!(
            deco.deadline_hit_rate >= 0.8,
            "deco hit rate {}",
            deco.deadline_hit_rate
        );
        assert!(deco.norm_cost <= r.get("m1.xlarge").norm_cost);
        assert!(deco.norm_cost <= r.get("autoscaling").norm_cost * 1.05);
        // The paper reports Deco at ~40% of the most expensive config.
        assert!(
            deco.norm_cost < 0.8,
            "deco should be well below the xlarge fleet, got {}",
            deco.norm_cost
        );
    }

    #[test]
    fn fig2_variance_exists_and_grows_reasonably() {
        let env = env();
        let r = fig2(&env);
        for row in &r.rows {
            assert!(row.normalized.max > row.normalized.min);
            assert!(row.relative_spread > 0.0);
            assert!((row.normalized.median - 1.0).abs() < 0.2);
        }
    }

    #[test]
    fn table2_mentions_every_type() {
        let env = env();
        let t = table2(&env);
        for name in ["m1.small", "m1.medium", "m1.large", "m1.xlarge"] {
            assert!(t.contains(name));
        }
    }

    #[test]
    fn fig6_normality_holds() {
        let env = env();
        let r = fig6(&env);
        assert!(r.normality_p >= 0.01, "p {}", r.normality_p);
        assert!(
            r.medium_spread > 0.2,
            "visible dynamics, got {}",
            r.medium_spread
        );
    }

    #[test]
    fn fig7_medium_dominates_pairing() {
        let env = env();
        let r = fig7(&env);
        assert!(r.medium_large_cv > r.large_cv);
    }
}
