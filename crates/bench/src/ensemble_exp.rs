//! Figure 9: workflow ensembles — Deco vs SPSS.

use crate::common::{row, Env, ROOT_SEED};
use deco_baselines::spss::{min_possible_makespan, spss_admit};
use deco_cloud::sim::run_plan;
use deco_cloud::Plan;
use deco_core::ensemble::EnsembleProblem;
use deco_core::estimate::deadline_anchors;
use deco_prob::rng::splitmix64;
use deco_solver::SearchOptions;
use deco_workflow::generators::App;
use deco_workflow::{Ensemble, EnsembleType};

/// Realized score of an admitted set: execute every admitted member
/// `trials` times against the dynamic cloud; a member contributes its
/// score in a trial only when it finishes within its deadline ("the total
/// score of completed workflows"). Returns the mean score over trials.
fn realized_score(
    env: &Env,
    ensemble: &Ensemble,
    admitted: &[bool],
    plans: &[Option<Plan>],
    deadlines: &[f64],
    trials: usize,
    seed: u64,
) -> f64 {
    let mut total = 0.0;
    for trial in 0..trials {
        for i in 0..ensemble.len() {
            if !admitted[i] {
                continue;
            }
            let Some(plan) = &plans[i] else { continue };
            let r = run_plan(
                &env.spec,
                &ensemble.members[i].workflow,
                plan,
                splitmix64(seed ^ (trial as u64) << 20 ^ i as u64),
            );
            if r.makespan <= deadlines[i] {
                total += ensemble.members[i].score();
            }
        }
    }
    total / trials as f64
}

/// One (ensemble type, budget) cell.
#[derive(Debug, Clone)]
pub struct Fig9Cell {
    pub etype: &'static str,
    pub budget_level: usize,
    pub spss_score: f64,
    pub deco_score: f64,
    /// Deco's score normalized to SPSS (>= 1 expected).
    pub norm_score: f64,
    /// Average per-admitted-workflow cost ratio SPSS / Deco (the paper
    /// reports ~1.4x).
    pub cost_ratio: f64,
}

#[derive(Debug, Clone)]
pub struct Fig9Result {
    pub cells: Vec<Fig9Cell>,
}

/// Budgets Bgt1..Bgt5 equally spaced between the cost of the single
/// cheapest member and the cost of all members (per the paper's
/// MinBudget/MaxBudget construction).
fn budget_levels(member_costs: &[f64]) -> Vec<f64> {
    let finite: Vec<f64> = member_costs
        .iter()
        .cloned()
        .filter(|c| c.is_finite())
        .collect();
    let min = finite.iter().cloned().fold(f64::INFINITY, f64::min);
    let max: f64 = finite.iter().sum();
    (0..5).map(|i| min + (max - min) * i as f64 / 4.0).collect()
}

pub fn fig9(env: &Env) -> Fig9Result {
    let (count, sizes): (usize, Vec<usize>) = match env.scale {
        crate::Scale::Quick => (8, vec![20]),
        crate::Scale::Full => (30, vec![20, 100, 1000]),
    };
    let mut cells = Vec::new();
    for etype in EnsembleType::ALL {
        let ensemble = Ensemble::generate(App::Ligo, etype, count, &sizes, ROOT_SEED ^ 0xF9);
        // Per-member deadline D3: the midpoint of [MinDeadline,
        // MaxDeadline] per workflow.
        let deadlines: Vec<f64> = ensemble
            .members
            .iter()
            .map(|m| {
                let (dmin, dmax) = deadline_anchors(&m.workflow, &env.spec);
                0.5 * (dmin + dmax)
            })
            .collect();
        // Deco member plans once per ensemble type; budgets reuse them.
        let opts = env.deco_options();
        let member_plans = EnsembleProblem::plan_members(
            &ensemble,
            &env.spec,
            &env.store,
            &deadlines,
            0.96,
            env.scale.mc_iters().min(80),
            &SearchOptions {
                max_states: 300,
                seed: ROOT_SEED,
                ..Default::default()
            },
            &env.backend(),
        );
        let costs: Vec<f64> = member_plans.iter().map(|p| p.cost).collect();
        let trials = match env.scale {
            crate::Scale::Quick => 5,
            crate::Scale::Full => 20,
        };
        for (level, &budget) in budget_levels(&costs).iter().enumerate() {
            let problem =
                EnsembleProblem::with_member_plans(&ensemble, member_plans.clone(), budget);
            let deco = problem.solve(&opts.search, &env.backend());
            let deco_admitted = deco.best.map(|(mask, _)| mask).unwrap_or_default();
            let deco_plans: Vec<Option<Plan>> =
                member_plans.iter().map(|p| p.plan.clone()).collect();
            let spss = spss_admit(&ensemble, &env.spec, &deadlines, budget, 0);
            let seed = ROOT_SEED ^ 0xF9AA ^ (level as u64) << 40;
            let deco_score = if deco_admitted.is_empty() {
                0.0
            } else {
                realized_score(
                    env,
                    &ensemble,
                    &deco_admitted,
                    &deco_plans,
                    &deadlines,
                    trials,
                    seed,
                )
            };
            let spss_score = realized_score(
                env,
                &ensemble,
                &spss.admitted,
                &spss.plans,
                &deadlines,
                trials,
                seed,
            );
            // Cost ratio over the workflows both admitted.
            let mut spss_cost = 0.0;
            let mut deco_cost = 0.0;
            for (i, mp) in member_plans.iter().enumerate().take(ensemble.len()) {
                if spss.admitted[i] && mp.cost.is_finite() {
                    spss_cost += spss.est_cost[i];
                    deco_cost += mp.cost;
                }
            }
            cells.push(Fig9Cell {
                etype: etype.name(),
                budget_level: level + 1,
                spss_score,
                deco_score,
                norm_score: if spss_score > 0.0 {
                    deco_score / spss_score
                } else if deco_score > 0.0 {
                    f64::INFINITY
                } else {
                    1.0
                },
                cost_ratio: if deco_cost > 0.0 {
                    spss_cost / deco_cost
                } else {
                    1.0
                },
            });
        }
    }
    Fig9Result { cells }
}

impl Fig9Result {
    pub fn render(&self) -> String {
        let mut s = String::from("Figure 9: ensemble scores, Deco vs SPSS (Ligo, deadline D3)\n");
        s.push_str(&format!(
            "{:<24} {:>9} {:>9} {:>9} {:>9}\n",
            "type@budget", "spss", "deco", "norm", "cost S/D"
        ));
        for c in &self.cells {
            s.push_str(&row(
                &format!("{}@Bgt{}", c.etype, c.budget_level),
                &[c.spss_score, c.deco_score, c.norm_score, c.cost_ratio],
            ));
            s.push('\n');
        }
        s
    }

    /// Mean SPSS/Deco per-workflow cost ratio across cells (paper: ~1.4).
    pub fn mean_cost_ratio(&self) -> f64 {
        let rs: Vec<f64> = self
            .cells
            .iter()
            .map(|c| c.cost_ratio)
            .filter(|r| r.is_finite() && *r > 0.0)
            .collect();
        deco_prob::stats::mean(&rs)
    }
}

/// Sensitivity on the probabilistic deadline requirement (the Section
/// 6.3.2 paragraph: Deco always scores at least SPSS as p grows).
pub fn fig9_percentile_sweep(env: &Env) -> Vec<(f64, f64)> {
    let ensemble = Ensemble::generate(App::Ligo, EnsembleType::UniformUnsorted, 6, &[20], 77);
    let deadlines: Vec<f64> = ensemble
        .members
        .iter()
        .map(|m| min_possible_makespan(&m.workflow, &env.spec) * 4.0)
        .collect();
    let mut out = Vec::new();
    for &p in &[0.90, 0.96, 0.999] {
        let member_plans = EnsembleProblem::plan_members(
            &ensemble,
            &env.spec,
            &env.store,
            &deadlines,
            p,
            40,
            &SearchOptions {
                max_states: 200,
                seed: ROOT_SEED,
                ..Default::default()
            },
            &env.backend(),
        );
        let costs: Vec<f64> = member_plans.iter().map(|mp| mp.cost).collect();
        let budget = budget_levels(&costs)[2];
        let problem = EnsembleProblem::with_member_plans(&ensemble, member_plans, budget);
        let deco = problem
            .solve(&SearchOptions::default(), &env.backend())
            .best
            .map(|(_, e)| e.objective)
            .unwrap_or(0.0);
        let spss = spss_admit(&ensemble, &env.spec, &deadlines, budget, 0).score;
        out.push((p, if spss > 0.0 { deco / spss } else { 1.0 }));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn fig9_deco_at_least_matches_spss() {
        let env = Env::new(Scale::Quick);
        let r = fig9(&env);
        assert_eq!(r.cells.len(), 25, "5 types x 5 budgets");
        for c in &r.cells {
            assert!(
                c.deco_score >= c.spss_score * 0.9 - 1e-9,
                "{}@Bgt{}: deco {} well below spss {}",
                c.etype,
                c.budget_level,
                c.deco_score,
                c.spss_score
            );
        }
        // Somewhere, Deco strictly wins (its plans honor the probabilistic
        // deadline at runtime; SPSS's mean-based plans miss it often).
        assert!(
            r.cells.iter().any(|c| c.deco_score > c.spss_score + 1e-9),
            "Deco should beat SPSS somewhere"
        );
        // SPSS per-workflow cost exceeds Deco's on average.
        assert!(r.mean_cost_ratio() >= 1.0, "ratio {}", r.mean_cost_ratio());
    }

    #[test]
    fn budget_levels_are_monotone() {
        let levels = budget_levels(&[1.0, 2.0, 3.0]);
        assert_eq!(levels.len(), 5);
        assert!(levels.windows(2).all(|w| w[0] <= w[1]));
        assert!((levels[0] - 1.0).abs() < 1e-12);
        assert!((levels[4] - 6.0).abs() < 1e-12);
    }
}
