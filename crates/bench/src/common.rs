//! Shared experiment environment.

use crate::Scale;
use deco_cloud::calibration::{calibrate, CalibrationReport};
use deco_cloud::{CloudSpec, MetadataStore};
use deco_core::estimate::deadline_anchors;
use deco_core::DecoOptions;
use deco_solver::{EvalBackend, SearchOptions};
use deco_workflow::Workflow;

/// The root seed every experiment derives from; change it to re-randomize
/// the whole evaluation coherently.
pub const ROOT_SEED: u64 = 0xDEC0_2015;

/// One fully calibrated environment: the EC2 spec plus a metadata store
/// measured from it.
pub struct Env {
    pub spec: CloudSpec,
    pub store: MetadataStore,
    pub calibration: CalibrationReport,
    pub scale: Scale,
}

impl Env {
    pub fn new(scale: Scale) -> Env {
        let spec = CloudSpec::amazon_ec2();
        let (store, calibration) = calibrate(&spec, scale.calibration_samples(), 40, ROOT_SEED);
        Env {
            spec,
            store,
            calibration,
            scale,
        }
    }

    /// Deco engine options at this scale.
    pub fn deco_options(&self) -> DecoOptions {
        DecoOptions {
            mc_iters: self.scale.mc_iters(),
            search: SearchOptions {
                max_states: match self.scale {
                    Scale::Quick => 600,
                    Scale::Full => 4_000,
                },
                seed: ROOT_SEED,
                ..Default::default()
            },
            beam_width: 4,
            wlog_bins: 5,
            retry: None,
            ..Default::default()
        }
    }

    /// Default evaluation backend for planning runs.
    pub fn backend(&self) -> EvalBackend {
        EvalBackend::SeqCpu
    }

    /// The medium deadline of the paper's default setting:
    /// `(Dmin + Dmax) / 2`.
    pub fn medium_deadline(&self, wf: &Workflow) -> f64 {
        let (dmin, dmax) = deadline_anchors(wf, &self.spec);
        0.5 * (dmin + dmax)
    }

    /// Tight deadline: `1.5 * Dmin`.
    pub fn tight_deadline(&self, wf: &Workflow) -> f64 {
        deadline_anchors(wf, &self.spec).0 * 1.5
    }

    /// Loose deadline: `0.75 * Dmax`.
    pub fn loose_deadline(&self, wf: &Workflow) -> f64 {
        deadline_anchors(wf, &self.spec).1 * 0.75
    }
}

/// Format a table row of (label, values).
pub fn row(label: &str, values: &[f64]) -> String {
    let mut s = format!("{label:<24}");
    for v in values {
        s.push_str(&format!(" {v:>9.3}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_builds_and_orders_deadlines() {
        let env = Env::new(Scale::Quick);
        let wf = deco_workflow::generators::montage(1, 1);
        let tight = env.tight_deadline(&wf);
        let medium = env.medium_deadline(&wf);
        let loose = env.loose_deadline(&wf);
        assert!(tight < medium, "tight {tight} < medium {medium}");
        assert!(medium < loose, "medium {medium} < loose {loose}");
    }

    #[test]
    fn row_formats_fixed_width() {
        let s = row("deco", &[1.0, 0.5]);
        assert!(s.starts_with("deco"));
        assert!(s.contains("1.000") && s.contains("0.500"));
    }
}
