//! Ablation studies on the design choices DESIGN.md calls out.

use crate::common::{Env, ROOT_SEED};
use deco_cloud::sim::run_plan_many;
use deco_core::SchedulingProblem;
use deco_solver::SearchOptions;
use deco_workflow::generators;

#[derive(Debug, Clone)]
pub struct AblationRow {
    pub label: String,
    pub values: Vec<f64>,
}

#[derive(Debug, Clone)]
pub struct AblationResult {
    pub title: String,
    pub columns: Vec<&'static str>,
    pub rows: Vec<AblationRow>,
}

impl AblationResult {
    pub fn render(&self) -> String {
        let mut s = format!("{}\n{:<28}", self.title, "");
        for c in &self.columns {
            s.push_str(&format!(" {c:>9}"));
        }
        s.push('\n');
        for r in &self.rows {
            s.push_str(&format!("{:<28}", r.label));
            for v in &r.values {
                s.push_str(&format!(" {v:>9.3}"));
            }
            s.push('\n');
        }
        s
    }
}

fn problem<'a>(env: &'a Env, wf: &'a deco_workflow::Workflow, pct: f64) -> SchedulingProblem<'a> {
    let mut p = SchedulingProblem::new(wf, &env.spec, &env.store, env.medium_deadline(wf), pct);
    p.mc_iters = env.scale.mc_iters().min(80);
    p
}

/// A problem pinned at a *tight* deadline — the regime where mean-based
/// and percentile-based planning actually diverge.
fn tight_problem<'a>(
    env: &'a Env,
    wf: &'a deco_workflow::Workflow,
    pct: f64,
) -> SchedulingProblem<'a> {
    let mut p = SchedulingProblem::new(wf, &env.spec, &env.store, env.tight_deadline(wf), pct);
    p.mc_iters = env.scale.mc_iters().min(80);
    p
}

fn opts(env: &Env) -> SearchOptions {
    SearchOptions {
        max_states: match env.scale {
            crate::Scale::Quick => 400,
            crate::Scale::Full => 2000,
        },
        seed: ROOT_SEED,
        ..Default::default()
    }
}

/// Ablation 1 — probabilistic vs deterministic constraints: plan against a
/// mean-based (50th percentile) deadline and against the 96% requirement;
/// compare realized deadline hit rates over repeated executions.
pub fn prob_vs_det(env: &Env) -> AblationResult {
    let wf = generators::montage(1, ROOT_SEED);
    let mut rows = Vec::new();
    for (label, pct) in [("deterministic (mean)", 0.5), ("probabilistic 96%", 0.96)] {
        let mut p = tight_problem(env, &wf, pct);
        if pct == 0.5 {
            // The deterministic approach has no notion of a variance
            // reserve: it packs to the full deadline and judges by the
            // mean (the paper's "deterministic notions ... are not
            // suitable" motivation).
            p.pack_safety = 1.0;
        }
        let best = p
            .solve_beam(&opts(env), 4, &env.backend())
            .best
            .expect("feasible");
        let plan = p.plan_of(&best.0);
        let (makespans, costs) =
            run_plan_many(&env.spec, &wf, &plan, env.scale.runs(), ROOT_SEED ^ 0xAB1);
        let deadline = env.tight_deadline(&wf);
        let hit =
            makespans.iter().filter(|&&m| m <= deadline).count() as f64 / makespans.len() as f64;
        rows.push(AblationRow {
            label: label.into(),
            values: vec![deco_prob::stats::mean(&costs), hit],
        });
    }
    AblationResult {
        title: "Ablation: probabilistic vs deterministic deadline (96% target)".into(),
        columns: vec!["cost", "hit rate"],
        rows,
    }
}

/// Ablation 2 — A* pruning vs generic exploration (promote-only space).
pub fn astar_vs_generic(env: &Env) -> AblationResult {
    let wf = generators::pipeline(4, 600.0, 32 << 20);
    let mut p = problem(env, &wf, 0.9);
    p.promote_only = true;
    // A* incumbent pruning is licensed by the monotone Equation (1)
    // objective (the paper's formulation).
    p.objective = deco_core::ObjectiveMode::FractionalMean;
    let g = p.solve_generic(&opts(env), &env.backend());
    let a = p.solve_astar(&opts(env), &env.backend());
    let cost = |r: &deco_solver::SearchResult<Vec<usize>>| {
        r.best
            .as_ref()
            .map(|(_, e)| e.objective)
            .unwrap_or(f64::NAN)
    };
    AblationResult {
        title: "Ablation: A* pruning vs generic search (4-task chain)".into(),
        columns: vec!["states", "cost"],
        rows: vec![
            AblationRow {
                label: "generic (Algorithm 2)".into(),
                values: vec![g.stats.states_evaluated as f64, cost(&g)],
            },
            AblationRow {
                label: "astar".into(),
                values: vec![a.stats.states_evaluated as f64, cost(&a)],
            },
        ],
    }
}

/// Ablation 3 — exploration (BFS) vs exploitation (beam) at equal budget.
pub fn explore_vs_exploit(env: &Env) -> AblationResult {
    let wf = generators::montage(1, ROOT_SEED ^ 3);
    let p = problem(env, &wf, 0.9);
    let o = opts(env);
    let bfs = p.solve_generic(&o, &env.backend());
    let beam = p.solve_beam(&o, 4, &env.backend());
    let get = |r: &deco_solver::SearchResult<Vec<usize>>| {
        (
            r.stats.states_evaluated as f64,
            r.best
                .as_ref()
                .map(|(_, e)| e.objective)
                .unwrap_or(f64::NAN),
        )
    };
    let (bs, bc) = get(&bfs);
    let (ss, sc) = get(&beam);
    AblationResult {
        title: "Ablation: exploration (BFS) vs exploitation (beam), equal state budget".into(),
        columns: vec!["states", "cost"],
        rows: vec![
            AblationRow {
                label: "breadth-first".into(),
                values: vec![bs, bc],
            },
            AblationRow {
                label: "beam(4)".into(),
                values: vec![ss, sc],
            },
        ],
    }
}

/// Ablation 4 — Monte-Carlo iteration count: plan quality and realized
/// feasibility vs `Max_iter`.
pub fn mc_iterations(env: &Env) -> AblationResult {
    let wf = generators::montage(1, ROOT_SEED ^ 4);
    let deadline = env.tight_deadline(&wf);
    let mut rows = Vec::new();
    for iters in [10usize, 50, 100, 400] {
        let mut p = tight_problem(env, &wf, 0.96);
        p.mc_iters = iters;
        match p.solve_beam(&opts(env), 4, &env.backend()).best {
            Some((state, eval)) => {
                let plan = p.plan_of(&state);
                let (makespans, _) =
                    run_plan_many(&env.spec, &wf, &plan, env.scale.runs(), ROOT_SEED ^ 0xAB4);
                let hit = makespans.iter().filter(|&&m| m <= deadline).count() as f64
                    / makespans.len() as f64;
                rows.push(AblationRow {
                    label: format!("Max_iter = {iters}"),
                    values: vec![eval.objective, hit],
                });
            }
            None => rows.push(AblationRow {
                label: format!("Max_iter = {iters} (no plan)"),
                values: vec![f64::NAN, 0.0],
            }),
        }
    }
    AblationResult {
        title: "Ablation: Monte-Carlo iterations per state".into(),
        columns: vec!["cost", "hit rate"],
        rows,
    }
}

/// Ablation 5 — transformation-operation set: promote-only vs the full
/// bidirectional set.
pub fn operation_set(env: &Env) -> AblationResult {
    let wf = generators::montage(1, ROOT_SEED ^ 5);
    let mut rows = Vec::new();
    for (label, promote_only) in [("promote-only", true), ("promote+demote", false)] {
        let mut p = problem(env, &wf, 0.9);
        p.promote_only = promote_only;
        let r = p.solve_beam(&opts(env), 4, &env.backend());
        rows.push(AblationRow {
            label: label.into(),
            values: vec![
                r.stats.states_evaluated as f64,
                r.best
                    .as_ref()
                    .map(|(_, e)| e.objective)
                    .unwrap_or(f64::NAN),
            ],
        });
    }
    AblationResult {
        title: "Ablation: transformation-operation set".into(),
        columns: vec!["states", "cost"],
        rows,
    }
}

/// Run all ablations.
pub fn all(env: &Env) -> Vec<AblationResult> {
    vec![
        prob_vs_det(env),
        astar_vs_generic(env),
        explore_vs_exploit(env),
        mc_iterations(env),
        operation_set(env),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn probabilistic_planning_hits_requirement_where_mean_planning_fails() {
        let env = Env::new(Scale::Quick);
        let r = prob_vs_det(&env);
        let det_hit = r.rows[0].values[1];
        let prob_hit = r.rows[1].values[1];
        assert!(
            prob_hit >= det_hit,
            "probabilistic planning cannot hit less often ({prob_hit} vs {det_hit})"
        );
        assert!(prob_hit >= 0.8, "96% requirement run realized {prob_hit}");
    }

    #[test]
    fn astar_explores_no_more_than_generic() {
        let env = Env::new(Scale::Quick);
        let r = astar_vs_generic(&env);
        let g_states = r.rows[0].values[0];
        let a_states = r.rows[1].values[0];
        assert!(a_states <= g_states);
        // Both find the same optimum.
        assert!((r.rows[0].values[1] - r.rows[1].values[1]).abs() < 1e-6);
    }

    #[test]
    fn beam_finds_feasible_cheaper_or_equal_to_bfs() {
        let env = Env::new(Scale::Quick);
        let r = explore_vs_exploit(&env);
        let bfs_cost = r.rows[0].values[1];
        let beam_cost = r.rows[1].values[1];
        assert!(!beam_cost.is_nan(), "beam must find a plan");
        // BFS may fail to find anything within budget; when it does find a
        // plan, beam is at least as good.
        if !bfs_cost.is_nan() {
            assert!(beam_cost <= bfs_cost * 1.05);
        }
    }

    #[test]
    fn more_mc_iterations_do_not_hurt_feasibility() {
        let env = Env::new(Scale::Quick);
        let r = mc_iterations(&env);
        let hit_10 = r.rows[0].values[1];
        let hit_400 = r.rows.last().unwrap().values[1];
        assert!(hit_400 >= hit_10 - 0.15, "{hit_400} vs {hit_10}");
    }

    #[test]
    fn full_operation_set_is_at_least_as_cheap() {
        let env = Env::new(Scale::Quick);
        let r = operation_set(&env);
        let promote_only = r.rows[0].values[1];
        let full = r.rows[1].values[1];
        assert!(!full.is_nan());
        if !promote_only.is_nan() {
            assert!(full <= promote_only * 1.05, "{full} vs {promote_only}");
        }
    }
}
