//! Serving under faults: goodput and overhead of the hardened serving
//! layer.
//!
//! The experiment replays one mixed Ligo/Montage trace twice against the
//! same calibrated engine: once quiescent (no fault plan) and once under
//! a seeded 10 % worker-crash schedule. The comparison shows what the
//! robustness machinery costs when nothing fails and what it preserves
//! when workers do: crashed solves are retried with capped backoff and
//! goodput (fraction of requests answered with a plan) stays high.
//! The faulted run's per-cycle [`deco_serve::CycleRow`] accounting is
//! what the `serve` experiments subcommand writes to disk.

use crate::common::Env;
use crate::Scale;
use deco_cloud::CloudSpec;
use deco_core::estimate::deadline_anchors;
use deco_core::Deco;
use deco_serve::{
    Arrival, ArrivalTrace, PlanRequest, PlanServer, Priority, ServeConfig, ServeSession,
    ServeStats, WorkerFaultPlan,
};
use deco_workflow::generators;
use deco_workflow::Workflow;

/// Solver workers in the serving pool.
pub const WORKERS: usize = 4;
/// Crash probability per (virtual worker, cycle) in the faulted run.
pub const CRASH_PROB: f64 = 0.10;

/// Both runs of the serving-under-faults experiment.
pub struct ServeFaultsResult {
    pub workers: usize,
    pub crash_prob: f64,
    pub requests: usize,
    /// Stats of the fault-free replay.
    pub quiescent: ServeStats,
    /// Stats of the replay under the seeded crash plan.
    pub faulted: ServeStats,
}

impl ServeFaultsResult {
    /// Fraction of requests answered with a plan under faults.
    pub fn goodput(&self) -> f64 {
        self.faulted.planned as f64 / self.requests as f64
    }

    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "serving under faults — {} requests, {} workers, crash_prob {:.2}\n",
            self.requests, self.workers, self.crash_prob
        ));
        s.push_str(&format!(
            "{:<14} {:>10} {:>10}\n",
            "counter", "quiescent", "faulted"
        ));
        let rows: [(&str, u64, u64); 7] = [
            ("planned", self.quiescent.planned, self.faulted.planned),
            ("hits", self.quiescent.hits, self.faulted.hits),
            ("misses", self.quiescent.misses, self.faulted.misses),
            (
                "crashes",
                self.quiescent.worker_crashes,
                self.faulted.worker_crashes,
            ),
            ("retries", self.quiescent.retries, self.faulted.retries),
            (
                "escalated",
                self.quiescent.escalated,
                self.faulted.escalated,
            ),
            (
                "quarantined",
                self.quiescent.quarantined,
                self.faulted.quarantined,
            ),
        ];
        for (label, q, f) in rows {
            s.push_str(&format!("{label:<14} {q:>10} {f:>10}\n"));
        }
        s.push_str(&format!(
            "goodput under faults: {:.3}  (p50 wait {:.0} ticks, p95 wait {:.0} ticks)\n",
            self.goodput(),
            self.faulted.p50_wait(),
            self.faulted.p95_wait()
        ));
        s
    }

    /// The faulted run's per-cycle rows as JSON lines (one row per solve
    /// cycle, in cycle order).
    pub fn cycle_rows_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.faulted.cycle_rows {
            out.push_str(&row.to_json());
            out.push('\n');
        }
        out
    }
}

fn request_for(wf: Workflow, tenant: u32, spec: &CloudSpec) -> PlanRequest {
    let (dmin, dmax) = deadline_anchors(&wf, spec);
    PlanRequest {
        tenant,
        workflow: wf,
        deadline: 0.5 * (dmin + dmax),
        percentile: 0.9,
        budget_hint: None,
        priority: Priority::default(),
    }
}

/// The smoke trace at this scale: eight distinct Ligo/Montage shapes
/// cycled across four tenants, arrivals spread one solve apart.
fn trace(env: &Env, requests: usize) -> ArrivalTrace {
    let mut shapes = Vec::new();
    for s in 0..4u64 {
        shapes.push(generators::montage(1, 60 + s));
        shapes.push(generators::ligo(12, 60 + s));
    }
    let arrivals: Vec<Arrival> = (0..requests)
        .map(|i| Arrival {
            at_tick: i as f64 * 1e9,
            request: request_for(shapes[i % shapes.len()].clone(), (i % 4) as u32, &env.spec),
        })
        .collect();
    ArrivalTrace::new(arrivals)
}

fn engine(env: &Env) -> Deco {
    let mut deco = Deco::new(env.store.clone());
    deco.options = env.deco_options();
    deco
}

/// Run the experiment: quiescent replay, then the same trace under a
/// seeded `CRASH_PROB` worker-crash plan.
pub fn run(env: &Env) -> ServeFaultsResult {
    let requests = match env.scale {
        Scale::Quick => 60,
        Scale::Full => 200,
    };
    let trace = trace(env, requests);

    let mut quiet_server = PlanServer::new(engine(env), ServeConfig::default());
    let (_, quiescent) = quiet_server.serve_trace(&trace, WORKERS);

    let session = ServeSession {
        faults: WorkerFaultPlan::crashes(crate::common::ROOT_SEED, CRASH_PROB),
        refreshes: Vec::new(),
    };
    let mut faulted_server = PlanServer::new(engine(env), ServeConfig::default());
    let (responses, faulted) = faulted_server.serve_trace_session(&trace, WORKERS, &session);
    assert_eq!(
        responses.len(),
        requests,
        "every request gets a terminal answer"
    );

    ServeFaultsResult {
        workers: WORKERS,
        crash_prob: CRASH_PROB,
        requests,
        quiescent,
        faulted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_run_keeps_goodput_high_under_crashes() {
        let env = Env::new(Scale::Quick);
        let r = run(&env);
        assert_eq!(r.quiescent.planned as usize, r.requests);
        assert_eq!(r.quiescent.worker_crashes, 0);
        assert!(r.goodput() > 0.9, "goodput {} too low", r.goodput());
        assert!(!r.faulted.cycle_rows.is_empty(), "cycle rows recorded");
        let jsonl = r.cycle_rows_jsonl();
        assert_eq!(jsonl.lines().count(), r.faulted.cycle_rows.len());
        assert!(jsonl.starts_with("{\"cycle\":0,"));
        let rendered = r.render();
        assert!(rendered.contains("goodput under faults"));
    }
}
