//! Section 6.3 device-model comparisons: GPU vs CPU search speedups and
//! the per-task optimization overhead.
//!
//! The paper reports (i) 12x/10x/20x GPU-over-6-core speedups on the
//! scheduling problem for Montage-1/4/8, (ii) 36x/22x/18x for 20/100/1000-
//! task ensemble members (declining with size as states outgrow shared
//! memory), and (iii) a total optimization overhead of 4.3–63.17 ms per
//! task for 20–1000 tasks. We reproduce the *shape* of all three with the
//! device model: identical searches run under the sequential, 6-core and
//! K40 backends, and the accumulated modeled evaluation times are compared.

use crate::common::{row, Env, ROOT_SEED};
use deco_core::SchedulingProblem;
use deco_gpu::DeviceSpec;
use deco_solver::{EvalBackend, SearchOptions};
use deco_workflow::generators;
use deco_workflow::Workflow;

#[derive(Debug, Clone)]
pub struct SpeedupRow {
    pub label: String,
    pub n_tasks: usize,
    pub seq_seconds: f64,
    pub cpu6_seconds: f64,
    pub gpu_seconds: f64,
    /// GPU over 6-core (the paper's headline ratio).
    pub speedup_vs_cpu6: f64,
    /// Modeled GPU optimization milliseconds per task.
    pub overhead_ms_per_task: f64,
}

#[derive(Debug, Clone)]
pub struct SpeedupResult {
    pub rows: Vec<SpeedupRow>,
}

fn measure(env: &Env, wf: &Workflow, label: &str) -> SpeedupRow {
    let deadline = env.medium_deadline(wf);
    let mut problem = SchedulingProblem::new(wf, &env.spec, &env.store, deadline, 0.9);
    // One Monte-Carlo iteration per GPU thread, one full block per state
    // (the paper's kernel layout): fill the K40's 192 lanes.
    problem.mc_iters = 192;
    let opts = SearchOptions {
        // Timing ratios stabilize after a few frontier rounds; the quick
        // scale keeps the state budget small because each state runs 192
        // Monte-Carlo iterations.
        max_states: match env.scale {
            crate::Scale::Quick => 40,
            crate::Scale::Full => 400,
        },
        seed: ROOT_SEED,
        ..Default::default()
    };
    let run = |backend: &EvalBackend| problem.solve_beam(&opts, 4, backend).stats;
    let seq = run(&EvalBackend::SeqCpu);
    let cpu6 = run(&EvalBackend::ParCpu(6));
    let gpu = run(&EvalBackend::SimGpu(DeviceSpec::k40()));
    SpeedupRow {
        label: label.to_string(),
        n_tasks: wf.len(),
        seq_seconds: seq.modeled_eval_seconds,
        cpu6_seconds: cpu6.modeled_eval_seconds,
        gpu_seconds: gpu.modeled_eval_seconds,
        speedup_vs_cpu6: cpu6.modeled_eval_seconds / gpu.modeled_eval_seconds.max(1e-12),
        overhead_ms_per_task: gpu.modeled_eval_seconds * 1000.0 / wf.len() as f64,
    }
}

/// Scheduling-problem speedups on the Montage sizes (Section 6.3.1).
pub fn speedup_scheduling(env: &Env) -> SpeedupResult {
    let rows = env
        .scale
        .montage_degrees()
        .into_iter()
        .map(|d| {
            let wf = generators::montage(d, ROOT_SEED);
            measure(env, &wf, &format!("Montage-{d}"))
        })
        .collect();
    SpeedupResult { rows }
}

/// Ensemble-member speedups for 20/100/1000-task workflows
/// (Section 6.3.2) together with the per-task overhead.
pub fn speedup_ensemble(env: &Env) -> SpeedupResult {
    let sizes: Vec<usize> = match env.scale {
        // 1000 is kept even at quick scale: the speedup *decline* comes
        // from 1000-task states spilling the K40's shared memory.
        crate::Scale::Quick => vec![20, 1000],
        crate::Scale::Full => vec![20, 100, 1000],
    };
    let rows = sizes
        .into_iter()
        .map(|n| {
            let wf = generators::ligo(n, ROOT_SEED);
            measure(env, &wf, &format!("Ligo-{n}"))
        })
        .collect();
    SpeedupResult { rows }
}

impl SpeedupResult {
    pub fn render(&self, title: &str) -> String {
        let mut s = format!("{title}\n");
        s.push_str(&format!(
            "{:<24} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            "workflow", "seq s", "6-core s", "gpu s", "gpu/6c x", "ms/task"
        ));
        for r in &self.rows {
            s.push_str(&row(
                &format!("{} ({} tasks)", r.label, r.n_tasks),
                &[
                    r.seq_seconds,
                    r.cpu6_seconds,
                    r.gpu_seconds,
                    r.speedup_vs_cpu6,
                    r.overhead_ms_per_task,
                ],
            ));
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn gpu_model_shows_order_of_10x_over_6core() {
        let env = Env::new(Scale::Quick);
        let r = speedup_ensemble(&env);
        for row in &r.rows {
            assert!(
                row.speedup_vs_cpu6 > 3.0,
                "{}: speedup {}",
                row.label,
                row.speedup_vs_cpu6
            );
            assert!(row.gpu_seconds < row.cpu6_seconds);
            assert!(row.cpu6_seconds < row.seq_seconds);
        }
    }

    #[test]
    fn speedup_declines_with_workflow_size() {
        // The Section 6.3.2 shape: bigger states spill shared memory.
        let env = Env::new(Scale::Quick);
        let r = speedup_ensemble(&env);
        assert!(r.rows.len() >= 2);
        let first = r.rows.first().unwrap();
        let last = r.rows.last().unwrap();
        assert!(
            last.speedup_vs_cpu6 < first.speedup_vs_cpu6,
            "speedup should decline: {} ({}) -> {} ({})",
            first.speedup_vs_cpu6,
            first.label,
            last.speedup_vs_cpu6,
            last.label
        );
    }

    #[test]
    fn per_task_overhead_is_milliseconds() {
        // The paper's range is 4.3-63.17 ms/task; hold the order of
        // magnitude (sub-second per task).
        let env = Env::new(Scale::Quick);
        let r = speedup_ensemble(&env);
        for row in &r.rows {
            assert!(
                row.overhead_ms_per_task < 1000.0,
                "{}: {} ms/task",
                row.label,
                row.overhead_ms_per_task
            );
        }
    }
}
