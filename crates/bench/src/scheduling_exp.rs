//! Figures 8 and 11: the workflow scheduling use case.

use crate::common::{row, Env, ROOT_SEED};
use deco_pegasus::scheduler::{AutoscalingScheduler, DecoScheduler, Requirements};
use deco_pegasus::Pegasus;
use deco_workflow::generators;

/// One (workflow, percentile) cell of Figure 8.
#[derive(Debug, Clone)]
pub struct Fig8Cell {
    pub workflow: String,
    pub percentile: f64,
    /// Deco's mean cost normalized to Autoscaling's.
    pub norm_cost: f64,
    /// Deco's mean makespan normalized to Autoscaling's.
    pub norm_time: f64,
    /// Realized deadline-hit rates.
    pub deco_hit_rate: f64,
    pub auto_hit_rate: f64,
}

#[derive(Debug, Clone)]
pub struct Fig8Result {
    pub cells: Vec<Fig8Cell>,
}

/// The probabilistic-deadline sweep of Figure 8 (90%–99.9%).
pub fn fig8(env: &Env) -> Fig8Result {
    let percentiles = match env.scale {
        crate::Scale::Quick => vec![0.90, 0.96],
        crate::Scale::Full => vec![0.90, 0.92, 0.94, 0.96, 0.98, 0.999],
    };
    let wms = Pegasus::new(env.store.clone());
    let mut cells = Vec::new();
    for degree in env.scale.montage_degrees() {
        let wf = generators::montage(degree, ROOT_SEED);
        let deadline = env.medium_deadline(&wf);
        for &p in &percentiles {
            let req = Requirements {
                deadline,
                percentile: p,
            };
            let deco = DecoScheduler {
                options: env.deco_options(),
                ..Default::default()
            };
            let deco_exe = wms.plan(&wf, &deco, req).expect("deco plan");
            let auto_exe = wms
                .plan(&wf, &AutoscalingScheduler, req)
                .expect("autoscaling plan");
            let seed = ROOT_SEED ^ (degree as u64) << 8 ^ (p * 1000.0) as u64;
            let d = wms.run_many(&deco_exe, req, "deco", env.scale.runs(), seed);
            let a = wms.run_many(&auto_exe, req, "autoscaling", env.scale.runs(), seed);
            cells.push(Fig8Cell {
                workflow: format!("Montage-{degree}"),
                percentile: p,
                norm_cost: d.mean_cost() / a.mean_cost(),
                norm_time: d.mean_makespan() / a.mean_makespan(),
                deco_hit_rate: d.deadline_hit_rate,
                auto_hit_rate: a.deadline_hit_rate,
            });
        }
    }
    Fig8Result { cells }
}

impl Fig8Result {
    pub fn render(&self) -> String {
        let mut s = String::from(
            "Figure 8: Deco vs Autoscaling across probabilistic deadline requirements\n",
        );
        s.push_str(&format!(
            "{:<24} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            "workflow@percentile", "normcost", "normtime", "deco hit", "auto hit", ""
        ));
        for c in &self.cells {
            s.push_str(&row(
                &format!("{}@{:.1}%", c.workflow, c.percentile * 100.0),
                &[c.norm_cost, c.norm_time, c.deco_hit_rate, c.auto_hit_rate],
            ));
            s.push('\n');
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Figure 11 — deadline sensitivity (tight / medium / loose)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig11Row {
    pub deadline: String,
    /// Costs normalized to Autoscaling at the tight deadline.
    pub auto_cost: f64,
    pub deco_cost: f64,
    /// Makespans normalized to Autoscaling at the tight deadline.
    pub auto_time: f64,
    pub deco_time: f64,
}

#[derive(Debug, Clone)]
pub struct Fig11Result {
    pub rows: Vec<Fig11Row>,
}

pub fn fig11(env: &Env) -> Fig11Result {
    let degree = *env.scale.montage_degrees().last().unwrap();
    let wf = generators::montage(degree, ROOT_SEED);
    let wms = Pegasus::new(env.store.clone());
    let settings = [
        ("tight", env.tight_deadline(&wf)),
        ("medium", env.medium_deadline(&wf)),
        ("loose", env.loose_deadline(&wf)),
    ];
    let mut raw = Vec::new();
    for (name, deadline) in settings {
        let req = Requirements {
            deadline,
            percentile: 0.96,
        };
        let deco = DecoScheduler {
            options: env.deco_options(),
            ..Default::default()
        };
        let deco_exe = wms.plan(&wf, &deco, req).expect("deco plan");
        let auto_exe = wms
            .plan(&wf, &AutoscalingScheduler, req)
            .expect("autoscaling plan");
        let seed = ROOT_SEED ^ 0xF11 ^ deadline as u64;
        let d = wms.run_many(&deco_exe, req, "deco", env.scale.runs(), seed);
        let a = wms.run_many(&auto_exe, req, "autoscaling", env.scale.runs(), seed);
        raw.push((
            name.to_string(),
            a.mean_cost(),
            d.mean_cost(),
            a.mean_makespan(),
            d.mean_makespan(),
        ));
    }
    let base_cost = raw[0].1;
    let base_time = raw[0].3;
    Fig11Result {
        rows: raw
            .into_iter()
            .map(|(deadline, ac, dc, at, dt)| Fig11Row {
                deadline,
                auto_cost: ac / base_cost,
                deco_cost: dc / base_cost,
                auto_time: at / base_time,
                deco_time: dt / base_time,
            })
            .collect(),
    }
}

impl Fig11Result {
    pub fn render(&self) -> String {
        let mut s =
            String::from("Figure 11: deadline sensitivity (normalized to Autoscaling@tight)\n");
        s.push_str(&format!(
            "{:<24} {:>9} {:>9} {:>9} {:>9}\n",
            "deadline", "auto cost", "deco cost", "auto time", "deco time"
        ));
        for r in &self.rows {
            s.push_str(&row(
                &r.deadline,
                &[r.auto_cost, r.deco_cost, r.auto_time, r.deco_time],
            ));
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn fig8_deco_is_cheaper_and_meets_requirements() {
        let env = Env::new(Scale::Quick);
        let r = fig8(&env);
        assert!(!r.cells.is_empty());
        for c in &r.cells {
            // The headline: Deco at or below Autoscaling's cost.
            assert!(
                c.norm_cost <= 1.1,
                "{}@{}: norm cost {}",
                c.workflow,
                c.percentile,
                c.norm_cost
            );
            // Deco runs longer but still meets the probabilistic deadline.
            assert!(
                c.deco_hit_rate >= c.percentile - 0.15,
                "{}@{}: hit rate {} vs requirement {}",
                c.workflow,
                c.percentile,
                c.deco_hit_rate,
                c.percentile
            );
        }
        // At least one cell shows a solid (>10%) saving.
        assert!(r.cells.iter().any(|c| c.norm_cost < 0.9));
    }

    #[test]
    fn fig11_cost_decreases_as_deadline_loosens() {
        let env = Env::new(Scale::Quick);
        let r = fig11(&env);
        assert_eq!(r.rows.len(), 3);
        // Deco cost is non-increasing from tight to loose.
        assert!(r.rows[2].deco_cost <= r.rows[0].deco_cost + 0.05);
        // Execution time grows as the deadline loosens (cheaper fleets).
        assert!(r.rows[2].deco_time >= r.rows[0].deco_time - 0.05);
        // Deco at most Autoscaling per setting.
        for row in &r.rows {
            assert!(row.deco_cost <= row.auto_cost * 1.05, "{row:?}");
        }
    }
}
