//! Figure 10: follow-the-cost — Deco vs the threshold Heuristic.

use crate::common::{row, Env, ROOT_SEED};
use deco_baselines::heuristic::FollowCostHeuristic;
use deco_cloud::sim::{run_plan, run_with_policy};
use deco_cloud::Plan;
use deco_core::followcost::DecoFollowCost;
use deco_prob::rng::splitmix64;
use deco_workflow::generators;

/// One policy's aggregate cost over a fleet of workflows.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    pub label: String,
    pub heuristic_cost: f64,
    pub deco_cost: f64,
    /// Deco normalized to Heuristic (< 1 expected).
    pub norm: f64,
}

#[derive(Debug, Clone)]
pub struct Fig10Result {
    pub by_size: Vec<Fig10Row>,
    pub by_threshold: Vec<Fig10Row>,
}

/// The decision epoch of the runtime loop, seconds.
const EPOCH: f64 = 600.0;

/// Run one fleet: `n_workflows` Ligo workflows of `size` tasks, half
/// initially deployed in each region, executed under the policy.
///
/// The paper's Figure 10 uses Montage; our Montage profiles give fleets
/// whose instances are busy for about one hour each, at which point
/// migration's instance-restart waste always exceeds the 33% price
/// difference and *both* policies correctly stay put. Ligo's CPU-heavy
/// multi-hour tasks are the regime where runtime migration actually pays,
/// so the experiment fleets are Ligo-sized 20/100/1000 (standing in for
/// Montage-1/4/8); EXPERIMENTS.md records the substitution.
fn fleet_cost(
    env: &Env,
    size: usize,
    n_workflows: usize,
    threshold: Option<f64>,
    seed: u64,
) -> f64 {
    let mut total = 0.0;
    for i in 0..n_workflows {
        let wf = generators::ligo(size, splitmix64(seed ^ i as u64));
        let types = vec![0usize; wf.len()];
        // Half the fleet starts in the pricey Singapore region (the paper
        // randomizes the initial deployment across data centers).
        let region = i % 2;
        let plan = Plan::packed(&wf, &types, region, &env.spec);
        let deadline = env.loose_deadline(&wf) * 4.0;
        let run_seed = splitmix64(seed ^ (i as u64) << 17);
        let cost = match threshold {
            Some(th) => {
                let mut policy = FollowCostHeuristic::new(&wf, env.spec.clone(), types, th);
                run_with_policy(&env.spec, &wf, &plan, &mut policy, EPOCH, run_seed)
                    .cost
                    .total()
            }
            None => {
                let mut policy = DecoFollowCost::new(env.spec.clone(), types, deadline);
                run_with_policy(&env.spec, &wf, &plan, &mut policy, EPOCH, run_seed)
                    .cost
                    .total()
            }
        };
        total += cost;
    }
    total
}

pub fn fig10(env: &Env) -> Fig10Result {
    let n_workflows = match env.scale {
        crate::Scale::Quick => 4,
        crate::Scale::Full => 20,
    };
    let sizes: Vec<usize> = match env.scale {
        crate::Scale::Quick => vec![20, 100],
        crate::Scale::Full => vec![20, 100, 1000],
    };
    // (a) by workflow size, threshold fixed at the 50% default.
    let by_size = sizes
        .iter()
        .map(|&size| {
            let seed = ROOT_SEED ^ 0xF10A ^ size as u64;
            let h = fleet_cost(env, size, n_workflows, Some(0.5), seed);
            let d = fleet_cost(env, size, n_workflows, None, seed);
            Fig10Row {
                label: format!("Ligo-{size}"),
                heuristic_cost: h,
                deco_cost: d,
                norm: d / h,
            }
        })
        .collect();
    // (b) by threshold, on the largest size at this scale.
    let size = *sizes.last().unwrap();
    let by_threshold = [0.1, 0.3, 0.5, 0.7, 0.9]
        .into_iter()
        .map(|th| {
            let seed = ROOT_SEED ^ 0xF10B ^ (th * 100.0) as u64;
            let h = fleet_cost(env, size, n_workflows, Some(th), seed);
            let d = fleet_cost(env, size, n_workflows, None, seed);
            Fig10Row {
                label: format!("threshold {:.0}%", th * 100.0),
                heuristic_cost: h,
                deco_cost: d,
                norm: d / h,
            }
        })
        .collect();
    Fig10Result {
        by_size,
        by_threshold,
    }
}

impl Fig10Result {
    pub fn render(&self) -> String {
        let mut s = String::from("Figure 10a: follow-the-cost total cost by workflow size\n");
        s.push_str(&format!(
            "{:<24} {:>9} {:>9} {:>9}\n",
            "fleet", "heuristic", "deco", "norm"
        ));
        for r in &self.by_size {
            s.push_str(&row(&r.label, &[r.heuristic_cost, r.deco_cost, r.norm]));
            s.push('\n');
        }
        s.push_str("Figure 10b: by adjustment threshold\n");
        for r in &self.by_threshold {
            s.push_str(&row(&r.label, &[r.heuristic_cost, r.deco_cost, r.norm]));
            s.push('\n');
        }
        s
    }
}

/// Sanity baseline: the same fleet with no runtime policy at all (stays
/// where it was deployed).
pub fn static_fleet_cost(env: &Env, size: usize, n_workflows: usize, seed: u64) -> f64 {
    let mut total = 0.0;
    for i in 0..n_workflows {
        let wf = generators::ligo(size, splitmix64(seed ^ i as u64));
        let types = vec![0usize; wf.len()];
        let plan = Plan::packed(&wf, &types, i % 2, &env.spec);
        total += run_plan(&env.spec, &wf, &plan, splitmix64(seed ^ (i as u64) << 17))
            .cost
            .total();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn fig10_deco_not_worse_than_heuristic() {
        let env = Env::new(Scale::Quick);
        let r = fig10(&env);
        for row in r.by_size.iter().chain(&r.by_threshold) {
            assert!(
                row.norm <= 1.05,
                "{}: deco {} vs heuristic {}",
                row.label,
                row.deco_cost,
                row.heuristic_cost
            );
        }
    }

    #[test]
    fn policies_beat_doing_nothing() {
        let env = Env::new(Scale::Quick);
        let seed = ROOT_SEED ^ 0xAB;
        let stay = static_fleet_cost(&env, 20, 4, seed);
        let deco = fleet_cost(&env, 20, 4, None, seed);
        assert!(
            deco <= stay * 1.01,
            "runtime migration should not cost more than staying: {deco} vs {stay}"
        );
    }
}
