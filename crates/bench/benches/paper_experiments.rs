//! Criterion benches: one benchmark per table/figure of the paper, timing
//! the computational core of each experiment at quick scale. The
//! `experiments` binary prints the corresponding rows/series.

use criterion::{criterion_group, criterion_main, Criterion};
use deco_bench::common::Env;
use deco_bench::{
    ablation, ensemble_exp, figures, followcost_exp, scheduling_exp, speedup_exp, Scale,
};
use std::time::Duration;

fn quick(c: &mut Criterion, name: &str, mut f: impl FnMut()) {
    let mut g = c.benchmark_group(name);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    g.bench_function("run", |b| b.iter(&mut f));
    g.finish();
}

fn benches(c: &mut Criterion) {
    let env = Env::new(Scale::Quick);
    quick(c, "table2_calibration", || {
        let _ = figures::table2(&env);
    });
    quick(c, "fig01_configs", || {
        let _ = figures::fig1(&env);
    });
    quick(c, "fig02_variance", || {
        let _ = figures::fig2(&env);
    });
    quick(c, "fig06_network", || {
        let _ = figures::fig6(&env);
    });
    quick(c, "fig07_network_types", || {
        let _ = figures::fig7(&env);
    });
    quick(c, "fig08_prob_deadline", || {
        let _ = scheduling_exp::fig8(&env);
    });
    quick(c, "fig09_ensemble", || {
        let _ = ensemble_exp::fig9(&env);
    });
    quick(c, "fig10_followcost", || {
        let _ = followcost_exp::fig10(&env);
    });
    quick(c, "fig11_deadline_sensitivity", || {
        let _ = scheduling_exp::fig11(&env);
    });
    quick(c, "speedup_scheduling", || {
        let _ = speedup_exp::speedup_scheduling(&env);
    });
    quick(c, "speedup_ensemble_overhead", || {
        let _ = speedup_exp::speedup_ensemble(&env);
    });
    quick(c, "ablation_prob_vs_det", || {
        let _ = ablation::prob_vs_det(&env);
    });
    quick(c, "ablation_astar", || {
        let _ = ablation::astar_vs_generic(&env);
    });
    quick(c, "ablation_explore", || {
        let _ = ablation::explore_vs_exploit(&env);
    });
    quick(c, "ablation_mc_iters", || {
        let _ = ablation::mc_iterations(&env);
    });
    quick(c, "ablation_ops", || {
        let _ = ablation::operation_set(&env);
    });
}

criterion_group!(paper, benches);
criterion_main!(paper);
