//! Microbenchmarks of the computational kernels underneath the
//! experiments: Monte-Carlo state evaluation, the WLog interpreter, plan
//! packing, histogram convolution and the simulator.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use deco_cloud::{CloudSpec, MetadataStore, Plan};
use deco_core::estimate::{mc_evaluate_plan, ExecTimeTable};
use deco_prob::dist::Normal;
use deco_prob::Histogram;
use deco_wlog::machine::{Database, Machine};
use deco_wlog::parser::{parse_clauses, parse_query};
use deco_workflow::generators;

fn kernels(c: &mut Criterion) {
    let spec = CloudSpec::amazon_ec2();
    let store = MetadataStore::from_ground_truth(spec.clone(), 30);
    let wf = generators::montage(2, 1);
    let table = ExecTimeTable::build(&wf, &store, 12);
    let plan = Plan::packed(&wf, &vec![1; wf.len()], 0, &spec);

    c.bench_function("mc_evaluate_plan_montage2_100iters", |b| {
        b.iter(|| mc_evaluate_plan(&wf, &plan, &table, &spec, 2000.0, 0.9, 100, 7))
    });

    c.bench_function("plan_packing_montage2", |b| {
        b.iter(|| Plan::packed(&wf, &vec![1; wf.len()], 0, &spec))
    });

    c.bench_function("simulator_run_montage2", |b| {
        b.iter(|| deco_cloud::sim::run_plan(&spec, &wf, &plan, 3))
    });

    c.bench_function("histogram_convolve_40x40", |b| {
        let h1 = Histogram::from_dist(&Normal::new(10.0, 2.0), 40, 4.0, None);
        let h2 = Histogram::from_dist(&Normal::new(5.0, 1.0), 40, 4.0, None);
        b.iter(|| h1.convolve(&h2))
    });

    c.bench_function("wlog_sld_resolution_ancestor", |b| {
        let db_src = "
            parent(a,b). parent(b,c). parent(c,d). parent(d,e).
            anc(X,Y) :- parent(X,Y).
            anc(X,Z) :- parent(X,Y), anc(Y,Z).";
        let q = parse_query("anc(a,W)").unwrap();
        b.iter_batched(
            || {
                let mut db = Database::new();
                for cl in parse_clauses(db_src).unwrap() {
                    db.assert(cl);
                }
                Machine::new(db)
            },
            |mut m| m.solve_all(&q).unwrap(),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("exec_time_table_build_montage2", |b| {
        b.iter(|| ExecTimeTable::build(&wf, &store, 12))
    });
}

criterion_group!(kernel_benches, kernels);
criterion_main!(kernel_benches);
