//! Graceful degradation under deterministic search budgets: sweep the
//! supervisor's tick budget from starvation to unlimited and record which
//! stage of the degradation chain answers, how many ticks it spent, and
//! how the incumbent's cost compares to the full-budget optimum.
//!
//! Beyond the criterion output, the bench writes `BENCH_degrade.json` at
//! the repository root: one row per (workflow, budget fraction) with the
//! producing stage, truncation flag, deterministic ticks spent, and the
//! incumbent-quality ratio (cost / full-budget cost; 1.0 at the top of
//! the sweep, typically worse below — the anytime quality curve).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use deco_cloud::{CloudSpec, MetadataStore};
use deco_core::estimate::deadline_anchors;
use deco_core::supervisor::plan_with_fallback;
use deco_core::Deco;
use deco_solver::SearchBudget;
use deco_workflow::generators;
use deco_workflow::Workflow;
use std::time::Duration;

const FRACTIONS: [f64; 7] = [0.0, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0];

fn engine() -> Deco {
    let spec = CloudSpec::amazon_ec2();
    let store = MetadataStore::from_ground_truth(spec, 25);
    let mut d = Deco::new(store);
    d.options.mc_iters = 40;
    d.options.search.max_states = 300;
    d
}

fn cases() -> Vec<(&'static str, Workflow)> {
    vec![
        ("montage_1", generators::montage(1, 1)),
        ("ligo_60", generators::ligo(60, 1)),
    ]
}

fn degrade(c: &mut Criterion) {
    let d = engine();
    let mut rows = Vec::new();

    for (name, wf) in cases() {
        let (dmin, dmax) = deadline_anchors(&wf, &d.store.spec);
        let deadline = 0.5 * (dmin + dmax);

        // Full-budget reference: the quality everything is normalized to,
        // and the tick denominator for the sweep.
        let full = plan_with_fallback(&d, &wf, deadline, 0.9, &SearchBudget::unlimited())
            .expect("unbudgeted supervision");
        let total_ticks = full.provenance.budget_spent.max(f64::MIN_POSITIVE);
        let full_cost = full.plan.evaluation.objective;

        let mut group = c.benchmark_group(&format!("degrade/{name}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(1500));
        group.bench_function("unlimited", |b| {
            b.iter(|| {
                plan_with_fallback(
                    &d,
                    &wf,
                    black_box(deadline),
                    0.9,
                    &SearchBudget::unlimited(),
                )
                .unwrap()
            })
        });
        group.bench_function("starved", |b| {
            b.iter(|| {
                plan_with_fallback(
                    &d,
                    &wf,
                    black_box(deadline),
                    0.9,
                    &SearchBudget::ticks(1e-12),
                )
                .unwrap()
            })
        });
        group.finish();

        for frac in FRACTIONS {
            let budget = if frac >= 1.0 {
                SearchBudget::unlimited()
            } else {
                // frac = 0 is the starvation point, not zero ticks (a zero
                // budget is the unlimited sentinel's complement: still
                // deterministic, exhausted after the first batch).
                SearchBudget::ticks((total_ticks * frac).max(1e-12))
            };
            let sup = plan_with_fallback(&d, &wf, deadline, 0.9, &budget)
                .expect("supervisor always answers");
            let quality = sup.plan.evaluation.objective / full_cost;
            println!(
                "degrade {name:<10} frac {frac:>4.2}  stage {:<11}  truncated {:<5}  \
                 ticks {:>10.4}  quality {:>6.3}  feasible {}",
                sup.provenance.stage.to_string(),
                sup.provenance.truncated,
                sup.provenance.budget_spent,
                quality,
                sup.plan.evaluation.feasible
            );
            rows.push(format!(
                "    {{\"name\": \"{}\", \"budget_frac\": {:.2}, \"stage\": \"{}\", \
                 \"truncated\": {}, \"ticks_spent\": {:.6}, \"quality_vs_full\": {:.4}, \
                 \"feasible\": {}, \"states\": {}}}",
                name,
                frac,
                sup.provenance.stage,
                sup.provenance.truncated,
                sup.provenance.budget_spent,
                quality,
                sup.plan.evaluation.feasible,
                sup.plan.stats.states_evaluated
            ));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"degrade\",\n  \"unit\": \"device_model_ticks\",\n  \
         \"acceptance\": \"every budget returns a plan; quality_vs_full -> 1.0 as budget_frac -> 1.0\",\n  \
         \"cases\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_degrade.json");
    std::fs::write(out, json).expect("write BENCH_degrade.json");
}

criterion_group!(benches, degrade);
criterion_main!(benches);
