//! Fault-subsystem overhead: the disruption-aware simulator with faults
//! *disabled* against the plain `run_plan` path, on the workflow scales
//! the paper evaluates. The fault hooks live inside the hot dispatch loop
//! (fate lookups, partition checks, the attempt trace), so this bench
//! guards the contract that a quiescent schedule costs nothing — the
//! acceptance bar is <2% overhead.
//!
//! Beyond the criterion output, the bench writes `BENCH_faults.json` at
//! the repository root with the measured medians and overhead ratios, plus
//! one row with a live 5%/instance-hour injector for scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use deco_cloud::{run_plan, CloudSpec, Plan, RetryConfig};
use deco_faults::{run_with_faults, FaultInjector, FaultModel};
use deco_workflow::generators;
use deco_workflow::Workflow;
use std::time::{Duration, Instant};

const SEED: u64 = 7;

struct Case {
    name: &'static str,
    wf: Workflow,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "montage_8",
            wf: generators::montage(8, 1),
        },
        Case {
            name: "ligo_100",
            wf: generators::ligo(100, 1),
        },
        Case {
            name: "ligo_1000",
            wf: generators::ligo(1000, 1),
        },
    ]
}

/// Best-observed seconds per call for each contender, with the samples
/// round-robined across contenders so clock drift and thermal throttling
/// hit every contender equally — an A/B/A/B schedule, not A*7 then B*7.
/// Scheduler jitter on shared machines is strictly additive, so the
/// minimum is the robust location estimate here, not the median. Each
/// sample is sized to a per-contender wall-clock budget estimated from
/// one untimed warm-up call.
fn interleaved_min_secs(
    contenders: &mut [&mut dyn FnMut()],
    samples: usize,
    budget: Duration,
) -> Vec<f64> {
    let reps: Vec<u64> = contenders
        .iter_mut()
        .map(|f| {
            let t = Instant::now();
            f();
            let once = t.elapsed().as_secs_f64().max(1e-9);
            ((budget.as_secs_f64() / samples as f64 / once).floor() as u64).max(1)
        })
        .collect();
    let mut recorded = vec![Vec::with_capacity(samples); contenders.len()];
    for _ in 0..samples {
        for (i, f) in contenders.iter_mut().enumerate() {
            let t = Instant::now();
            for _ in 0..reps[i] {
                f();
            }
            recorded[i].push(t.elapsed().as_secs_f64() / reps[i] as f64);
        }
    }
    recorded
        .into_iter()
        .map(|xs| xs.into_iter().fold(f64::INFINITY, f64::min))
        .collect()
}

fn faults_overhead(c: &mut Criterion) {
    let spec = CloudSpec::amazon_ec2();
    let quiescent = FaultInjector::new(FaultModel::none(), 1);
    let mut rows = Vec::new();

    for case in cases() {
        let wf = &case.wf;
        let plan = Plan::packed(wf, &vec![1; wf.len()], 0, &spec);

        // Sanity: a quiescent injector must be a bit-exact no-op before we
        // bother timing it.
        let base = run_plan(&spec, wf, &plan, SEED);
        let faulty = run_with_faults(&spec, wf, &plan, &quiescent, RetryConfig::default(), SEED);
        assert_eq!(
            base.makespan.to_bits(),
            faulty.result.makespan.to_bits(),
            "{}: quiescent run diverged",
            case.name
        );

        let mut group = c.benchmark_group(&format!("faults/{}", case.name));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(1200));
        group.bench_function("plain", |bch| {
            bch.iter(|| run_plan(&spec, wf, &plan, black_box(SEED)))
        });
        group.bench_function("faults_disabled", |bch| {
            bch.iter(|| {
                run_with_faults(
                    &spec,
                    wf,
                    &plan,
                    &quiescent,
                    RetryConfig::default(),
                    black_box(SEED),
                )
            })
        });
        group.finish();

        let budget = Duration::from_millis(1200);
        let chaos = FaultInjector::new(FaultModel::uniform_crash(&spec, 0.05), 3);
        let mut plain_f = || {
            black_box(run_plan(&spec, wf, &plan, SEED));
        };
        let mut disabled_f = || {
            black_box(run_with_faults(
                &spec,
                wf,
                &plan,
                &quiescent,
                RetryConfig::default(),
                SEED,
            ));
        };
        // The live-injector contender is one row for scale (not part of
        // the overhead bar).
        let mut chaos_f = || {
            black_box(run_with_faults(
                &spec,
                wf,
                &plan,
                &chaos,
                RetryConfig::default(),
                SEED,
            ));
        };
        let best = interleaved_min_secs(
            &mut [&mut plain_f, &mut disabled_f, &mut chaos_f],
            15,
            budget,
        );
        let (plain_s, disabled_s, chaos_s) = (best[0], best[1], best[2]);
        let overhead = disabled_s / plain_s - 1.0;
        println!(
            "faults {:<12} tasks={:<5} plain {:>9.1} us  disabled {:>9.1} us  overhead {:>6.2}%  chaos(5%/h) {:>9.1} us",
            case.name,
            wf.len(),
            plain_s * 1e6,
            disabled_s * 1e6,
            overhead * 100.0,
            chaos_s * 1e6
        );
        rows.push(format!(
            "    {{\"name\": \"{}\", \"tasks\": {}, \"plain_us\": {:.3}, \
             \"faults_disabled_us\": {:.3}, \"overhead_pct\": {:.3}, \"chaos_us\": {:.3}}}",
            case.name,
            wf.len(),
            plain_s * 1e6,
            disabled_s * 1e6,
            overhead * 100.0,
            chaos_s * 1e6
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"faults\",\n  \"unit\": \"microseconds_per_run\",\n  \
         \"acceptance\": \"faults_disabled overhead < 2% of plain run_plan\",\n  \
         \"cases\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");
    std::fs::write(out, json).expect("write BENCH_faults.json");
    println!("wrote {out}");
}

criterion_group!(faults_benches, faults_overhead);
criterion_main!(faults_benches);
