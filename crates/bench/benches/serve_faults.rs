//! Serving under faults: quiescent overhead and goodput under crashes.
//!
//! Two criterion groups bracket the robustness machinery added to the
//! serving layer: `quiescent` replays the same warm trace through the
//! plain `serve_trace` entry point and through `serve_trace_session`
//! with an empty fault plan (the two must cost the same — the fault
//! path is dormant), and `faulted` replays the mixed smoke trace under
//! a seeded 10 % worker-crash plan. Beyond the criterion output, the
//! bench writes `BENCH_serve_faults.json` at the repository root:
//! measured quiescent overhead (acceptance: session/plain ≤ 1.10) and
//! the goodput, crash, and retry counters of the faulted smoke run
//! (acceptance: goodput ≥ 0.95 at 10 % crashes).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use deco_cloud::{CloudSpec, MetadataStore};
use deco_core::estimate::deadline_anchors;
use deco_core::Deco;
use deco_serve::{
    Arrival, ArrivalTrace, PlanRequest, PlanServer, Priority, ServeConfig, ServeSession,
    WorkerFaultPlan,
};
use deco_workflow::generators;
use deco_workflow::Workflow;
use std::time::{Duration, Instant};

const WORKERS: usize = 4;
const CRASH_PROB: f64 = 0.10;

fn engine() -> Deco {
    let spec = CloudSpec::amazon_ec2();
    let store = MetadataStore::from_ground_truth(spec, 25);
    let mut d = Deco::new(store);
    d.options.mc_iters = 30;
    d.options.search.max_states = 150;
    d
}

fn shapes() -> Vec<Workflow> {
    let mut shapes = Vec::new();
    for s in 0..4u64 {
        shapes.push(generators::montage(1, 80 + s));
        shapes.push(generators::ligo(12, 80 + s));
    }
    shapes
}

fn request_for(wf: Workflow, tenant: u32, spec: &CloudSpec) -> PlanRequest {
    let (dmin, dmax) = deadline_anchors(&wf, spec);
    PlanRequest {
        tenant,
        workflow: wf,
        deadline: 0.5 * (dmin + dmax),
        percentile: 0.9,
        budget_hint: None,
        priority: Priority::default(),
    }
}

/// One request per distinct shape, all at tick 0: warm after one replay.
fn distinct_trace(spec: &CloudSpec) -> ArrivalTrace {
    let arrivals = shapes()
        .into_iter()
        .enumerate()
        .map(|(i, wf)| Arrival {
            at_tick: 0.0,
            request: request_for(wf, i as u32 % 4, spec),
        })
        .collect();
    ArrivalTrace::new(arrivals)
}

/// The CI smoke trace: 200 mixed Ligo/Montage requests from 4 tenants.
fn smoke_trace(spec: &CloudSpec) -> ArrivalTrace {
    let shapes = shapes();
    let arrivals = (0..200u32)
        .map(|i| Arrival {
            at_tick: f64::from(i) * 1e9,
            request: request_for(shapes[(i as usize) % shapes.len()].clone(), i % 4, spec),
        })
        .collect();
    ArrivalTrace::new(arrivals)
}

fn serve_faults(c: &mut Criterion) {
    let deco = engine();
    let spec = deco.store.spec.clone();
    let trace = distinct_trace(&spec);
    let quiescent = ServeSession::default();

    let mut warmed = PlanServer::new(deco.clone(), ServeConfig::default());
    warmed.serve_trace(&trace, WORKERS);

    let mut group = c.benchmark_group("serve_faults");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    group.bench_function("warm_plain", |b| {
        b.iter(|| black_box(warmed.serve_trace(black_box(&trace), WORKERS)))
    });
    group.bench_function("warm_quiescent_session", |b| {
        b.iter(|| black_box(warmed.serve_trace_session(black_box(&trace), WORKERS, &quiescent)))
    });
    group.finish();

    // Hand-timed quiescent overhead on the warm path (where the fault
    // machinery's bookkeeping would show up if it cost anything).
    // Interleaved so clock drift and cache state hit both sides equally.
    let reps = 200;
    let mut plain_secs = 0.0;
    let mut session_secs = 0.0;
    for _ in 0..reps {
        let t0 = Instant::now();
        let (_, stats) = warmed.serve_trace(&trace, WORKERS);
        plain_secs += t0.elapsed().as_secs_f64();
        assert_eq!(stats.hits as usize, trace.len(), "warmed server: all hits");
        let t0 = Instant::now();
        let (_, stats) = warmed.serve_trace_session(&trace, WORKERS, &quiescent);
        session_secs += t0.elapsed().as_secs_f64();
        assert_eq!(stats.hits as usize, trace.len(), "warmed server: all hits");
    }
    let overhead = session_secs / plain_secs;

    // Goodput of the 200-request smoke trace under 10% worker crashes.
    let session = ServeSession {
        faults: WorkerFaultPlan::crashes(1234, CRASH_PROB),
        refreshes: Vec::new(),
    };
    let mut faulted_server = PlanServer::new(deco, ServeConfig::default());
    let t0 = Instant::now();
    let (responses, smoke) =
        faulted_server.serve_trace_session(&smoke_trace(&spec), WORKERS, &session);
    let faulted_secs = t0.elapsed().as_secs_f64();
    assert_eq!(responses.len(), 200, "every request is answered");
    let goodput = smoke.planned as f64 / 200.0;
    println!(
        "serve_faults quiescent overhead {overhead:.3}x  smoke goodput {goodput:.3}  \
         crashes {} retries {} escalated {} quarantined {}",
        smoke.worker_crashes, smoke.retries, smoke.escalated, smoke.quarantined
    );

    let json = format!(
        "{{\n  \"bench\": \"serve_faults\",\n  \"workers\": {WORKERS},\n  \
         \"crash_prob\": {CRASH_PROB},\n  \
         \"acceptance\": \"quiescent session/plain <= 1.10; goodput >= 0.95 at 10% crashes\",\n  \
         \"quiescent_overhead\": {overhead:.4},\n  \"smoke\": {{\n    \
         \"requests\": {}, \"planned\": {}, \"goodput\": {goodput:.4},\n    \
         \"crashes\": {}, \"retries\": {}, \"escalated\": {}, \"quarantined\": {},\n    \
         \"cycles\": {}, \"wall_secs\": {faulted_secs:.3}\n  }}\n}}\n",
        smoke.requests,
        smoke.planned,
        smoke.worker_crashes,
        smoke.retries,
        smoke.escalated,
        smoke.quarantined,
        smoke.cycles,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve_faults.json");
    std::fs::write(out, json).expect("write BENCH_serve_faults.json");
}

criterion_group!(benches, serve_faults);
criterion_main!(benches);
