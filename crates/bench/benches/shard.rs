//! Sharded serving tier: N-shard throughput, WAL overhead, and
//! cold-restart recovery.
//!
//! Criterion groups measure the 200-request mixed Ligo/Montage smoke
//! trace end to end at 1, 2, and 4 shards (memory-only, so the
//! comparison isolates the sharded solve path) plus the persistent
//! 2-shard variant (WAL append on every cache/book mutation). Beyond the
//! criterion output, the bench writes `BENCH_shard.json` at the
//! repository root: smoke throughput per shard count, the WAL's
//! overhead factor, cold-restart recovery time, and the recovered warm
//! hit rate (acceptance: a cold-restarted tier answers the whole repeat
//! trace warm, with recovery far cheaper than re-solving).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use deco_cloud::{CloudSpec, MetadataStore};
use deco_core::estimate::deadline_anchors;
use deco_core::Deco;
use deco_serve::{Arrival, ArrivalTrace, PlanRequest, ServeConfig};
use deco_shard::{ShardConfig, ShardedServer};
use deco_workflow::generators;
use deco_workflow::Workflow;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const WORKERS_PER_SHARD: usize = 2;

fn engine() -> Deco {
    let spec = CloudSpec::amazon_ec2();
    let store = MetadataStore::from_ground_truth(spec, 25);
    let mut d = Deco::new(store);
    d.options.mc_iters = 30;
    d.options.search.max_states = 150;
    d
}

fn shapes() -> Vec<Workflow> {
    let mut shapes = Vec::new();
    for s in 0..4u64 {
        shapes.push(generators::montage(1, 80 + s));
        shapes.push(generators::ligo(12, 80 + s));
    }
    shapes
}

fn request_for(wf: Workflow, tenant: u32, spec: &CloudSpec) -> PlanRequest {
    let (dmin, dmax) = deadline_anchors(&wf, spec);
    PlanRequest {
        tenant,
        workflow: wf,
        deadline: 0.5 * (dmin + dmax),
        percentile: 0.9,
        budget_hint: None,
        priority: deco_serve::Priority::default(),
    }
}

/// The CI smoke trace: 200 mixed Ligo/Montage requests from 4 tenants.
fn smoke_trace(spec: &CloudSpec) -> ArrivalTrace {
    let shapes = shapes();
    let arrivals = (0..200u32)
        .map(|i| Arrival {
            at_tick: f64::from(i) * 1e9,
            request: request_for(shapes[(i as usize) % shapes.len()].clone(), i % 4, spec),
        })
        .collect();
    ArrivalTrace::new(arrivals)
}

fn config(shards: usize, persist_dir: Option<PathBuf>) -> ShardConfig {
    ShardConfig {
        shards,
        workers_per_shard: WORKERS_PER_SHARD,
        serve: ServeConfig::default(),
        persist_dir,
        snapshot_every: 0,
    }
}

fn bench_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("deco_bench_shard_{}_{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn shard(c: &mut Criterion) {
    let deco = engine();
    let spec = deco.store.spec.clone();
    let trace = smoke_trace(&spec);

    let mut group = c.benchmark_group("shard");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    for shards in [1usize, 2, 4] {
        group.bench_function(&format!("smoke200_mem_{shards}shard"), |b| {
            b.iter(|| {
                let mut tier =
                    ShardedServer::new(deco.clone(), config(shards, None)).expect("mem tier");
                black_box(tier.serve_trace(black_box(&trace)))
            })
        });
    }
    group.finish();

    // Hand-timed numbers for the JSON (engine construction excluded).
    let reps = 3;
    let mut rps = Vec::new();
    let mut reference: Option<Vec<String>> = None;
    for shards in [1usize, 2, 4] {
        let mut secs = 0.0;
        for _ in 0..reps {
            let mut tier = ShardedServer::new(deco.clone(), config(shards, None)).expect("tier");
            let t0 = Instant::now();
            let (responses, stats) = tier.serve_trace(&trace);
            secs += t0.elapsed().as_secs_f64();
            assert_eq!(responses.len(), 200);
            assert_eq!(stats.planned, 200);
            let lines: Vec<String> = responses.iter().map(|r| r.canonical_line()).collect();
            match &reference {
                None => reference = Some(lines),
                Some(r) => assert_eq!(r, &lines, "byte-identical at {shards} shards"),
            }
        }
        rps.push((shards, (reps * 200) as f64 / secs));
    }

    // Persistent 2-shard runs: a fresh tier over a fresh store each rep,
    // so every rep pays the full cold-solve + WAL-append cost and the
    // overhead factor compares like with like against the memory run.
    let dir = bench_dir("persist");
    let mut persist_secs = 0.0;
    let mut wal_appends = 0u64;
    let mut cached_entries = 0usize;
    for rep in 0..reps {
        let rep_dir = dir.join(format!("rep{rep}"));
        let mut tier =
            ShardedServer::new(deco.clone(), config(2, Some(rep_dir))).expect("persist tier");
        let t0 = Instant::now();
        let (responses, _) = tier.serve_trace(&trace);
        persist_secs += t0.elapsed().as_secs_f64();
        assert_eq!(responses.len(), 200);
        wal_appends += tier.shard_stats().wal_appends;
        cached_entries = tier.cache_len();
    } // tiers dropped: simulated process exits
    let persist_rps = (reps * 200) as f64 / persist_secs;
    let wal_overhead = rps[1].1 / persist_rps;

    // Cold restart over the last rep's store: how long to warm-start
    // from snapshot+WAL, and does the repeat trace then serve fully
    // warm?
    let last_dir = dir.join(format!("rep{}", reps - 1));
    let t0 = Instant::now();
    let mut recovered =
        ShardedServer::new(deco.clone(), config(2, Some(last_dir))).expect("recovered tier");
    let recovery_secs = t0.elapsed().as_secs_f64();
    assert_eq!(recovered.cache_len(), cached_entries);
    let t0 = Instant::now();
    let (_, warm_stats) = recovered.serve_trace(&trace);
    let warm_replay_secs = t0.elapsed().as_secs_f64();
    assert_eq!(warm_stats.misses, 0, "cold restart serves fully warm");
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "shard smoke200 mem 1/2/4 shards: {:.1} / {:.1} / {:.1} req/s  \
         persist(2) {persist_rps:.1} req/s (wal x{wal_overhead:.2})  \
         recovery {recovery_secs:.4}s ({} entries, {} frames)  warm replay {warm_replay_secs:.3}s \
         hit_rate {:.3}",
        rps[0].1,
        rps[1].1,
        rps[2].1,
        recovered.shard_stats().recovered_entries,
        recovered.shard_stats().recovered_frames,
        warm_stats.hit_rate(),
    );

    let json = format!(
        "{{\n  \"bench\": \"shard\",\n  \"workers_per_shard\": {WORKERS_PER_SHARD},\n  \
         \"acceptance\": \"byte-identical streams at 1/2/4 shards; cold restart replays fully warm\",\n  \
         \"smoke_rps\": {{ \"shards_1\": {:.2}, \"shards_2\": {:.2}, \"shards_4\": {:.2} }},\n  \
         \"persist_2shard_rps\": {persist_rps:.2},\n  \"wal_overhead_factor\": {wal_overhead:.3},\n  \
         \"wal_appends_per_run\": {},\n  \"cold_restart\": {{\n    \
         \"recovery_secs\": {recovery_secs:.6}, \"recovered_entries\": {}, \
         \"recovered_frames\": {}, \"torn_bytes\": {},\n    \
         \"warm_replay_secs\": {warm_replay_secs:.4}, \"repeat_misses\": {}, \
         \"repeat_hit_rate\": {:.4}\n  }}\n}}\n",
        rps[0].1,
        rps[1].1,
        rps[2].1,
        wal_appends / reps as u64,
        recovered.shard_stats().recovered_entries,
        recovered.shard_stats().recovered_frames,
        recovered.shard_stats().torn_bytes,
        warm_stats.misses,
        warm_stats.hit_rate(),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    std::fs::write(out, json).expect("write BENCH_shard.json");
}

criterion_group!(benches, shard);
criterion_main!(benches);
