//! Plan-serving throughput: cold solves vs warm cache hits.
//!
//! Two criterion groups measure the serving engine end to end: `cold`
//! replays a trace of distinct workflows against a fresh server (every
//! request is a full supervised solve), `warm` replays the same trace
//! against a pre-warmed server (every request is a content-addressed
//! cache hit). Beyond the criterion output, the bench writes
//! `BENCH_serve.json` at the repository root: measured cold and warm
//! requests/sec, their ratio (acceptance: warm ≥ 5× cold), plus the
//! hit rate and queue-wait percentiles of the 200-request mixed
//! Ligo/Montage smoke trace at 4 workers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use deco_cloud::{CloudSpec, MetadataStore};
use deco_core::estimate::deadline_anchors;
use deco_core::Deco;
use deco_serve::{Arrival, ArrivalTrace, PlanRequest, PlanServer, ServeConfig};
use deco_workflow::generators;
use deco_workflow::Workflow;
use std::time::{Duration, Instant};

const WORKERS: usize = 4;

fn engine() -> Deco {
    let spec = CloudSpec::amazon_ec2();
    let store = MetadataStore::from_ground_truth(spec, 25);
    let mut d = Deco::new(store);
    d.options.mc_iters = 30;
    d.options.search.max_states = 150;
    d
}

fn shapes() -> Vec<Workflow> {
    let mut shapes = Vec::new();
    for s in 0..4u64 {
        shapes.push(generators::montage(1, 80 + s));
        shapes.push(generators::ligo(12, 80 + s));
    }
    shapes
}

fn request_for(wf: Workflow, tenant: u32, spec: &CloudSpec) -> PlanRequest {
    let (dmin, dmax) = deadline_anchors(&wf, spec);
    PlanRequest {
        tenant,
        workflow: wf,
        deadline: 0.5 * (dmin + dmax),
        percentile: 0.9,
        budget_hint: None,
        priority: deco_serve::Priority::default(),
    }
}

/// One request per distinct shape: all cold on a fresh server, all warm
/// on a warmed one.
fn distinct_trace(spec: &CloudSpec) -> ArrivalTrace {
    let arrivals = shapes()
        .into_iter()
        .enumerate()
        .map(|(i, wf)| Arrival {
            at_tick: 0.0,
            request: request_for(wf, i as u32 % 4, spec),
        })
        .collect();
    ArrivalTrace::new(arrivals)
}

/// The CI smoke trace: 200 mixed Ligo/Montage requests from 4 tenants.
fn smoke_trace(spec: &CloudSpec) -> ArrivalTrace {
    let shapes = shapes();
    let arrivals = (0..200u32)
        .map(|i| Arrival {
            at_tick: f64::from(i) * 1e9,
            request: request_for(shapes[(i as usize) % shapes.len()].clone(), i % 4, spec),
        })
        .collect();
    ArrivalTrace::new(arrivals)
}

fn serve(c: &mut Criterion) {
    let deco = engine();
    let spec = deco.store.spec.clone();
    let trace = distinct_trace(&spec);

    let mut group = c.benchmark_group("serve");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    group.bench_function("cold_8_distinct", |b| {
        b.iter(|| {
            let mut server = PlanServer::new(engine(), ServeConfig::default());
            black_box(server.serve_trace(black_box(&trace), WORKERS))
        })
    });
    let mut warmed = PlanServer::new(engine(), ServeConfig::default());
    warmed.serve_trace(&trace, WORKERS);
    group.bench_function("warm_8_hits", |b| {
        b.iter(|| black_box(warmed.serve_trace(black_box(&trace), WORKERS)))
    });
    group.finish();

    // Hand-timed throughput for the JSON: engine construction excluded so
    // the ratio compares serving paths, not calibration.
    let reps = 5;
    let mut cold_secs = 0.0;
    for _ in 0..reps {
        let mut server = PlanServer::new(deco.clone(), ServeConfig::default());
        let t0 = Instant::now();
        let (responses, stats) = server.serve_trace(&trace, WORKERS);
        cold_secs += t0.elapsed().as_secs_f64();
        assert_eq!(responses.len(), trace.len());
        assert_eq!(stats.misses as usize, trace.len(), "fresh server: all cold");
    }
    let cold_rps = (reps * trace.len()) as f64 / cold_secs;

    let mut server = PlanServer::new(deco.clone(), ServeConfig::default());
    server.serve_trace(&trace, WORKERS); // warm the cache
    let mut warm_secs = 0.0;
    for _ in 0..reps {
        let t0 = Instant::now();
        let (_, stats) = server.serve_trace(&trace, WORKERS);
        warm_secs += t0.elapsed().as_secs_f64();
        assert_eq!(stats.hits as usize, trace.len(), "warmed server: all hits");
    }
    let warm_rps = (reps * trace.len()) as f64 / warm_secs;
    let speedup = warm_rps / cold_rps;

    // The smoke trace's serving statistics.
    let mut smoke_server = PlanServer::new(deco, ServeConfig::default());
    let (smoke_responses, smoke) = smoke_server.serve_trace(&smoke_trace(&spec), WORKERS);
    println!(
        "serve cold {cold_rps:.1} req/s  warm {warm_rps:.1} req/s  speedup {speedup:.1}x  \
         smoke hit_rate {:.3} p50_wait {:.0} p95_wait {:.0}",
        smoke.hit_rate(),
        smoke.p50_wait(),
        smoke.p95_wait()
    );
    assert_eq!(smoke_responses.len(), 200);

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"workers\": {WORKERS},\n  \
         \"acceptance\": \"warm_rps >= 5x cold_rps; smoke trace fully answered\",\n  \
         \"cold_rps\": {cold_rps:.2},\n  \"warm_rps\": {warm_rps:.2},\n  \
         \"warm_over_cold\": {speedup:.2},\n  \"smoke\": {{\n    \
         \"requests\": {}, \"planned\": {}, \"misses\": {}, \"hits\": {}, \
         \"coalesced\": {}, \"hit_rate\": {:.4},\n    \
         \"p50_wait_ticks\": {:.3}, \"p95_wait_ticks\": {:.3}, \"cycles\": {}\n  }}\n}}\n",
        smoke.requests,
        smoke.planned,
        smoke.misses,
        smoke.hits,
        smoke.coalesced,
        smoke.hit_rate(),
        smoke.p50_wait(),
        smoke.p95_wait(),
        smoke.cycles,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(out, json).expect("write BENCH_serve.json");
}

criterion_group!(benches, serve);
criterion_main!(benches);
