//! Single-state Monte-Carlo evaluation throughput: the reference
//! Algorithm 1 loop (`mc_evaluate_plan_reference`, fresh topological sort
//! and O(bins) linear-scan sampling per realization) against the compiled
//! fast path (`CompiledPlan` + reusable `EvalScratch`).
//!
//! Beyond the criterion output, the bench writes `BENCH_mc_eval.json` at
//! the repository root with the measured medians and speedups so future
//! PRs can track the trajectory without parsing bench logs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use deco_cloud::{CloudSpec, MetadataStore, Plan};
use deco_core::estimate::{
    mc_evaluate_plan_reference, mc_evaluate_plan_scratch, CompiledFrontier, CompiledPlan,
    EvalScratch, ExecTimeTable, FrontierScratch, FrontierSkeleton,
};
use deco_workflow::generators;
use deco_workflow::Workflow;
use std::time::{Duration, Instant};

/// Monte-Carlo iterations per evaluation — the scale the scheduling
/// problem uses for one search state.
const MC_ITERS: usize = 200;
const HIST_BINS: usize = 12;
const SEED: u64 = 7;
/// Frontier widths the batched evaluator is measured at.
const FRONTIER_KS: [usize; 3] = [8, 32, 128];

/// A synthetic beam frontier: K distinct type vectors over the same DAG,
/// the shape `beam_search` hands to `evaluate_frontier`.
fn beam_plans(wf: &Workflow, spec: &CloudSpec, k: usize) -> Vec<Plan> {
    (0..k)
        .map(|i| {
            let types: Vec<usize> = (0..wf.len()).map(|j| 1 + (i * 7 + j * 3) % 3).collect();
            Plan::packed(wf, &types, 0, spec)
        })
        .collect()
}

fn frontier_seeds(k: usize) -> Vec<u64> {
    (0..k as u64)
        .map(|i| SEED ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect()
}

struct Case {
    name: &'static str,
    wf: Workflow,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "montage_8",
            wf: generators::montage(8, 1),
        },
        Case {
            name: "ligo_20",
            wf: generators::ligo(20, 1),
        },
        Case {
            name: "ligo_100",
            wf: generators::ligo(100, 1),
        },
        Case {
            name: "ligo_1000",
            wf: generators::ligo(1000, 1),
        },
    ]
}

/// Median seconds per call over `samples` timed samples, each sized to a
/// wall-clock budget estimated from one untimed warm-up call.
fn median_secs(mut f: impl FnMut(), samples: usize, budget: Duration) -> f64 {
    let t = Instant::now();
    f();
    let once = t.elapsed().as_secs_f64().max(1e-9);
    let per_sample = ((budget.as_secs_f64() / samples as f64 / once).floor() as u64).max(1);
    let mut medians: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..per_sample {
                f();
            }
            t.elapsed().as_secs_f64() / per_sample as f64
        })
        .collect();
    medians.sort_by(|a, b| a.partial_cmp(b).unwrap());
    medians[medians.len() / 2]
}

fn mc_eval(c: &mut Criterion) {
    // Quick mode (CI): skip the criterion groups and the reference
    // medians, measure only the per-plan vs batched-frontier comparison
    // with small budgets, and fail if the frontier path is ever slower
    // than evaluating the same candidates one compiled plan at a time.
    let quick = std::env::var("MC_EVAL_QUICK").is_ok();
    let spec = CloudSpec::amazon_ec2();
    let store = MetadataStore::from_ground_truth(spec.clone(), 30);
    let mut rows = Vec::new();
    let mut frontier_rows = Vec::new();

    for case in cases() {
        let wf = &case.wf;
        let table = ExecTimeTable::build(wf, &store, HIST_BINS);
        let plan = Plan::packed(wf, &vec![1; wf.len()], 0, &spec);
        let deadline = 0.75
            * mc_evaluate_plan_reference(wf, &plan, &table, &spec, f64::INFINITY, 0.9, 32, SEED)
                .quantile_makespan;

        // Sanity: both paths must give the same verdict before we time them.
        let a = mc_evaluate_plan_reference(wf, &plan, &table, &spec, deadline, 0.9, 64, SEED);
        let mut scratch = EvalScratch::new();
        let b = mc_evaluate_plan_scratch(
            wf,
            &plan,
            &table,
            &spec,
            deadline,
            0.9,
            64,
            SEED,
            &mut scratch,
        );
        assert_eq!(a, b, "{}: compiled path diverged from reference", case.name);

        // ---- Batched frontier vs per-plan compiled evaluation ----
        let skel = FrontierSkeleton::build(wf, &table);
        let mut fscratch = FrontierScratch::new();
        let (budget, samples) = if quick {
            (Duration::from_millis(250), 3)
        } else {
            (Duration::from_millis(1500), 7)
        };
        let ks: &[usize] = if quick { &[32] } else { &FRONTIER_KS };
        for &k in ks {
            let plans = beam_plans(wf, &spec, k);
            let seeds = frontier_seeds(k);
            let frontier =
                CompiledFrontier::compile(&skel, &spec, &plans).expect("packer plans conform");

            // Sanity: bit-identical to the per-plan compiled path.
            let batched = frontier.evaluate(deadline, 0.9, 64, &seeds, &mut fscratch);
            for (i, (p, s)) in plans.iter().zip(&seeds).enumerate() {
                let one = mc_evaluate_plan_scratch(
                    wf,
                    p,
                    &table,
                    &spec,
                    deadline,
                    0.9,
                    64,
                    *s,
                    &mut scratch,
                );
                assert_eq!(
                    one, batched[i],
                    "{} k={k}: frontier diverged from per-plan at candidate {i}",
                    case.name
                );
            }

            let per_plan_s = median_secs(
                || {
                    for (p, s) in plans.iter().zip(&seeds) {
                        black_box(mc_evaluate_plan_scratch(
                            wf,
                            p,
                            &table,
                            &spec,
                            deadline,
                            0.9,
                            MC_ITERS,
                            *s,
                            &mut scratch,
                        ));
                    }
                },
                samples,
                budget,
            );
            let frontier_s = median_secs(
                || {
                    let f = CompiledFrontier::compile(&skel, &spec, &plans)
                        .expect("packer plans conform");
                    black_box(f.evaluate(deadline, 0.9, MC_ITERS, &seeds, &mut fscratch));
                },
                samples,
                budget,
            );
            let speedup = per_plan_s / frontier_s;
            println!(
                "mc_eval {:<12} k={:<4} per_plan {:>10.1} us/cand  frontier {:>10.1} us/cand  speedup {:.2}x",
                case.name,
                k,
                per_plan_s / k as f64 * 1e6,
                frontier_s / k as f64 * 1e6,
                speedup
            );
            frontier_rows.push(format!(
                "    {{\"name\": \"{}\", \"tasks\": {}, \"k\": {}, \"mc_iters\": {}, \
                 \"per_plan_us_per_cand\": {:.3}, \"frontier_us_per_cand\": {:.3}, \"speedup\": {:.3}}}",
                case.name,
                wf.len(),
                k,
                MC_ITERS,
                per_plan_s / k as f64 * 1e6,
                frontier_s / k as f64 * 1e6,
                speedup
            ));
            if quick {
                assert!(
                    speedup >= 1.0,
                    "{} k={k}: batched frontier slower than per-plan ({speedup:.2}x)",
                    case.name
                );
            }
        }

        if quick {
            continue;
        }

        let mut group = c.benchmark_group(&format!("mc_eval/{}", case.name));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(1200));
        group.bench_function("reference", |bch| {
            bch.iter(|| {
                mc_evaluate_plan_reference(
                    wf,
                    &plan,
                    &table,
                    &spec,
                    black_box(deadline),
                    0.9,
                    MC_ITERS,
                    SEED,
                )
            })
        });
        group.bench_function("compiled", |bch| {
            bch.iter(|| {
                mc_evaluate_plan_scratch(
                    wf,
                    &plan,
                    &table,
                    &spec,
                    black_box(deadline),
                    0.9,
                    MC_ITERS,
                    SEED,
                    &mut scratch,
                )
            })
        });
        group.bench_function("compile_only", |bch| {
            bch.iter(|| CompiledPlan::compile(wf, &plan, &table, &spec))
        });
        group.finish();

        // Independent medians for the JSON record.
        let budget = Duration::from_millis(1500);
        let ref_s = median_secs(
            || {
                black_box(mc_evaluate_plan_reference(
                    wf, &plan, &table, &spec, deadline, 0.9, MC_ITERS, SEED,
                ));
            },
            7,
            budget,
        );
        let fast_s = median_secs(
            || {
                black_box(mc_evaluate_plan_scratch(
                    wf,
                    &plan,
                    &table,
                    &spec,
                    deadline,
                    0.9,
                    MC_ITERS,
                    SEED,
                    &mut scratch,
                ));
            },
            7,
            budget,
        );
        let speedup = ref_s / fast_s;
        println!(
            "mc_eval {:<12} tasks={:<5} slots={:<5} reference {:>10.1} us  compiled {:>10.1} us  speedup {:.2}x",
            case.name,
            wf.len(),
            plan.slots.len(),
            ref_s * 1e6,
            fast_s * 1e6,
            speedup
        );
        rows.push(format!(
            "    {{\"name\": \"{}\", \"tasks\": {}, \"mc_iters\": {}, \
             \"reference_us\": {:.3}, \"compiled_us\": {:.3}, \"speedup\": {:.3}}}",
            case.name,
            wf.len(),
            MC_ITERS,
            ref_s * 1e6,
            fast_s * 1e6,
            speedup
        ));
    }

    if quick {
        println!("mc_eval quick mode: frontier >= per-plan on every case, skipping JSON");
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"mc_eval\",\n  \"unit\": \"microseconds_per_evaluation\",\n  \
         \"cases\": [\n{}\n  ],\n  \"frontier\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
        frontier_rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mc_eval.json");
    std::fs::write(out, json).expect("write BENCH_mc_eval.json");
    println!("wrote {out}");
}

criterion_group!(mc_eval_benches, mc_eval);
criterion_main!(mc_eval_benches);
