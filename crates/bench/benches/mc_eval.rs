//! Single-state Monte-Carlo evaluation throughput: the reference
//! Algorithm 1 loop (`mc_evaluate_plan_reference`, fresh topological sort
//! and O(bins) linear-scan sampling per realization) against the compiled
//! fast path (`CompiledPlan` + reusable `EvalScratch`).
//!
//! Beyond the criterion output, the bench writes `BENCH_mc_eval.json` at
//! the repository root with the measured medians and speedups so future
//! PRs can track the trajectory without parsing bench logs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use deco_cloud::{CloudSpec, MetadataStore, Plan};
use deco_core::estimate::{
    mc_evaluate_plan_reference, mc_evaluate_plan_scratch, CompiledPlan, EvalScratch, ExecTimeTable,
};
use deco_workflow::generators;
use deco_workflow::Workflow;
use std::time::{Duration, Instant};

/// Monte-Carlo iterations per evaluation — the scale the scheduling
/// problem uses for one search state.
const MC_ITERS: usize = 200;
const HIST_BINS: usize = 12;
const SEED: u64 = 7;

struct Case {
    name: &'static str,
    wf: Workflow,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "montage_8",
            wf: generators::montage(8, 1),
        },
        Case {
            name: "ligo_20",
            wf: generators::ligo(20, 1),
        },
        Case {
            name: "ligo_100",
            wf: generators::ligo(100, 1),
        },
        Case {
            name: "ligo_1000",
            wf: generators::ligo(1000, 1),
        },
    ]
}

/// Median seconds per call over `samples` timed samples, each sized to a
/// wall-clock budget estimated from one untimed warm-up call.
fn median_secs(mut f: impl FnMut(), samples: usize, budget: Duration) -> f64 {
    let t = Instant::now();
    f();
    let once = t.elapsed().as_secs_f64().max(1e-9);
    let per_sample = ((budget.as_secs_f64() / samples as f64 / once).floor() as u64).max(1);
    let mut medians: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..per_sample {
                f();
            }
            t.elapsed().as_secs_f64() / per_sample as f64
        })
        .collect();
    medians.sort_by(|a, b| a.partial_cmp(b).unwrap());
    medians[medians.len() / 2]
}

fn mc_eval(c: &mut Criterion) {
    let spec = CloudSpec::amazon_ec2();
    let store = MetadataStore::from_ground_truth(spec.clone(), 30);
    let mut rows = Vec::new();

    for case in cases() {
        let wf = &case.wf;
        let table = ExecTimeTable::build(wf, &store, HIST_BINS);
        let plan = Plan::packed(wf, &vec![1; wf.len()], 0, &spec);
        let deadline = 0.75
            * mc_evaluate_plan_reference(wf, &plan, &table, &spec, f64::INFINITY, 0.9, 32, SEED)
                .quantile_makespan;

        // Sanity: both paths must give the same verdict before we time them.
        let a = mc_evaluate_plan_reference(wf, &plan, &table, &spec, deadline, 0.9, 64, SEED);
        let mut scratch = EvalScratch::new();
        let b = mc_evaluate_plan_scratch(
            wf,
            &plan,
            &table,
            &spec,
            deadline,
            0.9,
            64,
            SEED,
            &mut scratch,
        );
        assert_eq!(a, b, "{}: compiled path diverged from reference", case.name);

        let mut group = c.benchmark_group(&format!("mc_eval/{}", case.name));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(1200));
        group.bench_function("reference", |bch| {
            bch.iter(|| {
                mc_evaluate_plan_reference(
                    wf,
                    &plan,
                    &table,
                    &spec,
                    black_box(deadline),
                    0.9,
                    MC_ITERS,
                    SEED,
                )
            })
        });
        group.bench_function("compiled", |bch| {
            bch.iter(|| {
                mc_evaluate_plan_scratch(
                    wf,
                    &plan,
                    &table,
                    &spec,
                    black_box(deadline),
                    0.9,
                    MC_ITERS,
                    SEED,
                    &mut scratch,
                )
            })
        });
        group.bench_function("compile_only", |bch| {
            bch.iter(|| CompiledPlan::compile(wf, &plan, &table, &spec))
        });
        group.finish();

        // Independent medians for the JSON record.
        let budget = Duration::from_millis(1500);
        let ref_s = median_secs(
            || {
                black_box(mc_evaluate_plan_reference(
                    wf, &plan, &table, &spec, deadline, 0.9, MC_ITERS, SEED,
                ));
            },
            7,
            budget,
        );
        let fast_s = median_secs(
            || {
                black_box(mc_evaluate_plan_scratch(
                    wf,
                    &plan,
                    &table,
                    &spec,
                    deadline,
                    0.9,
                    MC_ITERS,
                    SEED,
                    &mut scratch,
                ));
            },
            7,
            budget,
        );
        let speedup = ref_s / fast_s;
        println!(
            "mc_eval {:<12} tasks={:<5} slots={:<5} reference {:>10.1} us  compiled {:>10.1} us  speedup {:.2}x",
            case.name,
            wf.len(),
            plan.slots.len(),
            ref_s * 1e6,
            fast_s * 1e6,
            speedup
        );
        rows.push(format!(
            "    {{\"name\": \"{}\", \"tasks\": {}, \"mc_iters\": {}, \
             \"reference_us\": {:.3}, \"compiled_us\": {:.3}, \"speedup\": {:.3}}}",
            case.name,
            wf.len(),
            MC_ITERS,
            ref_s * 1e6,
            fast_s * 1e6,
            speedup
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"mc_eval\",\n  \"unit\": \"microseconds_per_evaluation\",\n  \
         \"cases\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mc_eval.json");
    std::fs::write(out, json).expect("write BENCH_mc_eval.json");
    println!("wrote {out}");
}

criterion_group!(mc_eval_benches, mc_eval);
criterion_main!(mc_eval_benches);
