//! Deterministic shard crash/restart injection.
//!
//! The serving layer already injects solver-worker faults
//! ([`deco_serve::WorkerFaultPlan`]); this module injects the next
//! failure domain up: a whole shard process dying and restarting between
//! solve cycles. Draws follow the same discipline — a domain-separated
//! [`StableHasher`](deco_prob::hash::StableHasher) digest of the seed,
//! keyed by **(shard, cycle)** — so a restart schedule is a pure value:
//! identical across platforms and physical thread counts, and
//! independent of which requests the trace happens to contain.
//!
//! Restarts land at cycle boundaries (the engine's
//! `ServeBackend::on_cycle_boundary` hook), which mirrors how a
//! supervisor would actually bounce a shard: between batches, never
//! mid-integration. With a durable store attached, a restarted shard
//! recovers its exact cache and fault books from snapshot + WAL and the
//! replay is byte-identical to an undisturbed run — the shard tests pin
//! this.

use deco_prob::hash::StableHasher;
use deco_prob::rng::splitmix64;
use std::hash::Hasher;

/// A seeded, reproducible schedule of shard restarts.
#[derive(Debug, Clone)]
pub struct ShardFaultPlan {
    /// Root seed; every draw is a domain-separated digest of it.
    pub seed: u64,
    /// Probability a (shard, cycle) pair restarts at that boundary.
    pub restart_prob: f64,
}

impl Default for ShardFaultPlan {
    /// The default plan is the quiescent one: no restarts ever.
    fn default() -> Self {
        ShardFaultPlan::quiescent()
    }
}

impl ShardFaultPlan {
    /// The empty plan: no shard ever restarts.
    pub fn quiescent() -> Self {
        ShardFaultPlan {
            seed: 0,
            restart_prob: 0.0,
        }
    }

    /// A plan that restarts each (shard, cycle) pair with probability
    /// `restart_prob`.
    pub fn restarts(seed: u64, restart_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&restart_prob),
            "probabilities in [0,1]"
        );
        ShardFaultPlan { seed, restart_prob }
    }

    /// True when no restart can ever be drawn.
    pub fn is_quiescent(&self) -> bool {
        self.restart_prob == 0.0
    }

    /// Does shard `shard` crash-and-restart at the boundary of `cycle`?
    pub fn restarts_at(&self, cycle: u64, shard: usize) -> bool {
        if self.is_quiescent() {
            return false;
        }
        let mut h = StableHasher::with_seed(self.seed ^ 0x5AAD_FA7E);
        h.write(b"shard-restart");
        h.write_u64(cycle);
        h.write_u64(shard as u64);
        let unit = (splitmix64(h.finish()) >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.restart_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_plans_never_restart() {
        let p = ShardFaultPlan::quiescent();
        for cycle in 0..100 {
            for shard in 0..4 {
                assert!(!p.restarts_at(cycle, shard));
            }
        }
    }

    #[test]
    fn schedules_are_reproducible_and_seed_sensitive() {
        let a = ShardFaultPlan::restarts(7, 0.3);
        let b = ShardFaultPlan::restarts(7, 0.3);
        let c = ShardFaultPlan::restarts(9, 0.3);
        let draw = |p: &ShardFaultPlan| -> Vec<bool> {
            (0..400)
                .map(|i| p.restarts_at(i / 4, (i % 4) as usize))
                .collect()
        };
        assert_eq!(draw(&a), draw(&b), "same seed, same schedule");
        assert_ne!(draw(&a), draw(&c), "different seed decorrelates");
    }

    #[test]
    fn restart_rate_tracks_the_probability() {
        let p = ShardFaultPlan::restarts(3, 0.2);
        let n = 5000;
        let hits = (0..n)
            .filter(|&i| p.restarts_at(i / 4, (i % 4) as usize))
            .count();
        let rate = hits as f64 / n as f64;
        assert!(
            (rate - 0.2).abs() < 0.02,
            "20% restart plan fired at rate {rate}"
        );
    }
}
