//! The sharded serving tier: N shards behind one deterministic engine.
//!
//! [`ShardedServer`] implements [`ServeBackend`], so the *entire* cycle
//! loop — admission, classification, fault fates, budget fair-share,
//! response ordering — is the exact code `PlanServer` runs
//! ([`deco_serve::serve_trace_backend`]). What this type changes is only
//! where state lives and where solves run:
//!
//! * the plan cache and the quarantine/strike books are **partitioned by
//!   contiguous content-key range** ([`ShardRouter`]) — shard-local
//!   storage, but one *global* LRU clock and one global capacity, so
//!   eviction picks the same victim a single-map cache would;
//! * each cycle's solve jobs are routed to their owning shard and run on
//!   **per-shard worker pools** concurrently, results merging into one
//!   canonically-ordered map;
//! * every cache/book mutation appends a frame to the shard's WAL-backed
//!   [`PlanStore`]; a shard restart (injected by a [`ShardFaultPlan`] at
//!   a cycle boundary, or an explicit [`ShardedServer::restart_shard`])
//!   replays snapshot + WAL and resumes **warm** — with persistence, a
//!   restart is observationally a no-op, which is why the replay stays
//!   byte-identical even under a crash/restart schedule.
//!
//! Without a `persist_dir`, a restarted shard deterministically loses its
//! partition (the documented degraded mode): still byte-deterministic
//! for a fixed restart schedule, but no longer identical to an
//! undisturbed run. Store I/O failures never panic: the shard drops to
//! memory-only operation and the failure is counted in [`ShardStats`].

use crate::faults::ShardFaultPlan;
use crate::router::ShardRouter;
use deco_cloud::MetadataStore;
use deco_core::supervisor::SupervisedPlan;
use deco_core::{Deco, DecoError};
use deco_serve::server::{serve_trace_backend, solve_jobs_on_pool, ServeBackend, SolveJob};
use deco_serve::store::{PlanStore, RecoveredState, StoreFrame};
use deco_serve::{
    canonical_deadline, plan_key, ArrivalTrace, PlanResponse, ServeConfig, ServeSession, ServeStats,
};
use deco_solver::SearchBudget;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// Policy for the sharded tier. `serve` is the inner engine policy —
/// shared by every shard, exactly as a single-process server would read
/// it (`cache_capacity` is the *global* bound, not per-shard).
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of key-range shards.
    pub shards: usize,
    /// Solver threads per shard pool.
    pub workers_per_shard: usize,
    /// The engine policy (admission, cache, retry, ...) the cycle loop
    /// runs under.
    pub serve: ServeConfig,
    /// Root directory for the per-shard durable stores
    /// (`<dir>/shard-<i>/`). `None` runs memory-only: restarts lose the
    /// shard's partition.
    pub persist_dir: Option<PathBuf>,
    /// Compact a shard's WAL into a snapshot once this many frames have
    /// been appended since the last compaction. 0 disables automatic
    /// compaction.
    pub snapshot_every: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 2,
            workers_per_shard: 2,
            serve: ServeConfig::default(),
            persist_dir: None,
            snapshot_every: 0,
        }
    }
}

/// Environment for one sharded replay: the inner serving session (worker
/// faults + calibration refreshes) plus the shard restart schedule.
#[derive(Debug, Clone, Default)]
pub struct ShardSession {
    pub serve: ServeSession,
    pub shard_faults: ShardFaultPlan,
}

/// Counters for the tier's own machinery (the serving counters live in
/// the engine's [`ServeStats`]; these describe sharding and durability).
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Shard restarts taken (injected or explicit).
    pub restarts: u64,
    /// Cache entries recovered warm across all restarts and warm starts.
    pub recovered_entries: u64,
    /// Valid WAL/snapshot frames replayed across recoveries.
    pub recovered_frames: u64,
    /// Bytes discarded from torn log tails across recoveries.
    pub torn_bytes: u64,
    /// Entries lost to restarts without persistence (degraded mode).
    pub lost_entries: u64,
    /// WAL frames appended.
    pub wal_appends: u64,
    /// Snapshot compactions performed.
    pub snapshots: u64,
    /// Store I/O failures that degraded a shard to memory-only.
    pub store_failures: u64,
}

/// One cached plan in a shard's partition.
#[derive(Debug, Clone)]
struct StoredEntry {
    plan: SupervisedPlan,
    epoch: u64,
    last_use: u64,
}

/// One shard: its slice of the cache and books, plus its durable store.
struct Shard {
    entries: BTreeMap<u64, StoredEntry>,
    strikes: BTreeMap<u64, u32>,
    quarantine: BTreeSet<u64>,
    store: Option<PlanStore>,
    /// Frames appended since the last compaction (the snapshot trigger).
    appends_since_compact: u64,
}

impl Shard {
    fn empty() -> Self {
        Shard {
            entries: BTreeMap::new(),
            strikes: BTreeMap::new(),
            quarantine: BTreeSet::new(),
            store: None,
            appends_since_compact: 0,
        }
    }

    fn adopt(&mut self, state: RecoveredState) {
        self.entries = state
            .entries
            .into_iter()
            .map(|(k, e)| {
                (
                    k,
                    StoredEntry {
                        plan: e.plan,
                        epoch: e.epoch,
                        last_use: e.last_use,
                    },
                )
            })
            .collect();
        self.strikes = state.strikes;
        self.quarantine = state.quarantine;
    }

    /// Append a frame, degrading to memory-only on I/O failure — the
    /// store must never make the serving path unavailable.
    fn append(&mut self, frame: &StoreFrame, stats: &mut ShardStats) {
        if let Some(store) = self.store.as_mut() {
            match store.append(frame) {
                Ok(()) => {
                    stats.wal_appends += 1;
                    self.appends_since_compact += 1;
                }
                Err(_) => {
                    stats.store_failures += 1;
                    self.store = None;
                }
            }
        }
    }
}

/// A sharded, optionally persistent [`ServeBackend`]. See the module
/// docs for the design; the headline contract is that for any shard
/// count N ≥ 1 (and any restart schedule, when persistence is on), a
/// replay is byte-identical to [`deco_serve::PlanServer`] serving the
/// same trace under the same [`ServeSession`].
pub struct ShardedServer {
    pub deco: Deco,
    config: ShardConfig,
    router: ShardRouter,
    shards: Vec<Shard>,
    /// The single global LRU clock — shared by all shards, bumped on
    /// every get and insert exactly like the single-process cache's.
    clock: u64,
    /// The restart schedule for the replay in flight.
    fault_plan: ShardFaultPlan,
    stats: ShardStats,
}

impl ShardedServer {
    /// Build the tier. With a `persist_dir`, every shard warm-starts
    /// from its recovered snapshot + WAL (cold-restart warm hits); store
    /// failures degrade the affected shard to memory-only instead of
    /// failing construction, and only an unusable directory itself is an
    /// error.
    pub fn new(deco: Deco, config: ShardConfig) -> Result<Self, DecoError> {
        assert!(config.shards >= 1, "need at least one shard");
        assert!(config.workers_per_shard >= 1, "need at least one worker");
        assert!(
            config.serve.batch_size >= 1,
            "batch_size must be at least 1"
        );
        let router = ShardRouter::new(config.shards);
        let mut stats = ShardStats::default();
        let mut shards = Vec::with_capacity(config.shards);
        let mut clock = 0u64;
        for i in 0..config.shards {
            let mut shard = Shard::empty();
            if let Some(root) = &config.persist_dir {
                let dir = root.join(format!("shard-{i}"));
                let mut store = PlanStore::open(&dir)?;
                match store.recover() {
                    Ok(state) => {
                        stats.recovered_entries += state.entries.len() as u64;
                        stats.recovered_frames += store.stats().frames_recovered;
                        stats.torn_bytes += store.stats().torn_bytes;
                        shard.adopt(state);
                        for e in shard.entries.values() {
                            clock = clock.max(e.last_use);
                        }
                        shard.store = Some(store);
                    }
                    Err(_) => {
                        stats.store_failures += 1;
                    }
                }
            }
            shards.push(shard);
        }
        Ok(ShardedServer {
            deco,
            config,
            router,
            shards,
            clock,
            fault_plan: ShardFaultPlan::quiescent(),
            stats,
        })
    }

    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Tier counters (restarts, recoveries, WAL traffic).
    pub fn shard_stats(&self) -> &ShardStats {
        &self.stats
    }

    /// Total cached entries across all shards.
    pub fn cache_len(&self) -> usize {
        self.shards.iter().map(|s| s.entries.len()).sum()
    }

    /// Cached entries in one shard's partition.
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard].entries.len()
    }

    /// Content keys currently quarantined, across all shards.
    pub fn quarantined_keys(&self) -> usize {
        self.shards.iter().map(|s| s.quarantine.len()).sum()
    }

    /// The content key the tier would derive for a request — identical
    /// to `PlanServer::key_for` under the same `serve` policy.
    pub fn key_for(&self, req: &deco_serve::PlanRequest) -> u64 {
        let cd = canonical_deadline(req.deadline, self.config.serve.deadline_bucket);
        plan_key(
            &req.workflow,
            &self.deco.store,
            &self.deco.options,
            cd,
            req.percentile,
            req.budget_hint.or(self.config.serve.budget.ticks),
        )
    }

    /// Kill one shard and bring it back. With a store attached the shard
    /// recovers its exact partition (cache, LRU stamps, strike and
    /// quarantine books) from snapshot + WAL; without one, the partition
    /// is lost (degraded mode) and the loss is counted.
    pub fn restart_shard(&mut self, shard: usize) {
        assert!(shard < self.shards.len(), "shard {shard} out of range");
        self.stats.restarts += 1;
        let s = &mut self.shards[shard];
        let had = s.entries.len() as u64;
        s.entries.clear();
        s.strikes.clear();
        s.quarantine.clear();
        // Close the old handle before reopening the same files.
        let dir = s.store.take().map(|st| st.dir().to_path_buf());
        match dir {
            Some(dir) => match PlanStore::open(&dir) {
                Ok(mut store) => match store.recover() {
                    Ok(state) => {
                        self.stats.recovered_entries += state.entries.len() as u64;
                        self.stats.recovered_frames += store.stats().frames_recovered;
                        self.stats.torn_bytes += store.stats().torn_bytes;
                        s.adopt(state);
                        s.store = Some(store);
                    }
                    Err(_) => {
                        self.stats.store_failures += 1;
                        self.stats.lost_entries += had;
                    }
                },
                Err(_) => {
                    self.stats.store_failures += 1;
                    self.stats.lost_entries += had;
                }
            },
            None => {
                self.stats.lost_entries += had;
            }
        }
    }

    /// Compact one shard's WAL into a fresh snapshot of its live state.
    pub fn compact_shard(&mut self, shard: usize) {
        let epoch = self.deco.store.catalog_epoch();
        let s = &mut self.shards[shard];
        let Some(store) = s.store.as_mut() else {
            return;
        };
        let mut state = RecoveredState {
            epoch,
            ..RecoveredState::default()
        };
        for (&key, e) in &s.entries {
            state.entries.insert(
                key,
                deco_serve::store::RecoveredEntry {
                    plan: e.plan.clone(),
                    epoch: e.epoch,
                    last_use: e.last_use,
                },
            );
        }
        state.strikes = s.strikes.clone();
        state.quarantine = s.quarantine.clone();
        match store.compact(&state.to_frames()) {
            Ok(()) => {
                self.stats.snapshots += 1;
                s.appends_since_compact = 0;
            }
            Err(_) => {
                self.stats.store_failures += 1;
                s.store = None;
            }
        }
    }

    /// Replay a recorded trace under a quiescent session — no worker
    /// faults, no refreshes, no shard restarts.
    pub fn serve_trace(&mut self, trace: &ArrivalTrace) -> (Vec<PlanResponse>, ServeStats) {
        self.serve_trace_session(trace, &ShardSession::default())
    }

    /// Replay a recorded trace under an explicit [`ShardSession`].
    /// Byte-identical to `PlanServer::serve_trace_session` on the same
    /// `(trace, session.serve)` for any shard count — including under
    /// `session.shard_faults` when persistence is on.
    pub fn serve_trace_session(
        &mut self,
        trace: &ArrivalTrace,
        session: &ShardSession,
    ) -> (Vec<PlanResponse>, ServeStats) {
        self.fault_plan = session.shard_faults.clone();
        let workers = self.config.workers_per_shard;
        let (responses, stats) = serve_trace_backend(self, trace, workers, &session.serve);
        self.fault_plan = ShardFaultPlan::quiescent();
        (responses, stats)
    }
}

impl ServeBackend for ShardedServer {
    fn deco(&self) -> &Deco {
        &self.deco
    }

    fn config(&self) -> &ServeConfig {
        &self.config.serve
    }

    fn cache_get(&mut self, key: u64) -> Option<SupervisedPlan> {
        // Same clock discipline as the single-process cache: the clock
        // advances on every lookup, hit or miss.
        self.clock += 1;
        let clock = self.clock;
        let si = self.router.shard_of(key);
        let shard = &mut self.shards[si];
        let hit = match shard.entries.get_mut(&key) {
            Some(e) => {
                e.last_use = clock;
                Some(e.plan.clone())
            }
            None => None,
        };
        if hit.is_some() {
            shard.append(
                &StoreFrame::Touch {
                    key,
                    last_use: clock,
                },
                &mut self.stats,
            );
        }
        hit
    }

    fn cache_insert(&mut self, key: u64, plan: &SupervisedPlan, epoch: u64) -> usize {
        self.clock += 1;
        let capacity = self.config.serve.cache_capacity;
        if capacity == 0 {
            return 0; // the documented no-op cache, tier-wide
        }
        let owner = self.router.shard_of(key);
        let mut evicted = 0usize;
        let total: usize = self.shards.iter().map(|s| s.entries.len()).sum();
        if !self.shards[owner].entries.contains_key(&key) && total >= capacity {
            // Global LRU victim: min (last_use, key) across every
            // shard's partition — exactly the single-map cache's choice.
            let mut victim: Option<(u64, u64, usize)> = None;
            for (si, shard) in self.shards.iter().enumerate() {
                for (&k, e) in &shard.entries {
                    let cand = (e.last_use, k, si);
                    if victim
                        .map(|v| (cand.0, cand.1) < (v.0, v.1))
                        .unwrap_or(true)
                    {
                        victim = Some(cand);
                    }
                }
            }
            if let Some((_, vk, vs)) = victim {
                self.shards[vs].entries.remove(&vk);
                self.shards[vs].append(&StoreFrame::Del { key: vk }, &mut self.stats);
                evicted = 1;
            }
        }
        let clock = self.clock;
        let shard = &mut self.shards[owner];
        shard.entries.insert(
            key,
            StoredEntry {
                plan: plan.clone(),
                epoch,
                last_use: clock,
            },
        );
        shard.append(
            &StoreFrame::Put {
                key,
                epoch,
                last_use: clock,
                plan: plan.clone(),
            },
            &mut self.stats,
        );
        evicted
    }

    fn cache_purge_stale(&mut self, epoch: u64) -> usize {
        let mut purged = 0usize;
        for shard in &mut self.shards {
            let stale: Vec<u64> = shard
                .entries
                .iter()
                .filter(|(_, e)| e.epoch != epoch)
                .map(|(&k, _)| k)
                .collect();
            for k in stale {
                shard.entries.remove(&k);
                shard.append(&StoreFrame::Del { key: k }, &mut self.stats);
                purged += 1;
            }
        }
        purged
    }

    fn is_key_quarantined(&self, key: u64) -> bool {
        self.shards[self.router.shard_of(key)]
            .quarantine
            .contains(&key)
    }

    fn strike_count(&self, key: u64) -> Option<u32> {
        self.shards[self.router.shard_of(key)]
            .strikes
            .get(&key)
            .copied()
    }

    fn add_strike(&mut self, key: u64) -> u32 {
        let si = self.router.shard_of(key);
        let shard = &mut self.shards[si];
        let count = {
            let c = shard.strikes.entry(key).or_insert(0);
            *c += 1;
            *c
        };
        shard.append(&StoreFrame::Strike { key, count }, &mut self.stats);
        count
    }

    fn quarantine_key(&mut self, key: u64) {
        let si = self.router.shard_of(key);
        let shard = &mut self.shards[si];
        shard.quarantine.insert(key);
        shard.append(&StoreFrame::Quarantine { key }, &mut self.stats);
    }

    fn clear_strikes(&mut self, key: u64) {
        let si = self.router.shard_of(key);
        let shard = &mut self.shards[si];
        if shard.strikes.remove(&key).is_some() {
            shard.append(&StoreFrame::ClearKey { key }, &mut self.stats);
        }
    }

    fn solve_jobs(
        &self,
        jobs: Vec<SolveJob>,
        workers: usize,
    ) -> BTreeMap<u64, (SearchBudget, Result<SupervisedPlan, DecoError>)> {
        if jobs.is_empty() {
            return BTreeMap::new();
        }
        // Route each job to its owning shard's pool; pools run
        // concurrently and the per-job results are deterministic, so the
        // merged canonical map is independent of pool interleaving.
        let mut groups: Vec<Vec<SolveJob>> = (0..self.config.shards).map(|_| Vec::new()).collect();
        for job in jobs {
            groups[self.router.shard_of(job.key)].push(job);
        }
        let deco = &self.deco;
        let (tx, rx) = crossbeam::channel::unbounded();
        std::thread::scope(|scope| {
            for group in groups.into_iter().filter(|g| !g.is_empty()) {
                let tx = tx.clone();
                scope.spawn(move || {
                    let solved = solve_jobs_on_pool(deco, group, workers);
                    let _ = tx.send(solved);
                });
            }
            drop(tx);
            let mut merged = BTreeMap::new();
            for mut part in rx.iter() {
                merged.append(&mut part);
            }
            merged
        })
    }

    fn refresh_calibration(&mut self, store: MetadataStore) -> (u64, usize) {
        // Mirror PlanServer::refresh_calibration exactly: strictly
        // increasing epoch, stale purge, clean books — plus one Epoch
        // frame per shard so recovery applies the same discipline.
        let old = self.deco.store.catalog_epoch();
        self.deco.store = store;
        while self.deco.store.catalog_epoch() <= old {
            self.deco.store.bump_catalog_epoch();
        }
        let epoch = self.deco.store.catalog_epoch();
        let mut purged = 0usize;
        for shard in &mut self.shards {
            let before = shard.entries.len();
            shard.entries.retain(|_, e| e.epoch == epoch);
            purged += before - shard.entries.len();
            shard.strikes.clear();
            shard.quarantine.clear();
            shard.append(&StoreFrame::Epoch { epoch }, &mut self.stats);
        }
        (epoch, purged)
    }

    fn on_cycle_boundary(&mut self, cycle: u64) {
        // Injected shard restarts land here, strictly between cycles,
        // in shard index order (deterministic for any schedule).
        if !self.fault_plan.is_quiescent() {
            for shard in 0..self.shards.len() {
                if self.fault_plan.restarts_at(cycle, shard) {
                    self.restart_shard(shard);
                }
            }
        }
        if self.config.snapshot_every > 0 {
            for shard in 0..self.shards.len() {
                if self.shards[shard].appends_since_compact >= self.config.snapshot_every {
                    self.compact_shard(shard);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_cloud::CloudSpec;
    use deco_core::supervisor::plan_with_fallback;
    use deco_workflow::generators;

    fn small_deco() -> Deco {
        let store = MetadataStore::from_ground_truth(CloudSpec::amazon_ec2(), 20);
        let mut deco = Deco::new(store);
        deco.options.mc_iters = 10;
        deco.options.search.max_states = 40;
        deco
    }

    fn dummy_plan(marker: u64) -> SupervisedPlan {
        let d = small_deco();
        let wf = generators::pipeline(2, 50.0, 0);
        let (dmin, dmax) = deco_core::estimate::deadline_anchors(&wf, &d.store.spec);
        let mut p = plan_with_fallback(
            &d,
            &wf,
            0.5 * (dmin + dmax),
            0.9,
            &SearchBudget::unlimited(),
        )
        .expect("feasible");
        p.provenance.budget_spent += marker as f64;
        p
    }

    fn tier(shards: usize, capacity: usize) -> ShardedServer {
        ShardedServer::new(
            small_deco(),
            ShardConfig {
                shards,
                workers_per_shard: 1,
                serve: ServeConfig {
                    cache_capacity: capacity,
                    ..ServeConfig::default()
                },
                persist_dir: None,
                snapshot_every: 0,
            },
        )
        .expect("memory-only construction cannot fail")
    }

    #[test]
    fn partitioned_lru_matches_the_single_map_cache() {
        // Reproduce cache.rs's LRU scenario across 4 shards: same
        // victims, same survivors, driven through the backend trait.
        let mut t = tier(4, 2);
        let p = dummy_plan(1);
        assert_eq!(t.cache_insert(1, &p, 0), 0);
        assert_eq!(t.cache_insert(u64::MAX / 2, &p, 0), 0);
        assert!(t.cache_get(1).is_some()); // refresh 1; victim is MAX/2
        assert_eq!(t.cache_insert(u64::MAX - 5, &p, 0), 1);
        assert!(t.cache_get(u64::MAX / 2).is_none(), "global LRU victim");
        assert!(t.cache_get(1).is_some());
        assert!(t.cache_get(u64::MAX - 5).is_some());
        assert_eq!(t.cache_len(), 2);
    }

    #[test]
    fn zero_capacity_is_a_tier_wide_no_op() {
        let mut t = tier(2, 0);
        let p = dummy_plan(1);
        assert_eq!(t.cache_insert(7, &p, 0), 0);
        assert!(t.cache_get(7).is_none());
        assert_eq!(t.cache_len(), 0);
    }

    #[test]
    fn books_partition_by_key_range() {
        let mut t = tier(2, 8);
        let low = 17u64; // shard 0
        let high = u64::MAX - 17; // shard 1
        assert_eq!(t.add_strike(low), 1);
        assert_eq!(t.add_strike(low), 2);
        assert_eq!(t.add_strike(high), 1);
        assert_eq!(t.strike_count(low), Some(2));
        assert_eq!(t.strike_count(high), Some(1));
        t.quarantine_key(high);
        assert!(t.is_key_quarantined(high));
        assert!(!t.is_key_quarantined(low));
        assert_eq!(t.quarantined_keys(), 1);
        t.clear_strikes(low);
        assert_eq!(t.strike_count(low), None);
        assert_eq!(t.shards[0].strikes.len(), 0);
        assert_eq!(t.shards[1].strikes.len(), 1);
    }

    #[test]
    fn restart_without_persistence_loses_the_partition() {
        let mut t = tier(2, 8);
        let p = dummy_plan(1);
        t.cache_insert(17, &p, 0); // shard 0
        t.cache_insert(u64::MAX - 17, &p, 0); // shard 1
        t.restart_shard(0);
        assert_eq!(t.cache_len(), 1, "shard 0's partition is gone");
        assert!(t.cache_get(17).is_none());
        assert!(t.cache_get(u64::MAX - 17).is_some());
        assert_eq!(t.shard_stats().restarts, 1);
        assert_eq!(t.shard_stats().lost_entries, 1);
    }

    #[test]
    fn restart_with_persistence_recovers_warm() {
        let dir =
            std::env::temp_dir().join(format!("deco_shard_{}_restart_warm", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = ShardedServer::new(
            small_deco(),
            ShardConfig {
                shards: 2,
                workers_per_shard: 1,
                serve: ServeConfig::default(),
                persist_dir: Some(dir.clone()),
                snapshot_every: 0,
            },
        )
        .unwrap();
        let p = dummy_plan(3);
        t.cache_insert(17, &p, 0);
        t.add_strike(17);
        t.quarantine_key(u64::MAX - 4);
        let before = (t.cache_len(), t.strike_count(17), t.quarantined_keys());
        t.restart_shard(0);
        t.restart_shard(1);
        assert_eq!(
            (t.cache_len(), t.strike_count(17), t.quarantined_keys()),
            before,
            "a persisted restart is observationally a no-op"
        );
        let got = t.cache_get(17).expect("recovered entry");
        assert_eq!(
            got.provenance.budget_spent.to_bits(),
            p.provenance.budget_spent.to_bits()
        );
        assert!(t.shard_stats().recovered_entries >= 1);
        assert_eq!(t.shard_stats().lost_entries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_truncates_and_preserves_state() {
        let dir = std::env::temp_dir().join(format!("deco_shard_{}_compact", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = ShardedServer::new(
            small_deco(),
            ShardConfig {
                shards: 1,
                workers_per_shard: 1,
                serve: ServeConfig::default(),
                persist_dir: Some(dir.clone()),
                snapshot_every: 0,
            },
        )
        .unwrap();
        let p = dummy_plan(5);
        for k in 0..6u64 {
            t.cache_insert(k, &p, 0);
        }
        t.compact_shard(0);
        assert_eq!(t.shard_stats().snapshots, 1);
        t.restart_shard(0);
        assert_eq!(t.cache_len(), 6, "snapshot alone reproduces the state");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
