//! Key-range shard routing.
//!
//! The serving layer's content keys are [`StableHasher`] digests —
//! uniform over the full `u64` space — so the simplest partition is also
//! a balanced one: shard *i* of *N* owns the contiguous range
//! `[i·2⁶⁴/N, (i+1)·2⁶⁴/N)`. Contiguity is load-bearing, not just
//! simple: the serving engine iterates its observables in ascending
//! content-key order, and walking N contiguous ranges in shard order *is*
//! that global order. A hash-mod-N partition would interleave shards'
//! keys and force a merge sort where the range router gets canonical
//! order for free.
//!
//! [`StableHasher`]: deco_prob::hash::StableHasher

/// Routes content keys to shards by contiguous `u64` range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a router needs at least one shard");
        ShardRouter { shards }
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`. Computed in `u128` so the range split is
    /// exact — no shard is a key wider or narrower than its share.
    pub fn shard_of(&self, key: u64) -> usize {
        ((key as u128 * self.shards as u128) >> 64) as usize
    }

    /// The inclusive-exclusive key range `[start, end)` shard `i` owns;
    /// `end` is `None` for the last shard (its range is open at
    /// `u64::MAX`, i.e. closes at 2⁶⁴).
    pub fn range_of(&self, shard: usize) -> (u64, Option<u64>) {
        assert!(shard < self.shards, "shard {shard} out of range");
        // shard_of floors key·N/2⁶⁴, so shard i's first key is the
        // ceiling of i·2⁶⁴/N.
        let n = self.shards as u128;
        let start = ((shard as u128) << 64).div_ceil(n);
        let end = (((shard + 1) as u128) << 64).div_ceil(n);
        (
            start as u64,
            if shard + 1 == self.shards {
                None
            } else {
                Some(end as u64)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shard_owns_everything() {
        let r = ShardRouter::new(1);
        assert_eq!(r.shard_of(0), 0);
        assert_eq!(r.shard_of(u64::MAX), 0);
        assert_eq!(r.range_of(0), (0, None));
    }

    #[test]
    fn ranges_are_contiguous_and_exhaustive() {
        for n in [2usize, 3, 4, 7, 16] {
            let r = ShardRouter::new(n);
            let mut prev_end = 0u64;
            for i in 0..n {
                let (start, end) = r.range_of(i);
                assert_eq!(
                    start, prev_end,
                    "shard {i} of {n} must abut its left neighbor"
                );
                // Boundary keys route to the range that claims them.
                assert_eq!(r.shard_of(start), i);
                if let Some(end) = end {
                    assert_eq!(r.shard_of(end - 1), i);
                    assert_eq!(r.shard_of(end), i + 1);
                    prev_end = end;
                } else {
                    assert_eq!(i, n - 1);
                    assert_eq!(r.shard_of(u64::MAX), i);
                }
            }
        }
    }

    #[test]
    fn contiguous_ranges_preserve_global_key_order() {
        // Walking shards in index order and keys within each shard in
        // ascending order visits keys in globally ascending order — the
        // property the merge layer's byte-identity rests on.
        let r = ShardRouter::new(4);
        let keys: Vec<u64> = (0..1000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let mut by_shard: Vec<Vec<u64>> = vec![Vec::new(); 4];
        for &k in &keys {
            by_shard[r.shard_of(k)].push(k);
        }
        let mut walked: Vec<u64> = Vec::new();
        for part in &mut by_shard {
            part.sort_unstable();
            walked.extend_from_slice(part);
        }
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(walked, sorted);
    }

    #[test]
    fn load_splits_evenly_for_uniform_keys() {
        let r = ShardRouter::new(4);
        let mut counts = [0usize; 4];
        for i in 0..40_000u64 {
            counts[r.shard_of(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 10_000.0).abs() < 600.0,
                "uniform keys should split evenly: {counts:?}"
            );
        }
    }
}
