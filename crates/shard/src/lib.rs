// User-facing paths return typed errors; panicking shortcuts are banned
// from library code (tests may still unwrap).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! deco-shard — the sharded, persistent plan-serving tier.
//!
//! `deco-serve` proves out a single-process serving engine whose replay
//! is byte-identical at any worker count. This crate scales that engine
//! out and makes it durable, without giving up the byte-identity:
//!
//! * [`router`] — contiguous key-range partitioning of the
//!   content-addressed plan-key space across N shards. Contiguity means
//!   walking shards in index order visits keys in global canonical
//!   order, so no merge sort is needed anywhere;
//! * [`server`] — [`ShardedServer`], a `deco_serve::ServeBackend` whose
//!   cache and fault books are partitioned per shard (one global LRU
//!   clock and capacity) and whose solve jobs run on per-shard worker
//!   pools concurrently. The cycle loop itself is *the same code*
//!   `PlanServer` runs — determinism by construction, not by careful
//!   reimplementation;
//! * durability — every cache/book mutation lands in the shard's
//!   WAL-backed [`deco_serve::store::PlanStore`]; a crashed shard
//!   replays snapshot + WAL and resumes warm, making a restart
//!   observationally a no-op (torn WAL tails are tolerated, snapshots
//!   are compacted atomically);
//! * [`faults`] — seeded, deterministic shard crash/restart schedules
//!   keyed by (shard, cycle), landing strictly at cycle boundaries.
//!
//! The headline property, pinned by the integration tests: for
//! N ∈ {1, 2, 4} shards — with worker faults, calibration refreshes,
//! and (with persistence) injected shard restarts — the response stream
//! and serving stats are **byte-identical** to a 1-process
//! `PlanServer` replay of the same trace. Without persistence, a
//! restart deterministically loses the shard's partition: the documented
//! degraded mode (still deterministic, no longer identical).

pub mod faults;
pub mod router;
pub mod server;

pub use faults::ShardFaultPlan;
pub use router::ShardRouter;
pub use server::{ShardConfig, ShardSession, ShardStats, ShardedServer};
