//! Workflow generators.
//!
//! The paper evaluates on Montage (built from the Montage source and 2MASS
//! images at 1, 4 and 8 degrees), and on synthetic Ligo and Epigenomics
//! workflows produced with the Pegasus workflow generator, in sizes of
//! roughly 20, 100 and 1000 tasks. These builders reproduce the published
//! structures and the per-task profile statistics of Juve et al.,
//! "Characterizing and Profiling Scientific Workflows" (FGCS 2013). A small
//! seeded jitter differentiates workflow *instances* (the paper generates
//! 20 instances per setting).

use crate::dag::Workflow;
use crate::task::{TaskId, TaskProfile, MB};
use deco_prob::rng::{split_indexed, DecoRng};
use rand::Rng;

/// Scale factor applied to the scientific applications' per-task profiles
/// (CPU seconds and bytes alike). The published profile statistics (Juve et
/// al.) describe the per-task *shape*; the paper's inputs are far larger
/// (Montage and Ligo process hundreds of GB, making workflows run for
/// hours on first-generation instances), and hour-granular billing only
/// discriminates between plans at that scale.
pub const PROFILE_SCALE: f64 = 30.0;

/// Montage moves far more data than the other applications (the paper: its
/// inputs run to hundreds of GB, and the Figure 2 variance comes from disk
/// and network interference). Data volumes grow harder than CPU so the
/// I/O share of task runtime is significant on fast instances while the
/// instance-type speedup (Dmax/Dmin) stays wide.
pub const MONTAGE_CPU_SCALE: f64 = 30.0;
pub const MONTAGE_BYTES_SCALE: f64 = 300.0;

/// Multiplicative jitter in `[1-j, 1+j]` applied to CPU seconds so distinct
/// instances of the same application differ.
fn jitter(rng: &mut DecoRng, j: f64) -> f64 {
    1.0 + j * (rng.gen::<f64>() * 2.0 - 1.0)
}

/// A linear pipeline of `n` identical tasks; the Figure 4 example shape.
pub fn pipeline(n: usize, cpu_seconds: f64, stage_bytes: u64) -> Workflow {
    assert!(n > 0);
    let mut w = Workflow::new(format!("pipeline-{n}"));
    let b = stage_bytes as f64;
    let mut prev: Option<TaskId> = None;
    for i in 0..n {
        let t = w.add_task(
            format!("ID{:02}", i + 1),
            format!("process{}", i + 1),
            TaskProfile::new(cpu_seconds, b, b),
        );
        if let Some(p) = prev {
            w.add_edge(p, t, b).unwrap();
        }
        prev = Some(t);
    }
    w
}

/// A fork-join: one source, `width` parallel workers, one sink.
pub fn fork_join(width: usize, cpu_seconds: f64, bytes: f64) -> Workflow {
    assert!(width > 0);
    let mut w = Workflow::new(format!("forkjoin-{width}"));
    let src = w.add_task(
        "src",
        "split",
        TaskProfile::new(cpu_seconds, bytes, bytes * width as f64),
    );
    let sink_profile = TaskProfile::new(cpu_seconds, bytes * width as f64, bytes);
    let mut workers = Vec::with_capacity(width);
    for i in 0..width {
        let t = w.add_task(
            format!("w{i}"),
            "work",
            TaskProfile::new(cpu_seconds, bytes, bytes),
        );
        w.add_edge(src, t, bytes).unwrap();
        workers.push(t);
    }
    let sink = w.add_task("sink", "join", sink_profile);
    for t in workers {
        w.add_edge(t, sink, bytes).unwrap();
    }
    w
}

// ---------------------------------------------------------------------------
// Montage
// ---------------------------------------------------------------------------

/// Montage mosaic workflow for a `degree x degree` square, seeded for
/// instance jitter.
///
/// The image grid is `g x g` with `g = 2 * degree`, giving the paper's three
/// sizes: Montage-1 ≈ 20 tasks, Montage-4 ≈ 250, Montage-8 ≈ 1000.
/// Structure (Juve et al., Fig. 2): mProjectPP per image, mDiffFit per
/// overlapping pair, mConcatFit, mBgModel, mBackground per image, mImgtbl,
/// mAdd, mShrink, mJPEG.
pub fn montage(degree: u32, seed: u64) -> Workflow {
    assert!(degree >= 1, "degree must be >= 1");
    montage_grid(2 * degree as usize, seed, format!("montage-{degree}"))
}

/// Montage with a target task count (used by the ensemble generator, which
/// needs sizes of exactly ~20/100/1000 regardless of mosaic degree).
pub fn montage_sized(target_tasks: usize, seed: u64) -> Workflow {
    // total(g) = g^2 (project) + 2g(g-1) (diff) + g^2 (background) + 5
    //          = 4g^2 - 2g + 5
    let mut g = 1usize;
    while 4 * (g + 1) * (g + 1) - 2 * (g + 1) + 5 <= target_tasks {
        g += 1;
    }
    montage_grid(g.max(1), seed, format!("montage-n{target_tasks}"))
}

fn montage_grid(g: usize, seed: u64, name: String) -> Workflow {
    let mut rng = split_indexed(seed, 0x6d6f6e74); // "mont"
    let mut w = Workflow::new(name);
    let p = g * g;
    let img = 4.0 * MB; // raw 2MASS J-band image
    let proj = 8.0 * MB; // reprojected image (doubles: data + area files)

    // Level 0: mProjectPP per input image.
    let mut project = Vec::with_capacity(p);
    for i in 0..p {
        let t = w.add_task(
            format!("mProjectPP_{i}"),
            "mProjectPP",
            TaskProfile::new(13.0 * jitter(&mut rng, 0.2), img, proj),
        );
        project.push(t);
    }

    // Level 1: mDiffFit per horizontally/vertically adjacent pair.
    let mut diffs = Vec::new();
    for r in 0..g {
        for c in 0..g {
            let here = project[r * g + c];
            if c + 1 < g {
                diffs.push(add_difffit(
                    &mut w,
                    &mut rng,
                    here,
                    project[r * g + c + 1],
                    proj,
                ));
            }
            if r + 1 < g {
                diffs.push(add_difffit(
                    &mut w,
                    &mut rng,
                    here,
                    project[(r + 1) * g + c],
                    proj,
                ));
            }
        }
    }

    // mConcatFit gathers every fit plane.
    let fit = 0.05 * MB;
    let concat = w.add_task(
        "mConcatFit",
        "mConcatFit",
        TaskProfile::new(8.0 * jitter(&mut rng, 0.2), fit * diffs.len() as f64, fit),
    );
    for &d in &diffs {
        w.add_edge(d, concat, fit).unwrap();
    }

    // mBgModel computes background corrections.
    let bgmodel = w.add_task(
        "mBgModel",
        "mBgModel",
        TaskProfile::new(25.0 * jitter(&mut rng, 0.2), fit, fit),
    );
    w.add_edge(concat, bgmodel, fit).unwrap();

    // mBackground per image: corrected image from projection + model.
    let mut background = Vec::with_capacity(p);
    for (i, &pr) in project.iter().enumerate() {
        let t = w.add_task(
            format!("mBackground_{i}"),
            "mBackground",
            TaskProfile::new(4.0 * jitter(&mut rng, 0.2), proj + fit, proj),
        );
        w.add_edge(pr, t, proj).unwrap();
        w.add_edge(bgmodel, t, fit).unwrap();
        background.push(t);
    }

    // mImgtbl builds the image table.
    let tbl = 0.1 * MB;
    let imgtbl = w.add_task(
        "mImgtbl",
        "mImgtbl",
        TaskProfile::new(4.0 * jitter(&mut rng, 0.2), tbl * p as f64, tbl),
    );
    for &b in &background {
        w.add_edge(b, imgtbl, tbl).unwrap();
    }

    // mAdd co-adds the corrected images into the mosaic.
    let mosaic = proj * p as f64 * 0.6;
    let add = w.add_task(
        "mAdd",
        "mAdd",
        TaskProfile::new(
            (20.0 + 0.8 * p as f64) * jitter(&mut rng, 0.2),
            proj * p as f64 + tbl,
            mosaic,
        ),
    );
    w.add_edge(imgtbl, add, tbl).unwrap();

    // mShrink and mJPEG finalize.
    let shrink = w.add_task(
        "mShrink",
        "mShrink",
        TaskProfile::new(12.0 * jitter(&mut rng, 0.2), mosaic, mosaic / 16.0),
    );
    w.add_edge(add, shrink, mosaic).unwrap();
    let jpeg = w.add_task(
        "mJPEG",
        "mJPEG",
        TaskProfile::new(4.0 * jitter(&mut rng, 0.2), mosaic / 16.0, mosaic / 64.0),
    );
    w.add_edge(shrink, jpeg, mosaic / 16.0).unwrap();
    w.scale_cpu_and_bytes(MONTAGE_CPU_SCALE, MONTAGE_BYTES_SCALE);
    w
}

fn add_difffit(w: &mut Workflow, rng: &mut DecoRng, a: TaskId, b: TaskId, proj: f64) -> TaskId {
    let t = w.add_task(
        format!("mDiffFit_{}", w.len()),
        "mDiffFit",
        TaskProfile::new(6.0 * jitter(rng, 0.2), 2.0 * proj, 0.1 * MB),
    );
    w.add_edge(a, t, proj).unwrap();
    w.add_edge(b, t, proj).unwrap();
    t
}

// ---------------------------------------------------------------------------
// Ligo (Inspiral analysis)
// ---------------------------------------------------------------------------

/// Synthetic Ligo Inspiral workflow with roughly `target_tasks` tasks.
///
/// Structure (Juve et al., Fig. 5): blocks of TmpltBank → Inspiral →
/// Thinca, then TrigBank → Inspiral (stage 2) → Thinca (stage 2). Each
/// block uses a group width `G = 9`; the number of blocks scales to the
/// target size.
pub fn ligo(target_tasks: usize, seed: u64) -> Workflow {
    assert!(target_tasks >= 10, "ligo needs at least ~10 tasks");
    let mut rng = split_indexed(seed, 0x6c69676f); // "ligo"
    let mut w = Workflow::new(format!("ligo-n{target_tasks}"));
    // Block of width G contributes 4G + 2 tasks.
    let g: usize = if target_tasks < 40 {
        ((target_tasks - 2) / 4).max(2)
    } else {
        9
    };
    let per_block = 4 * g + 2;
    let blocks = (target_tasks / per_block).max(1);
    let seg = 30.0 * MB; // gravitational-wave data segment per template bank
    let trig = 2.0 * MB;
    for b in 0..blocks {
        // Stage 1: TmpltBank -> Inspiral (1:1), all Inspirals -> Thinca.
        let mut inspirals = Vec::with_capacity(g);
        for i in 0..g {
            let bank = w.add_task(
                format!("TmpltBank_{b}_{i}"),
                "TmpltBank",
                TaskProfile::new(18.0 * jitter(&mut rng, 0.2), seg, 1.0 * MB),
            );
            let insp = w.add_task(
                format!("Inspiral1_{b}_{i}"),
                "Inspiral",
                TaskProfile::new(220.0 * jitter(&mut rng, 0.3), seg + 1.0 * MB, trig),
            );
            w.add_edge(bank, insp, 1.0 * MB).unwrap();
            inspirals.push(insp);
        }
        let thinca1 = w.add_task(
            format!("Thinca1_{b}"),
            "Thinca",
            TaskProfile::new(5.0 * jitter(&mut rng, 0.2), trig * g as f64, trig),
        );
        for &i in &inspirals {
            w.add_edge(i, thinca1, trig).unwrap();
        }
        // Stage 2: TrigBank -> Inspiral2 (1:1), all -> Thinca2.
        let mut insp2 = Vec::with_capacity(g);
        for i in 0..g {
            let tb = w.add_task(
                format!("TrigBank_{b}_{i}"),
                "TrigBank",
                TaskProfile::new(5.0 * jitter(&mut rng, 0.2), trig, 1.0 * MB),
            );
            w.add_edge(thinca1, tb, trig).unwrap();
            let i2 = w.add_task(
                format!("Inspiral2_{b}_{i}"),
                "Inspiral",
                TaskProfile::new(180.0 * jitter(&mut rng, 0.3), seg + 1.0 * MB, trig),
            );
            w.add_edge(tb, i2, 1.0 * MB).unwrap();
            insp2.push(i2);
        }
        let thinca2 = w.add_task(
            format!("Thinca2_{b}"),
            "Thinca",
            TaskProfile::new(5.0 * jitter(&mut rng, 0.2), trig * g as f64, trig),
        );
        for &i in &insp2 {
            w.add_edge(i, thinca2, trig).unwrap();
        }
    }
    w.scale_profiles(PROFILE_SCALE);
    w
}

// ---------------------------------------------------------------------------
// Epigenomics
// ---------------------------------------------------------------------------

/// Synthetic Epigenomics workflow with roughly `target_tasks` tasks.
///
/// Structure (Juve et al., Fig. 4): fastQSplit fans out into `L` parallel
/// lanes of filterContams → sol2sanger → fastq2bfq → map, then mapMerge →
/// maqIndex → pileup. Total = 4L + 4. Epigenomics is the most CPU-bound of
/// the three applications (the paper notes it processes dozens of GB).
pub fn epigenomics(target_tasks: usize, seed: u64) -> Workflow {
    assert!(target_tasks >= 8, "epigenomics needs at least 8 tasks");
    let mut rng = split_indexed(seed, 0x65706967); // "epig"
    let lanes = ((target_tasks - 4) / 4).max(1);
    let mut w = Workflow::new(format!("epigenomics-n{target_tasks}"));
    let chunk = 400.0 * MB / lanes as f64 * 8.0; // split of a multi-GB read set
    let split = w.add_task(
        "fastQSplit",
        "fastQSplit",
        TaskProfile::new(
            35.0 * jitter(&mut rng, 0.2),
            chunk * lanes as f64,
            chunk * lanes as f64,
        ),
    );
    let mut maps = Vec::with_capacity(lanes);
    for i in 0..lanes {
        let filter = w.add_task(
            format!("filterContams_{i}"),
            "filterContams",
            TaskProfile::new(2.0 * jitter(&mut rng, 0.2), chunk, chunk * 0.9),
        );
        w.add_edge(split, filter, chunk).unwrap();
        let sol = w.add_task(
            format!("sol2sanger_{i}"),
            "sol2sanger",
            TaskProfile::new(1.5 * jitter(&mut rng, 0.2), chunk * 0.9, chunk * 0.9),
        );
        w.add_edge(filter, sol, chunk * 0.9).unwrap();
        let bfq = w.add_task(
            format!("fastq2bfq_{i}"),
            "fastq2bfq",
            TaskProfile::new(1.5 * jitter(&mut rng, 0.2), chunk * 0.9, chunk * 0.45),
        );
        w.add_edge(sol, bfq, chunk * 0.9).unwrap();
        let map = w.add_task(
            format!("map_{i}"),
            "map",
            TaskProfile::new(
                320.0 * jitter(&mut rng, 0.3),
                chunk * 0.45 + 50.0 * MB,
                chunk * 0.2,
            ),
        );
        w.add_edge(bfq, map, chunk * 0.45).unwrap();
        maps.push(map);
    }
    let merge = w.add_task(
        "mapMerge",
        "mapMerge",
        TaskProfile::new(
            12.0 * jitter(&mut rng, 0.2),
            chunk * 0.2 * lanes as f64,
            chunk * 0.2 * lanes as f64,
        ),
    );
    for &m in &maps {
        w.add_edge(m, merge, chunk * 0.2).unwrap();
    }
    let index = w.add_task(
        "maqIndex",
        "maqIndex",
        TaskProfile::new(
            40.0 * jitter(&mut rng, 0.2),
            chunk * 0.2 * lanes as f64,
            100.0 * MB,
        ),
    );
    w.add_edge(merge, index, chunk * 0.2 * lanes as f64)
        .unwrap();
    let pileup = w.add_task(
        "pileup",
        "pileup",
        TaskProfile::new(50.0 * jitter(&mut rng, 0.2), 100.0 * MB, 80.0 * MB),
    );
    w.add_edge(index, pileup, 100.0 * MB).unwrap();
    w.scale_profiles(PROFILE_SCALE);
    w
}

/// A seeded random DAG for tests and fuzzing: `n` tasks, each pair
/// `(i, j), i < j` connected with probability `edge_prob`.
pub fn random_dag(n: usize, edge_prob: f64, seed: u64) -> Workflow {
    assert!(n > 0);
    assert!((0.0..=1.0).contains(&edge_prob));
    let mut rng = split_indexed(seed, 0x72616e64); // "rand"
                                                   // Decide adjacency and edge payloads first, so task profiles can cover
                                                   // their edges (read >= inbound, write >= distinct outbound payloads —
                                                   // the invariant the DAX emitter relies on).
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen::<f64>() < edge_prob {
                edges.push((i, j, (rng.gen::<f64>() * 8.0 * MB).ceil()));
            }
        }
    }
    let mut w = Workflow::new(format!("random-{n}"));
    let ids: Vec<TaskId> = (0..n)
        .map(|i| {
            let inbound: f64 = edges.iter().filter(|e| e.1 == i).map(|e| e.2).sum();
            let outbound: f64 = edges.iter().filter(|e| e.0 == i).map(|e| e.2).sum();
            let cpu = 1.0 + rng.gen::<f64>() * 30.0;
            let extra = rng.gen::<f64>() * 16.0 * MB;
            w.add_task(
                format!("r{i}"),
                "rand",
                TaskProfile::new(cpu, inbound + extra, outbound + extra * 0.5),
            )
        })
        .collect();
    for (i, j, bytes) in edges {
        w.add_edge(ids[i], ids[j], bytes).unwrap();
    }
    w
}

/// The three applications of the evaluation, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    Montage,
    Ligo,
    Epigenomics,
}

impl App {
    /// Generate an instance with roughly `size` tasks.
    pub fn generate(self, size: usize, seed: u64) -> Workflow {
        match self {
            App::Montage => montage_sized(size, seed),
            App::Ligo => ligo(size, seed),
            App::Epigenomics => epigenomics(size, seed),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            App::Montage => "Montage",
            App::Ligo => "Ligo",
            App::Epigenomics => "Epigenomics",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_shape() {
        let w = pipeline(5, 10.0, 1024);
        assert_eq!(w.len(), 5);
        assert_eq!(w.edges().count(), 4);
        assert_eq!(w.depth(), 5);
        assert_eq!(w.width(), 1);
    }

    #[test]
    fn fork_join_shape() {
        let w = fork_join(8, 5.0, 1024.0);
        assert_eq!(w.len(), 10);
        assert_eq!(w.depth(), 3);
        assert_eq!(w.width(), 8);
        assert_eq!(w.roots().len(), 1);
        assert_eq!(w.sinks().len(), 1);
    }

    #[test]
    fn montage_sizes_match_paper_scales() {
        // Montage-1 ~ 20, Montage-4 ~ 250, Montage-8 ~ 1000 tasks.
        let m1 = montage(1, 0);
        let m4 = montage(4, 0);
        let m8 = montage(8, 0);
        assert!((15..=40).contains(&m1.len()), "m1 has {}", m1.len());
        assert!((180..=320).contains(&m4.len()), "m4 has {}", m4.len());
        assert!((850..=1100).contains(&m8.len()), "m8 has {}", m8.len());
    }

    #[test]
    fn montage_is_connected_single_sink() {
        let w = montage(1, 7);
        assert_eq!(w.sinks().len(), 1, "mJPEG is the only sink");
        assert_eq!(w.task(w.sinks()[0]).executable, "mJPEG");
        // All roots are projections.
        for r in w.roots() {
            assert_eq!(w.task(r).executable, "mProjectPP");
        }
    }

    #[test]
    fn montage_instances_differ_by_seed_but_share_structure() {
        let a = montage(1, 1);
        let b = montage(1, 2);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.edges().count(), b.edges().count());
        let cpu_a: f64 = a.tasks().map(|t| t.profile.cpu_seconds).sum();
        let cpu_b: f64 = b.tasks().map(|t| t.profile.cpu_seconds).sum();
        assert!((cpu_a - cpu_b).abs() > 1e-9, "instance jitter must differ");
        // Same seed reproduces exactly.
        assert_eq!(a, montage(1, 1));
    }

    #[test]
    fn montage_sized_hits_targets() {
        for &n in &[20usize, 100, 1000] {
            let w = montage_sized(n, 3);
            let got = w.len();
            assert!(
                got as f64 >= n as f64 * 0.5 && got <= n,
                "target {n}, got {got}"
            );
        }
    }

    #[test]
    fn ligo_sizes_and_structure() {
        for &n in &[20usize, 100, 1000] {
            let w = ligo(n, 4);
            let got = w.len();
            assert!(
                (got as f64 / n as f64 - 1.0).abs() < 0.5,
                "target {n}, got {got}"
            );
            assert!(w.depth() >= 6, "two-stage structure");
        }
        let w = ligo(100, 4);
        assert!(w.tasks().any(|t| t.executable == "TmpltBank"));
        assert!(w.tasks().any(|t| t.executable == "Thinca"));
    }

    #[test]
    fn epigenomics_sizes_and_structure() {
        for &n in &[20usize, 100, 1000] {
            let w = epigenomics(n, 5);
            let got = w.len();
            assert!(
                (got as f64 / n as f64 - 1.0).abs() < 0.3,
                "target {n}, got {got}"
            );
        }
        let w = epigenomics(100, 5);
        assert_eq!(w.roots().len(), 1);
        assert_eq!(w.sinks().len(), 1);
        assert_eq!(w.depth(), 8, "fastQSplit + 4 lane stages + 3 tail stages");
    }

    #[test]
    fn random_dag_is_valid() {
        let w = random_dag(50, 0.1, 9);
        assert_eq!(w.len(), 50);
        assert_eq!(w.topo_order().len(), 50);
    }

    #[test]
    fn app_generate_dispatches() {
        assert!(App::Montage.generate(100, 0).name.starts_with("montage"));
        assert!(App::Ligo.generate(100, 0).name.starts_with("ligo"));
        assert!(App::Epigenomics.generate(100, 0).name.starts_with("epig"));
    }
}
