//! Tasks and their resource profiles.

use serde::{Deserialize, Serialize};

/// Identifier of a task inside one workflow: a dense index into the
/// workflow's task table. Small and `Copy` because provisioning-plan states
/// are indexed by it millions of times during search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Resource profile of one task, the inputs of the paper's task-execution-
/// time estimation model (Section 5.1, citing Yu et al. and Pietri et al.):
/// given input size, CPU time and output size, the execution time on an
/// instance is CPU time / instance speed + I/O time + network time, where
/// the I/O and network components are probabilistic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskProfile {
    /// CPU work in reference-core seconds (1 EC2 compute unit).
    pub cpu_seconds: f64,
    /// Bytes read from local disk (staged input + intermediate reads).
    pub read_bytes: f64,
    /// Bytes written to local disk.
    pub write_bytes: f64,
}

impl TaskProfile {
    pub fn new(cpu_seconds: f64, read_bytes: f64, write_bytes: f64) -> Self {
        assert!(
            cpu_seconds >= 0.0 && read_bytes >= 0.0 && write_bytes >= 0.0,
            "profile components must be non-negative"
        );
        Self {
            cpu_seconds,
            read_bytes,
            write_bytes,
        }
    }

    /// Total local I/O volume.
    pub fn io_bytes(&self) -> f64 {
        self.read_bytes + self.write_bytes
    }

    /// Scale the whole profile (used to create workflow-size variants, e.g.
    /// Montage-1 vs Montage-8 per-task data growth).
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0);
        Self {
            cpu_seconds: self.cpu_seconds * factor,
            read_bytes: self.read_bytes * factor,
            write_bytes: self.write_bytes * factor,
        }
    }
}

/// A workflow task: the minimum execution unit (the paper's terminology;
/// DAX files call these "jobs").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    pub id: TaskId,
    /// Human-readable name, e.g. "ID01".
    pub name: String,
    /// Executable / transformation name, e.g. "mProjectPP".
    pub executable: String,
    pub profile: TaskProfile,
}

impl Task {
    pub fn new(
        id: TaskId,
        name: impl Into<String>,
        executable: impl Into<String>,
        profile: TaskProfile,
    ) -> Self {
        Self {
            id,
            name: name.into(),
            executable: executable.into(),
            profile,
        }
    }
}

pub const MB: f64 = 1024.0 * 1024.0;
pub const GB: f64 = 1024.0 * MB;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_totals() {
        let p = TaskProfile::new(10.0, 3.0 * MB, 1.0 * MB);
        assert_eq!(p.io_bytes(), 4.0 * MB);
    }

    #[test]
    fn profile_scaling() {
        let p = TaskProfile::new(10.0, 2.0, 4.0).scaled(2.5);
        assert_eq!(p.cpu_seconds, 25.0);
        assert_eq!(p.read_bytes, 5.0);
        assert_eq!(p.write_bytes, 10.0);
    }

    #[test]
    #[should_panic]
    fn profile_rejects_negative() {
        TaskProfile::new(-1.0, 0.0, 0.0);
    }

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId(3).to_string(), "t3");
        assert_eq!(TaskId(3).index(), 3);
    }
}
