//! Scientific-workflow substrate for the Deco reproduction.
//!
//! Pegasus-style workflows are directed acyclic graphs of tasks; each task
//! carries a resource profile (CPU work, I/O volume, network volume) and
//! data-dependency edges carry the bytes that flow between tasks. The paper
//! evaluates on three applications — Montage (astronomy mosaics), Ligo
//! (gravitational-wave inspiral analysis) and Epigenomics (DNA methylation
//! pipelines) — in sizes of roughly 20, 100 and 1000 tasks, plus *ensembles*
//! of 30–50 same-structure workflows with priorities (Section 6.1).
//!
//! * [`task`] — task identifiers and resource profiles.
//! * [`dag`] — the DAG container: topological order, levels, critical paths.
//! * [`dax`] — the DAX XML exchange format (parse + emit, Figure 4).
//! * [`generators`] — Montage/Ligo/Epigenomics/pipeline/fork-join builders.
//! * [`ensemble`] — workflow ensembles with the paper's five priority
//!   distributions (constant, uniform sorted/unsorted, Pareto
//!   sorted/unsorted).

pub mod dag;
pub mod dax;
pub mod ensemble;
pub mod generators;
pub mod task;

pub use dag::{Workflow, WorkflowError};
pub use ensemble::{Ensemble, EnsembleType};
pub use task::{Task, TaskId, TaskProfile};
