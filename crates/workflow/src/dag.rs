//! The workflow DAG container.
//!
//! Stores tasks plus data-dependency edges (each edge carries the bytes
//! transferred from parent to child) and provides the graph analyses the
//! optimizer relies on: topological order, level decomposition (the unit of
//! "deadline assignment" in the Autoscaling baseline), and weighted critical
//! paths (Equation (3): the workflow makespan is the sum over the critical
//! path).

use crate::task::{Task, TaskId, TaskProfile};
use serde::{Deserialize, Serialize};

/// Errors from building or validating a workflow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    /// An edge endpoint refers to a task that does not exist.
    UnknownTask(String),
    /// Adding the edge would create a cycle.
    Cycle(TaskId, TaskId),
    /// Duplicate edge between the same pair.
    DuplicateEdge(TaskId, TaskId),
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::UnknownTask(name) => write!(f, "unknown task: {name}"),
            WorkflowError::Cycle(a, b) => write!(f, "edge {a} -> {b} would create a cycle"),
            WorkflowError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
        }
    }
}

impl std::error::Error for WorkflowError {}

/// A data-dependency edge: `from`'s output feeds `to`, moving `bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    pub from: TaskId,
    pub to: TaskId,
    pub bytes: f64,
}

/// A scientific workflow: a DAG of [`Task`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    pub name: String,
    tasks: Vec<Task>,
    edges: Vec<Edge>,
    /// children[i] = outgoing edge indices of task i.
    children: Vec<Vec<usize>>,
    /// parents[i] = incoming edge indices of task i.
    parents: Vec<Vec<usize>>,
}

impl Workflow {
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tasks: Vec::new(),
            edges: Vec::new(),
            children: Vec::new(),
            parents: Vec::new(),
        }
    }

    /// Add a task and return its id.
    pub fn add_task(
        &mut self,
        name: impl Into<String>,
        executable: impl Into<String>,
        profile: TaskProfile,
    ) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(Task::new(id, name, executable, profile));
        self.children.push(Vec::new());
        self.parents.push(Vec::new());
        id
    }

    /// Add a data dependency `from -> to` carrying `bytes`.
    pub fn add_edge(&mut self, from: TaskId, to: TaskId, bytes: f64) -> Result<(), WorkflowError> {
        if from.index() >= self.tasks.len() {
            return Err(WorkflowError::UnknownTask(from.to_string()));
        }
        if to.index() >= self.tasks.len() {
            return Err(WorkflowError::UnknownTask(to.to_string()));
        }
        if self.children[from.index()]
            .iter()
            .any(|&e| self.edges[e].to == to)
        {
            return Err(WorkflowError::DuplicateEdge(from, to));
        }
        if from == to || self.reaches(to, from) {
            return Err(WorkflowError::Cycle(from, to));
        }
        let idx = self.edges.len();
        self.edges.push(Edge { from, to, bytes });
        self.children[from.index()].push(idx);
        self.parents[to.index()].push(idx);
        Ok(())
    }

    /// Whether `from` reaches `to` through directed edges (DFS).
    fn reaches(&self, from: TaskId, to: TaskId) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![false; self.tasks.len()];
        while let Some(t) = stack.pop() {
            if t == to {
                return true;
            }
            if std::mem::replace(&mut seen[t.index()], true) {
                continue;
            }
            for &e in &self.children[t.index()] {
                stack.push(self.edges[e].to);
            }
        }
        false
    }

    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    pub fn tasks(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter()
    }

    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> {
        (0..self.tasks.len() as u32).map(TaskId)
    }

    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter()
    }

    pub fn children(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.children[id.index()].iter().map(|&e| self.edges[e].to)
    }

    pub fn parents(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.parents[id.index()].iter().map(|&e| self.edges[e].from)
    }

    /// Bytes flowing along edge `from -> to`, if the edge exists.
    pub fn edge_bytes(&self, from: TaskId, to: TaskId) -> Option<f64> {
        self.children[from.index()]
            .iter()
            .map(|&e| &self.edges[e])
            .find(|e| e.to == to)
            .map(|e| e.bytes)
    }

    /// Total bytes the task receives from its parents (the migration unit's
    /// transferred data in the follow-the-cost problem).
    pub fn input_bytes(&self, id: TaskId) -> f64 {
        self.parents[id.index()]
            .iter()
            .map(|&e| self.edges[e].bytes)
            .sum()
    }

    /// Entry tasks (no parents).
    pub fn roots(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|t| self.parents[t.index()].is_empty())
            .collect()
    }

    /// Exit tasks (no children).
    pub fn sinks(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|t| self.children[t.index()].is_empty())
            .collect()
    }

    /// Topological order (Kahn). The graph is acyclic by construction, so
    /// this always succeeds.
    pub fn topo_order(&self) -> Vec<TaskId> {
        let mut indeg: Vec<usize> = self.parents.iter().map(|p| p.len()).collect();
        let mut queue: Vec<TaskId> = self.task_ids().filter(|t| indeg[t.index()] == 0).collect();
        let mut order = Vec::with_capacity(self.tasks.len());
        let mut head = 0;
        while head < queue.len() {
            let t = queue[head];
            head += 1;
            order.push(t);
            for &e in &self.children[t.index()] {
                let c = self.edges[e].to;
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    queue.push(c);
                }
            }
        }
        debug_assert_eq!(order.len(), self.tasks.len());
        order
    }

    /// Level (longest hop-distance from any root) of every task. Tasks in
    /// the same level are structurally parallel; the Autoscaling baseline
    /// assigns per-level sub-deadlines.
    pub fn levels(&self) -> Vec<usize> {
        let mut level = vec![0usize; self.tasks.len()];
        for t in self.topo_order() {
            for c in self.children(t) {
                level[c.index()] = level[c.index()].max(level[t.index()] + 1);
            }
        }
        level
    }

    /// Tasks grouped by level, in level order.
    pub fn level_groups(&self) -> Vec<Vec<TaskId>> {
        let levels = self.levels();
        let depth = levels.iter().copied().max().map_or(0, |d| d + 1);
        let mut groups = vec![Vec::new(); depth];
        for t in self.task_ids() {
            groups[levels[t.index()]].push(t);
        }
        groups
    }

    /// Weighted longest path from any root to any sink, where each task
    /// contributes `weight(task)` (edge delays can be folded into the child's
    /// weight by the caller). Returns the path (root..sink) and its length.
    ///
    /// This is the critical path CP of Equation (3): the makespan of the
    /// workflow is the total weight along it.
    pub fn critical_path(&self, weight: impl Fn(TaskId) -> f64) -> (Vec<TaskId>, f64) {
        assert!(!self.tasks.is_empty(), "critical path of empty workflow");
        let order = self.topo_order();
        let mut dist = vec![f64::NEG_INFINITY; self.tasks.len()];
        let mut pred: Vec<Option<TaskId>> = vec![None; self.tasks.len()];
        for &t in &order {
            let w = weight(t);
            assert!(w >= 0.0, "negative task weight on {t}");
            if self.parents[t.index()].is_empty() {
                dist[t.index()] = w;
            } else {
                // parents processed earlier in topo order
                let (best_p, best_d) = self
                    .parents(t)
                    .map(|p| (p, dist[p.index()]))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .unwrap();
                dist[t.index()] = best_d + w;
                pred[t.index()] = Some(best_p);
            }
        }
        let (end, &len) = dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let mut path = vec![TaskId(end as u32)];
        while let Some(p) = pred[path.last().unwrap().index()] {
            path.push(p);
        }
        path.reverse();
        (path, len)
    }

    /// Sum of `weight(t)` over every task (Equation (1)'s total-cost shape).
    pub fn total_weight(&self, weight: impl Fn(TaskId) -> f64) -> f64 {
        self.task_ids().map(weight).sum()
    }

    /// Scale every task profile and edge payload by `factor`. The
    /// scientific-application generators use this to bring their published
    /// per-task profile *shapes* up to the data scales the paper describes
    /// (Montage and Ligo process hundreds of GB; Epigenomics dozens).
    pub fn scale_profiles(&mut self, factor: f64) {
        self.scale_cpu_and_bytes(factor, factor);
    }

    /// Scale CPU work and data volumes independently: I/O-bound
    /// applications (Montage) need their data grown far more than their
    /// CPU time to reproduce the paper's I/O-driven runtime variance.
    pub fn scale_cpu_and_bytes(&mut self, cpu_factor: f64, bytes_factor: f64) {
        assert!(cpu_factor > 0.0 && bytes_factor > 0.0);
        for t in &mut self.tasks {
            t.profile = crate::task::TaskProfile::new(
                t.profile.cpu_seconds * cpu_factor,
                t.profile.read_bytes * bytes_factor,
                t.profile.write_bytes * bytes_factor,
            );
        }
        for e in &mut self.edges {
            e.bytes *= bytes_factor;
        }
    }

    /// Longest path length in *task count* (depth of the DAG).
    pub fn depth(&self) -> usize {
        self.levels().iter().copied().max().map_or(0, |d| d + 1)
    }

    /// Maximum number of structurally parallel tasks (width).
    pub fn width(&self) -> usize {
        self.level_groups()
            .iter()
            .map(|g| g.len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskProfile;

    fn p() -> TaskProfile {
        TaskProfile::new(1.0, 0.0, 0.0)
    }

    /// Diamond: a -> {b, c} -> d.
    fn diamond() -> (Workflow, [TaskId; 4]) {
        let mut w = Workflow::new("diamond");
        let a = w.add_task("a", "x", p());
        let b = w.add_task("b", "x", p());
        let c = w.add_task("c", "x", p());
        let d = w.add_task("d", "x", p());
        w.add_edge(a, b, 10.0).unwrap();
        w.add_edge(a, c, 20.0).unwrap();
        w.add_edge(b, d, 5.0).unwrap();
        w.add_edge(c, d, 5.0).unwrap();
        (w, [a, b, c, d])
    }

    #[test]
    fn roots_and_sinks() {
        let (w, [a, _, _, d]) = diamond();
        assert_eq!(w.roots(), vec![a]);
        assert_eq!(w.sinks(), vec![d]);
    }

    #[test]
    fn cycle_rejected() {
        let (mut w, [a, _, _, d]) = diamond();
        assert_eq!(w.add_edge(d, a, 1.0), Err(WorkflowError::Cycle(d, a)));
        assert_eq!(w.add_edge(a, a, 1.0), Err(WorkflowError::Cycle(a, a)));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let (mut w, [a, b, _, _]) = diamond();
        assert_eq!(
            w.add_edge(a, b, 1.0),
            Err(WorkflowError::DuplicateEdge(a, b))
        );
    }

    #[test]
    fn unknown_task_rejected() {
        let (mut w, [a, ..]) = diamond();
        assert!(matches!(
            w.add_edge(a, TaskId(99), 1.0),
            Err(WorkflowError::UnknownTask(_))
        ));
    }

    #[test]
    fn topo_order_respects_edges() {
        let (w, _) = diamond();
        let order = w.topo_order();
        let pos: Vec<usize> = (0..4)
            .map(|i| order.iter().position(|t| t.index() == i).unwrap())
            .collect();
        for e in w.edges() {
            assert!(pos[e.from.index()] < pos[e.to.index()]);
        }
    }

    #[test]
    fn levels_of_diamond() {
        let (w, [a, b, c, d]) = diamond();
        let l = w.levels();
        assert_eq!(l[a.index()], 0);
        assert_eq!(l[b.index()], 1);
        assert_eq!(l[c.index()], 1);
        assert_eq!(l[d.index()], 2);
        assert_eq!(w.depth(), 3);
        assert_eq!(w.width(), 2);
    }

    #[test]
    fn critical_path_picks_heavier_branch() {
        let (w, [a, _, c, d]) = diamond();
        // Weight c heavier than b.
        let (path, len) = w.critical_path(|t| if t == c { 10.0 } else { 1.0 });
        assert_eq!(path, vec![a, c, d]);
        assert!((len - 12.0).abs() < 1e-12);
    }

    #[test]
    fn critical_path_single_task() {
        let mut w = Workflow::new("one");
        let a = w.add_task("a", "x", p());
        let (path, len) = w.critical_path(|_| 7.0);
        assert_eq!(path, vec![a]);
        assert_eq!(len, 7.0);
    }

    #[test]
    fn critical_path_dominates_every_root_sink_chain() {
        // Build a random-ish DAG deterministically and verify the invariant.
        let mut w = Workflow::new("chainy");
        let ts: Vec<TaskId> = (0..10)
            .map(|i| w.add_task(format!("t{i}"), "x", p()))
            .collect();
        for i in 0..10usize {
            for j in (i + 1)..10 {
                if (i * 7 + j * 3) % 4 == 0 {
                    let _ = w.add_edge(ts[i], ts[j], 1.0);
                }
            }
        }
        let weight = |t: TaskId| 1.0 + (t.index() % 3) as f64;
        let (_, cp) = w.critical_path(weight);
        // Enumerate all paths by DFS and check none exceeds cp.
        fn dfs(w: &Workflow, t: TaskId, acc: f64, weight: &dyn Fn(TaskId) -> f64, cp: f64) {
            let acc = acc + weight(t);
            assert!(
                acc <= cp + 1e-9,
                "path through {t} has length {acc} > cp {cp}"
            );
            for c in w.children(t) {
                dfs(w, c, acc, weight, cp);
            }
        }
        for r in w.roots() {
            dfs(&w, r, 0.0, &weight, cp);
        }
    }

    #[test]
    fn edge_bytes_and_input_bytes() {
        let (w, [a, b, c, d]) = diamond();
        assert_eq!(w.edge_bytes(a, b), Some(10.0));
        assert_eq!(w.edge_bytes(b, a), None);
        assert_eq!(w.input_bytes(d), 10.0);
        assert_eq!(w.input_bytes(a), 0.0);
        let _ = c;
    }

    #[test]
    fn total_weight_sums_all_tasks() {
        let (w, _) = diamond();
        assert_eq!(w.total_weight(|_| 2.0), 8.0);
    }

    #[test]
    fn level_groups_partition_tasks() {
        let (w, _) = diamond();
        let groups = w.level_groups();
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, w.len());
        assert_eq!(groups.len(), w.depth());
    }
}
