//! Workflow ensembles (the paper's second use case, Section 3.2).
//!
//! An ensemble is a group of same-application workflows with differing
//! parameters. Each workflow carries a *priority* (0 = most important) and
//! its own deadline; the whole ensemble shares one budget. The optimization
//! goal (Equation (4)) is to maximize `sum over completed workflows of
//! 2^-Priority(w)`.
//!
//! Following Malawski et al. (SC'12), whose experimental setup the paper
//! reuses, five ensemble types govern how workflow sizes relate to
//! priorities:
//!
//! * **Constant** — all workflows the same size.
//! * **Uniform sorted / unsorted** — sizes drawn uniformly from the size
//!   set; *sorted* assigns higher priority to smaller workflows,
//!   *unsorted* assigns priorities at random.
//! * **Pareto sorted / unsorted** — sizes drawn from a (discretized) Pareto
//!   law, i.e. mostly small workflows with a heavy tail of large ones.

use crate::dag::Workflow;
use crate::generators::App;
use deco_prob::dist::{Dist, Pareto};
use deco_prob::rng::{split_indexed, DecoRng};
use rand::seq::SliceRandom;
use rand::Rng;

/// The five ensemble types of the evaluation (Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnsembleType {
    Constant,
    UniformSorted,
    UniformUnsorted,
    ParetoSorted,
    ParetoUnsorted,
}

impl EnsembleType {
    pub const ALL: [EnsembleType; 5] = [
        EnsembleType::Constant,
        EnsembleType::UniformSorted,
        EnsembleType::UniformUnsorted,
        EnsembleType::ParetoSorted,
        EnsembleType::ParetoUnsorted,
    ];

    pub fn name(self) -> &'static str {
        match self {
            EnsembleType::Constant => "Constant",
            EnsembleType::UniformSorted => "UniformSorted",
            EnsembleType::UniformUnsorted => "UniformUnsorted",
            EnsembleType::ParetoSorted => "ParetoSorted",
            EnsembleType::ParetoUnsorted => "ParetoUnsorted",
        }
    }

    fn sorted(self) -> bool {
        matches!(
            self,
            EnsembleType::UniformSorted | EnsembleType::ParetoSorted
        )
    }
}

/// One member of an ensemble.
#[derive(Debug, Clone)]
pub struct Member {
    pub workflow: Workflow,
    /// 0 is the highest priority; the member's score is `2^-priority`.
    pub priority: u32,
}

impl Member {
    /// Score contribution if this member completes (Equation (4)).
    pub fn score(&self) -> f64 {
        2f64.powi(-(self.priority as i32))
    }
}

/// A workflow ensemble.
#[derive(Debug, Clone)]
pub struct Ensemble {
    pub app: App,
    pub etype: EnsembleType,
    pub members: Vec<Member>,
}

impl Ensemble {
    /// Generate an ensemble of `count` workflows of `app` (the paper uses
    /// 30–50) with sizes drawn per `etype` from `size_choices` (the paper
    /// uses {20, 100, 1000}).
    pub fn generate(
        app: App,
        etype: EnsembleType,
        count: usize,
        size_choices: &[usize],
        seed: u64,
    ) -> Ensemble {
        assert!(count > 0, "empty ensemble");
        assert!(!size_choices.is_empty());
        let mut rng: DecoRng = split_indexed(seed, 0x656e736d); // "ensm"
        let sizes: Vec<usize> = match etype {
            EnsembleType::Constant => {
                let mid = size_choices[size_choices.len() / 2];
                vec![mid; count]
            }
            EnsembleType::UniformSorted | EnsembleType::UniformUnsorted => (0..count)
                .map(|_| size_choices[rng.gen_range(0..size_choices.len())])
                .collect(),
            EnsembleType::ParetoSorted | EnsembleType::ParetoUnsorted => {
                // Pareto(xm=1, alpha=1.1) mapped onto the size set: heavy
                // tail selects the larger choices rarely.
                let pareto = Pareto::new(1.0, 1.1);
                (0..count)
                    .map(|_| {
                        let x = pareto.sample(&mut rng);
                        // x in [1, inf); map log-scale onto the index range.
                        let idx = (x.log2().floor() as usize).min(size_choices.len() - 1);
                        size_choices[idx]
                    })
                    .collect()
            }
        };
        // Priorities: sorted types give the smallest workflows the highest
        // priority (they are the cheapest to complete); unsorted assigns a
        // random permutation.
        let mut order: Vec<usize> = (0..count).collect();
        if etype.sorted() {
            order.sort_by_key(|&i| sizes[i]);
        } else {
            order.shuffle(&mut rng);
        }
        let mut priority = vec![0u32; count];
        for (rank, &i) in order.iter().enumerate() {
            priority[i] = rank as u32;
        }
        let members = sizes
            .iter()
            .enumerate()
            .map(|(i, &size)| Member {
                workflow: app.generate(size, deco_prob::rng::splitmix64(seed ^ i as u64)),
                priority: priority[i],
            })
            .collect();
        Ensemble {
            app,
            etype,
            members,
        }
    }

    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Total score if every member completed.
    pub fn max_score(&self) -> f64 {
        self.members.iter().map(Member::score).sum()
    }

    /// Score of a completion subset given as a boolean mask (the solver's
    /// ensemble state representation).
    pub fn score_of(&self, completed: &[bool]) -> f64 {
        assert_eq!(completed.len(), self.members.len());
        self.members
            .iter()
            .zip(completed)
            .filter(|(_, &c)| c)
            .map(|(m, _)| m.score())
            .sum()
    }

    /// Members ordered by priority (highest first).
    pub fn by_priority(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.members.len()).collect();
        idx.sort_by_key(|&i| self.members[i].priority);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIZES: [usize; 3] = [20, 100, 1000];

    #[test]
    fn constant_ensembles_have_one_size() {
        let e = Ensemble::generate(App::Ligo, EnsembleType::Constant, 10, &SIZES, 1);
        let sizes: std::collections::HashSet<usize> =
            e.members.iter().map(|m| m.workflow.len()).collect();
        assert_eq!(sizes.len(), 1);
    }

    #[test]
    fn uniform_ensembles_mix_sizes() {
        let e = Ensemble::generate(App::Ligo, EnsembleType::UniformUnsorted, 40, &SIZES, 2);
        let sizes: std::collections::HashSet<usize> =
            e.members.iter().map(|m| m.workflow.len()).collect();
        assert!(sizes.len() >= 2, "40 uniform draws should hit >= 2 sizes");
    }

    #[test]
    fn pareto_ensembles_skew_small() {
        let e = Ensemble::generate(App::Ligo, EnsembleType::ParetoUnsorted, 200, &SIZES, 3);
        let small = e.members.iter().filter(|m| m.workflow.len() < 60).count();
        // Pareto(1, 1.1) puts ~53% of the mass on the smallest size class
        // (P(x < 2) = 1 - 2^-1.1); 80/200 (40%) leaves ~3.7 sigma of slack
        // so the assertion checks the skew, not one lucky RNG stream.
        assert!(
            small > 80,
            "Pareto tail means most workflows are small, got {small}/200"
        );
    }

    #[test]
    fn priorities_are_a_permutation() {
        for etype in EnsembleType::ALL {
            let e = Ensemble::generate(App::Montage, etype, 12, &SIZES, 4);
            let mut ps: Vec<u32> = e.members.iter().map(|m| m.priority).collect();
            ps.sort_unstable();
            assert_eq!(ps, (0..12).collect::<Vec<u32>>(), "{:?}", etype);
        }
    }

    #[test]
    fn sorted_gives_small_workflows_high_priority() {
        let e = Ensemble::generate(App::Ligo, EnsembleType::UniformSorted, 30, &SIZES, 5);
        let top = e.by_priority()[0];
        let smallest = e.members.iter().map(|m| m.workflow.len()).min().unwrap();
        assert_eq!(e.members[top].workflow.len(), smallest);
    }

    #[test]
    fn scores_halve_with_priority() {
        let e = Ensemble::generate(App::Ligo, EnsembleType::Constant, 4, &SIZES, 6);
        let by_p = e.by_priority();
        assert_eq!(e.members[by_p[0]].score(), 1.0);
        assert_eq!(e.members[by_p[1]].score(), 0.5);
        assert_eq!(e.members[by_p[3]].score(), 0.125);
        assert!((e.max_score() - 1.875).abs() < 1e-12);
    }

    #[test]
    fn score_of_mask() {
        let e = Ensemble::generate(App::Ligo, EnsembleType::Constant, 3, &SIZES, 7);
        let all = e.score_of(&[true, true, true]);
        let none = e.score_of(&[false, false, false]);
        assert_eq!(none, 0.0);
        assert!((all - e.max_score()).abs() < 1e-12);
        let partial = e.score_of(&[true, false, false]);
        assert!(partial > 0.0 && partial < all);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Ensemble::generate(App::Ligo, EnsembleType::ParetoSorted, 10, &SIZES, 8);
        let b = Ensemble::generate(App::Ligo, EnsembleType::ParetoSorted, 10, &SIZES, 8);
        for (x, y) in a.members.iter().zip(&b.members) {
            assert_eq!(x.priority, y.priority);
            assert_eq!(x.workflow.len(), y.workflow.len());
        }
    }
}
